"""Experiment ``table1``: HTTP requests alerted by the two tools (paper Table 1).

Regenerates the paper's Table 1 -- the total number of HTTP requests and
the number alerted by each tool -- on the calibrated synthetic scenario,
prints the reproduced table next to the paper's published counts and
checks the shape (both tools alert on the large majority of traffic, the
commercial tool slightly more than the in-house tool).
"""

from __future__ import annotations

from repro.bench.comparison import ShapeCheck
from repro.bench.expected import PAPER_TABLE1, paper_alert_fraction
from repro.core.reporting import render_table1


def test_table1_alert_totals(benchmark, bench_experiment):
    result = bench_experiment

    def compute():
        return result.matrix.alert_counts()

    alert_counts = benchmark(compute)

    total = result.total_requests
    print()
    print(render_table1(total, alert_counts, title="Table 1 (reproduced)"))
    print()
    print(render_table1(PAPER_TABLE1["total"], {k: v for k, v in PAPER_TABLE1.items() if k != "total"}, title="Table 1 (paper)"))

    check = ShapeCheck("Table 1 shape: per-tool alert fractions")
    check.check_fraction(
        "commercial alert fraction",
        alert_counts["commercial"] / total,
        paper_alert_fraction("commercial"),
        tolerance_factor=1.3,
    )
    check.check_fraction(
        "inhouse alert fraction",
        alert_counts["inhouse"] / total,
        paper_alert_fraction("inhouse"),
        tolerance_factor=1.3,
    )
    check.check_greater(
        "commercial alerts more than inhouse (as Distil > Arcane)",
        alert_counts["commercial"],
        alert_counts["inhouse"],
        larger_label="commercial",
        smaller_label="inhouse",
    )
    check.check_greater(
        "both tools alert on the majority of traffic",
        min(alert_counts.values()) / total,
        0.5,
        larger_label="min alert fraction",
        smaller_label="0.5",
    )
    print()
    print(check.report())
    assert check.passed, check.report()
