"""Experiment ``perf_streaming``: streaming-engine throughput and latency.

Measures what the batch benchmarks cannot: the *online* cost of a
verdict.  Three quantities matter for a production deployment:

* **throughput** -- records/second through the full four-detector engine,
  at 1, 2 and 4 visitor shards (process backend, so multi-core hosts see
  near-linear scaling; on a single-core host the sharded runs mostly
  measure partitioning overhead);
* **decision latency** -- the p50/p99 wall-clock time from a record
  entering the engine to its ensemble verdict;
* **shard scaling** -- multi-shard vs single-shard throughput.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.stream import ShardedStreamRunner, StreamEngine, default_online_detectors

SHARD_COUNTS = (1, 2, 4)


def _engine_factory() -> StreamEngine:
    return StreamEngine(default_online_detectors())


@pytest.fixture(scope="module")
def replay_records(bench_dataset):
    """The benchmark data set in arrival order (materialised once)."""
    return sorted(bench_dataset.records, key=lambda record: record.timestamp)


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_perf_streaming_throughput(benchmark, replay_records, shards):
    backend = "process" if shards > 1 else "serial"
    runner = ShardedStreamRunner(_engine_factory, shards=shards, backend=backend)

    result = benchmark.pedantic(runner.run, args=(replay_records,), rounds=2, iterations=1)

    assert result.stats.records == len(replay_records)
    rate = len(replay_records) / benchmark.stats.stats.min
    print(
        f"\n{shards} shard(s): {len(replay_records):,} records, "
        f"{rate:,.0f} records/sec (best round)"
    )


def test_perf_streaming_decision_latency(replay_records):
    engine = StreamEngine(default_online_detectors(), track_latency=True)
    result = engine.run(replay_records)
    percentiles = result.latency_percentiles()

    print(
        f"\nper-request decision latency over {len(replay_records):,} records: "
        f"p50={percentiles['p50'] * 1e6:,.1f}us "
        f"p95={percentiles['p95'] * 1e6:,.1f}us "
        f"p99={percentiles['p99'] * 1e6:,.1f}us "
        f"max={percentiles['max'] * 1e3:,.2f}ms"
    )
    assert percentiles["p50"] <= percentiles["p99"] <= percentiles["max"]
    # An online verdict that takes more than 100ms at the median would be
    # useless for inline blocking; the engine is orders of magnitude under.
    assert percentiles["p50"] < 0.1


def test_perf_multishard_throughput_vs_single_shard(replay_records):
    """Sharded throughput comparison (the scaling claim of the runner).

    The speedup assertion only applies on multi-core hosts: with a single
    core, process shards serialise on the CPU and only add partitioning
    overhead, so the comparison is reported but not enforced.
    """

    def best_rate(shards: int) -> float:
        backend = "process" if shards > 1 else "serial"
        runner = ShardedStreamRunner(_engine_factory, shards=shards, backend=backend)
        best = float("inf")
        for _ in range(2):
            started = time.perf_counter()
            runner.run(replay_records)
            best = min(best, time.perf_counter() - started)
        return len(replay_records) / best

    cores = os.cpu_count() or 1
    single = best_rate(1)
    multi_shards = min(4, max(2, cores))
    multi = best_rate(multi_shards)
    print(
        f"\n1 shard: {single:,.0f} records/sec; "
        f"{multi_shards} shards: {multi:,.0f} records/sec "
        f"(x{multi / single:.2f} on {cores} core(s))"
    )
    if cores > 1:
        assert multi > single, (
            f"expected multi-shard throughput to exceed single-shard on {cores} cores "
            f"({multi:,.0f} vs {single:,.0f} records/sec)"
        )
