"""Experiment ``perf_analysis``: frame-native analysis vs the record path.

The frame-native tables pipeline claims the *analysis* slice of a run --
Tables 1-4, the pairwise diversity metrics and the labelled evaluations
-- collapses from per-request Python loops into a handful of
``np.bincount`` / ``np.count_nonzero`` kernels over the
:class:`~repro.columns.frame.RecordFrame`, and that a trace-backed
``tables`` run therefore fits in bounded memory: the columnar frame is
the *only* copy of the data, no :class:`~repro.logs.dataset.Dataset` and
no per-record objects exist at any point.

Two measurements, both at the analysis benchmark scale
(``REPRO_ANALYSIS_BENCH_SCALE``, default 0.1 -- about 144k requests):

* **analysis slice** -- every post-detection analysis of
  ``PaperExperiment`` (status tables, exclusive status tables, pairwise
  diversity incl. double fault, per-tool and adjudicated confusion
  evaluations) on the frame kernels against the record-path
  equivalents; the acceptance floor is a 3x speedup, and the two paths
  must agree exactly;
* **bounded-memory streamed run** -- a full tables experiment on a
  frame streamed straight out of a trace file must peak well below the
  same experiment on the record path (materialise the trace, build
  session objects, extract per-session features), proving the frame
  path keeps Tables 1-4 feasible at scales where the record path no
  longer fits.

All numbers land in ``BENCH_perf_analysis.json`` via the shared conftest
hook, and both floors are asserted so a regression fails the job loudly.
"""

from __future__ import annotations

import os
import time
import tracemalloc

import pytest

from repro.bench.harness import BENCH_SEED, scenario_dataset
from repro.columns import RecordFrame
from repro.core.breakdown import exclusive_status_breakdown, status_breakdown
from repro.core.diversity import diversity_breakdown
from repro.core.evaluation import evaluate_ensemble, evaluate_matrix
from repro.core.experiment import PaperExperiment
from repro.core.framestats import (
    evaluate_ensemble_from_frame,
    evaluate_matrix_from_frame,
    pairwise_diversity_from_frame,
    status_tables_from_frame,
)
from repro.core.metrics import pairwise_diversity
from repro.detectors.commercial import CommercialBotDefenceDetector
from repro.detectors.inhouse import InHouseHeuristicDetector
from repro.detectors.pipeline import DetectionPipeline
from repro.trace import TraceReader, read_trace, write_trace

#: Scale of the analysis benchmarks (fraction of the paper's 1.47M requests).
ANALYSIS_SCALE = float(os.environ.get("REPRO_ANALYSIS_BENCH_SCALE", "0.1"))

#: Speedup floor for the analysis slice (frame kernels vs record loops).
ANALYSIS_SPEEDUP_FLOOR = 3.0


def _best_of(callable_, rounds: int = 3):
    best = float("inf")
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - started)
    return best, result


def _detectors():
    return [CommercialBotDefenceDetector(), InHouseHeuristicDetector()]


@pytest.fixture(scope="module")
def analysis_dataset():
    """The calibrated scenario at the analysis benchmark scale (memoised)."""
    return scenario_dataset(ANALYSIS_SCALE, BENCH_SEED)


@pytest.fixture(scope="module")
def analysis_run(analysis_dataset):
    """``(frame, matrix)`` -- detection done once, analysis timed below."""
    frame = RecordFrame.from_dataset(analysis_dataset)
    result = DetectionPipeline(_detectors()).run_frame(frame)
    return frame, result.matrix


def test_perf_analysis_slice_frame_vs_records(
    analysis_dataset, analysis_run, record_bench
):
    """The post-detection analysis must beat the record path by >= 3x."""
    frame, matrix = analysis_run
    first, second = (detector.name for detector in _detectors())

    def record_path():
        breakdown = diversity_breakdown(matrix, first, second)
        status = {name: status_breakdown(analysis_dataset, matrix, name) for name in (first, second)}
        exclusive = {
            name: exclusive_status_breakdown(analysis_dataset, matrix, name)
            for name in (first, second)
        }
        metrics = pairwise_diversity(matrix, first, second, dataset=analysis_dataset)
        tools = evaluate_matrix(analysis_dataset, matrix)
        schemes = evaluate_ensemble(analysis_dataset, matrix)
        return breakdown, status, exclusive, metrics, tools, schemes

    def frame_path():
        breakdown = diversity_breakdown(matrix, first, second)
        status, exclusive = status_tables_from_frame(frame, matrix, (first, second))
        metrics = pairwise_diversity_from_frame(frame, matrix, first, second)
        tools = evaluate_matrix_from_frame(frame, matrix)
        schemes = evaluate_ensemble_from_frame(frame, matrix)
        return breakdown, status, exclusive, metrics, tools, schemes

    record_seconds, by_records = _best_of(record_path, rounds=2)
    frame_seconds, by_frame = _best_of(frame_path, rounds=3)
    speedup = record_seconds / frame_seconds

    # Identical analysis, only faster: same tables, metrics and evaluations.
    assert by_frame[0] == by_records[0]
    assert {name: table.counts for name, table in by_frame[1].items()} == {
        name: table.counts for name, table in by_records[1].items()
    }
    assert {name: table.counts for name, table in by_frame[2].items()} == {
        name: table.counts for name, table in by_records[2].items()
    }
    assert by_frame[3].as_dict() == by_records[3].as_dict()
    assert [e.as_dict() for e in by_frame[4]] == [e.as_dict() for e in by_records[4]]
    assert [e.as_dict() for e in by_frame[5]] == [e.as_dict() for e in by_records[5]]

    print(
        f"\n{len(frame):,} records: analysis slice on records {record_seconds:.2f}s, "
        f"on frame kernels {frame_seconds:.3f}s (x{speedup:.1f})"
    )
    record_bench(
        "perf_analysis",
        "analysis_slice",
        scale=ANALYSIS_SCALE,
        records=len(frame),
        record_seconds=record_seconds,
        frame_seconds=frame_seconds,
        speedup=speedup,
    )
    assert speedup >= ANALYSIS_SPEEDUP_FLOOR, (
        f"frame-kernel analysis regressed: {speedup:.1f}x < "
        f"{ANALYSIS_SPEEDUP_FLOOR}x over the record path"
    )


def test_perf_streamed_tables_bounded_memory(
    analysis_dataset, record_bench, tmp_path
):
    """A trace-streamed tables run peaks well below the record path.

    The frame read out of the trace is the only copy of the data for the
    whole experiment -- detection, Tables 1-4, diversity, evaluations.
    The record path pays for the materialised :class:`Dataset`, the
    per-session objects *and* the per-session feature vectors on top, so
    its peak must sit comfortably above the streamed run's.
    """
    path = str(tmp_path / "analysis-bench.trace")
    write_trace(analysis_dataset, path)

    tracemalloc.start()
    frame = TraceReader(path).read_frame()
    result = PaperExperiment().run_on_frame(frame)
    _, streamed_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert result.dataset is None  # no Dataset ever materialised
    assert result.total_requests == len(analysis_dataset)

    tracemalloc.start()
    dataset = read_trace(path)
    by_records = PaperExperiment().run_on(dataset, engine="records")
    _, record_path_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert by_records.render_all() == result.render_all()  # same tables

    ratio = record_path_peak / streamed_peak
    bytes_per_record = streamed_peak / max(len(frame), 1)
    print(
        f"\nstreamed tables run: {len(frame):,} records, peak "
        f"{streamed_peak / 1e6:.1f} MB ({bytes_per_record:.0f} B/record) vs "
        f"{record_path_peak / 1e6:.1f} MB on the record path (x{ratio:.1f})"
    )
    record_bench(
        "perf_analysis",
        "streamed_tables_memory",
        scale=ANALYSIS_SCALE,
        records=len(frame),
        streamed_peak_bytes=streamed_peak,
        record_path_peak_bytes=record_path_peak,
        peak_ratio=ratio,
        bytes_per_record=bytes_per_record,
    )
    # The record path's peak keeps growing with session count (objects +
    # feature vectors); 1.5x holds with margin at the 0.1 scale.
    assert streamed_peak * 1.5 < record_path_peak, (
        "the streamed frame tables run should peak well below the record "
        f"path ({streamed_peak / 1e6:.1f} MB vs {record_path_peak / 1e6:.1f} MB)"
    )
