"""Experiment ``perf_columns``: the columnar substrate vs the record path.

The :mod:`repro.columns` refactor claims the batch detection hot path --
sessionization, feature extraction, detector scoring -- runs several
times faster on the vectorized substrate than on per-record Python
loops, without changing a single result.  This module measures the three
layers at the columns benchmark scale (``REPRO_COLUMNS_BENCH_SCALE``,
default 0.1 -- about 144k requests):

* **dataset-wide feature extraction** -- ``RecordFrame.from_dataset`` +
  vectorized sessionization + ``FeatureMatrix.from_frame`` against the
  legacy ``Sessionizer`` + per-session ``extract_features`` loop; the
  acceptance floor is a 3x speedup;
* **tables run** -- the full paper experiment
  (``PaperExperiment.run_on``) under the ``columnar`` and ``records``
  engines;
* **zero-decode trace ingestion** -- ``TraceReader.read_frame`` against
  ``read_dataset`` + ``from_dataset`` for trace-backed runs.

All numbers land in ``BENCH_perf_columns.json`` via the shared conftest
hook, and the feature-extraction speedup is asserted so a regression in
the new hot path fails the job loudly.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.bench.harness import BENCH_SEED, scenario_dataset
from repro.columns import FeatureMatrix, RecordFrame, sessionize_frame
from repro.core.experiment import PaperExperiment
from repro.detectors.features import extract_features
from repro.logs.sessionization import Sessionizer
from repro.trace import TraceReader, write_trace

#: Scale of the columns benchmarks (fraction of the paper's 1.47M requests).
COLUMNS_SCALE = float(os.environ.get("REPRO_COLUMNS_BENCH_SCALE", "0.1"))

#: Speedup floor for dataset-wide feature extraction (frame vs records).
FEATURE_SPEEDUP_FLOOR = 3.0


def _best_of(callable_, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


@pytest.fixture(scope="module")
def columns_dataset():
    """The calibrated scenario at the columns benchmark scale (memoised)."""
    return scenario_dataset(COLUMNS_SCALE, BENCH_SEED)


def test_perf_feature_extraction_frame_vs_records(columns_dataset, record_bench):
    """Batched feature extraction must beat the per-session loop by >= 3x."""

    def record_path():
        sessions = Sessionizer().sessionize(columns_dataset.records)
        return np.vstack([extract_features(session).vector() for session in sessions])

    def frame_path():
        frame = RecordFrame.from_dataset(columns_dataset)
        spans = sessionize_frame(frame)
        return FeatureMatrix.from_frame(frame, spans).values

    record_seconds = _best_of(record_path, rounds=2)
    frame_seconds = _best_of(frame_path, rounds=3)
    speedup = record_seconds / frame_seconds
    assert np.array_equal(record_path(), frame_path())  # same bytes, only faster
    n_sessions = len(Sessionizer().sessionize(columns_dataset.records))
    print(
        f"\n{len(columns_dataset):,} records, {n_sessions:,} sessions: "
        f"record path {record_seconds:.2f}s, frame path {frame_seconds:.2f}s "
        f"(x{speedup:.1f})"
    )
    record_bench(
        "perf_columns",
        "feature_extraction",
        scale=COLUMNS_SCALE,
        records=len(columns_dataset),
        sessions=n_sessions,
        record_seconds=record_seconds,
        frame_seconds=frame_seconds,
        speedup=speedup,
    )
    assert speedup >= FEATURE_SPEEDUP_FLOOR, (
        f"frame-path feature extraction regressed: {speedup:.1f}x < "
        f"{FEATURE_SPEEDUP_FLOOR}x over the record path"
    )


def test_perf_tables_run_columnar_vs_records(columns_dataset, record_bench):
    """The full tables experiment must not be slower on the columnar engine."""
    records_seconds = _best_of(
        lambda: PaperExperiment().run_on(columns_dataset, engine="records"), rounds=1
    )
    columnar_seconds = _best_of(
        lambda: PaperExperiment().run_on(columns_dataset, engine="columnar"), rounds=2
    )
    speedup = records_seconds / columnar_seconds
    print(
        f"\ntables run: records engine {records_seconds:.2f}s, "
        f"columnar engine {columnar_seconds:.2f}s (x{speedup:.1f})"
    )
    record_bench(
        "perf_columns",
        "tables_run",
        records=len(columns_dataset),
        records_engine_seconds=records_seconds,
        columnar_engine_seconds=columnar_seconds,
        speedup=speedup,
    )
    assert speedup >= 1.0, (
        f"the columnar tables run is slower than the record path ({speedup:.2f}x)"
    )


def test_perf_trace_read_frame_zero_decode(columns_dataset, record_bench, tmp_path):
    """Mapping a trace into a frame must beat decode-then-columnarise."""
    path = str(tmp_path / "columns-bench.trace")
    write_trace(columns_dataset, path)

    frame_seconds = _best_of(lambda: TraceReader(path).read_frame())
    decode_seconds = _best_of(
        lambda: RecordFrame.from_dataset(TraceReader(path).read_dataset())
    )
    speedup = decode_seconds / frame_seconds
    print(
        f"\ntrace -> frame: read_frame {frame_seconds:.2f}s, "
        f"read_dataset+from_dataset {decode_seconds:.2f}s (x{speedup:.1f})"
    )
    record_bench(
        "perf_columns",
        "trace_read_frame",
        records=len(columns_dataset),
        read_frame_seconds=frame_seconds,
        decode_then_columnarise_seconds=decode_seconds,
        speedup=speedup,
    )
    assert speedup >= 2.0, (
        f"read_frame lost its zero-decode advantage ({speedup:.1f}x < 2x)"
    )
