"""Experiment ``table3``: alerted requests by HTTP status, overall counts (paper Table 3).

Regenerates the per-tool breakdown of alerted requests by HTTP status,
prints both columns next to the paper's, and checks the shape: status 200
dominates, 302 comes second, and both tools' alert populations contain the
long tail of 204/400/304/404/500 responses the paper lists.
"""

from __future__ import annotations

from repro.bench.comparison import ShapeCheck
from repro.bench.expected import PAPER_TABLE3, paper_status_fractions
from repro.core.breakdown import status_breakdown
from repro.core.reporting import render_side_by_side, render_status_breakdown
from repro.logs.statuses import describe_status


def test_table3_status_breakdown_overall(benchmark, bench_experiment):
    result = bench_experiment
    dataset = result.dataset
    matrix = result.matrix

    def compute():
        return {
            name: status_breakdown(dataset, matrix, name, labelled=False)
            for name in ("commercial", "inhouse")
        }

    tables = benchmark(compute)

    print()
    rendered = [
        render_status_breakdown(result.status_tables[name], title=f"{name} (reproduced)")
        for name in ("inhouse", "commercial")
    ]
    print(render_side_by_side(rendered[0], rendered[1]))
    print()
    for tool in ("inhouse", "commercial"):
        paper_rows = ", ".join(f"{describe_status(s)}={c:,}" for s, c in PAPER_TABLE3[tool].items())
        print(f"Table 3 (paper, {tool}): {paper_rows}")

    check = ShapeCheck("Table 3 shape: status mix of alerted requests")
    for tool in ("commercial", "inhouse"):
        counts = tables[tool].counts
        total = tables[tool].total()
        paper = paper_status_fractions(PAPER_TABLE3, tool)
        check.check_dominant(f"{tool}: 200 dominates", counts, 200)
        check.check_fraction(f"{tool}: fraction of 200", counts.get(200, 0) / total, paper[200], tolerance_factor=1.2)
        check.check_fraction(f"{tool}: fraction of 302", counts.get(302, 0) / total, paper[302], tolerance_factor=3.0)
        check.check_greater(
            f"{tool}: 302 is the second-largest status",
            counts.get(302, 0),
            max((count for status, count in counts.items() if status not in (200, 302)), default=0),
            larger_label="302",
            smaller_label="next largest",
        )
        for status in (204, 400):
            check.add(
                f"{tool}: status {status} present among alerted requests",
                counts.get(status, 0) > 0,
                f"count={counts.get(status, 0)}",
            )
    print()
    print(check.report())
    assert check.passed, check.report()
