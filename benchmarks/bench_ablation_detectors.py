"""Ablation experiments: which component buys which part of the detection?

DESIGN.md calls out two design choices worth ablating:

* the in-house rule set -- each rule encodes one operational heuristic;
  removing a rule shows which scraper family it is responsible for
  catching,
* the behavioural evidence model of the commercial stand-in -- disabling
  a signal (assets, referrers, timing, ...) shows which behavioural tell
  carries the stealth-scraper detection.

Both ablations run on the calibrated benchmark data set with ground truth,
reporting sensitivity per variant.  There is no corresponding paper table;
these benches justify the reproduction's detector design.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.bench.comparison import ShapeCheck
from repro.core.confusion import ConfusionMatrix
from repro.core.evaluation import per_actor_class_detection
from repro.core.reporting import render_evaluation_rows
from repro.detectors.behavioral import BehavioralSessionDetector, BehaviouralScoreConfig
from repro.detectors.heuristic import (
    ErrorProbeRule,
    HeuristicRuleDetector,
    PathRepetitionRule,
    RateRule,
    RobotsNoAssetRule,
    ScriptedAgentRule,
)
from repro.logs.sessionization import Sessionizer


@pytest.fixture(scope="module")
def shared_sessions(bench_dataset):
    return Sessionizer().sessionize(bench_dataset.records)


def _rule_variants():
    """The full in-house rule set and every leave-one-out variant."""
    full = {
        "session-rate": RateRule(),
        "scripted-agent": ScriptedAgentRule(),
        "error-probe": ErrorProbeRule(),
        "robots-no-assets": RobotsNoAssetRule(),
        "path-repetition": PathRepetitionRule(),
    }
    variants = {"full": list(full.values())}
    for dropped in full:
        variants[f"without {dropped}"] = [rule for name, rule in full.items() if name != dropped]
    return variants


def test_ablation_inhouse_rules(benchmark, bench_dataset, shared_sessions):
    """Leave-one-out ablation of the in-house rule set."""
    variants = _rule_variants()

    def run_all():
        results = {}
        for name, rules in variants.items():
            detector = HeuristicRuleDetector(rules, name="inhouse-ablation")
            alerts = detector.analyze(bench_dataset, sessions=shared_sessions)
            results[name] = alerts.request_ids()
        return results

    alerted_by_variant = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    per_class = {}
    for name, alerted in alerted_by_variant.items():
        confusion = ConfusionMatrix.from_alerts(bench_dataset, alerted)
        per_class[name] = per_actor_class_detection(bench_dataset, alerted)
        rows.append(
            {
                "variant": name,
                "alerts": len(alerted),
                "sensitivity": confusion.sensitivity(),
                "specificity": confusion.specificity(),
                "aggressive": per_class[name]["aggressive_scraper"],
                "probing": per_class[name]["probing_scraper"],
            }
        )
    print()
    print(render_evaluation_rows(rows, title="In-house rule set: leave-one-out ablation"))

    check = ShapeCheck("In-house rule ablation shape")
    check.check_greater(
        "dropping the rate rule costs aggressive-scraper coverage",
        per_class["full"]["aggressive_scraper"],
        per_class["without session-rate"]["aggressive_scraper"] + 0.05,
        larger_label="full",
        smaller_label="without session-rate + 0.05",
    )
    check.check_greater(
        "dropping the error-probe rule costs probing-scraper coverage",
        per_class["full"]["probing_scraper"],
        per_class["without error-probe"]["probing_scraper"] + 0.2,
        larger_label="full",
        smaller_label="without error-probe + 0.2",
    )
    full_sensitivity = ConfusionMatrix.from_alerts(bench_dataset, alerted_by_variant["full"]).sensitivity()
    for name, alerted in alerted_by_variant.items():
        variant_sensitivity = ConfusionMatrix.from_alerts(bench_dataset, alerted).sensitivity()
        check.add(
            f"{name}: never beats the full rule set on sensitivity",
            variant_sensitivity <= full_sensitivity + 1e-9,
            f"{variant_sensitivity:.4f} vs full {full_sensitivity:.4f}",
        )
    print()
    print(check.report())
    assert check.passed, check.report()


def _behavioural_variants():
    """The full behavioural config, leave-one-out variants and a gutted one.

    The "fingerprint only" variant disables every behavioural signal and
    keeps only the client-fingerprint evidence -- i.e. what a purely
    signature-based product would see.
    """
    base = BehaviouralScoreConfig()
    return {
        "full": base,
        "without asset signal": replace(base, no_assets_weight=0.0),
        "without referrer signal": replace(base, no_referrer_weight=0.0),
        "without timing signal": replace(base, machine_timing_weight=0.0),
        "without volume signal": replace(base, high_volume_weight=0.0),
        "without fingerprint signal": replace(base, fingerprint_weight=0.0),
        "fingerprint only": replace(
            base,
            no_assets_weight=0.0,
            no_referrer_weight=0.0,
            machine_timing_weight=0.0,
            high_volume_weight=0.0,
            coverage_weight=0.0,
            night_weight=0.0,
        ),
    }


def test_ablation_behavioural_signals(benchmark, bench_dataset, shared_sessions):
    """Signal ablation of the behavioural session model."""
    variants = _behavioural_variants()

    def run_all():
        results = {}
        for name, config in variants.items():
            detector = BehavioralSessionDetector(config, name="behavioral-ablation")
            alerts = detector.analyze(bench_dataset, sessions=shared_sessions)
            results[name] = alerts.request_ids()
        return results

    alerted_by_variant = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    stealth_rates = {}
    for name, alerted in alerted_by_variant.items():
        confusion = ConfusionMatrix.from_alerts(bench_dataset, alerted)
        rates = per_actor_class_detection(bench_dataset, alerted)
        stealth_rates[name] = rates["stealth_scraper"]
        rows.append(
            {
                "variant": name,
                "alerts": len(alerted),
                "sensitivity": confusion.sensitivity(),
                "specificity": confusion.specificity(),
                "stealth": rates["stealth_scraper"],
            }
        )
    print()
    print(render_evaluation_rows(rows, title="Behavioural model: signal ablation"))

    check = ShapeCheck("Behavioural signal ablation shape")
    check.check_greater(
        "the full behavioural model catches stealth scraping",
        stealth_rates["full"],
        0.6,
        larger_label="full",
        smaller_label="0.6",
    )
    check.check_greater(
        "behavioural evidence (not fingerprints) carries stealth detection",
        stealth_rates["full"],
        stealth_rates["fingerprint only"] + 0.3,
        larger_label="full",
        smaller_label="fingerprint only + 0.3",
    )
    for name in ("without asset signal", "without referrer signal", "without timing signal", "without volume signal"):
        check.add(
            f"{name}: stealth detection degrades gracefully (within 0.3 of full)",
            stealth_rates[name] >= stealth_rates["full"] - 0.3,
            f"{stealth_rates[name]:.4f} vs full {stealth_rates['full']:.4f}",
        )
    for name, alerted in alerted_by_variant.items():
        confusion = ConfusionMatrix.from_alerts(bench_dataset, alerted)
        check.add(
            f"{name}: specificity stays high",
            confusion.specificity() > 0.9,
            f"specificity={confusion.specificity():.4f}",
        )
    print()
    print(check.report())
    assert check.passed, check.report()
