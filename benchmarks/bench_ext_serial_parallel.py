"""Experiment ``ext_serial_parallel``: parallel vs serial deployments (paper Section V).

The paper proposes analysing the FP/FN trade-offs of deploying the tools
in parallel (both monitor everything) versus serially (one tool filters
the traffic the second analyses).  This extension runs both deployments
(plus both serial orders and modes) on the calibrated scenario and
reports detection quality alongside the workload each tool carries.
"""

from __future__ import annotations

from repro.bench.comparison import ShapeCheck
from repro.core.configurations import compare_configurations
from repro.core.reporting import render_evaluation_rows
from repro.detectors.commercial import CommercialBotDefenceDetector
from repro.detectors.inhouse import InHouseHeuristicDetector


def test_ext_serial_vs_parallel_configurations(benchmark, bench_dataset):
    def compute():
        return compare_configurations(
            bench_dataset,
            CommercialBotDefenceDetector(),
            InHouseHeuristicDetector(),
        )

    comparison = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for outcome in comparison.outcomes:
        row = {
            "configuration": outcome.name,
            "alerts": outcome.alert_count,
            "workload": outcome.total_workload,
            "sensitivity": outcome.confusion.sensitivity(),
            "specificity": outcome.confusion.specificity(),
            "f1": outcome.confusion.f1_score(),
        }
        rows.append(row)
    print()
    print(render_evaluation_rows(rows, title="Parallel vs serial deployment configurations"))

    parallel_union = comparison.by_name("parallel-1oo2")
    parallel_strict = comparison.by_name("parallel-2oo2")
    serial_confirm = comparison.by_name("serial-confirm(commercial->inhouse)")
    serial_escalate = comparison.by_name("serial-escalate(commercial->inhouse)")

    check = ShapeCheck("Serial vs parallel shape")
    check.check_greater(
        "parallel 1oo2 has the highest sensitivity",
        parallel_union.confusion.sensitivity() + 1e-12,
        max(o.confusion.sensitivity() for o in comparison.outcomes if o.name != "parallel-1oo2"),
        larger_label="parallel-1oo2",
        smaller_label="best other",
    )
    check.check_greater(
        "parallel 2oo2 has at least the specificity of 1oo2",
        parallel_strict.confusion.specificity() + 1e-12,
        parallel_union.confusion.specificity(),
        larger_label="parallel-2oo2",
        smaller_label="parallel-1oo2",
    )
    check.check_greater(
        "serial deployments reduce total workload vs parallel",
        parallel_union.total_workload,
        serial_confirm.total_workload,
        larger_label="parallel workload",
        smaller_label="serial-confirm workload",
    )
    check.check_greater(
        "serial-escalate keeps (near) union sensitivity",
        serial_escalate.confusion.sensitivity() + 1e-9,
        parallel_union.confusion.sensitivity() - 0.02,
        larger_label="serial-escalate",
        smaller_label="parallel-1oo2 - 0.02",
    )
    check.check_greater(
        "serial-confirm matches 2oo2 specificity",
        serial_confirm.confusion.specificity() + 1e-9,
        parallel_strict.confusion.specificity() - 0.02,
        larger_label="serial-confirm",
        smaller_label="parallel-2oo2 - 0.02",
    )
    print()
    print(check.report())
    assert check.passed, check.report()
