"""Experiment ``perf_detectors``: detector throughput comparison.

Measures how long each detector family takes to analyse the benchmark
data set (with sessionization shared, as in the real pipeline).  No paper
table corresponds to this; it documents the cost side of the diversity
trade-off -- running two (or five) detectors in parallel costs what the
serial-configuration experiment tries to save.
"""

from __future__ import annotations

import pytest

from repro.detectors.behavioral import BehavioralSessionDetector
from repro.detectors.commercial import CommercialBotDefenceDetector
from repro.detectors.inhouse import InHouseHeuristicDetector
from repro.detectors.naive_bayes import NaiveBayesRobotDetector
from repro.detectors.ratelimit import RateLimitDetector
from repro.detectors.reputation import IPReputationDetector
from repro.logs.sessionization import Sessionizer

DETECTOR_FACTORIES = {
    "commercial": CommercialBotDefenceDetector,
    "inhouse": InHouseHeuristicDetector,
    "behavioral": BehavioralSessionDetector,
    "rate-limit": RateLimitDetector,
    "ip-reputation": IPReputationDetector,
    "naive-bayes": NaiveBayesRobotDetector,
}


@pytest.fixture(scope="module")
def shared_sessions(bench_dataset):
    return Sessionizer().sessionize(bench_dataset.records)


@pytest.mark.parametrize("detector_name", sorted(DETECTOR_FACTORIES))
def test_perf_detector_throughput(benchmark, bench_dataset, shared_sessions, detector_name):
    detector = DETECTOR_FACTORIES[detector_name]()

    alerts = benchmark.pedantic(
        detector.analyze,
        args=(bench_dataset,),
        kwargs={"sessions": shared_sessions},
        rounds=2,
        iterations=1,
    )

    print(f"\n{detector_name}: {len(alerts):,} of {len(bench_dataset):,} requests alerted")
    assert len(alerts) <= len(bench_dataset)
