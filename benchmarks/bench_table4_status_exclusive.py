"""Experiment ``table4``: status breakdown of single-tool alerts (paper Table 4).

Regenerates the HTTP-status breakdown restricted to requests alerted by
only one of the tools.  The paper's qualitative finding is an asymmetry:
the in-house tool's exclusive alerts are comparatively rich in 204/400/304
probe responses, while the commercial tool's exclusive alerts are almost
entirely ordinary 200/302 traffic.  The shape checks verify exactly that.
"""

from __future__ import annotations

from repro.bench.comparison import ShapeCheck
from repro.bench.expected import PAPER_TABLE4, paper_status_fractions
from repro.core.breakdown import exclusive_status_breakdown
from repro.core.reporting import render_side_by_side, render_status_breakdown
from repro.logs.statuses import describe_status

#: Statuses characteristic of API probing (the in-house tool's specialty).
PROBE_STATUSES = (204, 400, 304)


def test_table4_status_breakdown_exclusive(benchmark, bench_experiment):
    result = bench_experiment
    dataset = result.dataset
    matrix = result.matrix

    def compute():
        return {
            name: exclusive_status_breakdown(dataset, matrix, name, labelled=False)
            for name in ("commercial", "inhouse")
        }

    tables = benchmark(compute)

    print()
    rendered = [
        render_status_breakdown(
            result.exclusive_status_tables[name], title=f"{name} only (reproduced)"
        )
        for name in ("inhouse", "commercial")
    ]
    print(render_side_by_side(rendered[0], rendered[1]))
    print()
    for tool in ("inhouse", "commercial"):
        paper_rows = ", ".join(f"{describe_status(s)}={c:,}" for s, c in PAPER_TABLE4[tool].items())
        print(f"Table 4 (paper, {tool} only): {paper_rows}")

    commercial_only = tables["commercial"]
    inhouse_only = tables["inhouse"]
    check = ShapeCheck("Table 4 shape: exclusive alerts status asymmetry")

    check.check_greater(
        "commercial-only larger than inhouse-only",
        commercial_only.total(),
        inhouse_only.total(),
        larger_label="commercial_only total",
        smaller_label="inhouse_only total",
    )
    check.check_dominant("commercial-only: 200 dominates", commercial_only.counts, 200)
    check.check_dominant("inhouse-only: 200 dominates", inhouse_only.counts, 200)

    commercial_paper = paper_status_fractions(PAPER_TABLE4, "commercial")
    check.check_fraction(
        "commercial-only: fraction of 200",
        commercial_only.counts.get(200, 0) / max(1, commercial_only.total()),
        commercial_paper[200],
        tolerance_factor=1.2,
    )

    inhouse_probe = sum(inhouse_only.counts.get(s, 0) for s in PROBE_STATUSES) / max(1, inhouse_only.total())
    commercial_probe = sum(commercial_only.counts.get(s, 0) for s in PROBE_STATUSES) / max(1, commercial_only.total())
    paper_inhouse_probe = sum(
        paper_status_fractions(PAPER_TABLE4, "inhouse").get(s, 0.0) for s in PROBE_STATUSES
    )
    check.check_greater(
        "inhouse-only richer in probe statuses (204/400/304) than commercial-only",
        inhouse_probe,
        commercial_probe,
        larger_label="inhouse probe fraction",
        smaller_label="commercial probe fraction",
    )
    check.check_fraction(
        "inhouse-only probe-status fraction",
        inhouse_probe,
        paper_inhouse_probe,
        tolerance_factor=2.5,
    )
    print()
    print(check.report())
    assert check.passed, check.report()
