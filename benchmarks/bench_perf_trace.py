"""Experiment ``perf_trace``: trace replay vs regeneration, out-of-core cost.

The point of :mod:`repro.trace` is that traffic should be *generated
once and replayed many times*.  This module measures the four claims
behind that design, at the scale named by the trace subsystem's issue
(``REPRO_TRACE_BENCH_SCALE``, default 0.1 -- about 144k requests):

* **replay vs regenerate** -- materialising a data set from its trace
  must beat re-running the traffic simulation outright;
* **warm generation cache** -- ``TrafficSpec(cache=True)`` end to end:
  the cold run generates and records, warm runs replay (from disk in a
  new process, from the in-process LRU within one), so the dataset
  materialisation step must collapse on a warm cache;
* **out-of-core iteration** -- streaming a trace block by block must
  keep peak memory far below materialising the whole data set;
* **O(1) info** -- the footer summary must cost milliseconds regardless
  of trace size.

All numbers land in ``BENCH_trace.json`` via the shared conftest hook.
"""

from __future__ import annotations

import os
import time
import tracemalloc

import pytest

from repro.bench.harness import BENCH_SEED, scenario_dataset
from repro.runspec import RunSpec, TrafficSpec, build_dataset, execute
from repro.trace import TraceReader, read_trace, trace_info, traffic_fingerprint, write_trace
from repro.trace.cache import CACHE_DIR_ENV, GenerationCache

#: Scale of the trace benchmarks (fraction of the paper's 1.47M requests).
TRACE_SCALE = float(os.environ.get("REPRO_TRACE_BENCH_SCALE", "0.1"))


def _best_of(callable_, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


@pytest.fixture(scope="module")
def trace_dataset():
    """The calibrated scenario at the trace benchmark scale (memoised)."""
    return scenario_dataset(TRACE_SCALE, BENCH_SEED)


@pytest.fixture(scope="module")
def recorded_trace(trace_dataset, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("trace-bench") / "bench.trace")
    write_trace(trace_dataset, path)
    return path


def test_perf_trace_replay_vs_regenerate(trace_dataset, recorded_trace, record_bench):
    """Replaying a recorded trace must clearly beat regenerating."""
    generate_seconds = _best_of(
        lambda: build_dataset(
            TrafficSpec(scenario="amadeus_march_2018", scale=TRACE_SCALE, seed=BENCH_SEED)
        ),
        rounds=2,
    )
    replay_seconds = _best_of(lambda: read_trace(recorded_trace))
    speedup = generate_seconds / replay_seconds
    size = os.path.getsize(recorded_trace)
    print(
        f"\n{len(trace_dataset):,} records: generate {generate_seconds:.2f}s, "
        f"trace replay {replay_seconds:.2f}s (x{speedup:.1f}), "
        f"{size / len(trace_dataset):.1f} bytes/record on disk"
    )
    record_bench(
        "trace",
        "replay_vs_regenerate",
        records=len(trace_dataset),
        trace_scale=TRACE_SCALE,
        generate_seconds=generate_seconds,
        replay_seconds=replay_seconds,
        speedup=speedup,
        trace_bytes=size,
    )
    # Measured ~4-5x on a development host; 2x leaves margin for slow CI.
    assert speedup >= 2.0, (
        "trace replay should be at least 2x faster than regeneration "
        f"(got {speedup:.2f}x: generate {generate_seconds:.2f}s vs replay {replay_seconds:.2f}s)"
    )


def test_perf_trace_warm_generation_cache(record_bench, tmp_path, monkeypatch):
    """End-to-end ``cache=True`` runs: cold records, warm replays."""
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache"))
    traffic = TrafficSpec(
        scenario="amadeus_march_2018", scale=TRACE_SCALE, seed=BENCH_SEED, cache=True
    )
    spec = RunSpec(mode="tables", traffic=traffic, label="bench-trace-cache")

    # Cold: cache miss, generate and record.
    cold_materialize = _best_of(lambda: build_dataset(traffic), rounds=1)

    # Warm from disk: a fresh cache object stands in for a new process,
    # with its in-process memo dropped before every round.
    fingerprint = traffic_fingerprint(
        scenario="amadeus_march_2018", scale=TRACE_SCALE, seed=BENCH_SEED
    )
    fresh = GenerationCache(str(tmp_path / "cache"))

    def load_from_disk() -> None:
        fresh.clear_memory()
        assert fresh.load(fingerprint) is not None

    disk_materialize = _best_of(load_from_disk)

    # Warm in process: the LRU hit a sweep's later specs see.
    warm_materialize = _best_of(lambda: build_dataset(traffic))

    warm_tables = _best_of(lambda: execute(spec), rounds=1)  # replay + detect
    disk_speedup = cold_materialize / disk_materialize
    warm_speedup = cold_materialize / max(warm_materialize, 1e-9)
    print(
        f"\nmaterialisation: cold (generate+record) {cold_materialize:.2f}s, "
        f"warm from disk {disk_materialize:.2f}s (x{disk_speedup:.1f}), "
        f"warm in process {warm_materialize * 1e3:.2f}ms (x{warm_speedup:,.0f}); "
        f"warm end-to-end tables run {warm_tables:.2f}s"
    )
    record_bench(
        "trace",
        "warm_generation_cache",
        cold_materialize_seconds=cold_materialize,
        disk_materialize_seconds=disk_materialize,
        memo_materialize_seconds=warm_materialize,
        disk_speedup=disk_speedup,
        memo_speedup=warm_speedup,
        warm_tables_run_seconds=warm_tables,
    )
    # The issue's headline number: a warm cache makes materialisation at
    # least 5x cheaper than the cold generate-and-record path.
    assert disk_speedup >= 5.0 or warm_speedup >= 5.0, (
        "warm cache should be >=5x faster than cold materialisation "
        f"(disk x{disk_speedup:.2f}, memo x{warm_speedup:.2f})"
    )
    assert warm_materialize < disk_materialize < cold_materialize


def test_perf_trace_out_of_core_iteration(trace_dataset, recorded_trace, record_bench):
    """Block-by-block replay keeps peak memory bounded by the block size."""
    reader = TraceReader(recorded_trace)

    tracemalloc.start()
    count = 0
    for _record in reader.iter_records():
        count += 1
    _, streaming_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    tracemalloc.start()
    dataset = read_trace(recorded_trace)
    _, materialised_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    started = time.perf_counter()
    for _record in reader.iter_records():
        pass
    throughput = count / (time.perf_counter() - started)

    assert count == len(trace_dataset) == len(dataset)
    ratio = materialised_peak / streaming_peak
    print(
        f"\nout-of-core: {count:,} records at {throughput:,.0f} records/sec; "
        f"peak memory streaming {streaming_peak / 1e6:.1f} MB vs "
        f"materialised {materialised_peak / 1e6:.1f} MB (x{ratio:.1f})"
    )
    record_bench(
        "trace",
        "out_of_core_iteration",
        records=count,
        records_per_second=throughput,
        streaming_peak_bytes=streaming_peak,
        materialised_peak_bytes=materialised_peak,
        peak_ratio=ratio,
    )
    # The streaming floor is the trace-global string tables (shared by
    # every block); record storage itself stays one block deep, so the
    # ratio keeps growing with trace size.  3x holds at the 0.1 scale.
    assert streaming_peak * 3 < materialised_peak, (
        "streaming a trace should need a small fraction of the memory of "
        "materialising it "
        f"({streaming_peak / 1e6:.1f} MB vs {materialised_peak / 1e6:.1f} MB)"
    )


def test_perf_trace_info_is_constant_time(recorded_trace, record_bench):
    """The footer summary never touches the blocks."""
    info_seconds = _best_of(lambda: trace_info(recorded_trace), rounds=5)
    info = trace_info(recorded_trace)
    print(
        f"\ntrace info on {info.records:,} records "
        f"({info.file_size / 1e6:.1f} MB): {info_seconds * 1e3:.2f}ms"
    )
    record_bench(
        "trace",
        "info_o1",
        records=info.records,
        file_size=info.file_size,
        info_seconds=info_seconds,
    )
    assert info_seconds < 0.05, f"trace info took {info_seconds:.3f}s; the footer should be O(1)"
