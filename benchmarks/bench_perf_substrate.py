"""Experiments ``perf_parser`` and ``perf_generator``: substrate throughput.

These benchmarks measure the two substrate components every experiment
depends on: combined-log-format parsing and synthetic traffic generation.
They are pure performance benchmarks (no paper table corresponds to them)
and exist so regressions in the substrate show up in the benchmark run.
"""

from __future__ import annotations

from repro.logs.parser import LogParser
from repro.logs.writer import LogWriter
from repro.traffic.generator import generate_dataset
from repro.traffic.scenarios import balanced_small


def test_perf_parser_throughput(benchmark, bench_dataset):
    """Parse ~10k combined-log-format lines."""
    lines = LogWriter().to_lines(bench_dataset.records[:10_000])
    parser = LogParser()

    records = benchmark(parser.parse, lines)

    assert len(records) == len(lines)
    print(f"\nparsed {len(records):,} log lines per round")


def test_perf_writer_throughput(benchmark, bench_dataset):
    """Format ~10k records back into combined log format."""
    records = bench_dataset.records[:10_000]
    writer = LogWriter()

    lines = benchmark(writer.to_lines, records)

    assert len(lines) == len(records)


def test_perf_generator_throughput(benchmark):
    """Generate a ~6k-request scenario end to end."""
    scenario = balanced_small(total_requests=6_000, seed=99)

    dataset = benchmark.pedantic(generate_dataset, args=(scenario,), rounds=3, iterations=1)

    assert len(dataset) > 3_000
    print(f"\ngenerated {len(dataset):,} labelled requests per round")


def test_perf_sessionization_throughput(benchmark, bench_dataset):
    """Sessionize the benchmark data set."""
    from repro.logs.sessionization import Sessionizer

    sessions = benchmark(Sessionizer().sessionize, bench_dataset.records)

    assert len(sessions) > 0
    print(f"\n{len(bench_dataset):,} requests -> {len(sessions):,} sessions per round")
