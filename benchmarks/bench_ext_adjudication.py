"""Experiment ``ext_adjudication``: 1-out-of-N / 2-out-of-N adjudication (paper Section V).

The paper proposes evaluating the tools under adjudication schemes
(1-out-of-2 raises an alarm when either tool does, 2-out-of-2 only when
both do).  This extension evaluates those schemes -- and, as a further
extension, a five-member ensemble including the stand-alone statistical
detectors -- against the ground truth.
"""

from __future__ import annotations

from repro.bench.comparison import ShapeCheck
from repro.core.evaluation import evaluate_ensemble, sensitivity_specificity_tradeoff
from repro.core.reporting import render_evaluation_rows
from repro.detectors.commercial import CommercialBotDefenceDetector
from repro.detectors.inhouse import InHouseHeuristicDetector
from repro.detectors.naive_bayes import NaiveBayesRobotDetector
from repro.detectors.pipeline import run_detectors
from repro.detectors.ratelimit import RateLimitDetector
from repro.detectors.reputation import IPReputationDetector


def test_ext_adjudication_two_tools(benchmark, bench_experiment):
    result = bench_experiment
    dataset = result.dataset
    matrix = result.matrix

    evaluations = benchmark(evaluate_ensemble, dataset, matrix)

    print()
    print(render_evaluation_rows([e.as_dict() for e in evaluations], title="Adjudication schemes over the two tools"))

    singles = {evaluation.name: evaluation for evaluation in result.tool_evaluations}
    union = evaluations[0]
    strict = evaluations[-1]

    check = ShapeCheck("Adjudication shape (two tools)")
    check.check_greater(
        "1-out-of-2 sensitivity >= best single tool",
        union.sensitivity + 1e-12,
        max(e.sensitivity for e in singles.values()),
        larger_label="1oo2",
        smaller_label="best single",
    )
    check.check_greater(
        "2-out-of-2 specificity >= best single tool",
        strict.specificity + 1e-12,
        max(e.specificity for e in singles.values()),
        larger_label="2oo2",
        smaller_label="best single",
    )
    check.check_greater(
        "2-out-of-2 trades sensitivity for specificity",
        union.sensitivity + 1e-12,
        strict.sensitivity,
        larger_label="1oo2 sensitivity",
        smaller_label="2oo2 sensitivity",
    )
    print()
    print(check.report())
    assert check.passed, check.report()


def test_ext_adjudication_five_detector_ensemble(benchmark, bench_dataset):
    """k-out-of-5 trade-off curve over a more diverse detector ensemble."""
    detectors = [
        CommercialBotDefenceDetector(),
        InHouseHeuristicDetector(),
        RateLimitDetector(threshold_rpm=45),
        IPReputationDetector(),
        NaiveBayesRobotDetector(),
    ]
    pipeline_result = run_detectors(bench_dataset, detectors)

    points = benchmark(sensitivity_specificity_tradeoff, bench_dataset, pipeline_result.matrix)

    print()
    print(render_evaluation_rows(points, title="k-out-of-5 sensitivity/specificity trade-off"))

    check = ShapeCheck("Adjudication shape (five detectors)")
    sensitivities = [point["sensitivity"] for point in points]
    specificities = [point["specificity"] for point in points]
    check.add(
        "sensitivity non-increasing in k",
        all(a >= b - 1e-12 for a, b in zip(sensitivities, sensitivities[1:])),
        f"sensitivities={['%.3f' % s for s in sensitivities]}",
    )
    check.add(
        "specificity non-decreasing in k",
        all(b >= a - 1e-12 for a, b in zip(specificities, specificities[1:])),
        f"specificities={['%.3f' % s for s in specificities]}",
    )
    check.check_greater(
        "1-out-of-5 reaches near-total coverage",
        sensitivities[0],
        0.95,
        larger_label="1oo5 sensitivity",
        smaller_label="0.95",
    )
    print()
    print(check.report())
    assert check.passed, check.report()
