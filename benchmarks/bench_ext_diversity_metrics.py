"""Experiment ``ext_diversity_metrics``: quantifying the tools' diversity.

The paper reports raw agreement counts; the diversity-for-security
literature it builds on quantifies the same information with pairwise
statistics.  This extension computes Cohen's kappa, Yule's Q, the
disagreement measure, the joint-outcome entropy and (since the synthetic
data is labelled) the double-fault measure, both for the reproduced
experiment and for the paper's published Table 2 counts.
"""

from __future__ import annotations

from repro.bench.comparison import ShapeCheck
from repro.bench.expected import PAPER_TABLE2
from repro.core.diversity import DiversityBreakdown
from repro.core.metrics import cohens_kappa, disagreement_measure, pairwise_diversity, yules_q
from repro.core.reporting import render_evaluation_rows


def _paper_breakdown() -> DiversityBreakdown:
    return DiversityBreakdown(
        first_detector="commercial",
        second_detector="inhouse",
        both=PAPER_TABLE2["both"],
        neither=PAPER_TABLE2["neither"],
        first_only=PAPER_TABLE2["commercial_only"],
        second_only=PAPER_TABLE2["inhouse_only"],
    )


def test_ext_diversity_metrics(benchmark, bench_experiment):
    result = bench_experiment
    dataset = result.dataset
    matrix = result.matrix

    metrics = benchmark(pairwise_diversity, matrix, "commercial", "inhouse", dataset=dataset)

    paper = _paper_breakdown()
    rows = [
        {"source": "reproduced", **metrics.as_dict()},
        {
            "source": "paper (Table 2 counts)",
            "kappa": cohens_kappa(paper),
            "q_statistic": yules_q(paper),
            "disagreement": disagreement_measure(paper),
        },
    ]
    print()
    print(render_evaluation_rows(rows, title="Pairwise diversity metrics"))

    check = ShapeCheck("Diversity metric shape")
    check.check_fraction("disagreement", metrics.disagreement, disagreement_measure(paper), tolerance_factor=2.5)
    check.add("kappa strongly positive", metrics.kappa > 0.5, f"kappa={metrics.kappa:.4f}")
    check.add("Yule's Q strongly positive", metrics.q_statistic > 0.8, f"Q={metrics.q_statistic:.4f}")
    check.add(
        "double-fault small (the tools rarely miss together)",
        metrics.double_fault is not None and metrics.double_fault < 0.1,
        f"double_fault={metrics.double_fault}",
    )
    check.check_greater(
        "agreement rate comparable to the paper's",
        metrics.breakdown.agreement_rate() + 0.05,
        paper.agreement_rate(),
        larger_label="reproduced + 0.05",
        smaller_label="paper",
    )
    print()
    print(check.report())
    assert check.passed, check.report()
