"""Experiment ``table2``: diversity in the alerting behaviour (paper Table 2).

Regenerates the both/neither/only-one breakdown of the two tools' alerts,
prints it next to the paper's counts and checks the shape: agreement on
the bulk of the traffic, a double-digit "neither" share, and a
commercial-only mass several times larger than the in-house-only mass.
"""

from __future__ import annotations

from repro.bench.comparison import ShapeCheck
from repro.bench.expected import PAPER_TABLE2, paper_fractions_table2
from repro.core.diversity import diversity_breakdown
from repro.core.reporting import render_table2


def test_table2_diversity_breakdown(benchmark, bench_experiment):
    result = bench_experiment
    matrix = result.matrix

    breakdown = benchmark(diversity_breakdown, matrix, "commercial", "inhouse")

    print()
    print(render_table2(breakdown, title="Table 2 (reproduced)"))
    print()
    print("Table 2 (paper): " + ", ".join(f"{key}={value:,}" for key, value in PAPER_TABLE2.items()))

    total = breakdown.total
    measured = {
        "both": breakdown.both / total,
        "neither": breakdown.neither / total,
        "commercial_only": breakdown.first_only / total,
        "inhouse_only": breakdown.second_only / total,
    }
    expected = paper_fractions_table2()

    check = ShapeCheck("Table 2 shape: diversity breakdown fractions")
    for key, expected_value in expected.items():
        check.check_fraction(key, measured[key], expected_value, tolerance_factor=2.0)
    check.check_greater(
        "commercial-only exceeds inhouse-only (Distil-only >> Arcane-only)",
        breakdown.first_only,
        breakdown.second_only,
        larger_label="commercial_only",
        smaller_label="inhouse_only",
    )
    check.check_greater(
        "both >> disagreement",
        breakdown.both,
        breakdown.disagreement,
        larger_label="both",
        smaller_label="disagreement",
    )
    print()
    print(check.report())
    assert check.passed, check.report()
