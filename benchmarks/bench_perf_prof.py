"""Experiment ``perf_prof``: overhead of the sampling profiler.

:mod:`repro.prof` claims low overhead: the stack sampler wakes on its
own thread at 97 Hz (the profiled workload pays nothing between ticks)
and the default memory capture reads the resident set only at span
boundaries and sampler ticks.  This module measures the claim at the
profiler benchmark scale (``REPRO_PROF_BENCH_SCALE``, default 0.1 --
about 144k requests, the ISSUE's acceptance bar):

* **tables overhead** -- the full paper experiment on the columnar
  engine under the default profile (sampling + memory capture) against
  the same instrumented run unprofiled; the acceptance ceiling is 10%;
* **precise-memory overhead** -- the same run with
  ``precise_memory=True`` (continuous tracemalloc).  Tracemalloc taxes
  every allocation, which costs several *hundred* percent on this
  allocation-heavy workload -- exactly why precision is opt-in rather
  than the default.  Recorded for the longitudinal artifact, not
  ceilinged;
* **no-op dispatch** -- the cost of the disabled path, i.e. what every
  unprofiled ``execute`` call pays for the ``profile=`` parameter.

Numbers land in ``BENCH_perf_prof.json`` via the shared conftest hook,
with the captured profile's own aggregates embedded alongside the
timings so a regression in sampler throughput is visible in the
artifact itself.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.bench.harness import BENCH_SEED, scenario_dataset
from repro.core.experiment import PaperExperiment
from repro.obs.metrics import MetricsRegistry
from repro.prof import Profile, ProfileOptions, Profiler

#: Scale of the profiler benchmarks (fraction of the paper's 1.47M requests).
PROF_SCALE = float(os.environ.get("REPRO_PROF_BENCH_SCALE", "0.1"))

#: Acceptance ceiling on default-profile overhead for the tables run.
OVERHEAD_CEILING = 0.10


def _best_of(callable_, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


@pytest.fixture(scope="module")
def prof_dataset():
    """The calibrated scenario at the profiler benchmark scale (memoised)."""
    return scenario_dataset(PROF_SCALE, BENCH_SEED)


def _timed_runs(dataset, options: ProfileOptions, rounds: int) -> tuple[float, float, Profile]:
    """Best-of times for the plain and profiled tables run."""
    experiment = PaperExperiment()
    profiles: list[Profile] = []

    def plain_run():
        experiment.run_on(dataset, engine="columnar", registry=MetricsRegistry())

    def profiled_run():
        registry = MetricsRegistry()
        profiler = Profiler(registry, options)
        profiler.start()
        try:
            experiment.run_on(dataset, engine="columnar", registry=registry)
        finally:
            profiles.append(profiler.stop())

    # One warm-up apiece so caches and allocators settle before timing.
    plain_run()
    profiled_run()
    # Interleave the timed rounds: machine-load drift (CI neighbours, GC,
    # page cache) then hits both variants alike instead of biasing
    # whichever ran last, which matters with a ceiling this tight.
    plain_seconds = profiled_seconds = float("inf")
    for _ in range(rounds):
        plain_seconds = min(plain_seconds, _best_of(plain_run, rounds=1))
        profiled_seconds = min(profiled_seconds, _best_of(profiled_run, rounds=1))
    return plain_seconds, profiled_seconds, profiles[-1]


def test_perf_tables_profiling_overhead(prof_dataset, record_bench):
    """The default profile must cost < 10% on the scale-0.1 tables run."""
    plain_seconds, profiled_seconds, profile = _timed_runs(
        prof_dataset, ProfileOptions(), rounds=4
    )
    overhead = profiled_seconds / plain_seconds - 1.0
    print(
        f"\n{len(prof_dataset):,} records: plain {plain_seconds:.3f}s, "
        f"profiled {profiled_seconds:.3f}s (overhead {overhead * 100:+.2f}%, "
        f"{profile.sample_count()} samples)"
    )
    record_bench(
        "perf_prof",
        "tables_overhead",
        scale=PROF_SCALE,
        records=len(prof_dataset),
        plain_seconds=plain_seconds,
        profiled_seconds=profiled_seconds,
        overhead_fraction=overhead,
        sample_count=profile.sample_count(),
        span_paths=len(profile.spans),
    )
    # The capture must be real, not an empty profiler that ran for free.
    assert profile.sample_count() > 0
    roots = {stat.path.split("/")[0] for stat in profile.spans}
    assert roots & {"sessionize", "features", "detectors"}
    assert any(stat.peak_bytes > 0 for stat in profile.spans)
    assert overhead < OVERHEAD_CEILING, (
        f"profiling overhead {overhead * 100:.1f}% exceeds the "
        f"{OVERHEAD_CEILING * 100:.0f}% ceiling on the tables run"
    )


def test_perf_precise_memory_overhead(prof_dataset, record_bench):
    """Record (not ceiling) what continuous tracemalloc actually costs."""
    plain_seconds, profiled_seconds, profile = _timed_runs(
        prof_dataset, ProfileOptions(precise_memory=True), rounds=1
    )
    overhead = profiled_seconds / plain_seconds - 1.0
    print(
        f"\nprecise memory: plain {plain_seconds:.3f}s, "
        f"profiled {profiled_seconds:.3f}s (overhead {overhead * 100:+.1f}%)"
    )
    record_bench(
        "perf_prof",
        "precise_memory_overhead",
        scale=PROF_SCALE,
        records=len(prof_dataset),
        plain_seconds=plain_seconds,
        profiled_seconds=profiled_seconds,
        overhead_fraction=overhead,
    )
    # Tracemalloc mode must still attribute exact traced bytes per span.
    assert any(stat.peak_bytes > 0 for stat in profile.spans)


def test_perf_disabled_profile_dispatch(record_bench):
    """The no-op path (``profile=None``) must add no measurable cost."""
    calls = 200_000

    def burn():
        for _ in range(calls):
            ProfileOptions.coerce(None)

    seconds_per_call = _best_of(burn, rounds=3) / calls
    print(f"\ndisabled profile coerce: {seconds_per_call * 1e9:.0f} ns/call")
    record_bench(
        "perf_prof",
        "noop_dispatch",
        calls=calls,
        seconds_per_call=seconds_per_call,
    )
    # One None check per execute() call; sub-microsecond even on a
    # loaded CI worker means unprofiled runs pay nothing observable.
    assert seconds_per_call < 2e-6
