"""Experiment ``perf_runstore``: recording overhead of the run store.

:mod:`repro.runstore` claims recording is effectively free next to the
workload it records: one ``to_dict()``, one content hash and a couple of
SQLite inserts against a multi-second experiment.  This module measures
that claim at the runstore benchmark scale (``REPRO_RUNSTORE_BENCH_SCALE``,
default 0.1 -- about 144k requests, the ISSUE's acceptance bar) with a
< 2% overhead ceiling on the tables run.

The asserted number is the *marginal* cost of the store path -- the
trace fingerprint plus ``RunStore.record`` on the actual executed
result, which is exactly the extra work ``execute(spec, store=...)``
performs -- divided by the plain run's wall clock.  Timing two full
end-to-end runs and subtracting cannot resolve a 2% bound here: on a
shared CI worker the scale-0.1 run fluctuates by 10-30% between rounds,
two orders of magnitude above the real recording cost (interleaved
measurement shows +-0.4-1.5s of noise against ~3ms of recording).  The
end-to-end pair is still measured and recorded alongside, unasserted,
so the artifact keeps the raw evidence.

All numbers land in ``BENCH_perf_runstore.json`` via the shared conftest
hook -- and, when ``REPRO_RUN_STORE`` is set, in the run store itself as
a ``bench``-mode series.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.runspec import RunSpec, TrafficSpec, execute
from repro.runspec.execute import _spec_trace_fingerprint
from repro.runstore import RunStore

#: Scale of the runstore benchmarks (fraction of the paper's 1.47M requests).
RUNSTORE_SCALE = float(os.environ.get("REPRO_RUNSTORE_BENCH_SCALE", "0.1"))

#: Acceptance ceiling on recording overhead for the tables run.
OVERHEAD_CEILING = 0.02

BENCH_SPEC_SEED = 2018


def _best_of(callable_, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


def _bench_spec() -> RunSpec:
    return RunSpec(
        mode="tables",
        traffic=TrafficSpec(scale=RUNSTORE_SCALE, seed=BENCH_SPEC_SEED),
    )


def test_perf_record_overhead(tmp_path, record_bench, monkeypatch):
    """Recording to a store must cost < 2% on the scale-0.1 tables run."""
    # The plain runs must really be plain: a REPRO_RUN_STORE default
    # (set e.g. by CI's benchmark job) would make them record too.
    monkeypatch.delenv("REPRO_RUN_STORE", raising=False)
    spec = _bench_spec()
    store = RunStore(tmp_path / "bench_runs.db")

    def plain_run():
        execute(spec)

    def recorded_run():
        execute(spec, store=store)

    # One warm-up apiece so caches and allocators settle before timing.
    plain_run()
    recorded_run()
    plain_seconds = _best_of(plain_run, rounds=3)
    recorded_seconds = _best_of(recorded_run, rounds=3)

    # The marginal store path, on a real executed result: exactly what
    # execute(spec, store=...) adds over execute(spec).
    result = execute(spec)

    def store_path():
        fingerprint = _spec_trace_fingerprint(spec)
        store.record(result, wall_seconds=plain_seconds, trace_fingerprint=fingerprint)

    store_path()  # warm-up
    record_seconds = _best_of(store_path, rounds=5)
    store.close()

    overhead = record_seconds / plain_seconds
    end_to_end = recorded_seconds / plain_seconds - 1.0
    print(
        f"\nscale {RUNSTORE_SCALE}: plain {plain_seconds:.3f}s, "
        f"record step {record_seconds * 1e3:.1f}ms "
        f"(overhead {overhead * 100:+.3f}%; "
        f"end-to-end delta {end_to_end * 100:+.2f}%, noise-dominated)"
    )
    record_bench(
        "perf_runstore",
        "record_overhead",
        scale=RUNSTORE_SCALE,
        plain_seconds=plain_seconds,
        recorded_seconds=recorded_seconds,
        record_step_seconds=record_seconds,
        overhead_fraction=overhead,
        end_to_end_fraction=end_to_end,
    )
    assert overhead < OVERHEAD_CEILING, (
        f"run-store recording overhead {overhead * 100:.2f}% exceeds the "
        f"{OVERHEAD_CEILING * 100:.0f}% ceiling on the tables run"
    )


@pytest.fixture(scope="module")
def small_result():
    """One executed small run, reused for the isolated store benchmark."""
    spec = RunSpec(
        mode="tables",
        traffic=TrafficSpec(
            scenario="balanced_small", seed=3, params={"total_requests": 3000}
        ),
    )
    with pytest.MonkeyPatch.context() as patch:
        patch.delenv("REPRO_RUN_STORE", raising=False)
        yield execute(spec)


def test_perf_store_roundtrip(tmp_path, small_result, record_bench):
    """The isolated record+export round trip stays in the milliseconds."""
    rounds = 50
    with RunStore(tmp_path / "roundtrip.db") as store:
        started = time.perf_counter()
        for _ in range(rounds):
            recorded = store.record(small_result)
            store.export(recorded.run_id)
        seconds_per_roundtrip = (time.perf_counter() - started) / rounds
    print(f"\nrecord+export round trip: {seconds_per_roundtrip * 1e3:.2f} ms")
    record_bench(
        "perf_runstore",
        "store_roundtrip",
        rounds=rounds,
        seconds_per_roundtrip=seconds_per_roundtrip,
    )
    # Generous ceiling: a small-run round trip should never take a
    # meaningful fraction of even the smallest workload.
    assert seconds_per_roundtrip < 0.25
