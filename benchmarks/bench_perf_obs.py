"""Experiment ``perf_obs``: instrumentation overhead of the metrics layer.

:mod:`repro.obs` claims near-zero overhead: every hot path gates on
``registry.enabled``, so an uninstrumented run pays a handful of
attribute checks and an instrumented run pays dict lookups and integer
adds on batch boundaries only.  This module measures both claims at the
obs benchmark scale (``REPRO_OBS_BENCH_SCALE``, default 0.1 -- about
144k requests, the ISSUE's acceptance bar):

* **tables overhead** -- the full paper experiment
  (``PaperExperiment.run_on`` on the columnar engine) with a live
  ``MetricsRegistry`` against the same run with none; the acceptance
  ceiling is 5% overhead;
* **null-registry dispatch** -- the per-call cost of the disabled
  instrument path, which is what uninstrumented library code pays.

All numbers land in ``BENCH_perf_obs.json`` via the shared conftest
hook; the instrumented run's telemetry snapshot is embedded alongside
the timings (``record_bench(..., metrics=...)``) so downstream tooling
can read throughput counters straight out of the benchmark artifact.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.bench.harness import BENCH_SEED, scenario_dataset
from repro.core.experiment import PaperExperiment
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry

#: Scale of the obs benchmarks (fraction of the paper's 1.47M requests).
OBS_SCALE = float(os.environ.get("REPRO_OBS_BENCH_SCALE", "0.1"))

#: Acceptance ceiling on instrumentation overhead for the tables run.
OVERHEAD_CEILING = 0.05


def _best_of(callable_, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


@pytest.fixture(scope="module")
def obs_dataset():
    """The calibrated scenario at the obs benchmark scale (memoised)."""
    return scenario_dataset(OBS_SCALE, BENCH_SEED)


def test_perf_tables_instrumentation_overhead(obs_dataset, record_bench):
    """A live registry must cost < 5% on the scale-0.1 tables run."""
    experiment = PaperExperiment()
    registries: list[MetricsRegistry] = []

    def plain_run():
        experiment.run_on(obs_dataset, engine="columnar")

    def instrumented_run():
        registry = MetricsRegistry()
        experiment.run_on(obs_dataset, engine="columnar", registry=registry)
        registries.append(registry)

    # One warm-up apiece so caches and allocators settle before timing.
    plain_run()
    instrumented_run()
    plain_seconds = _best_of(plain_run, rounds=3)
    instrumented_seconds = _best_of(instrumented_run, rounds=3)
    overhead = instrumented_seconds / plain_seconds - 1.0
    print(
        f"\n{len(obs_dataset):,} records: plain {plain_seconds:.3f}s, "
        f"instrumented {instrumented_seconds:.3f}s "
        f"(overhead {overhead * 100:+.2f}%)"
    )
    record_bench(
        "perf_obs",
        "tables_overhead",
        scale=OBS_SCALE,
        records=len(obs_dataset),
        plain_seconds=plain_seconds,
        instrumented_seconds=instrumented_seconds,
        overhead_fraction=overhead,
        metrics=registries[-1],
    )
    assert overhead < OVERHEAD_CEILING, (
        f"instrumentation overhead {overhead * 100:.1f}% exceeds the "
        f"{OVERHEAD_CEILING * 100:.0f}% ceiling on the tables run"
    )


def test_perf_null_registry_dispatch(record_bench):
    """The disabled path must stay in the tens-of-nanoseconds regime."""
    counter = NULL_REGISTRY.counter("repro_bench_noop_total")
    calls = 200_000

    def burn():
        for _ in range(calls):
            counter.inc()

    seconds_per_call = _best_of(burn, rounds=3) / calls
    print(f"\nnull-registry inc: {seconds_per_call * 1e9:.0f} ns/call")
    record_bench(
        "perf_obs",
        "null_dispatch",
        calls=calls,
        seconds_per_call=seconds_per_call,
    )
    # Generous ceiling: a no-op method call should never approach the
    # microsecond range, even on a loaded CI worker.
    assert seconds_per_call < 2e-5
