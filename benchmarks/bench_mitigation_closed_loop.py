"""Experiment ``mitigation_closed_loop``: enforcement against adaptation.

Runs the closed-loop defense simulation twice -- once against the
scripted aggressive botnet, once against its feedback-driven adaptive
variant -- and checks the shape of the Table-5-style outcomes:

* with enforcement on, the scripted campaign is effectively neutralised
  (almost none of its budget is served, every node draws a block);
* the adaptive variant measurably evades longer: it lands a much larger
  share of its budget and takes longer to draw its first block, at the
  cost of burned identities;
* the good-bot allowlist keeps collateral damage on benign traffic low.

The benchmarked quantity is the closed-loop simulation itself (traffic
generation, streaming detection, policy enforcement and feedback in one
loop), so regressions in any layer of the loop surface here.
"""

from __future__ import annotations

import pytest

from repro.bench.comparison import ShapeCheck
from repro.mitigation import build_report, render_comparison, render_mitigation_report, run_defense

TOTAL_REQUESTS = 4_000
SEED = 314


@pytest.fixture(scope="module")
def scripted_report():
    return build_report(
        run_defense(total_requests=TOTAL_REQUESTS, adaptive=False, seed=SEED),
        policy_name="standard",
    )


def test_mitigation_closed_loop(benchmark, scripted_report):
    adaptive_result = benchmark.pedantic(
        run_defense,
        kwargs={"total_requests": TOTAL_REQUESTS, "adaptive": True, "seed": SEED},
        rounds=2,
        iterations=1,
    )
    adaptive_report = build_report(adaptive_result, policy_name="standard")

    print()
    print(render_mitigation_report(scripted_report, title="Table 5 (scripted campaign)"))
    print()
    print(render_mitigation_report(adaptive_report, title="Table 5 (adaptive campaign)"))
    print()
    print(render_comparison(scripted_report, adaptive_report))

    check = ShapeCheck("Closed-loop shape: enforcement blocks, adaptation evades")
    check.check_greater(
        "scripted campaign is neutralised (yield below 10%)",
        0.10,
        scripted_report.attacker_yield,
        larger_label="bound",
        smaller_label="scripted yield",
    )
    check.check_greater(
        "every scripted node draws a block",
        scripted_report.attacker_actors_blocked + 0.5,
        scripted_report.attacker_actors,
        larger_label="blocked+",
        smaller_label="nodes",
    )
    check.check_greater(
        "adaptive campaign evades longer (served share)",
        adaptive_report.attacker_yield,
        2 * scripted_report.attacker_yield,
        larger_label="adaptive yield",
        smaller_label="2x scripted yield",
    )
    # A campaign that is never blocked has evaded for the whole window;
    # treat "never" as infinitely delayed rather than crashing on None.
    def _first_block_seconds(report):
        value = report.median_time_to_first_block
        return float("inf") if value is None else value

    check.check_greater(
        "adaptive campaign delays its first block",
        _first_block_seconds(adaptive_report),
        _first_block_seconds(scripted_report),
        larger_label="adaptive seconds",
        smaller_label="scripted seconds",
    )
    check.check_greater(
        "adaptation costs identities",
        adaptive_report.attacker_identity_rotations,
        0,
        larger_label="rotations",
        smaller_label="zero",
    )
    check.check_greater(
        "collateral damage stays low (benign false-block rate below 2%)",
        0.02,
        max(
            scripted_report.false_block_rate,
            adaptive_report.false_block_rate,
        ),
        larger_label="bound",
        smaller_label="false-block rate",
    )
    print()
    print(check.report())
    assert check.passed, check.report()
