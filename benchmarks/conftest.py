"""Shared fixtures for the benchmark harness.

Every paper-table benchmark consumes the same memoised experiment run
(see :mod:`repro.bench.harness`), mirroring how the paper derives all four
tables from a single analysed week of traffic.  The benchmarked portion
of each module is the analysis step that produces the table; the
generation/detection cost is measured separately by the ``perf_*``
benchmarks.
"""

from __future__ import annotations

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.bench.harness import BENCH_SCALE, BENCH_SEED, experiment_result, scenario_dataset  # noqa: E402


@pytest.fixture(scope="session")
def bench_dataset():
    """The calibrated March-2018 data set at the benchmark scale."""
    return scenario_dataset(BENCH_SCALE, BENCH_SEED)


@pytest.fixture(scope="session")
def bench_experiment():
    """Both stand-in tools run over the benchmark data set."""
    return experiment_result(BENCH_SCALE, BENCH_SEED)
