"""Shared fixtures for the benchmark harness.

Every paper-table benchmark consumes the same memoised experiment run
(see :mod:`repro.bench.harness`), mirroring how the paper derives all four
tables from a single analysed week of traffic.  The benchmarked portion
of each module is the analysis step that produces the table; the
generation/detection cost is measured separately by the ``perf_*``
benchmarks.

Machine-readable results: any benchmark can take the ``record_bench``
fixture and call ``record_bench(group, name, **values)``; at session end
each group is written to ``BENCH_<group>.json`` in the working
directory, so CI jobs and tooling consume benchmark numbers without
scraping stdout.
"""

from __future__ import annotations

import json
import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.bench.harness import BENCH_SCALE, BENCH_SEED, experiment_result, scenario_dataset  # noqa: E402


@pytest.fixture(scope="session")
def bench_dataset():
    """The calibrated March-2018 data set at the benchmark scale."""
    return scenario_dataset(BENCH_SCALE, BENCH_SEED)


@pytest.fixture(scope="session")
def bench_experiment():
    """Both stand-in tools run over the benchmark data set."""
    return experiment_result(BENCH_SCALE, BENCH_SEED)


# ----------------------------------------------------------------------
# Machine-readable benchmark output (BENCH_<group>.json)
# ----------------------------------------------------------------------
_BENCH_RESULTS: dict[str, dict[str, dict]] = {}


@pytest.fixture(scope="session")
def record_bench():
    """Record one named measurement into a benchmark group.

    Usage: ``record_bench("trace", "replay_vs_regenerate", seconds=...,
    speedup=...)``.  Values must be JSON-serializable; the session hook
    below writes each group to ``BENCH_<group>.json``.  Pass
    ``metrics=<MetricsRegistry or snapshot dict>`` to embed the run's
    telemetry snapshot alongside the numbers.
    """

    def record(group: str, name: str, *, metrics=None, **values) -> None:
        if metrics is not None:
            # Accept either a MetricsRegistry or an already-exported
            # snapshot dict; the JSON file embeds the snapshot so tooling
            # (scripts/bench_summary.py) can lift throughput counters.
            to_dict = getattr(metrics, "to_dict", None)
            values["metrics"] = to_dict() if callable(to_dict) else metrics
        _BENCH_RESULTS.setdefault(group, {})[name] = values

    return record


def _store_bench_runs(store_path: str) -> None:
    """Land each benchmark group in a run store as a ``bench``-mode run.

    The pseudo-spec is the group's identity (group/scale/seed), so
    repeated benchmark sessions at the same scale append to one series
    and ``repro runs diff`` / ``scripts/bench_summary.py --store`` can
    track performance longitudinally.
    """
    from repro.runspec.result import RunResult
    from repro.runstore import RunStore

    with RunStore(store_path) as store:
        for group, results in _BENCH_RESULTS.items():
            metrics: dict[str, float] = {}
            telemetry = None
            for name, values in results.items():
                for key, value in values.items():
                    if key == "metrics":
                        telemetry = value
                    elif isinstance(value, (int, float)) and not isinstance(value, bool):
                        metrics[f"{name}.{key}"] = value
            result = RunResult(
                mode="bench",
                source=group,
                total_requests=0,
                metrics=metrics,
                telemetry=telemetry,
                spec={"bench_group": group, "scale": BENCH_SCALE, "seed": BENCH_SEED},
            )
            store.record(result)


def pytest_sessionfinish(session, exitstatus):
    for group, results in _BENCH_RESULTS.items():
        payload = {
            "group": group,
            "scale": BENCH_SCALE,
            "seed": BENCH_SEED,
            "results": results,
        }
        with open(f"BENCH_{group}.json", "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    store_path = os.environ.get("REPRO_RUN_STORE")
    if store_path and _BENCH_RESULTS:
        _store_bench_runs(store_path)
