"""Experiment ``ext_labelled``: labelled evaluation of each tool (paper Section V).

The paper could not report sensitivity/specificity because its data was
not yet labelled; the synthetic data set carries ground truth, so this
extension experiment reports the per-tool confusion-matrix rates and the
per-actor-class detection rates that explain *why* the tools differ.
"""

from __future__ import annotations

from repro.bench.comparison import ShapeCheck
from repro.core.evaluation import evaluate_matrix, per_actor_class_detection
from repro.core.reporting import render_evaluation_rows


def test_ext_labelled_evaluation(benchmark, bench_experiment):
    result = bench_experiment
    dataset = result.dataset
    matrix = result.matrix

    evaluations = benchmark(evaluate_matrix, dataset, matrix)

    print()
    print(render_evaluation_rows([e.as_dict() for e in evaluations], title="Per-tool labelled evaluation (extension)"))

    commercial_rates = per_actor_class_detection(dataset, matrix.alerted_by("commercial"))
    inhouse_rates = per_actor_class_detection(dataset, matrix.alerted_by("inhouse"))
    rows = [
        {"actor_class": actor, "commercial": commercial_rates[actor], "inhouse": inhouse_rates[actor]}
        for actor in sorted(commercial_rates)
    ]
    print()
    print(render_evaluation_rows(rows, title="Detection rate per actor class"))

    by_name = {evaluation.name: evaluation for evaluation in evaluations}
    check = ShapeCheck("Labelled evaluation shape")
    for name, evaluation in by_name.items():
        check.add(f"{name}: sensitivity above 0.9", evaluation.sensitivity > 0.9, f"sensitivity={evaluation.sensitivity:.4f}")
        check.add(f"{name}: specificity above 0.8", evaluation.specificity > 0.8, f"specificity={evaluation.specificity:.4f}")
    check.check_greater(
        "commercial catches stealth scraping better than inhouse",
        commercial_rates["stealth_scraper"],
        inhouse_rates["stealth_scraper"],
        larger_label="commercial",
        smaller_label="inhouse",
    )
    check.check_greater(
        "inhouse catches probing scraping better than commercial",
        inhouse_rates["probing_scraper"],
        commercial_rates["probing_scraper"],
        larger_label="inhouse",
        smaller_label="commercial",
    )
    check.check_greater(
        "both tools catch nearly all aggressive scraping",
        min(commercial_rates["aggressive_scraper"], inhouse_rates["aggressive_scraper"]),
        0.9,
        larger_label="min aggressive detection",
        smaller_label="0.9",
    )
    print()
    print(check.report())
    assert check.passed, check.report()
