"""Frame-native pipeline equivalence: dict path == frame arrays == shards.

The frame-native pipeline (:meth:`DetectionPipeline.run_frame` and
:meth:`PaperExperiment.run_on_frame`) must be a pure representation
change: for every preset scenario the dict-path oracle, the
single-process frame run and the ``workers=2`` sharded run must carry
byte-identical alerts (ids, scores *and* reasons), identical matrices
and identical Tables 1-4 / labelled evaluations.  A trace-backed
``tables`` run additionally proves the frame path never materialises a
:class:`Dataset` at all.
"""

from __future__ import annotations

import importlib

import pytest

from repro.columns import RecordFrame
from repro.core.experiment import PaperExperiment
from repro.detectors.commercial import CommercialBotDefenceDetector
from repro.detectors.inhouse import InHouseHeuristicDetector
from repro.detectors.pipeline import DetectionPipeline
from repro.exceptions import DetectorError, SpecError
from repro.logs.sessionization import Sessionizer
from repro.runspec import RunSpec, TrafficSpec, execute
from repro.runspec.spec import ExecutionSpec
from repro.trace import write_trace
from repro.traffic.generator import generate_dataset
from repro.traffic.scenarios import get_scenario

#: The same presets the engine-equivalence suite pins (seeded, scaled
#: down to keep the suite fast).
PRESETS = [
    ("amadeus_march_2018", {"scale": 0.02, "seed": 2018}),
    ("balanced_small", {"total_requests": 5_000, "seed": 7}),
    ("stealth_heavy", {"total_requests": 5_000, "seed": 23}),
]


@pytest.fixture(scope="module", params=PRESETS, ids=[name for name, _ in PRESETS])
def preset(request):
    name, params = request.param
    dataset = generate_dataset(get_scenario(name, **params))
    return name, params, dataset, RecordFrame.from_dataset(dataset)


def _detectors():
    return [CommercialBotDefenceDetector(), InHouseHeuristicDetector()]


def _full_alerts(alert_set):
    return {alert.request_id: (alert.score, alert.reasons) for alert in alert_set.alerts()}


def _comparable(result):
    """A RunResult's reproducible face (timings/telemetry/spec vary)."""
    payload = result.to_dict()
    payload.pop("timings", None)
    payload.pop("telemetry", None)
    payload.pop("spec", None)
    return payload


class TestFramePipelineEquivalence:
    def test_alert_sets_byte_identical_across_paths(self, preset):
        _name, _params, dataset, frame = preset
        oracle = DetectionPipeline(_detectors()).run(dataset, engine="records")
        single = DetectionPipeline(_detectors()).run_frame(frame)
        sharded = DetectionPipeline(_detectors()).run_frame(frame, workers=2)
        for frame_result in (single, sharded):
            assert frame_result.matrix.request_ids == oracle.matrix.request_ids
            assert (frame_result.matrix.values == oracle.matrix.values).all()
            for by_dict, by_frame in zip(oracle.alert_sets, frame_result.alert_sets()):
                assert by_dict.detector_name == by_frame.detector_name
                assert _full_alerts(by_dict) == _full_alerts(by_frame)

    def test_experiment_tables_identical(self, preset):
        _name, _params, dataset, frame = preset
        oracle = PaperExperiment().run_on(dataset, engine="records")
        for workers in (1, 2):
            by_frame = PaperExperiment().run_on_frame(frame, workers=workers)
            assert by_frame.render_all() == oracle.render_all()
            assert dict(by_frame.alert_counts) == dict(oracle.alert_counts)
            assert by_frame.diversity_metrics.as_dict() == oracle.diversity_metrics.as_dict()
            assert [e.as_dict() for e in by_frame.tool_evaluations] == [
                e.as_dict() for e in oracle.tool_evaluations
            ]
            assert [e.as_dict() for e in by_frame.adjudication_evaluations] == [
                e.as_dict() for e in oracle.adjudication_evaluations
            ]
            # Frame-native runs never materialise the record objects.
            assert by_frame.dataset is None
            assert by_frame.frame is frame

    @pytest.mark.parametrize("mode", ["tables", "evaluate"])
    def test_execute_identical_across_engines_and_workers(self, mode, preset):
        name, params, dataset, _frame = preset
        traffic = TrafficSpec(
            scenario=name,
            scale=params.get("scale"),
            seed=params.get("seed"),
            params={k: v for k, v in params.items() if k not in ("scale", "seed")},
        )
        executions = {
            "records": ExecutionSpec(engine="records"),
            "frame": ExecutionSpec(engine="columnar"),
            "sharded": ExecutionSpec(engine="columnar", workers=2),
        }
        results = {
            key: execute(RunSpec(mode=mode, traffic=traffic, execution=execution), dataset=dataset)
            for key, execution in executions.items()
        }
        oracle = _comparable(results["records"])
        assert _comparable(results["frame"]) == oracle
        assert _comparable(results["sharded"]) == oracle


class TestBridgedDetectors:
    def test_analyze_columns_only_detectors_bridge_identically(self):
        """Detectors without ``alert_columns`` ride the dict->array bridge."""
        from repro.detectors.naive_bayes import NaiveBayesRobotDetector
        from repro.detectors.ratelimit import RateLimitDetector

        dataset = generate_dataset(get_scenario("balanced_small", total_requests=3_000, seed=11))
        frame = RecordFrame.from_dataset(dataset)
        detectors = lambda: [NaiveBayesRobotDetector(), RateLimitDetector()]  # noqa: E731
        oracle = DetectionPipeline(detectors()).run(dataset, engine="columnar")
        for workers in (1, 2):
            by_frame = DetectionPipeline(detectors()).run_frame(frame, workers=workers)
            for by_dict, bridged in zip(oracle.alert_sets, by_frame.alert_sets()):
                assert by_dict.detector_name == bridged.detector_name
                assert _full_alerts(by_dict) == _full_alerts(bridged)


class TestTraceSourcedTables:
    @pytest.fixture(scope="class")
    def recorded(self, tmp_path_factory):
        dataset = generate_dataset(get_scenario("balanced_small", total_requests=2_500, seed=3))
        path = str(tmp_path_factory.mktemp("traces") / "frames.trace")
        write_trace(dataset, path)
        return dataset, path

    def test_trace_tables_never_materialise_records(self, recorded, monkeypatch):
        """Tables from a trace run frame-natively: no Dataset is ever built."""
        dataset, path = recorded
        oracle = execute(
            RunSpec(mode="tables", execution=ExecutionSpec(engine="records")), dataset=dataset
        )
        execute_module = importlib.import_module("repro.runspec.execute")

        def fail(*_args, **_kwargs):  # pragma: no cover - called means regression
            raise AssertionError("trace-backed tables materialised the whole trace")

        monkeypatch.setattr(execute_module, "read_trace", fail)
        monkeypatch.setattr(RecordFrame, "to_dataset", fail)
        for workers in (1, 2):
            result = execute(
                RunSpec(
                    mode="tables",
                    traffic=TrafficSpec(source="trace", path=path),
                    execution=ExecutionSpec(engine="columnar", workers=workers),
                )
            )
            assert result.tables == oracle.tables
            assert result.source == "balanced_small"


class TestWorkerValidation:
    def test_workers_below_one_rejected_in_spec(self):
        with pytest.raises(SpecError, match="at least 1"):
            ExecutionSpec(workers=0)

    def test_workers_require_the_columnar_engine(self):
        spec = RunSpec(
            mode="tables",
            traffic=TrafficSpec(scenario="balanced_small"),
            execution=ExecutionSpec(engine="records", workers=2),
        )
        with pytest.raises(SpecError, match="columnar"):
            execute(spec)

    def test_workers_are_batch_only(self):
        spec = RunSpec(
            mode="stream",
            traffic=TrafficSpec(scenario="balanced_small"),
            execution=ExecutionSpec(workers=2),
        )
        with pytest.raises(SpecError, match="tables/evaluate"):
            execute(spec)

    def test_run_frame_rejects_bad_workers_and_custom_sessionizers(self):
        frame = RecordFrame.from_records([])
        with pytest.raises(DetectorError, match="at least 1"):
            DetectionPipeline(_detectors()).run_frame(frame, workers=0)

        class CustomSessionizer(Sessionizer):
            def sessionize(self, records):  # pragma: no cover - never called
                return super().sessionize(records)

        pipeline = DetectionPipeline(_detectors(), sessionizer=CustomSessionizer())
        with pytest.raises(DetectorError, match="base Sessionizer"):
            pipeline.run_frame(frame)
