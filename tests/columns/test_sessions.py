"""Vectorized sessionization must replicate the legacy scan exactly."""

from __future__ import annotations

from datetime import timedelta

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columns import RecordFrame, sessionize_frame
from repro.logs.sessionization import Sessionizer
from repro.traffic.generator import generate_dataset
from repro.traffic.scenarios import balanced_small
from tests.helpers import make_record


def assert_equivalent(records, timeout=None):
    """Legacy and vectorized sessionization agree on everything visible."""
    sessionizer = Sessionizer(timeout) if timeout is not None else Sessionizer()
    legacy = sessionizer.sessionize(records)
    frame = RecordFrame.from_records(records)
    spans = sessionizer.sessionize_frame(frame)

    assert len(legacy) == len(spans)
    for index, session in enumerate(legacy):
        assert spans.session_ids[index] == session.session_id
        assert spans.client_ip(index) == session.client_ip
        assert spans.user_agent(index) == session.user_agent
        got = [records[row].request_id for row in spans.span(index)]
        assert got == session.request_ids()
    # The record -> session mapping inverts the spans.
    mapping = spans.record_session_index()
    for index in range(len(spans)):
        assert set(np.flatnonzero(mapping == index)) == set(spans.span(index).tolist())
    # Materialised Session objects are the legacy ones.
    rebuilt = spans.to_sessions(records)
    assert [s.session_id for s in rebuilt] == [s.session_id for s in legacy]
    assert [s.request_ids() for s in rebuilt] == [s.request_ids() for s in legacy]


class TestScenarioEquivalence:
    def test_generated_scenario(self):
        dataset = generate_dataset(balanced_small(total_requests=4_000, seed=5))
        assert_equivalent(dataset.records)

    def test_empty(self):
        frame = RecordFrame.from_records([])
        spans = sessionize_frame(frame)
        assert len(spans) == 0
        assert spans.request_id_groups() == []

    def test_single_record(self):
        assert_equivalent([make_record("only")])


@settings(max_examples=120, deadline=None)
@given(
    data=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),  # visitor index
            st.integers(min_value=0, max_value=7_200),  # offset seconds
        ),
        min_size=1,
        max_size=40,
    ),
    timeout_minutes=st.integers(min_value=1, max_value=45),
)
def test_hypothesis_adversarial_ties_and_timeouts(data, timeout_minutes):
    # Duplicate timestamps across and within visitors, gaps straddling
    # the timeout, interleaved visitors: the legacy scan's tie-breaking
    # (stable time sort, dict iteration order, stable final sort) must
    # survive vectorization.
    visitors = [("10.0.0.1", "agent-a"), ("10.0.0.1", "agent-b"), ("10.0.0.2", "agent-a"), ("192.168.7.9", "other")]
    records = []
    for index, (visitor, offset) in enumerate(data):
        ip, agent = visitors[visitor]
        records.append(
            make_record(f"r{index}", seconds=float(offset), ip=ip, user_agent=agent)
        )
    assert_equivalent(records, timeout=timedelta(minutes=timeout_minutes))


class _OneBigSession(Sessionizer):
    """A custom sessionizer: everything is one session, whoever sent it."""

    def sessionize(self, records):
        from repro.logs.sessionization import Session

        ordered = sorted(records, key=lambda record: record.timestamp)
        if not ordered:
            return []
        session = Session(
            session_id="all",
            client_ip=ordered[0].client_ip,
            user_agent=ordered[0].user_agent,
        )
        session.records = ordered
        return [session]


def test_custom_sessionizer_subclass_keeps_its_behaviour():
    # The columnar engine only reproduces the base Sessionizer; a
    # pipeline built around a subclass must keep using its sessionize().
    from repro.detectors.pipeline import DetectionPipeline
    from repro.detectors.ratelimit import RateLimitDetector
    from repro.logs.dataset import Dataset

    records = [
        make_record(f"r{index}", seconds=index * 0.2, ip=f"10.0.0.{index % 3}")
        for index in range(30)
    ]
    dataset = Dataset(records)
    detector = RateLimitDetector(threshold_rpm=60, min_requests=10)
    pipeline = DetectionPipeline([detector], sessionizer=_OneBigSession())
    default_run = pipeline.run(dataset)
    explicit = pipeline.run(dataset, engine="records")
    # One 30-request burst at 5 req/s trips the limiter; per-visitor
    # sessions of 10 requests would not have enough volume.
    assert default_run.alert_set("rate-limit").request_ids() == set(dataset.request_ids)
    assert (
        default_run.alert_set("rate-limit").request_ids()
        == explicit.alert_set("rate-limit").request_ids()
    )


@settings(max_examples=40, deadline=None)
@given(
    offsets=st.lists(st.integers(min_value=0, max_value=100), min_size=2, max_size=20)
)
def test_hypothesis_identical_timestamps_keep_arrival_order(offsets):
    # Many records sharing one timestamp: span order must equal the
    # original arrival order (both sorts are stable).
    records = [
        make_record(f"r{index}", seconds=float(offset // 10)) for index, offset in enumerate(offsets)
    ]
    assert_equivalent(records)
