"""Tests for :class:`repro.columns.RecordFrame` construction and round trips."""

from __future__ import annotations

from datetime import datetime, timedelta, tzinfo

import numpy as np
import pytest

from repro.columns import RecordFrame
from repro.exceptions import ColumnsError
from repro.logs.dataset import Dataset
from repro.trace.store import TraceReader, write_trace
from repro.traffic.generator import generate_dataset
from repro.traffic.scenarios import balanced_small
from tests.helpers import SCRIPTED_UA, make_record, make_records


@pytest.fixture(scope="module")
def scenario_dataset():
    return generate_dataset(balanced_small(total_requests=3_000, seed=11))


class TestFromDataset:
    def test_columns_match_records(self, scenario_dataset):
        frame = RecordFrame.from_dataset(scenario_dataset)
        assert len(frame) == len(scenario_dataset)
        for index in (0, 7, len(frame) - 1):
            record = scenario_dataset.records[index]
            assert frame.request_ids[index] == record.request_id
            assert int(frame.statuses[index]) == record.status
            assert int(frame.sizes[index]) == record.response_size
            assert frame.string("client_ip", frame.codes["client_ip"][index]) == record.client_ip
            assert frame.string("path", frame.codes["path"][index]) == record.path
            assert frame.string("method", frame.codes["method"][index]) == record.method.value
            assert (
                frame.string("user_agent", frame.codes["user_agent"][index]) == record.user_agent
            )

    def test_dictionary_is_deduplicated(self, scenario_dataset):
        frame = RecordFrame.from_dataset(scenario_dataset)
        assert len(frame.tables["user_agent"]) == len(scenario_dataset.unique_user_agents())
        assert len(frame.tables["client_ip"]) == len(scenario_dataset.unique_ips())

    def test_labels_survive(self, scenario_dataset):
        frame = RecordFrame.from_dataset(scenario_dataset)
        assert frame.is_labelled
        truth = frame.ground_truth()
        assert truth.malicious_ids() == scenario_dataset.ground_truth.malicious_ids()

    def test_derived_flags_match_record_properties(self, scenario_dataset):
        frame = RecordFrame.from_dataset(scenario_dataset)
        assets = frame.path_is_asset()
        referrers = frame.has_referrer()
        nights = frame.night_flags()
        robots = frame.path_is_robots()
        for index, record in enumerate(scenario_dataset.records):
            assert bool(assets[index]) == record.is_asset_request
            assert bool(referrers[index]) == record.has_referrer
            assert bool(nights[index]) == (record.timestamp.hour < 6)
            assert bool(robots[index]) == (record.url_path == "/robots.txt")

    def test_url_path_codes_distinguish_query_strings(self):
        records = [
            make_record("a", path="/search?q=1"),
            make_record("b", path="/search?q=2", seconds=1),
            make_record("c", path="/other", seconds=2),
        ]
        frame = RecordFrame.from_records(records)
        codes = frame.url_path_codes()
        assert codes[0] == codes[1]  # same path, different query
        assert codes[0] != codes[2]
        assert frame.n_url_paths == 2

    def test_inconsistent_lengths_rejected(self):
        frame = RecordFrame.from_records(make_records(3))
        with pytest.raises(ColumnsError, match="inconsistent column lengths"):
            RecordFrame(
                request_ids=frame.request_ids,
                timestamps_us=frame.timestamps_us[:-1],
                tz_offsets_us=frame.tz_offsets_us,
                statuses=frame.statuses,
                sizes=frame.sizes,
                codes=frame.codes,
                tables=frame.tables,
            )


class TestRoundTrips:
    def test_iter_records_rebuilds_equal_records(self, scenario_dataset):
        frame = RecordFrame.from_dataset(scenario_dataset)
        rebuilt = list(frame.iter_records())
        assert rebuilt == scenario_dataset.records

    def test_to_dataset_round_trip(self, scenario_dataset):
        dataset = RecordFrame.from_dataset(scenario_dataset).to_dataset()
        assert dataset.records == scenario_dataset.records
        assert dataset.is_labelled
        assert (
            dataset.ground_truth.malicious_ids()
            == scenario_dataset.ground_truth.malicious_ids()
        )

    def test_extra_mappings_round_trip(self):
        records = make_records(3)
        records[1] = make_record("r1", seconds=1)
        object.__setattr__(records[1], "extra", {"flag": "yes"})
        frame = RecordFrame.from_records(records)
        rebuilt = list(frame.iter_records())
        assert rebuilt[1].extra == {"flag": "yes"}
        assert rebuilt[0].extra == {}


class TestReadFrame:
    def test_trace_maps_to_identical_frame(self, scenario_dataset, tmp_path):
        path = str(tmp_path / "scenario.trace")
        write_trace(scenario_dataset, path)
        frame = TraceReader(path).read_frame()
        direct = RecordFrame.from_dataset(scenario_dataset)
        assert frame.request_ids == direct.request_ids
        assert np.array_equal(frame.timestamps_us, direct.timestamps_us)
        assert np.array_equal(frame.statuses, direct.statuses)
        assert np.array_equal(frame.sizes, direct.sizes)
        # Dictionary codes may differ; the decoded strings must not.
        for column in ("client_ip", "method", "path", "user_agent", "referrer"):
            ours = [frame.string(column, code) for code in frame.codes[column].tolist()]
            theirs = [direct.string(column, code) for code in direct.codes[column].tolist()]
            assert ours == theirs
        assert frame.is_labelled
        assert (
            frame.ground_truth().malicious_ids()
            == scenario_dataset.ground_truth.malicious_ids()
        )

    def test_read_frame_to_dataset_equals_read_dataset(self, scenario_dataset, tmp_path):
        path = str(tmp_path / "again.trace")
        write_trace(scenario_dataset, path)
        via_frame = TraceReader(path).read_frame().to_dataset()
        via_records = TraceReader(path).read_dataset()
        assert via_frame.records == via_records.records
        assert via_frame.metadata == via_records.metadata

    def test_unlabelled_dataset_frame(self):
        dataset = Dataset(make_records(5, user_agent=SCRIPTED_UA))
        frame = RecordFrame.from_dataset(dataset)
        assert not frame.is_labelled
        assert frame.ground_truth() is None


class _DstZone(tzinfo):
    """A toy DST zone: UTC-4 from April to October, UTC-5 otherwise."""

    def utcoffset(self, moment):
        return timedelta(hours=-4 if 4 <= moment.month <= 10 else -5)

    def dst(self, moment):
        return timedelta(hours=1) if 4 <= moment.month <= 10 else timedelta(0)

    def tzname(self, moment):
        return "TOY"


class TestDstOffsets:
    def test_dst_varying_offsets_are_not_cached_per_tzinfo(self):
        # One tzinfo object, two different offsets: the frame must store
        # the offset each moment actually carries, not the first seen.
        zone = _DstZone()
        records = [
            make_record("winter"),
            make_record("summer", seconds=1),
        ]
        object.__setattr__(
            records[0], "timestamp", datetime(2018, 1, 15, 6, 30, tzinfo=zone)
        )
        object.__setattr__(
            records[1], "timestamp", datetime(2018, 7, 15, 6, 30, tzinfo=zone)
        )
        frame = RecordFrame.from_records(records)
        assert frame.tz_offsets_us.tolist() == [-5 * 3600 * 10**6, -4 * 3600 * 10**6]
        # Wall-clock 06:30 in both cases -> neither is a night request,
        # exactly like record.timestamp.hour on the record path.
        assert frame.night_flags().tolist() == [
            record.timestamp.hour < 6 for record in records
        ]
        rebuilt = list(frame.iter_records())
        assert [r.timestamp for r in rebuilt] == [r.timestamp for r in records]
        assert [r.timestamp.hour for r in rebuilt] == [6, 6]
