"""The columnar and record batch paths are interchangeable -- exactly.

For every preset scenario (seeded), the ``columnar`` and ``records``
engines must produce byte-identical alert sets (ids, scores *and*
reasons), identical Tables 1-4 and identical labelled-evaluation
metrics.  This is what lets ``execute()`` route batch modes through the
columnar substrate by default without changing a single published
number.
"""

from __future__ import annotations

import pytest

from repro.core.experiment import PaperExperiment
from repro.detectors.commercial import CommercialBotDefenceDetector
from repro.detectors.inhouse import InHouseHeuristicDetector
from repro.detectors.pipeline import DetectionPipeline
from repro.runspec import RunSpec, TrafficSpec, execute
from repro.runspec.spec import ExecutionSpec
from repro.traffic.generator import generate_dataset
from repro.traffic.scenarios import get_scenario

#: Every preset scenario, scaled to keep the suite fast (the paper
#: scenario at scale 0.02, the fixed-size presets at a few thousand
#: requests) and seeded for reproducibility.
PRESETS = [
    ("amadeus_march_2018", {"scale": 0.02, "seed": 2018}),
    ("balanced_small", {"total_requests": 5_000, "seed": 7}),
    ("stealth_heavy", {"total_requests": 5_000, "seed": 23}),
]


@pytest.fixture(scope="module", params=PRESETS, ids=[name for name, _ in PRESETS])
def preset(request):
    name, params = request.param
    dataset = generate_dataset(get_scenario(name, **params))
    return name, params, dataset


def _full_alerts(alert_set):
    return {alert.request_id: (alert.score, alert.reasons) for alert in alert_set.alerts()}


def _comparable(result):
    """A RunResult's reproducible face.

    Timings are wall-clock and the echoed spec necessarily differs in
    its ``engine`` field; everything else must match exactly.
    """
    payload = result.to_dict()
    payload.pop("timings", None)
    payload.pop("telemetry", None)
    payload.pop("spec", None)
    return payload


class TestEngineEquivalence:
    def test_alert_sets_byte_identical(self, preset):
        _name, _params, dataset = preset
        detectors = lambda: [CommercialBotDefenceDetector(), InHouseHeuristicDetector()]  # noqa: E731
        by_records = DetectionPipeline(detectors()).run(dataset, engine="records")
        by_columns = DetectionPipeline(detectors()).run(dataset, engine="columnar")
        for record_alerts, column_alerts in zip(by_records.alert_sets, by_columns.alert_sets):
            assert record_alerts.detector_name == column_alerts.detector_name
            assert _full_alerts(record_alerts) == _full_alerts(column_alerts)

    def test_tables_mode_identical(self, preset):
        name, params, dataset = preset
        traffic = TrafficSpec(
            scenario=name,
            scale=params.get("scale"),
            seed=params.get("seed"),
            params={k: v for k, v in params.items() if k not in ("scale", "seed")},
        )
        results = {
            engine: execute(
                RunSpec(mode="tables", traffic=traffic, execution=ExecutionSpec(engine=engine)),
                dataset=dataset,
            )
            for engine in ("records", "columnar")
        }
        assert _comparable(results["records"]) == _comparable(results["columnar"])
        assert results["records"].tables == results["columnar"].tables

    def test_evaluate_mode_identical(self, preset):
        name, params, dataset = preset
        traffic = TrafficSpec(
            scenario=name,
            scale=params.get("scale"),
            seed=params.get("seed"),
            params={k: v for k, v in params.items() if k not in ("scale", "seed")},
        )
        results = {
            engine: execute(
                RunSpec(mode="evaluate", traffic=traffic, execution=ExecutionSpec(engine=engine)),
                dataset=dataset,
            )
            for engine in ("records", "columnar")
        }
        assert _comparable(results["records"]) == _comparable(results["columnar"])
        assert results["records"].rows == results["columnar"].rows

    def test_experiment_object_equivalence(self, preset):
        _name, _params, dataset = preset
        by_records = PaperExperiment().run_on(dataset, engine="records")
        by_columns = PaperExperiment().run_on(dataset, engine="columnar")
        assert by_records.render_all() == by_columns.render_all()
        assert dict(by_records.alert_counts) == dict(by_columns.alert_counts)
        assert (by_records.matrix.values == by_columns.matrix.values).all()
        assert [e.as_dict() for e in by_records.tool_evaluations] == [
            e.as_dict() for e in by_columns.tool_evaluations
        ]
        assert [e.as_dict() for e in by_records.adjudication_evaluations] == [
            e.as_dict() for e in by_columns.adjudication_evaluations
        ]
