"""Tests for the windowed online adjudicator."""

from __future__ import annotations

import pytest

from repro.exceptions import AdjudicationError
from repro.stream.adjudicator import WindowedAdjudicator
from repro.stream.events import OnlineVerdict
from tests.helpers import make_record


def _votes(record, **alerted_by_name):
    return {
        name: OnlineVerdict(request_id=record.request_id, alerted=alerted)
        for name, alerted in alerted_by_name.items()
    }


class TestParallelAdjudication:
    def test_one_out_of_two_alerts_on_any_vote(self):
        adjudicator = WindowedAdjudicator(["a", "b"], k=1)
        record = make_record("r0")
        verdict = adjudicator.observe(record, _votes(record, a=True, b=False))
        assert verdict.alerted
        assert verdict.votes == 1
        assert adjudicator.name == "1-out-of-2"

    def test_two_out_of_two_requires_both(self):
        adjudicator = WindowedAdjudicator(["a", "b"], k=2)
        first = make_record("r0")
        second = make_record("r1", seconds=1)
        assert not adjudicator.observe(first, _votes(first, a=True, b=False)).alerted
        assert adjudicator.observe(second, _votes(second, a=True, b=True)).alerted
        assert adjudicator.alerted_ids == frozenset({"r1"})

    def test_missing_vote_raises(self):
        adjudicator = WindowedAdjudicator(["a", "b"])
        record = make_record("r0")
        with pytest.raises(AdjudicationError):
            adjudicator.observe(record, _votes(record, a=True))


class TestSerialAdjudication:
    def test_confirm_requires_first_then_second(self):
        adjudicator = WindowedAdjudicator(["first", "second"], mode="serial-confirm")
        r0, r1, r2 = (make_record(f"r{i}", seconds=i) for i in range(3))
        assert not adjudicator.observe(r0, _votes(r0, first=False, second=True)).alerted
        assert not adjudicator.observe(r1, _votes(r1, first=True, second=False)).alerted
        assert adjudicator.observe(r2, _votes(r2, first=True, second=True)).alerted
        # The second tool was only consulted when the first alerted.
        assert adjudicator.workload() == {"first": 3, "second": 2}

    def test_escalate_is_union_with_reduced_second_workload(self):
        adjudicator = WindowedAdjudicator(["first", "second"], mode="serial-escalate")
        r0, r1, r2 = (make_record(f"r{i}", seconds=i) for i in range(3))
        assert adjudicator.observe(r0, _votes(r0, first=True, second=False)).alerted
        assert adjudicator.observe(r1, _votes(r1, first=False, second=True)).alerted
        assert not adjudicator.observe(r2, _votes(r2, first=False, second=False)).alerted
        assert adjudicator.workload() == {"first": 3, "second": 2}

    def test_serial_needs_two_detectors(self):
        with pytest.raises(AdjudicationError):
            WindowedAdjudicator(["only"], mode="serial-confirm")


class TestWindowAndResult:
    def test_window_evicts_old_decisions(self):
        adjudicator = WindowedAdjudicator(["a"], window_seconds=60)
        early = make_record("r0", seconds=0)
        late = make_record("r1", seconds=300)
        adjudicator.observe(early, _votes(early, a=True))
        adjudicator.observe(late, _votes(late, a=False))
        alerted, total = adjudicator.window_counts()
        assert (alerted, total) == (0, 1)
        assert adjudicator.window_alert_rate() == 0.0

    def test_to_result_is_a_batch_style_adjudication(self):
        adjudicator = WindowedAdjudicator(["a", "b"], k=1)
        record = make_record("r0")
        adjudicator.observe(record, _votes(record, a=True, b=False))
        result = adjudicator.to_result(total_requests=10)
        assert result.alerted_ids == frozenset({"r0"})
        assert result.total_requests == 10
        assert result.alert_rate() == pytest.approx(0.1)

    def test_reset_clears_everything(self):
        adjudicator = WindowedAdjudicator(["a"], k=1)
        record = make_record("r0")
        adjudicator.observe(record, _votes(record, a=True))
        adjudicator.reset()
        assert adjudicator.processed == 0
        assert adjudicator.alerted_ids == frozenset()
        assert adjudicator.workload() == {"a": 0}

    def test_invalid_parameters(self):
        with pytest.raises(AdjudicationError):
            WindowedAdjudicator([])
        with pytest.raises(AdjudicationError):
            WindowedAdjudicator(["a", "a"])
        with pytest.raises(AdjudicationError):
            WindowedAdjudicator(["a"], k=2)
        with pytest.raises(AdjudicationError):
            WindowedAdjudicator(["a"], mode="nope")
        with pytest.raises(AdjudicationError):
            WindowedAdjudicator(["a"], window_seconds=0)
