"""Tests for the streaming record sources."""

from __future__ import annotations

import pytest

from repro.exceptions import LogParseError
from repro.logs.writer import LogWriter
from repro.stream.sources import dataset_replay, generator_feed, tail_log_file
from tests.helpers import make_record, make_records
from repro.logs.dataset import Dataset


class TestDatasetReplay:
    def test_yields_records_in_timestamp_order(self):
        records = list(reversed(make_records(10, gap_seconds=5)))
        replayed = list(dataset_replay(Dataset(records)))
        timestamps = [record.timestamp for record in replayed]
        assert timestamps == sorted(timestamps)
        assert len(replayed) == 10


class TestGeneratorFeed:
    def test_streams_a_generated_scenario(self):
        from repro.traffic.scenarios import balanced_small

        records = list(generator_feed(balanced_small(total_requests=600, seed=5)))
        assert len(records) > 100
        timestamps = [record.timestamp for record in records]
        assert timestamps == sorted(timestamps)


class TestTailLogFile:
    def test_reads_a_written_log(self, tmp_path):
        path = tmp_path / "access.log"
        LogWriter().write_file(make_records(25, gap_seconds=2), str(path))
        records = list(tail_log_file(str(path)))
        assert len(records) == 25
        assert records[0].request_id == "r0"
        assert records[0].client_ip == "10.16.0.1"

    def test_skips_malformed_lines_by_default(self, tmp_path):
        path = tmp_path / "access.log"
        LogWriter().write_file(make_records(3), str(path))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("this is not a log line\n")
        LogWriter().write_file([make_record("r3", seconds=10)], str(tmp_path / "tail.log"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write((tmp_path / "tail.log").read_text())
        records = list(tail_log_file(str(path)))
        assert len(records) == 4

    def test_request_ids_match_batch_parser_on_dirty_logs(self, tmp_path):
        from repro.logs.parser import LogParser

        path = tmp_path / "access.log"
        LogWriter().write_file(make_records(2), str(path))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("garbage in the middle\n")
        LogWriter().write_file([make_record("x", seconds=10)], str(tmp_path / "tail.log"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write((tmp_path / "tail.log").read_text())

        batch_ids = [r.request_id for r in LogParser(skip_malformed=True).parse_file(str(path))]
        tail_ids = [r.request_id for r in tail_log_file(str(path))]
        assert tail_ids == batch_ids == ["r0", "r1", "r2"]

    def test_strict_mode_raises_on_garbage(self, tmp_path):
        path = tmp_path / "access.log"
        path.write_text("garbage\n")
        with pytest.raises(LogParseError):
            list(tail_log_file(str(path), skip_malformed=False))

    def test_follow_mode_waits_for_partially_written_lines(self, tmp_path):
        import threading

        path = tmp_path / "access.log"
        first, second = LogWriter().to_lines(make_records(2, gap_seconds=5))
        path.write_text(first + "\n" + second[:20])  # second line half-flushed

        def complete_line():
            with open(path, "a", encoding="utf-8") as handle:
                handle.write(second[20:] + "\n")

        timer = threading.Timer(0.1, complete_line)
        timer.start()
        records = list(
            tail_log_file(str(path), follow=True, poll_interval=0.02, max_idle_polls=30)
        )
        timer.join()
        # The fragment must not be parsed (and lost) early: both records
        # arrive, with batch-identical ids.
        assert [record.request_id for record in records] == ["r0", "r1"]

    def test_follow_mode_terminates_after_idle_polls(self, tmp_path):
        path = tmp_path / "access.log"
        LogWriter().write_file(make_records(2), str(path))
        records = list(
            tail_log_file(str(path), follow=True, poll_interval=0.01, max_idle_polls=3)
        )
        assert len(records) == 2

    def test_invalid_poll_interval(self, tmp_path):
        path = tmp_path / "access.log"
        path.write_text("")
        with pytest.raises(ValueError):
            list(tail_log_file(str(path), poll_interval=0))


class TestGzipSources:
    def test_tail_reads_a_gzipped_log(self, tmp_path):
        import gzip

        from repro.logs.writer import format_record

        path = tmp_path / "access.log.gz"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            for record in make_records(12, gap_seconds=3):
                handle.write(format_record(record) + "\n")
        records = list(tail_log_file(str(path)))
        assert len(records) == 12
        assert records[0].request_id == "r0"


class TestDatasetReplayOrdering:
    def test_time_ordered_dataset_is_not_copied(self):
        records = make_records(10)
        dataset = Dataset(records, time_ordered=True)
        replayed = list(dataset_replay(dataset))
        assert replayed == records
        # The marked fast path hands back the records themselves.
        assert replayed[0] is records[0]

    def test_generated_datasets_are_marked_ordered(self):
        from repro.traffic.generator import generate_dataset
        from repro.traffic.scenarios import balanced_small

        dataset = generate_dataset(balanced_small(total_requests=500, seed=5))
        assert dataset._time_ordered is True  # marked at creation, no scan
        assert dataset.is_time_ordered

    def test_unordered_dataset_still_sorts(self):
        records = list(reversed(make_records(5)))
        dataset = Dataset(records)
        replayed = list(dataset_replay(dataset))
        timestamps = [record.timestamp for record in replayed]
        assert timestamps == sorted(timestamps)


class TestTraceReplay:
    def test_replays_a_recorded_trace_in_order(self, tmp_path):
        from repro.stream.sources import trace_replay
        from repro.trace import write_trace

        records = make_records(20, gap_seconds=2)
        path = str(tmp_path / "t.trace")
        write_trace(Dataset(records, time_ordered=True), path)
        assert list(trace_replay(path)) == records

    def test_unordered_trace_is_sorted_before_replay(self, tmp_path):
        from repro.stream.sources import trace_replay
        from repro.trace import write_trace

        records = [make_record("r0", seconds=50), make_record("r1", seconds=0)]
        path = str(tmp_path / "t.trace")
        write_trace(Dataset(records), path)
        replayed = list(trace_replay(path))
        assert [record.request_id for record in replayed] == ["r1", "r0"]

    def test_time_window_replay(self, tmp_path):
        from datetime import timedelta

        from repro.stream.sources import trace_replay
        from repro.trace import write_trace
        from tests.helpers import BASE_TIME

        records = make_records(30, gap_seconds=60)
        path = str(tmp_path / "t.trace")
        write_trace(Dataset(records, time_ordered=True), path)
        window = list(
            trace_replay(
                path,
                start=BASE_TIME + timedelta(minutes=5),
                end=BASE_TIME + timedelta(minutes=10),
            )
        )
        assert [record.request_id for record in window] == [f"r{i}" for i in range(5, 10)]
