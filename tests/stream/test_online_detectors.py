"""Unit tests for the online detector ports."""

from __future__ import annotations

import pytest

from repro.logs.sessionization import Session
from repro.stream.detectors import (
    OnlineAnomalyDetector,
    OnlineFingerprintDetector,
    OnlineInHouseDetector,
    OnlineRateLimitDetector,
    OnlineRequestRateLimiter,
    default_online_detectors,
)
from tests.helpers import BROWSER_UA, SCRIPTED_UA, make_record, make_records, make_session


def _feed(detector, records):
    """Feed records of one visitor as a growing live session."""
    session = Session(session_id="s0", client_ip=records[0].client_ip, user_agent=records[0].user_agent)
    verdicts = []
    for record in records:
        session.add(record)
        verdicts.append(detector.observe(record, session))
    return session, verdicts


class TestOnlineRequestRateLimiter:
    def test_flags_once_budget_exceeded(self):
        limiter = OnlineRequestRateLimiter(max_requests=10, window_seconds=60, penalty_seconds=0)
        verdicts = [limiter.observe(record) for record in make_records(20, gap_seconds=1)]
        assert not verdicts[5].alerted
        assert verdicts[11].alerted
        assert "exceeds" in verdicts[11].reason

    def test_alerts_are_final_at_observe_time(self):
        limiter = OnlineRequestRateLimiter(max_requests=5, window_seconds=60)
        for record in make_records(10, gap_seconds=1):
            limiter.observe(record)
        alerted = limiter.final_alert_set()
        assert len(alerted) > 0
        assert all(rid.startswith("r") for rid in alerted)

    def test_record_alerts_false_keeps_alert_set_empty(self):
        limiter = OnlineRequestRateLimiter(max_requests=5, window_seconds=60, record_alerts=False)
        verdicts = [limiter.observe(record) for record in make_records(10, gap_seconds=1)]
        assert any(verdict.alerted for verdict in verdicts)
        assert len(limiter.final_alert_set()) == 0

    def test_visitor_window_dropped_at_session_close(self):
        limiter = OnlineRequestRateLimiter(max_requests=5, window_seconds=60, penalty_seconds=0)
        records = make_records(3, gap_seconds=1)
        for record in records:
            limiter.observe(record)
        assert len(limiter._state) == 1
        limiter.on_session_close(make_session(records))
        assert len(limiter._state) == 0

    def test_visitor_window_kept_while_penalty_runs(self):
        limiter = OnlineRequestRateLimiter(max_requests=2, window_seconds=60, penalty_seconds=7200)
        records = make_records(5, gap_seconds=1)
        for record in records:
            limiter.observe(record)
        limiter.on_session_close(make_session(records))
        assert len(limiter._state) == 1  # penalty outlives the session


class TestOnlineRateLimitDetector:
    def test_provisional_alert_fires_mid_session(self):
        detector = OnlineRateLimitDetector(threshold_rpm=30, min_requests=5)
        _, verdicts = _feed(detector, make_records(30, gap_seconds=0.5, user_agent=BROWSER_UA))
        assert any(verdict.alerted for verdict in verdicts)
        # Final alerts only exist once the session closes.
        assert len(detector.final_alert_set()) == 0

    def test_session_close_matches_batch_judgement(self):
        detector = OnlineRateLimitDetector(threshold_rpm=30, min_requests=5)
        session, _ = _feed(detector, make_records(30, gap_seconds=0.5, user_agent=BROWSER_UA))
        detector.on_session_close(session)
        batch_verdict = detector.batch.judge_session(session)
        assert batch_verdict is not None
        assert detector.final_alert_set().request_ids() == set(session.request_ids())

    def test_slow_session_never_alerted(self):
        detector = OnlineRateLimitDetector(threshold_rpm=60, min_requests=5)
        session, verdicts = _feed(detector, make_records(20, gap_seconds=30, user_agent=BROWSER_UA))
        detector.on_session_close(session)
        assert not any(verdict.alerted for verdict in verdicts)
        assert len(detector.final_alert_set()) == 0


class TestOnlineFingerprintDetector:
    def test_scripted_agent_flagged_immediately(self):
        detector = OnlineFingerprintDetector()
        verdict = detector.observe(make_record(user_agent=SCRIPTED_UA))
        assert verdict.alerted
        assert "scripted" in verdict.reason
        assert "r0" in detector.final_alert_set()

    def test_browser_agent_passes(self):
        detector = OnlineFingerprintDetector()
        verdict = detector.observe(make_record(user_agent=BROWSER_UA))
        assert not verdict.alerted
        assert len(detector.final_alert_set()) == 0

    def test_rejects_conflicting_construction(self):
        from repro.detectors.fingerprint import UserAgentFingerprintDetector

        with pytest.raises(ValueError):
            OnlineFingerprintDetector(UserAgentFingerprintDetector(), flag_scripted=False)


class TestOnlineInHouseDetector:
    def test_scripted_session_alerted_online_and_at_close(self):
        detector = OnlineInHouseDetector()
        session, verdicts = _feed(detector, make_records(12, gap_seconds=1, user_agent=SCRIPTED_UA))
        assert any(verdict.alerted for verdict in verdicts)
        detector.on_session_close(session)
        assert detector.final_alert_set().request_ids() == set(session.request_ids())

    def test_reevaluates_as_session_doubles(self):
        # A session that only becomes suspicious later must still be
        # caught online once its request count doubles past the change.
        detector = OnlineInHouseDetector()
        slow = make_records(4, gap_seconds=20, user_agent=BROWSER_UA)
        burst = [
            make_record(f"b{i}", seconds=80 + i * 0.2, user_agent=BROWSER_UA)
            for i in range(60)
        ]
        _, verdicts = _feed(detector, slow + burst)
        assert any(verdict.alerted for verdict in verdicts)


class TestOnlineAnomalyDetector:
    def test_refits_and_scores_live_sessions(self):
        detector = OnlineAnomalyDetector(contamination=0.3, refit_interval=4)
        # Close a population of ordinary sessions to give the model a fit.
        for index in range(8):
            records = [
                make_record(f"n{index}-{i}", seconds=i * 20, ip=f"10.0.{index}.1")
                for i in range(6)
            ]
            detector.on_session_close(make_session(records, session_id=f"s{index}"))
        assert detector._live_model is not None

        hammering = [
            make_record(f"x{i}", seconds=i * 0.2, ip="10.9.9.9", path="/search?q=1", status=404)
            for i in range(64)
        ]
        _, verdicts = _feed(detector, hammering)
        assert any(verdict.alerted for verdict in verdicts)

    def test_finalize_alerts_most_anomalous_fraction(self):
        detector = OnlineAnomalyDetector(contamination=0.25, refit_interval=1000)
        total = 0
        for index in range(8):
            # Sessions of increasing pace and error rate, so scores differ.
            records = [
                make_record(
                    f"n{index}-{i}",
                    seconds=i * (20 - 2 * index),
                    ip=f"10.0.{index}.1",
                    status=404 if (index >= 6 and i % 2 == 0) else 200,
                )
                for i in range(4 + index)
            ]
            total += len(records)
            detector.on_session_close(make_session(records, session_id=f"s{index}"))
        detector.finalize()
        alerted = detector.final_alert_set()
        # 25% contamination over 8 distinct sessions: some, never all.
        assert 0 < len(alerted) < total

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            OnlineAnomalyDetector(contamination=0.0)
        with pytest.raises(ValueError):
            OnlineAnomalyDetector(refit_interval=1)


class TestDefaults:
    def test_default_ensemble_covers_four_families(self):
        detectors = default_online_detectors()
        assert [d.name for d in detectors] == ["rate-limit", "ua-fingerprint", "inhouse", "anomaly"]
        assert all(d.describe() for d in detectors)
