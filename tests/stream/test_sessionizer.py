"""Tests for the incremental sessionizer."""

from __future__ import annotations

from datetime import timedelta

import pytest

from repro.logs.sessionization import Sessionizer
from repro.stream.sessionizer import IncrementalSessionizer
from tests.helpers import make_record, make_records


def _partition(sessions):
    """Sessions as a comparable set of request-id tuples."""
    return {tuple(session.request_ids()) for session in sessions}


class TestIncrementalSessionizer:
    def test_single_visitor_single_session(self):
        sessionizer = IncrementalSessionizer()
        for record in make_records(10, gap_seconds=5):
            update = sessionizer.observe(record)
            assert not update.closed
        assert sessionizer.open_sessions == 1
        (session,) = sessionizer.flush()
        assert session.request_count == 10
        assert session.session_id == "s0"

    def test_gap_beyond_timeout_starts_new_session(self):
        sessionizer = IncrementalSessionizer(timeout=timedelta(minutes=30))
        sessionizer.observe(make_record("a", seconds=0))
        update = sessionizer.observe(make_record("b", seconds=31 * 60))
        assert update.opened
        assert [s.request_ids() for s in update.closed] == [["a"]]
        assert update.session.session_id == "s1"

    def test_eviction_closes_idle_sessions_of_other_visitors(self):
        sessionizer = IncrementalSessionizer(timeout=timedelta(minutes=30), eviction_interval=1)
        sessionizer.observe(make_record("idle", seconds=0, ip="10.0.0.1"))
        update = sessionizer.observe(make_record("fresh", seconds=45 * 60, ip="10.0.0.2"))
        closed_ids = [s.request_ids() for s in update.closed]
        assert ["idle"] in closed_ids
        assert sessionizer.open_sessions == 1

    def test_eviction_never_closes_active_sessions(self):
        sessionizer = IncrementalSessionizer(timeout=timedelta(minutes=30), eviction_interval=1)
        sessionizer.observe(make_record("a", seconds=0))
        update = sessionizer.observe(make_record("b", seconds=60))
        assert not update.closed
        assert sessionizer.open_sessions == 1

    def test_explicit_evict_idle_uses_watermark(self):
        sessionizer = IncrementalSessionizer(timeout=timedelta(minutes=30), eviction_interval=10_000)
        sessionizer.observe(make_record("a", seconds=0, ip="10.0.0.1"))
        sessionizer.observe(make_record("b", seconds=45 * 60, ip="10.0.0.2"))
        evicted = sessionizer.evict_idle()
        assert [s.request_ids() for s in evicted] == [["a"]]

    def test_out_of_order_record_inserted_in_timestamp_order(self):
        sessionizer = IncrementalSessionizer()
        sessionizer.observe(make_record("a", seconds=0))
        sessionizer.observe(make_record("c", seconds=20))
        update = sessionizer.observe(make_record("b", seconds=10))
        assert update.session.request_ids() == ["a", "b", "c"]

    def test_matches_batch_partition_on_sorted_stream(self, small_dataset):
        records = sorted(small_dataset.records, key=lambda r: r.timestamp)
        batch = Sessionizer().sessionize(records)

        incremental = IncrementalSessionizer()
        closed = []
        for record in records:
            closed.extend(incremental.observe(record).closed)
        closed.extend(incremental.flush())

        assert _partition(closed) == _partition(batch)
        # Session ids are assigned in the same creation order as the batch scan.
        by_requests_batch = {tuple(s.request_ids()): s.session_id for s in batch}
        by_requests_stream = {tuple(s.request_ids()): s.session_id for s in closed}
        assert by_requests_batch == by_requests_stream

    def test_reset_clears_all_state(self):
        sessionizer = IncrementalSessionizer()
        sessionizer.observe(make_record("a"))
        sessionizer.reset()
        assert sessionizer.open_sessions == 0
        assert sessionizer.sessions_started == 0
        assert sessionizer.watermark is None

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            IncrementalSessionizer(timeout=timedelta(seconds=0))
        with pytest.raises(ValueError):
            IncrementalSessionizer(eviction_interval=0)
