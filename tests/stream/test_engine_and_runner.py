"""Tests for the stream engine and the sharded runner."""

from __future__ import annotations

import pytest

from repro.exceptions import DetectorError
from repro.stream import (
    ShardedStreamRunner,
    StreamEngine,
    WindowedAdjudicator,
    default_online_detectors,
    shard_of,
)
from repro.stream.detectors import OnlineRequestRateLimiter
from repro.stream.sources import dataset_replay
from tests.helpers import SCRIPTED_UA, make_record, make_records


class TestStreamEngine:
    def test_emits_one_verdict_per_record_without_skew(self):
        engine = StreamEngine([OnlineRequestRateLimiter()])
        verdicts = engine.process(make_record("r0", user_agent=SCRIPTED_UA))
        assert len(verdicts) == 1
        assert verdicts[0].alerted
        assert verdicts[0].votes["streaming-rate"].alerted
        assert verdicts[0].session_id == "s0"

    def test_skew_buffer_releases_in_timestamp_order(self):
        engine = StreamEngine([OnlineRequestRateLimiter()], max_skew_seconds=30.0)
        engine.process(make_record("late", seconds=10))
        engine.process(make_record("early", seconds=0))
        released = engine.process(make_record("far", seconds=100))
        assert [verdict.request_id for verdict in released] == ["early", "late"]

    def test_finish_flushes_buffer_and_sessions(self):
        engine = StreamEngine(default_online_detectors(), max_skew_seconds=3600.0)
        for record in make_records(30, gap_seconds=1, user_agent=SCRIPTED_UA):
            engine.process(record)
        result = engine.finish()
        assert result.stats.records == 30
        assert result.stats.sessions_closed == 1
        assert len(result.alert_set("ua-fingerprint")) == 30

    def test_stats_track_online_alerts_and_throughput(self):
        engine = StreamEngine([OnlineRequestRateLimiter(max_requests=5, window_seconds=60)])
        result = engine.run(make_records(20, gap_seconds=1))
        assert result.stats.records == 20
        assert result.stats.online_alerts["streaming-rate"] > 0
        assert result.stats.ensemble_alerts == result.stats.online_alerts["streaming-rate"]
        assert result.stats.records_per_second() > 0

    def test_latency_tracking_produces_percentiles(self):
        engine = StreamEngine([OnlineRequestRateLimiter()], track_latency=True)
        result = engine.run(make_records(50, gap_seconds=1))
        percentiles = result.latency_percentiles()
        assert set(percentiles) == {"p50", "p95", "p99", "max"}
        assert 0 <= percentiles["p50"] <= percentiles["p99"] <= percentiles["max"]

    def test_finished_engine_refuses_more_records(self):
        engine = StreamEngine([OnlineRequestRateLimiter()])
        engine.run(make_records(3))
        with pytest.raises(DetectorError):
            engine.process(make_record("r99"))
        engine.reset()
        assert engine.process(make_record("r99"))

    def test_adjudicated_engine_reports_ensemble_result(self):
        detectors = default_online_detectors()
        adjudicator = WindowedAdjudicator([d.name for d in detectors], k=2)
        engine = StreamEngine(detectors, adjudicator=adjudicator)
        result = engine.run(make_records(40, gap_seconds=0.2, user_agent=SCRIPTED_UA))
        assert result.adjudication is not None
        assert result.adjudication.scheme_name == "2-out-of-4"
        assert result.adjudication.alert_count > 0

    def test_alert_set_unknown_detector_error_names_the_culprit(self):
        engine = StreamEngine([OnlineRequestRateLimiter()])
        result = engine.run(make_records(3))
        assert result.alert_set("streaming-rate").detector_name == "streaming-rate"
        with pytest.raises(DetectorError, match="no alert set for detector 'phantom'"):
            result.alert_set("phantom")

    def test_invalid_construction(self):
        with pytest.raises(DetectorError):
            StreamEngine([])
        with pytest.raises(DetectorError):
            StreamEngine([OnlineRequestRateLimiter(), OnlineRequestRateLimiter()])
        with pytest.raises(DetectorError):
            StreamEngine([OnlineRequestRateLimiter()], max_skew_seconds=-1)


class TestShardedStreamRunner:
    def test_shard_of_is_stable_and_in_range(self):
        assert shard_of("10.0.0.1", 4) == shard_of("10.0.0.1", 4)
        assert all(0 <= shard_of(f"10.0.{i}.1", 4) < 4 for i in range(64))

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_backends_match_single_engine(self, backend, small_dataset):
        def factory():
            return StreamEngine(default_online_detectors())

        single = factory().run(dataset_replay(small_dataset))
        runner = ShardedStreamRunner(factory, shards=2, backend=backend, queue_size=512)
        sharded = runner.run(dataset_replay(small_dataset))
        assert sharded.stats.records == single.stats.records
        for single_set, sharded_set in zip(single.alert_sets, sharded.alert_sets):
            assert single_set.detector_name == sharded_set.detector_name
            assert single_set.request_ids() == sharded_set.request_ids()

    def test_adjudication_merges_across_shards(self, small_dataset):
        def factory():
            detectors = default_online_detectors()
            return StreamEngine(
                detectors,
                adjudicator=WindowedAdjudicator([d.name for d in detectors], k=1),
            )

        runner = ShardedStreamRunner(factory, shards=2, backend="serial")
        result = runner.run(dataset_replay(small_dataset))
        assert result.adjudication is not None
        union = set()
        for alert_set in result.alert_sets:
            union.update(alert_set.request_ids())
        # 1-out-of-n live adjudication must cover at least the final alerts
        # of the request-level detectors (which never change at close).
        fingerprint = result.alert_set("ua-fingerprint").request_ids()
        assert fingerprint <= result.adjudication.alerted_ids

    def test_backpressure_small_queue_still_correct(self, small_dataset):
        def factory():
            return StreamEngine(default_online_detectors())

        runner = ShardedStreamRunner(factory, shards=2, backend="thread", queue_size=8, batch_size=4)
        result = runner.run(dataset_replay(small_dataset))
        assert result.stats.records == len(small_dataset)

    def test_worker_errors_propagate(self):
        class ExplodingDetector(OnlineRequestRateLimiter):
            def observe(self, record, session=None):
                raise RuntimeError("boom")

        runner = ShardedStreamRunner(
            lambda: StreamEngine([ExplodingDetector()]), shards=2, backend="thread"
        )
        with pytest.raises(RuntimeError, match="boom"):
            runner.run(make_records(10))

    def test_error_during_shard_finish_does_not_deadlock(self):
        # finish_shard() raising after the sentinel was consumed must not
        # leave the worker blocked on an empty queue.
        class ExplodingFinishDetector(OnlineRequestRateLimiter):
            def export_state(self):
                raise RuntimeError("finish boom")

        runner = ShardedStreamRunner(
            lambda: StreamEngine([ExplodingFinishDetector()]), shards=2, backend="thread"
        )
        with pytest.raises(RuntimeError, match="finish boom"):
            runner.run(make_records(10))

    def test_engine_factory_error_propagates(self):
        def broken_factory():
            raise OSError("no resources")

        runner = ShardedStreamRunner(broken_factory, shards=2, backend="thread")
        with pytest.raises(OSError, match="no resources"):
            runner.run(make_records(10))

    def test_worker_error_with_full_queue_does_not_deadlock(self):
        # A dead worker must keep draining its bounded queue, otherwise the
        # feeder blocks forever on put() and run() never raises.
        class ExplodingDetector(OnlineRequestRateLimiter):
            def observe(self, record, session=None):
                raise RuntimeError("boom")

        runner = ShardedStreamRunner(
            lambda: StreamEngine([ExplodingDetector()]),
            shards=1,
            backend="thread",
            queue_size=4,
            batch_size=2,
        )
        with pytest.raises(RuntimeError, match="boom"):
            runner.run(make_records(400))

    def test_serial_backend_throughput_accounts_for_sequential_shards(self, small_dataset):
        def factory():
            return StreamEngine(default_online_detectors())

        single = factory().run(dataset_replay(small_dataset))
        sharded = ShardedStreamRunner(factory, shards=4, backend="serial").run(
            dataset_replay(small_dataset)
        )
        # Serial shards run back to back: total busy time must be in the same
        # ballpark as one engine over the whole stream, not a quarter of it.
        assert sharded.stats.busy_seconds == pytest.approx(
            single.stats.busy_seconds, rel=0.75
        )

    def test_invalid_construction(self):
        def factory():
            return StreamEngine([OnlineRequestRateLimiter()])

        with pytest.raises(DetectorError):
            ShardedStreamRunner(factory, shards=0)
        with pytest.raises(DetectorError):
            ShardedStreamRunner(factory, backend="gpu")
