"""Batch/stream equivalence: the acceptance property of the subsystem.

Replaying a data set through the streaming engine must reproduce the
batch :class:`~repro.detectors.pipeline.DetectionPipeline` alert sets
*exactly* (same request-id set per ported detector), including under
visitor sharding and bounded out-of-order arrival.
"""

from __future__ import annotations

import random

import pytest

from repro.stream import StreamEngine, default_online_detectors, verify_equivalence
from repro.stream.sources import dataset_replay
from repro.traffic.generator import generate_dataset
from repro.traffic.scenarios import balanced_small, stealth_heavy

DETECTOR_NAMES = ("rate-limit", "ua-fingerprint", "inhouse", "anomaly")


@pytest.fixture(scope="module")
def balanced_dataset():
    return generate_dataset(balanced_small(total_requests=3000, seed=7))


@pytest.fixture(scope="module")
def stealth_dataset():
    return generate_dataset(stealth_heavy(total_requests=4000, seed=23))


class TestBatchStreamEquivalence:
    def test_balanced_small_reproduces_batch_alert_sets(self, balanced_dataset):
        report = verify_equivalence(balanced_dataset)
        assert report.equivalent, report.summary()
        assert tuple(entry.detector_name for entry in report.entries) == DETECTOR_NAMES
        # The property is only meaningful if the detectors actually alert.
        assert all(entry.batch_alerts > 0 for entry in report.entries), report.summary()

    def test_stealth_heavy_reproduces_batch_alert_sets(self, stealth_dataset):
        report = verify_equivalence(stealth_dataset)
        assert report.equivalent, report.summary()
        assert all(entry.batch_alerts > 0 for entry in report.entries), report.summary()

    def test_sharded_replay_is_also_equivalent(self, balanced_dataset):
        report = verify_equivalence(balanced_dataset, shards=3, backend="serial")
        assert report.equivalent, report.summary()

    def test_stream_matrix_plugs_into_batch_analysis(self, balanced_dataset):
        from repro.core.adjudication import adjudicate

        result = StreamEngine(default_online_detectors()).run(dataset_replay(balanced_dataset))
        matrix = result.to_matrix(balanced_dataset)
        assert matrix.n_requests == len(balanced_dataset)
        assert matrix.detector_names == list(DETECTOR_NAMES)
        one_oo_four = adjudicate(matrix, 1)
        assert one_oo_four.alert_count >= max(matrix.alert_counts().values())


class TestStreamingEdgeCases:
    def test_out_of_order_within_skew_matches_sorted_replay(self, balanced_dataset):
        ordered = sorted(balanced_dataset.records, key=lambda r: r.timestamp)
        shuffled = ordered[:]
        rng = random.Random(42)
        # Swap neighbours-at-distance-2 to introduce bounded disorder.
        for index in range(0, len(shuffled) - 3, 3):
            if rng.random() < 0.5:
                shuffled[index], shuffled[index + 2] = shuffled[index + 2], shuffled[index]

        sorted_result = StreamEngine(default_online_detectors()).run(iter(ordered))
        skewed_result = StreamEngine(
            default_online_detectors(), max_skew_seconds=300.0
        ).run(iter(shuffled))
        for sorted_set, skewed_set in zip(sorted_result.alert_sets, skewed_result.alert_sets):
            assert sorted_set.request_ids() == skewed_set.request_ids()

    def test_eviction_interval_does_not_change_final_alerts(self, balanced_dataset):
        from datetime import timedelta

        from repro.stream.sessionizer import IncrementalSessionizer

        aggressive = StreamEngine(default_online_detectors())
        aggressive.sessionizer = IncrementalSessionizer(
            timedelta(minutes=30), eviction_interval=16
        )
        lazy = StreamEngine(default_online_detectors())
        lazy.sessionizer = IncrementalSessionizer(
            timedelta(minutes=30), eviction_interval=100_000
        )
        result_a = aggressive.run(dataset_replay(balanced_dataset))
        result_b = lazy.run(dataset_replay(balanced_dataset))
        for set_a, set_b in zip(result_a.alert_sets, result_b.alert_sets):
            assert set_a.request_ids() == set_b.request_ids()
        # The aggressive engine actually evicted sessions mid-stream.
        assert result_a.stats.sessions_closed == result_b.stats.sessions_closed
