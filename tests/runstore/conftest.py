"""Run-store test fixtures: keep recording hermetic."""

from __future__ import annotations

import pytest


@pytest.fixture(autouse=True)
def _no_ambient_run_store(monkeypatch):
    """An ambient ``REPRO_RUN_STORE`` must never leak runs out of tests."""
    monkeypatch.delenv("REPRO_RUN_STORE", raising=False)
