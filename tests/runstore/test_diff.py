"""Run diffing: spec deltas, regression detection, thresholds, rendering."""

from __future__ import annotations

import pytest

from repro.exceptions import StoreError
from repro.obs.metrics import MetricsRegistry
from repro.runspec.result import RunResult
from repro.runstore import DEFAULT_THRESHOLD, Delta, RunStore, diff_runs, diff_specs


def make_result(
    *,
    alerts: int = 100,
    kappa: float = 0.8,
    ingested: int = 1000,
    latency: float = 0.01,
    seed: int = 3,
) -> RunResult:
    """A small synthetic result with a real telemetry snapshot."""
    registry = MetricsRegistry()
    registry.counter("repro_records_ingested_total", "Records.").inc(ingested)
    registry.counter("repro_detector_alerts_total", "Alerts.").inc(
        alerts, detector="inhouse"
    )
    histogram = registry.histogram("repro_stage_seconds", "Stage wall clock.")
    histogram.observe(latency, stage="experiment")
    return RunResult(
        mode="tables",
        source="balanced_small",
        total_requests=ingested,
        alert_counts={"inhouse": alerts},
        metrics={"kappa": kappa, "both": alerts // 2},
        timings={"experiment": latency},
        telemetry=registry.to_dict(),
        spec={"mode": "tables", "traffic": {"scenario": "balanced_small", "seed": seed}},
    )


@pytest.fixture()
def store(tmp_path):
    with RunStore(tmp_path / "runs.db") as store:
        yield store


# ----------------------------------------------------------------------
# diff_specs
# ----------------------------------------------------------------------
def test_diff_specs_reports_leaf_changes():
    left = {"traffic": {"scale": 0.02, "seed": 1}, "mode": "tables"}
    right = {"traffic": {"scale": 0.1, "seed": 1}, "mode": "tables"}
    assert diff_specs(left, right) == {"traffic.scale": (0.02, 0.1)}


def test_diff_specs_handles_added_and_removed_keys():
    changes = diff_specs({"a": 1}, {"b": 2})
    assert changes == {"a": (1, None), "b": (None, 2)}


def test_diff_specs_none_means_empty():
    assert diff_specs(None, None) == {}


# ----------------------------------------------------------------------
# Delta arithmetic
# ----------------------------------------------------------------------
def test_delta_relative_change():
    assert Delta("x", 100.0, 120.0).change == pytest.approx(0.2)
    assert Delta("x", 100.0, 80.0).change == pytest.approx(-0.2)
    assert Delta("x", 0.0, 0.0).change == 0.0
    assert Delta("x", 0.0, 5.0).change == float("inf")


# ----------------------------------------------------------------------
# Regression detection (the ISSUE's acceptance case)
# ----------------------------------------------------------------------
def test_injected_counter_regression_is_detected(store):
    baseline = store.record(make_result(alerts=100))
    regressed = store.record(make_result(alerts=125))  # +25% alert counter

    diff = diff_runs(store, baseline.run_id, regressed.run_id)
    flagged = {delta.name for delta in diff.regressions(DEFAULT_THRESHOLD)}
    assert "counter.repro_detector_alerts_total{detector=inhouse}" in flagged
    assert "alert_counts.inhouse" in flagged
    # A 40% threshold tolerates the same injected change.
    assert diff.regressions(0.4) == []


def test_equal_runs_have_no_regressions(store):
    first = store.record(make_result())
    second = store.record(make_result())
    diff = diff_runs(store, first.run_id, second.run_id)
    assert diff.spec_changes == {}
    assert diff.regressions() == []


def test_wall_clock_quantities_never_count_as_regressions(store):
    fast = store.record(make_result(latency=0.01))
    slow = store.record(make_result(latency=10.0))  # 1000x slower
    diff = diff_runs(store, fast.run_id, slow.run_id)
    assert diff.regressions() == []
    # ... but the deltas are still visible in the report sections.
    assert any(delta.name == "timings.experiment" for delta in diff.timings)
    assert any("repro_stage_seconds" in delta.name for delta in diff.quantiles)


def test_regressions_sorted_by_magnitude(store):
    left = store.record(make_result(alerts=100, ingested=1000))
    right = store.record(make_result(alerts=150, ingested=2000))  # +50%, +100%
    flagged = diff_runs(store, left.run_id, right.run_id).regressions()
    changes = [abs(delta.change) for delta in flagged]
    assert changes == sorted(changes, reverse=True)


def test_negative_threshold_is_refused(store):
    first = store.record(make_result())
    diff = diff_runs(store, first.run_id, first.run_id)
    with pytest.raises(StoreError, match="non-negative"):
        diff.regressions(-0.1)


# ----------------------------------------------------------------------
# Rendering and serialization
# ----------------------------------------------------------------------
def test_render_marks_regressions_and_spec_changes(store):
    left = store.record(make_result(alerts=100, seed=3))
    right = store.record(make_result(alerts=200, seed=4))
    report = diff_runs(store, left.run_id, right.run_id).render()
    assert "traffic.seed: 3 -> 4" in report
    assert "<< regression" in report
    assert "alert_counts.inhouse: 100 -> 200" in report


def test_render_same_series_reruns(store):
    first = store.record(make_result())
    second = store.record(make_result())
    report = diff_runs(store, first.run_id, second.run_id).render()
    assert "re-run comparison" in report


def test_to_dict_is_json_ready(store):
    import json

    left = store.record(make_result(alerts=100))
    right = store.record(make_result(alerts=130))
    payload = diff_runs(store, left.run_id, right.run_id).to_dict()
    parsed = json.loads(json.dumps(payload))
    assert parsed["left"]["run_id"] == left.run_id
    assert any(d["name"] == "alert_counts.inhouse" for d in parsed["metrics"])


def test_diff_missing_run_raises(store):
    store.record(make_result())
    with pytest.raises(StoreError, match="no run"):
        diff_runs(store, 1, 42)
