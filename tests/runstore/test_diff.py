"""Run diffing: spec deltas, regression detection, thresholds, rendering."""

from __future__ import annotations

import pytest

from repro.exceptions import StoreError
from repro.obs.metrics import MetricsRegistry
from repro.runspec.result import RunResult
from repro.runstore import DEFAULT_THRESHOLD, Delta, RunStore, diff_runs, diff_specs


def make_profile(
    *, dataset_samples: int = 100, dataset_peak: int = 1_000_000, memory: str = "rss"
) -> dict:
    """A minimal stored profile capture with a tunable hot span."""
    return {
        "format": "repro-prof",
        "version": 1,
        "hz": 97.0,
        "duration_seconds": 2.0,
        "memory": memory,
        "samples": [
            {"frames": ["m:work"], "count": dataset_samples, "span_path": "dataset"}
        ],
        "spans": [
            {
                "path": "dataset",
                "self_samples": dataset_samples,
                "total_samples": dataset_samples,
                "calls": 1,
                "alloc_bytes": 4096,
                "peak_bytes": dataset_peak,
            },
            {
                "path": "experiment",
                "self_samples": 50,
                "total_samples": 50,
                "calls": 1,
                "alloc_bytes": 1024,
                "peak_bytes": 65536,
            },
        ],
    }


def make_result(
    *,
    alerts: int = 100,
    kappa: float = 0.8,
    ingested: int = 1000,
    latency: float = 0.01,
    seed: int = 3,
    profile: dict | None = None,
) -> RunResult:
    """A small synthetic result with a real telemetry snapshot."""
    registry = MetricsRegistry()
    registry.counter("repro_records_ingested_total", "Records.").inc(ingested)
    registry.counter("repro_detector_alerts_total", "Alerts.").inc(
        alerts, detector="inhouse"
    )
    histogram = registry.histogram("repro_stage_seconds", "Stage wall clock.")
    histogram.observe(latency, stage="experiment")
    return RunResult(
        mode="tables",
        source="balanced_small",
        total_requests=ingested,
        alert_counts={"inhouse": alerts},
        metrics={"kappa": kappa, "both": alerts // 2},
        timings={"experiment": latency},
        telemetry=registry.to_dict(),
        profile=profile,
        spec={"mode": "tables", "traffic": {"scenario": "balanced_small", "seed": seed}},
    )


@pytest.fixture()
def store(tmp_path):
    with RunStore(tmp_path / "runs.db") as store:
        yield store


# ----------------------------------------------------------------------
# diff_specs
# ----------------------------------------------------------------------
def test_diff_specs_reports_leaf_changes():
    left = {"traffic": {"scale": 0.02, "seed": 1}, "mode": "tables"}
    right = {"traffic": {"scale": 0.1, "seed": 1}, "mode": "tables"}
    assert diff_specs(left, right) == {"traffic.scale": (0.02, 0.1)}


def test_diff_specs_handles_added_and_removed_keys():
    changes = diff_specs({"a": 1}, {"b": 2})
    assert changes == {"a": (1, None), "b": (None, 2)}


def test_diff_specs_none_means_empty():
    assert diff_specs(None, None) == {}


# ----------------------------------------------------------------------
# Delta arithmetic
# ----------------------------------------------------------------------
def test_delta_relative_change():
    assert Delta("x", 100.0, 120.0).change == pytest.approx(0.2)
    assert Delta("x", 100.0, 80.0).change == pytest.approx(-0.2)
    assert Delta("x", 0.0, 0.0).change == 0.0
    assert Delta("x", 0.0, 5.0).change == float("inf")


# ----------------------------------------------------------------------
# Regression detection (the ISSUE's acceptance case)
# ----------------------------------------------------------------------
def test_injected_counter_regression_is_detected(store):
    baseline = store.record(make_result(alerts=100))
    regressed = store.record(make_result(alerts=125))  # +25% alert counter

    diff = diff_runs(store, baseline.run_id, regressed.run_id)
    flagged = {delta.name for delta in diff.regressions(DEFAULT_THRESHOLD)}
    assert "counter.repro_detector_alerts_total{detector=inhouse}" in flagged
    assert "alert_counts.inhouse" in flagged
    # A 40% threshold tolerates the same injected change.
    assert diff.regressions(0.4) == []


def test_equal_runs_have_no_regressions(store):
    first = store.record(make_result())
    second = store.record(make_result())
    diff = diff_runs(store, first.run_id, second.run_id)
    assert diff.spec_changes == {}
    assert diff.regressions() == []


def test_wall_clock_quantities_never_count_as_regressions(store):
    fast = store.record(make_result(latency=0.01))
    slow = store.record(make_result(latency=10.0))  # 1000x slower
    diff = diff_runs(store, fast.run_id, slow.run_id)
    assert diff.regressions() == []
    # ... but the deltas are still visible in the report sections.
    assert any(delta.name == "timings.experiment" for delta in diff.timings)
    assert any("repro_stage_seconds" in delta.name for delta in diff.quantiles)


def test_injected_slowed_span_is_flagged_as_regression(store):
    baseline = store.record(make_result(profile=make_profile(dataset_samples=100)))
    slowed = store.record(
        make_result(profile=make_profile(dataset_samples=150))  # +50% self time
    )

    diff = diff_runs(store, baseline.run_id, slowed.run_id)
    flagged = {delta.name for delta in diff.regressions(DEFAULT_THRESHOLD)}
    assert "profile.span{path=dataset}.self_seconds" in flagged
    # The untouched span does not fire.
    assert "profile.span{path=experiment}.self_seconds" not in flagged
    # The rendered report carries the section and the marker.
    report = diff.render()
    assert "profile spans:" in report
    assert "<< regression" in report


def test_injected_span_memory_regression_is_flagged(store):
    lean = store.record(make_result(profile=make_profile(dataset_peak=1_000_000)))
    bloated = store.record(make_result(profile=make_profile(dataset_peak=2_500_000)))
    flagged = {
        delta.name
        for delta in diff_runs(store, lean.run_id, bloated.run_id).regressions()
    }
    assert "profile.span{path=dataset}.peak_bytes" in flagged


def test_profile_deltas_require_both_runs_profiled(store):
    profiled = store.record(make_result(profile=make_profile()))
    plain = store.record(make_result())
    diff = diff_runs(store, profiled.run_id, plain.run_id)
    assert diff.profile == []
    assert all("span{" not in delta.name for delta in diff.regressions())


def test_memory_deltas_require_matching_capture_modes(store):
    # Resident-set watermarks vs traced bytes differ by orders of
    # magnitude -- comparing them would flag phantom memory regressions.
    rss = store.record(make_result(profile=make_profile(memory="rss")))
    precise = store.record(
        make_result(profile=make_profile(dataset_peak=50_000_000, memory="tracemalloc"))
    )
    diff = diff_runs(store, rss.run_id, precise.run_id)
    assert all("peak_bytes" not in delta.name for delta in diff.profile)
    # Self time stays comparable: the sampler is mode-independent.
    assert any("self_seconds" in delta.name for delta in diff.profile)


def test_profiler_counters_are_never_flagged_as_regressions(store):
    # The sample total scales with wall clock, not behaviour; it must be
    # reported in the counter table but excluded from regression flags.
    def profiled_result(samples: int) -> RunResult:
        result = make_result(profile=make_profile())
        registry = MetricsRegistry.from_dict(result.telemetry)
        registry.counter("repro_profile_samples_total", "Samples.").inc(samples)
        result.telemetry = registry.to_dict()
        return result

    left = store.record(profiled_result(100))
    right = store.record(profiled_result(10))  # -90%, pure wall-clock noise
    diff = diff_runs(store, left.run_id, right.run_id)
    assert any(
        delta.name == "counter.repro_profile_samples_total" for delta in diff.counters
    )
    assert all(
        not delta.name.startswith("counter.repro_profile_")
        for delta in diff.regressions()
    )


def test_regressions_sorted_by_magnitude(store):
    left = store.record(make_result(alerts=100, ingested=1000))
    right = store.record(make_result(alerts=150, ingested=2000))  # +50%, +100%
    flagged = diff_runs(store, left.run_id, right.run_id).regressions()
    changes = [abs(delta.change) for delta in flagged]
    assert changes == sorted(changes, reverse=True)


def test_negative_threshold_is_refused(store):
    first = store.record(make_result())
    diff = diff_runs(store, first.run_id, first.run_id)
    with pytest.raises(StoreError, match="non-negative"):
        diff.regressions(-0.1)


# ----------------------------------------------------------------------
# Rendering and serialization
# ----------------------------------------------------------------------
def test_render_marks_regressions_and_spec_changes(store):
    left = store.record(make_result(alerts=100, seed=3))
    right = store.record(make_result(alerts=200, seed=4))
    report = diff_runs(store, left.run_id, right.run_id).render()
    assert "traffic.seed: 3 -> 4" in report
    assert "<< regression" in report
    assert "alert_counts.inhouse: 100 -> 200" in report


def test_render_same_series_reruns(store):
    first = store.record(make_result())
    second = store.record(make_result())
    report = diff_runs(store, first.run_id, second.run_id).render()
    assert "re-run comparison" in report


def test_to_dict_is_json_ready(store):
    import json

    left = store.record(make_result(alerts=100))
    right = store.record(make_result(alerts=130))
    payload = diff_runs(store, left.run_id, right.run_id).to_dict()
    parsed = json.loads(json.dumps(payload))
    assert parsed["left"]["run_id"] == left.run_id
    assert any(d["name"] == "alert_counts.inhouse" for d in parsed["metrics"])


def test_diff_missing_run_raises(store):
    store.record(make_result())
    with pytest.raises(StoreError, match="no run"):
        diff_runs(store, 1, 42)
