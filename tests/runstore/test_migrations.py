"""Schema migrations: v1 fixtures upgrade in place, newer files refuse."""

from __future__ import annotations

import json
import sqlite3

import pytest

from repro.exceptions import StoreError
from repro.runstore import (
    SCHEMA_VERSION,
    RunStore,
    apply_migrations,
    schema_version,
    spec_fingerprint,
)

V1_SPEC = {"mode": "tables", "traffic": {"scenario": "balanced_small", "seed": 3}}

V1_RESULT = {
    "mode": "tables",
    "source": "balanced_small",
    "label": "",
    "total_requests": 1234,
    "alert_counts": {"commercial": 10, "inhouse": 12},
    "metrics": {"both": 8},
    "tables": {},
    "rows": {},
    "timings": {"experiment": 0.5},
    "summary": [],
    "enforcement": None,
    "spec": V1_SPEC,
}


def make_v1_store(path) -> str:
    """A version-1 database with one recorded run, as an old library wrote it."""
    spec_hash = spec_fingerprint(V1_SPEC)
    connection = sqlite3.connect(path)
    try:
        assert apply_migrations(connection, target=1) == 1
        with connection:
            connection.execute(
                "INSERT INTO specs (hash, mode, label, spec_json, first_recorded_at) "
                "VALUES (?, ?, ?, ?, ?)",
                (spec_hash, "tables", "", json.dumps(V1_SPEC, sort_keys=True), 1520000000.0),
            )
            connection.execute(
                "INSERT INTO runs (spec_hash, mode, source, label, recorded_at, "
                "wall_seconds, total_requests, result_json, telemetry_json) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    spec_hash,
                    "tables",
                    "balanced_small",
                    "",
                    1520000001.0,
                    0.5,
                    1234,
                    json.dumps(V1_RESULT),
                    None,
                ),
            )
    finally:
        connection.close()
    return spec_hash


def test_fresh_database_reports_version_zero(tmp_path):
    connection = sqlite3.connect(tmp_path / "fresh.db")
    assert schema_version(connection) == 0
    connection.close()


def test_migrations_reach_current_version(tmp_path):
    connection = sqlite3.connect(tmp_path / "new.db")
    assert apply_migrations(connection) == SCHEMA_VERSION
    # Idempotent: a second open applies nothing and stays current.
    assert apply_migrations(connection) == SCHEMA_VERSION
    connection.close()


def test_v1_database_upgrades_in_place(tmp_path):
    path = tmp_path / "old.db"
    spec_hash = make_v1_store(path)

    with RunStore(path) as store:
        # The open migrated the file to the current schema...
        assert store.stats().schema_version == SCHEMA_VERSION
        # ...the v1 row is intact and readable through the v2 API...
        summary = store.get(1)
        assert summary.spec_hash == spec_hash
        assert summary.total_requests == 1234
        # ...and the v2 columns exist but are empty for the old row.
        assert summary.trace_fingerprint is None
        assert summary.package_version is None
        assert store.export(1)["telemetry"] is None
        assert store.export(1)["metrics"] == {"both": 8}

    # The upgrade is persistent, not per-open.
    connection = sqlite3.connect(path)
    assert schema_version(connection) == SCHEMA_VERSION
    connection.close()


def make_v2_store(path) -> str:
    """A version-2 database with one recorded run, as the previous library wrote it."""
    spec_hash = spec_fingerprint(V1_SPEC)
    connection = sqlite3.connect(path)
    try:
        assert apply_migrations(connection, target=2) == 2
        with connection:
            connection.execute(
                "INSERT INTO specs (hash, mode, label, spec_json, first_recorded_at) "
                "VALUES (?, ?, ?, ?, ?)",
                (spec_hash, "tables", "", json.dumps(V1_SPEC, sort_keys=True), 1520000000.0),
            )
            connection.execute(
                "INSERT INTO runs (spec_hash, mode, source, label, recorded_at, "
                "wall_seconds, total_requests, result_json, telemetry_json, "
                "trace_fingerprint, package_version) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    spec_hash,
                    "tables",
                    "balanced_small",
                    "",
                    1520000001.0,
                    0.5,
                    1234,
                    json.dumps(V1_RESULT),
                    None,
                    None,
                    "1.8.0",
                ),
            )
    finally:
        connection.close()
    return spec_hash


def test_v2_database_upgrades_to_v3_with_profiles_table(tmp_path):
    path = tmp_path / "v2.db"
    make_v2_store(path)

    with RunStore(path) as store:
        assert store.stats().schema_version == SCHEMA_VERSION
        # The v2 row is intact, and the new profile surface reads as absent.
        assert store.get(1).total_requests == 1234
        assert store.export(1)["profile"] is None
        assert store.profile(1) is None

    # The profiles table exists and the upgrade persisted.
    connection = sqlite3.connect(path)
    assert schema_version(connection) == SCHEMA_VERSION
    assert connection.execute("SELECT COUNT(*) FROM profiles").fetchone()[0] == 0
    connection.close()


def test_v2_database_records_profiles_after_upgrade(tmp_path):
    from repro.runspec.result import RunResult

    path = tmp_path / "v2.db"
    make_v2_store(path)
    profile = {
        "format": "repro-prof",
        "version": 1,
        "hz": 97.0,
        "duration_seconds": 1.0,
        "samples": [{"frames": ["m:f"], "count": 3, "span_path": "dataset"}],
        "spans": [
            {
                "path": "dataset",
                "self_samples": 3,
                "total_samples": 3,
                "calls": 1,
                "alloc_bytes": 0,
                "peak_bytes": 0,
            }
        ],
    }
    result = RunResult.from_dict(V1_RESULT)
    result.profile = profile
    with RunStore(path) as store:
        recorded = store.record(result)
        assert recorded.series_index == 2
        assert store.profile(recorded.run_id) == profile
        assert store.export(recorded.run_id)["profile"] == profile
        # The old run still reads back without one.
        assert store.profile(1) is None


def test_v1_database_accepts_new_recordings_after_upgrade(tmp_path):
    from repro.runspec.result import RunResult

    path = tmp_path / "old.db"
    make_v1_store(path)
    with RunStore(path) as store:
        recorded = store.record(RunResult.from_dict(V1_RESULT))
        # Same spec: the new run joins the v1 run's series.
        assert recorded.series_index == 2
        assert store.get(recorded.run_id).package_version is not None


def test_newer_schema_is_refused(tmp_path):
    path = tmp_path / "future.db"
    connection = sqlite3.connect(path)
    apply_migrations(connection)
    with connection:
        connection.execute(
            "UPDATE runstore_meta SET value = ? WHERE key = 'schema_version'",
            (str(SCHEMA_VERSION + 1),),
        )
    connection.close()
    with pytest.raises(StoreError, match="newer"):
        RunStore(path)


def test_downgrade_target_is_refused(tmp_path):
    connection = sqlite3.connect(tmp_path / "new.db")
    apply_migrations(connection)
    with pytest.raises(StoreError, match="newer"):
        apply_migrations(connection, target=1)
    connection.close()


def test_corrupt_schema_version_is_refused(tmp_path):
    path = tmp_path / "corrupt.db"
    connection = sqlite3.connect(path)
    apply_migrations(connection)
    with connection:
        connection.execute(
            "UPDATE runstore_meta SET value = 'bogus' WHERE key = 'schema_version'"
        )
    connection.close()
    with pytest.raises(StoreError, match="corrupt"):
        RunStore(path)
