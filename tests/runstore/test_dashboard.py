"""The dashboard, exercised over real HTTP on an ephemeral port."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.exceptions import StoreError
from repro.obs.metrics import MetricsRegistry
from repro.runspec.result import RunResult
from repro.runstore import RunStore, serve_dashboard, sparkline


def make_result(*, alerts: int = 100, seed: int = 3) -> RunResult:
    registry = MetricsRegistry()
    registry.counter("repro_detector_alerts_total", "Alerts.").inc(
        alerts, detector="inhouse"
    )
    registry.histogram("repro_stage_seconds", "Stage wall clock.").observe(
        0.25, stage="experiment"
    )
    return RunResult(
        mode="tables",
        source="balanced_small",
        total_requests=5000,
        alert_counts={"inhouse": alerts},
        metrics={"kappa": 0.8},
        timings={"experiment": 0.25},
        telemetry=registry.to_dict(),
        spec={"mode": "tables", "traffic": {"seed": seed}},
    )


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """A store with two series (one of them three runs deep) behind HTTP."""
    path = tmp_path_factory.mktemp("dash") / "runs.db"
    with RunStore(path) as store:
        for alerts in (100, 110, 120):
            store.record(make_result(alerts=alerts, seed=3))
        store.record(make_result(alerts=50, seed=4))
        spec_hash = store.list_runs()[-1].spec_hash  # the seed-3 series
    server = serve_dashboard(path, port=0)
    yield server, spec_hash
    server.close()


def fetch(server, path: str) -> str:
    with urllib.request.urlopen(server.url.rstrip("/") + path, timeout=10) as response:
        assert response.status == 200
        return response.read().decode("utf-8")


# ----------------------------------------------------------------------
# HTML pages
# ----------------------------------------------------------------------
def test_run_list_page(served):
    server, _ = served
    body = fetch(server, "/")
    assert "<html" in body.lower()
    assert "4 run" in body
    assert "balanced_small" in body
    assert "/runs/1" in body  # rows link to run detail pages


def test_run_detail_page_shows_telemetry(served):
    server, _ = served
    body = fetch(server, "/runs/1")
    assert "balanced_small" in body
    assert "repro_detector_alerts_total" in body  # telemetry counter table
    assert "repro_stage_seconds" in body  # histogram quantile table
    assert "kappa" in body  # metrics table
    assert "experiment" in body  # stage timing breakdown


def test_series_page_has_sparklines(served):
    server, spec_hash = served
    body = fetch(server, f"/series/{spec_hash}")
    assert "series" in body
    assert any(block in body for block in "▁▂▃▄▅▆▇█")


def test_healthz(served):
    server, _ = served
    assert fetch(server, "/healthz").strip() == "ok"


def test_unknown_run_is_404(served):
    server, _ = served
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        fetch(server, "/runs/999")
    assert excinfo.value.code == 404


def test_unknown_path_is_404(served):
    server, _ = served
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        fetch(server, "/nope")
    assert excinfo.value.code == 404


# ----------------------------------------------------------------------
# JSON API
# ----------------------------------------------------------------------
def test_api_run_list(served):
    server, _ = served
    payload = json.loads(fetch(server, "/api/runs"))
    assert payload["stats"]["runs"] == 4
    assert payload["stats"]["specs"] == 2
    assert len(payload["runs"]) == 4


def test_api_run_detail_is_exact_export(served):
    server, _ = served
    payload = json.loads(fetch(server, "/api/runs/1"))
    with RunStore(server._store_path, create=False) as store:
        assert payload == store.export(1)


def test_api_series_trends(served):
    server, spec_hash = served
    payload = json.loads(fetch(server, f"/api/series/{spec_hash}"))
    assert len(payload["runs"]) == 3
    counters = payload["counters"]
    assert counters["repro_detector_alerts_total"] == [100.0, 110.0, 120.0]


def test_dashboard_sees_appends_live(served):
    """Runs recorded after the server started appear without a restart."""
    server, _ = served
    before = json.loads(fetch(server, "/api/runs"))["stats"]["runs"]
    with RunStore(server._store_path) as store:
        store.record(make_result(alerts=999, seed=5))
    after = json.loads(fetch(server, "/api/runs"))["stats"]["runs"]
    assert after == before + 1


# ----------------------------------------------------------------------
# Server lifecycle / sparkline unit
# ----------------------------------------------------------------------
def test_serve_requires_openable_store(tmp_path):
    with pytest.raises(StoreError):
        serve_dashboard(tmp_path / "absent.db")


def test_port_zero_binds_an_ephemeral_port(tmp_path):
    path = tmp_path / "runs.db"
    RunStore(path).close()
    server = serve_dashboard(path, port=0)
    try:
        assert server.port > 0
        assert str(server.port) in server.url
    finally:
        server.close()


def test_sparkline_shape():
    assert sparkline([]) == ""
    assert sparkline([1.0]) == "▁"  # a flat series renders as the low block
    line = sparkline([0.0, 5.0, 10.0])
    assert len(line) == 3
    assert line[0] == "▁" and line[-1] == "█"
