"""The ``repro runs`` CLI family and ``--store`` on executing subcommands."""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.cli import main
from repro.runstore import RUN_STORE_ENV, RunStore


@pytest.fixture(scope="module")
def recorded_store(tmp_path_factory):
    """A store with three CLI-recorded runs: two re-runs plus one reseed."""
    path = str(tmp_path_factory.mktemp("cli") / "runs.db")
    for seed in ("3", "3", "7"):
        code = main(["tables", "--scenario", "balanced_small", "--seed", seed, "--store", path])
        assert code == 0
    return path


def run_cli(capsys, *argv: str) -> tuple[int, str]:
    code = main(list(argv))
    return code, capsys.readouterr().out


# ----------------------------------------------------------------------
# Recording via --store / env
# ----------------------------------------------------------------------
def test_store_flag_records_runs(recorded_store):
    with RunStore(recorded_store, create=False) as store:
        assert len(store) == 3
        assert store.stats().specs == 2  # seeds 3+3 dedupe, 7 is new


def test_env_var_is_the_default_store(tmp_path, monkeypatch, capsys):
    path = str(tmp_path / "env.db")
    monkeypatch.setenv(RUN_STORE_ENV, path)
    assert main(["tables", "--scenario", "balanced_small", "--seed", "5"]) == 0
    capsys.readouterr()
    with RunStore(path, create=False) as store:
        assert len(store) == 1


def test_store_flag_beats_env(tmp_path, monkeypatch, capsys):
    flag_path, env_path = str(tmp_path / "flag.db"), str(tmp_path / "env.db")
    monkeypatch.setenv(RUN_STORE_ENV, env_path)
    assert (
        main(
            ["tables", "--scenario", "balanced_small", "--seed", "5", "--store", flag_path]
        )
        == 0
    )
    capsys.readouterr()
    with RunStore(flag_path, create=False) as store:
        assert len(store) == 1
    import os

    assert not os.path.exists(env_path)


# ----------------------------------------------------------------------
# runs list / show / export
# ----------------------------------------------------------------------
def test_runs_list(recorded_store, capsys):
    code, out = run_cli(capsys, "runs", "list", "--store", recorded_store)
    assert code == 0
    assert "3 run(s) over 2 spec(s)" in out
    assert out.count("balanced_small") == 3


def test_runs_list_json_and_filters(recorded_store, capsys):
    code, out = run_cli(capsys, "runs", "list", "--store", recorded_store, "--json")
    assert code == 0
    payload = json.loads(out)
    assert payload["stats"]["runs"] == 3
    assert len(payload["runs"]) == 3

    code, out = run_cli(
        capsys, "runs", "list", "--store", recorded_store, "--limit", "1", "--json"
    )
    assert len(json.loads(out)["runs"]) == 1

    series = payload["runs"][0]["spec_hash"][:10]
    code, out = run_cli(
        capsys, "runs", "list", "--store", recorded_store, "--series", series, "--json"
    )
    assert {run["spec_hash"][:10] for run in json.loads(out)["runs"]} == {series}


def test_runs_show_renders_tables(recorded_store, capsys):
    code, out = run_cli(capsys, "runs", "show", "1", "--store", recorded_store)
    assert code == 0
    assert "Table 1" in out  # the stored run re-renders the paper report


def test_runs_show_json_is_exact_export(recorded_store, capsys):
    code, out = run_cli(capsys, "runs", "show", "1", "--store", recorded_store, "--json")
    assert code == 0
    with RunStore(recorded_store, create=False) as store:
        assert json.loads(out) == store.export(1)


def test_runs_export_matches_show_json(recorded_store, capsys, tmp_path):
    output = tmp_path / "run1.json"
    code, _ = run_cli(
        capsys, "runs", "export", "1", "--store", recorded_store, "--output", str(output)
    )
    assert code == 0
    with RunStore(recorded_store, create=False) as store:
        assert json.loads(output.read_text()) == store.export(1)


def test_runs_export_stdout(recorded_store, capsys):
    code, out = run_cli(capsys, "runs", "export", "2", "--store", recorded_store)
    assert code == 0
    assert json.loads(out)["mode"] == "tables"


# ----------------------------------------------------------------------
# runs diff
# ----------------------------------------------------------------------
def test_runs_diff_rerun_has_no_regressions(recorded_store, capsys):
    code, out = run_cli(capsys, "runs", "diff", "1", "2", "--store", recorded_store)
    assert code == 0
    assert "re-run comparison" in out


def test_runs_diff_reports_spec_changes(recorded_store, capsys):
    code, out = run_cli(capsys, "runs", "diff", "1", "3", "--store", recorded_store)
    assert code == 0
    assert "traffic.seed" in out


def test_runs_diff_fail_on_regression_both_ways(tmp_path, capsys):
    """An injected >=20% counter regression flips the exit code."""
    from repro.obs.metrics import MetricsRegistry
    from repro.runspec.result import RunResult

    def fake_run(alerts: int) -> RunResult:
        registry = MetricsRegistry()
        registry.counter("repro_detector_alerts_total", "Alerts.").inc(
            alerts, detector="inhouse"
        )
        return RunResult(
            mode="tables",
            source="balanced_small",
            total_requests=1000,
            alert_counts={"inhouse": alerts},
            telemetry=registry.to_dict(),
            spec={"mode": "tables"},
        )

    path = str(tmp_path / "reg.db")
    with RunStore(path) as store:
        store.record(fake_run(100))
        store.record(fake_run(125))  # +25%: beyond the default 20% threshold

    code, out = run_cli(
        capsys, "runs", "diff", "1", "2", "--store", path, "--fail-on-regression"
    )
    assert code == 1
    assert "regression" in out

    # A looser threshold tolerates the same delta.
    code, _ = run_cli(
        capsys,
        "runs",
        "diff",
        "1",
        "2",
        "--store",
        path,
        "--fail-on-regression",
        "--threshold",
        "0.4",
    )
    assert code == 0

    # Without --fail-on-regression the diff always exits 0.
    code, out = run_cli(capsys, "runs", "diff", "1", "2", "--store", path)
    assert code == 0
    assert "<< regression" in out


def test_runs_diff_fail_on_regression_flags_slowed_span(tmp_path, capsys):
    """An artificially slowed span in a stored profile flips the exit code."""
    from repro.runspec.result import RunResult

    def profiled_run(dataset_samples: int) -> RunResult:
        return RunResult(
            mode="tables",
            source="balanced_small",
            total_requests=1000,
            alert_counts={"inhouse": 10},
            profile={
                "format": "repro-prof",
                "version": 1,
                "hz": 97.0,
                "duration_seconds": 2.0,
                "samples": [],
                "spans": [
                    {
                        "path": "dataset",
                        "self_samples": dataset_samples,
                        "total_samples": dataset_samples,
                        "calls": 1,
                        "alloc_bytes": 0,
                        "peak_bytes": 1_000_000,
                    }
                ],
            },
            spec={"mode": "tables"},
        )

    path = str(tmp_path / "slow.db")
    with RunStore(path) as store:
        store.record(profiled_run(100))
        store.record(profiled_run(160))  # the dataset stage got 60% slower

    code, out = run_cli(
        capsys, "runs", "diff", "1", "2", "--store", path, "--fail-on-regression"
    )
    assert code == 1
    assert "span{path=dataset}.self_seconds" in out
    assert "<< regression" in out

    # A threshold above the injected slowdown tolerates it.
    code, _ = run_cli(
        capsys,
        "runs",
        "diff",
        "1",
        "2",
        "--store",
        path,
        "--fail-on-regression",
        "--threshold",
        "0.8",
    )
    assert code == 0


def test_runs_diff_json(recorded_store, capsys):
    code, out = run_cli(
        capsys, "runs", "diff", "1", "3", "--store", recorded_store, "--json"
    )
    assert code == 0
    payload = json.loads(out)
    assert payload["left"]["run_id"] == 1
    assert "traffic.seed" in payload["spec_changes"]
    assert "regressions" in payload and "threshold" in payload


# ----------------------------------------------------------------------
# runs gc
# ----------------------------------------------------------------------
def test_runs_gc(tmp_path, capsys):
    path = str(tmp_path / "gc.db")
    for seed in ("3", "3", "3"):
        assert (
            main(["tables", "--scenario", "balanced_small", "--seed", seed, "--store", path])
            == 0
        )
    capsys.readouterr()
    code, out = run_cli(capsys, "runs", "gc", "--store", path, "--keep", "1")
    assert code == 0
    assert "deleted 2 run(s)" in out
    with RunStore(path, create=False) as store:
        assert len(store) == 1


# ----------------------------------------------------------------------
# Error paths
# ----------------------------------------------------------------------
def test_runs_without_store_exits_with_message(monkeypatch):
    monkeypatch.delenv(RUN_STORE_ENV, raising=False)
    with pytest.raises(SystemExit) as excinfo:
        main(["runs", "list"])
    assert "store" in str(excinfo.value).lower()


def test_runs_list_missing_store_errors(tmp_path):
    from repro.exceptions import StoreError

    with pytest.raises(StoreError, match="does not exist"):
        main(["runs", "list", "--store", str(tmp_path / "absent.db")])


# ----------------------------------------------------------------------
# obs dump --store
# ----------------------------------------------------------------------
def test_obs_dump_records_into_store(tmp_path, capsys):
    from repro.runspec import RunSpec, TrafficSpec

    path = str(tmp_path / "obs.db")
    config = tmp_path / "spec.json"
    RunSpec(
        mode="tables",
        traffic=TrafficSpec(
            scenario="balanced_small", seed=3, params={"total_requests": 3000}
        ),
    ).save(config)
    code = main(["obs", "dump", "--config", str(config), "--store", path])
    assert code == 0
    capsys.readouterr()
    with RunStore(path, create=False) as store:
        assert len(store) == 1
        # obs dump always runs instrumented, so telemetry is stored.
        assert store.export(1)["telemetry"] is not None


# ----------------------------------------------------------------------
# runs serve (quick HTTP round trip through the CLI-facing API)
# ----------------------------------------------------------------------
def test_serve_dashboard_over_recorded_store(recorded_store):
    from repro.runstore import serve_dashboard

    server = serve_dashboard(recorded_store, port=0)
    try:
        with urllib.request.urlopen(server.url.rstrip("/") + "/api/runs", timeout=10) as r:
            assert json.loads(r.read())["stats"]["runs"] == 3
    finally:
        server.close()
