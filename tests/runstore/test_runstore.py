"""The run store: record, dedupe, round-trip, series, gc, lifecycle."""

from __future__ import annotations

import os
import sqlite3

import pytest

from repro.exceptions import StoreError
from repro.runspec import RunSpec, TrafficSpec, execute
from repro.runspec.result import RunResult
from repro.runstore import (
    RUN_STORE_ENV,
    RunStore,
    open_store,
    spec_fingerprint,
)

SMALL_TRAFFIC = TrafficSpec(scenario="balanced_small", seed=3, params={"total_requests": 3000})


@pytest.fixture(scope="module")
def small_run():
    """One executed small tables run (module-scoped: execution is the slow part)."""
    return execute(RunSpec(mode="tables", traffic=SMALL_TRAFFIC))


@pytest.fixture()
def store(tmp_path):
    with RunStore(tmp_path / "runs.db") as store:
        yield store


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
def test_fingerprint_ignores_key_order():
    assert spec_fingerprint({"a": 1, "b": {"c": 2}}) == spec_fingerprint(
        {"b": {"c": 2}, "a": 1}
    )


def test_fingerprint_distinguishes_values():
    assert spec_fingerprint({"a": 1}) != spec_fingerprint({"a": 2})


def test_fingerprint_none_is_empty_spec():
    assert spec_fingerprint(None) == spec_fingerprint({})


# ----------------------------------------------------------------------
# Record / round trip
# ----------------------------------------------------------------------
def test_record_round_trips_byte_identically(store, small_run):
    recorded = store.record(small_run, wall_seconds=1.25)
    assert store.export(recorded.run_id) == small_run.to_dict()
    assert store.load(recorded.run_id).to_dict() == small_run.to_dict()


def test_record_same_spec_forms_a_series(store, small_run):
    first = store.record(small_run)
    second = store.record(small_run)
    assert first.spec_hash == second.spec_hash
    assert (first.series_index, second.series_index) == (1, 2)
    assert store.stats().specs == 1
    assert [s.run_id for s in store.series(first.spec_hash)] == [
        first.run_id,
        second.run_id,
    ]


def test_record_different_spec_opens_a_new_series(store, small_run):
    other = execute(
        RunSpec(
            mode="tables",
            traffic=TrafficSpec(
                scenario="balanced_small", seed=9, params={"total_requests": 3000}
            ),
        )
    )
    store.record(small_run)
    recorded = store.record(other)
    assert recorded.series_index == 1
    assert store.stats() .specs == 2


def test_record_rejects_non_results(store):
    with pytest.raises(StoreError, match="RunResult"):
        store.record({"mode": "tables"})


def test_record_stores_package_version_and_fingerprint(store, small_run):
    from repro import __version__

    recorded = store.record(small_run, trace_fingerprint="cafe" * 8)
    summary = store.get(recorded.run_id)
    assert summary.package_version == __version__
    assert summary.trace_fingerprint == "cafe" * 8


def test_wall_seconds_falls_back_to_slowest_stage(store, small_run):
    recorded = store.record(small_run)
    expected = max(small_run.timings.values(), default=None)
    assert store.get(recorded.run_id).wall_seconds == pytest.approx(expected)


# ----------------------------------------------------------------------
# Listing and lookup
# ----------------------------------------------------------------------
def test_list_runs_newest_first_with_filters(store, small_run):
    ids = [store.record(small_run).run_id for _ in range(3)]
    summaries = store.list_runs()
    assert [s.run_id for s in summaries] == ids[::-1]
    assert [s.run_id for s in store.list_runs(limit=1)] == [ids[-1]]
    assert store.list_runs(mode="defend") == []
    prefix = summaries[0].spec_hash[:10]
    assert len(store.list_runs(spec_hash=prefix)) == 3


def test_get_missing_run_raises(store):
    with pytest.raises(StoreError, match="no run #99"):
        store.get(99)
    with pytest.raises(StoreError, match="no run #99"):
        store.export(99)


def test_spec_json_prefix_lookup(store, small_run):
    recorded = store.record(small_run)
    assert store.spec_json(recorded.spec_hash[:8]) == small_run.to_dict()["spec"]
    with pytest.raises(StoreError, match="no spec"):
        store.spec_json("0" * 12)


def test_len_and_iter(store, small_run):
    assert len(store) == 0
    store.record(small_run)
    store.record(small_run)
    assert len(store) == 2
    assert {summary.mode for summary in store} == {"tables"}


# ----------------------------------------------------------------------
# gc
# ----------------------------------------------------------------------
def test_gc_trims_each_series_to_keep_last(store, small_run):
    for _ in range(5):
        store.record(small_run)
    deleted = store.gc(keep_last=2, vacuum=False)
    assert deleted == 3
    remaining = store.list_runs()
    assert len(remaining) == 2
    # The newest runs survive.
    assert [s.run_id for s in remaining] == [5, 4]


def test_gc_drops_orphaned_specs(store, small_run):
    store.record(small_run)
    store.gc(keep_last=0, vacuum=False)
    assert store.stats().runs == 0
    assert store.stats().specs == 0


def test_gc_rejects_negative_keep(store):
    with pytest.raises(StoreError, match="non-negative"):
        store.gc(keep_last=-1)


# ----------------------------------------------------------------------
# Lifecycle and open_store
# ----------------------------------------------------------------------
def test_create_false_requires_existing_file(tmp_path):
    with pytest.raises(StoreError, match="does not exist"):
        RunStore(tmp_path / "absent.db", create=False)


def test_closed_store_raises(tmp_path, small_run):
    store = RunStore(tmp_path / "runs.db")
    store.close()
    with pytest.raises(StoreError, match="closed"):
        store.record(small_run)
    store.close()  # idempotent


def test_rejects_foreign_sqlite_files(tmp_path):
    path = tmp_path / "other.db"
    connection = sqlite3.connect(path)
    connection.execute("CREATE TABLE unrelated (x INTEGER)")
    connection.commit()
    connection.close()
    with pytest.raises(StoreError, match="not a run store"):
        RunStore(path)


def test_rejects_non_sqlite_files(tmp_path):
    path = tmp_path / "garbage.db"
    path.write_bytes(b"this is not a database at all, not even close!")
    with pytest.raises(StoreError):
        RunStore(path)


def test_open_store_passthrough_and_env(tmp_path, monkeypatch):
    assert open_store(None) is None  # env unset: recording stays off
    monkeypatch.delenv(RUN_STORE_ENV, raising=False)
    assert open_store(None) is None
    monkeypatch.setenv(RUN_STORE_ENV, str(tmp_path / "env.db"))
    opened = open_store(None)
    assert isinstance(opened, RunStore)
    opened.close()
    with RunStore(tmp_path / "direct.db") as direct:
        assert open_store(direct) is direct


# ----------------------------------------------------------------------
# execute(spec, store=...)
# ----------------------------------------------------------------------
def test_execute_records_into_store(tmp_path):
    path = tmp_path / "runs.db"
    spec = RunSpec(mode="tables", traffic=SMALL_TRAFFIC)
    result = execute(spec, store=path)
    with RunStore(path, create=False) as store:
        assert len(store) == 1
        summary = store.list_runs()[0]
        assert summary.mode == "tables"
        assert summary.wall_seconds is not None and summary.wall_seconds > 0
        assert store.export(summary.run_id) == result.to_dict()
        # Scenario traffic is cacheable, so the trace fingerprint lands.
        assert summary.trace_fingerprint


def test_execute_with_open_store_keeps_it_open(tmp_path):
    spec = RunSpec(mode="tables", traffic=SMALL_TRAFFIC)
    with RunStore(tmp_path / "runs.db") as store:
        execute(spec, store=store)
        execute(spec, store=store)  # still open: would raise if closed
        assert len(store) == 2


def test_execute_store_env_default(tmp_path, monkeypatch):
    path = tmp_path / "env.db"
    monkeypatch.setenv(RUN_STORE_ENV, str(path))
    execute(RunSpec(mode="tables", traffic=SMALL_TRAFFIC))
    with RunStore(path, create=False) as store:
        assert len(store) == 1


def test_record_without_spec_still_forms_series(store):
    bare = RunResult(mode="tables", source="adhoc", total_requests=10)
    first = store.record(bare)
    second = store.record(bare)
    assert first.spec_hash == second.spec_hash == spec_fingerprint(None)
    assert second.series_index == 2
    assert os.path.exists(store.path)
