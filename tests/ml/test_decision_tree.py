"""Tests for :mod:`repro.ml.decision_tree`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DetectorNotFittedError
from repro.ml.decision_tree import DecisionTreeClassifier


def _separable(seed: int = 0, n: int = 300) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 1, size=(n, 3))
    y = (X[:, 0] > 0.5).astype(int)
    return X, y


def _xor_data(seed: int = 1, n: int = 400) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 1, size=(n, 2))
    y = ((X[:, 0] > 0.5) ^ (X[:, 1] > 0.5)).astype(int)
    return X, y


class TestDecisionTree:
    def test_axis_aligned_problem_solved_exactly(self):
        X, y = _separable()
        tree = DecisionTreeClassifier(max_depth=3, min_leaf=2).fit(X, y)
        assert tree.score(X, y) > 0.97

    def test_xor_needs_depth_two(self):
        X, y = _xor_data()
        shallow = DecisionTreeClassifier(max_depth=1, min_leaf=2).fit(X, y)
        deep = DecisionTreeClassifier(max_depth=4, min_leaf=2).fit(X, y)
        assert deep.score(X, y) > shallow.score(X, y) + 0.2

    def test_max_depth_respected(self):
        X, y = _xor_data()
        tree = DecisionTreeClassifier(max_depth=2, min_leaf=2).fit(X, y)
        assert tree.depth() <= 2

    def test_predict_proba_in_unit_interval(self):
        X, y = _separable(seed=4)
        tree = DecisionTreeClassifier().fit(X, y)
        probabilities = tree.predict_proba(X)
        assert ((probabilities >= 0) & (probabilities <= 1)).all()

    def test_prediction_threshold(self):
        X, y = _separable(seed=5)
        tree = DecisionTreeClassifier().fit(X, y)
        strict = tree.predict(X, threshold=0.9).sum()
        lax = tree.predict(X, threshold=0.1).sum()
        assert lax >= strict

    def test_pure_labels_make_single_leaf(self):
        X = np.random.default_rng(0).uniform(size=(50, 2))
        y = np.ones(50, dtype=int)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.node_count() == 1
        assert tree.predict_proba(X).min() == 1.0

    def test_rejects_non_binary_labels(self):
        X = np.zeros((4, 2))
        y = np.array([0, 1, 2, 1])
        with pytest.raises(ValueError, match="binary"):
            DecisionTreeClassifier().fit(X, y)

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_leaf=0)

    def test_unfitted_raises(self):
        with pytest.raises(DetectorNotFittedError):
            DecisionTreeClassifier().predict_proba(np.zeros((2, 2)))
        with pytest.raises(DetectorNotFittedError):
            DecisionTreeClassifier().depth()

    def test_min_leaf_limits_tiny_splits(self):
        X, y = _separable(seed=6, n=30)
        small_leaf = DecisionTreeClassifier(max_depth=10, min_leaf=1).fit(X, y)
        big_leaf = DecisionTreeClassifier(max_depth=10, min_leaf=10).fit(X, y)
        assert big_leaf.node_count() <= small_leaf.node_count()

    def test_deterministic(self):
        X, y = _xor_data(seed=9)
        a = DecisionTreeClassifier(max_depth=4).fit(X, y).predict_proba(X)
        b = DecisionTreeClassifier(max_depth=4).fit(X, y).predict_proba(X)
        np.testing.assert_allclose(a, b)
