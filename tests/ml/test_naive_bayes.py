"""Tests for :mod:`repro.ml.naive_bayes`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DetectorNotFittedError
from repro.ml.naive_bayes import BernoulliNaiveBayes, GaussianNaiveBayes


def _gaussian_data(seed: int = 0, n: int = 400) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    class0 = rng.normal(0.0, 1.0, size=(n, 3))
    class1 = rng.normal(3.0, 1.0, size=(n, 3))
    X = np.vstack([class0, class1])
    y = np.concatenate([np.zeros(n, dtype=int), np.ones(n, dtype=int)])
    return X, y


def _bernoulli_data(seed: int = 0, n: int = 400) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    class0 = (rng.random((n, 5)) < 0.15).astype(float)
    class1 = (rng.random((n, 5)) < 0.8).astype(float)
    X = np.vstack([class0, class1])
    y = np.concatenate([np.zeros(n, dtype=int), np.ones(n, dtype=int)])
    return X, y


class TestGaussianNaiveBayes:
    def test_separable_classes_high_accuracy(self):
        X, y = _gaussian_data()
        model = GaussianNaiveBayes().fit(X, y)
        assert model.score(X, y) > 0.95

    def test_predict_proba_rows_sum_to_one(self):
        X, y = _gaussian_data()
        model = GaussianNaiveBayes().fit(X, y)
        probabilities = model.predict_proba(X[:20])
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0, rtol=1e-9)
        assert ((probabilities >= 0) & (probabilities <= 1)).all()

    def test_predict_before_fit_raises(self):
        with pytest.raises(DetectorNotFittedError):
            GaussianNaiveBayes().predict(np.zeros((2, 3)))

    def test_single_class_rejected(self):
        X = np.zeros((10, 2))
        y = np.zeros(10, dtype=int)
        with pytest.raises(ValueError, match="two classes"):
            GaussianNaiveBayes().fit(X, y)

    def test_constant_feature_does_not_break(self):
        X, y = _gaussian_data(n=100)
        X[:, 1] = 5.0
        model = GaussianNaiveBayes().fit(X, y)
        assert np.isfinite(model.predict_proba(X)).all()

    def test_priors_reflect_class_imbalance(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 2))
        y = np.array([0] * 90 + [1] * 10)
        model = GaussianNaiveBayes().fit(X, y)
        priors = np.exp(model.class_log_prior_)
        assert priors[0] == pytest.approx(0.9)
        assert priors[1] == pytest.approx(0.1)


class TestBernoulliNaiveBayes:
    def test_separable_classes_high_accuracy(self):
        X, y = _bernoulli_data()
        model = BernoulliNaiveBayes().fit(X, y)
        assert model.score(X, y) > 0.95

    def test_rejects_non_binary_features(self):
        X = np.array([[0.0, 0.5], [1.0, 0.0]])
        y = np.array([0, 1])
        with pytest.raises(ValueError, match="binary"):
            BernoulliNaiveBayes().fit(X, y)

    def test_rejects_non_positive_alpha(self):
        with pytest.raises(ValueError):
            BernoulliNaiveBayes(alpha=0)

    def test_smoothing_prevents_zero_probabilities(self):
        # Feature 0 is always 0 in class 0; with Laplace smoothing a test
        # point with feature 0 set must still get finite likelihoods.
        X = np.array([[0.0, 1.0]] * 5 + [[1.0, 0.0]] * 5)
        y = np.array([0] * 5 + [1] * 5)
        model = BernoulliNaiveBayes().fit(X, y)
        probabilities = model.predict_proba(np.array([[1.0, 1.0]]))
        assert np.isfinite(probabilities).all()

    def test_predict_proba_rows_sum_to_one(self):
        X, y = _bernoulli_data(seed=3)
        model = BernoulliNaiveBayes().fit(X, y)
        probabilities = model.predict_proba(X[:50])
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0, rtol=1e-9)

    def test_classes_attribute_sorted(self):
        X, y = _bernoulli_data(seed=3)
        model = BernoulliNaiveBayes().fit(X, y)
        assert list(model.classes_) == [0, 1]
