"""Tests for detector base classes, feature extraction and pseudo-labelling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.alerts import AlertSet
from repro.detectors.base import Detector, SessionDetector
from repro.detectors.features import FEATURE_NAMES, extract_features, feature_matrix
from repro.detectors.pseudolabels import PseudoLabelConfig, pseudo_label, pseudo_label_sessions
from repro.logs.dataset import Dataset
from tests.helpers import BROWSER_UA, SCRIPTED_UA, make_record, make_records, make_session


class _AlwaysAlertDetector(SessionDetector):
    """Toy detector flagging every session (used to test the base plumbing)."""

    name = "always"

    def judge_session(self, session):
        return 1.0, ("always",)


class _NeverAlertDetector(SessionDetector):
    name = "never"

    def judge_session(self, session):
        return None


class TestSessionDetectorBase:
    def test_alerts_cover_all_requests_of_flagged_sessions(self):
        dataset = Dataset(make_records(6, gap_seconds=2))
        alerts = _AlwaysAlertDetector().analyze(dataset)
        assert alerts.request_ids() == set(dataset.request_ids)

    def test_never_alerting_detector_returns_empty_set(self):
        dataset = Dataset(make_records(6))
        alerts = _NeverAlertDetector().analyze(dataset)
        assert len(alerts) == 0
        assert isinstance(alerts, AlertSet)

    def test_precomputed_sessions_are_used(self):
        dataset = Dataset(make_records(4))
        session = make_session(dataset.records[:2])
        alerts = _AlwaysAlertDetector().analyze(dataset, sessions=[session])
        # Only the two requests of the supplied session are alerted.
        assert alerts.request_ids() == {"r0", "r1"}

    def test_describe_uses_docstring(self):
        assert "Toy detector" in _AlwaysAlertDetector().describe()

    def test_detector_is_abstract(self):
        with pytest.raises(TypeError):
            Detector()  # type: ignore[abstract]


class TestFeatureExtraction:
    def test_vector_matches_feature_names(self):
        session = make_session(make_records(5))
        features = extract_features(session)
        assert features.vector().shape == (len(FEATURE_NAMES),)
        assert set(features.as_dict()) == set(FEATURE_NAMES)

    def test_machine_timing_has_low_cv(self):
        session = make_session(make_records(20, gap_seconds=1.0))
        assert extract_features(session).interarrival_cv < 0.01

    def test_irregular_timing_has_high_cv(self):
        records = [make_record(f"r{i}", seconds=s) for i, s in enumerate([0, 1, 30, 31, 120, 121, 400])]
        assert extract_features(make_session(records)).interarrival_cv > 0.5

    def test_scripted_agent_flag(self):
        session = make_session(make_records(3, user_agent=SCRIPTED_UA))
        features = extract_features(session)
        assert features.scripted_agent
        assert not features.headless_agent

    def test_asset_and_referrer_fractions(self):
        records = [
            make_record("a", path="/static/css/app.css", referrer="https://shop.example.com/"),
            make_record("b", path="/search", seconds=1),
        ]
        features = extract_features(make_session(records))
        assert features.asset_fraction == pytest.approx(0.5)
        assert features.referrer_fraction == pytest.approx(0.5)

    def test_error_and_probe_fractions(self):
        records = [
            make_record("a", status=400),
            make_record("b", status=204, seconds=1),
            make_record("c", status=304, seconds=2),
            make_record("d", status=200, seconds=3),
        ]
        features = extract_features(make_session(records))
        assert features.error_rate == pytest.approx(0.25)
        assert features.no_content_fraction == pytest.approx(0.25)
        assert features.not_modified_fraction == pytest.approx(0.25)

    def test_night_fraction(self):
        # BASE_TIME is 12:00 UTC, so shifting by 13h lands between 01:00 and 02:00.
        night_records = [make_record(f"r{i}", seconds=13 * 3600 + i) for i in range(4)]
        assert extract_features(make_session(night_records)).night_fraction == 1.0

    def test_feature_matrix_shape(self):
        sessions = [make_session(make_records(3)), make_session(make_records(4, ip="10.0.0.9"))]
        matrix = feature_matrix(sessions)
        assert matrix.shape == (2, len(FEATURE_NAMES))
        assert np.isfinite(matrix).all()

    def test_feature_matrix_empty(self):
        assert feature_matrix([]).shape == (0, len(FEATURE_NAMES))

    def test_single_request_session_neutral_cv(self):
        features = extract_features(make_session([make_record()]))
        assert features.interarrival_cv == 1.0
        assert features.mean_interarrival == 0.0


class TestPseudoLabels:
    def test_scripted_agent_is_bot(self):
        features = extract_features(make_session(make_records(10, user_agent=SCRIPTED_UA)))
        assert pseudo_label(features) == 1

    def test_fast_large_session_is_bot(self):
        features = extract_features(make_session(make_records(60, gap_seconds=0.3)))
        assert pseudo_label(features) == 1

    def test_asset_loading_human_is_benign(self):
        records = []
        for i in range(12):
            records.append(
                make_record(
                    f"p{i}",
                    seconds=i * 20,
                    path="/static/css/app.css" if i % 2 else "/search",
                    referrer="https://shop.example.com/",
                )
            )
        features = extract_features(make_session(records))
        assert pseudo_label(features) == 0

    def test_ambiguous_session_gets_no_label(self):
        # Browser UA, moderate rate, no assets, no referrers: ambiguous.
        features = extract_features(make_session(make_records(12, gap_seconds=8, user_agent=BROWSER_UA)))
        assert pseudo_label(features) is None

    def test_pseudo_label_sessions_returns_indices_and_labels(self):
        sessions = [
            make_session(make_records(10, user_agent=SCRIPTED_UA)),
            make_session(make_records(12, gap_seconds=8)),
        ]
        feature_list = [extract_features(s) for s in sessions]
        indices, labels = pseudo_label_sessions(feature_list)
        assert list(indices) == [0]
        assert list(labels) == [1]

    def test_custom_config_thresholds(self):
        config = PseudoLabelConfig(bot_rate_rpm=1.0, bot_min_requests=2)
        features = extract_features(make_session(make_records(5, gap_seconds=10)))
        assert pseudo_label(features, config) == 1
