"""Tests for the rate-limit, IP-reputation and fingerprint detectors."""

from __future__ import annotations

import pytest

from repro.detectors.fingerprint import UserAgentFingerprintDetector
from repro.detectors.ratelimit import RateLimitDetector
from repro.detectors.reputation import IPReputationDetector
from repro.logs.dataset import Dataset
from repro.traffic.ipspace import IPSpace
from tests.helpers import BROWSER_UA, SCRIPTED_UA, make_record, make_records

GOOGLEBOT_UA = "Mozilla/5.0 (compatible; Googlebot/2.1; +http://www.google.com/bot.html)"


class TestRateLimitDetector:
    def test_fast_session_alerted(self):
        dataset = Dataset(make_records(30, gap_seconds=0.5))  # 120 req/min
        alerts = RateLimitDetector(threshold_rpm=60).analyze(dataset)
        assert len(alerts) == 30

    def test_slow_session_not_alerted(self):
        dataset = Dataset(make_records(30, gap_seconds=10))  # 6 req/min
        alerts = RateLimitDetector(threshold_rpm=60).analyze(dataset)
        assert len(alerts) == 0

    def test_small_sessions_ignored(self):
        dataset = Dataset(make_records(5, gap_seconds=0.1))
        alerts = RateLimitDetector(threshold_rpm=60, min_requests=10).analyze(dataset)
        assert len(alerts) == 0

    def test_alert_reason_mentions_rate(self):
        dataset = Dataset(make_records(30, gap_seconds=0.5))
        alerts = RateLimitDetector(threshold_rpm=60).analyze(dataset)
        alert = alerts.get("r0")
        assert alert is not None
        assert "req/min" in alert.reasons[0]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RateLimitDetector(threshold_rpm=0)
        with pytest.raises(ValueError):
            RateLimitDetector(min_requests=0)

    def test_score_increases_with_rate(self):
        fast = Dataset(make_records(40, gap_seconds=0.2, ip="10.0.0.1"))
        faster = Dataset(make_records(40, gap_seconds=0.05, ip="10.0.0.2"))
        detector = RateLimitDetector(threshold_rpm=60)
        slow_score = detector.analyze(fast).get("r0").score
        fast_score = detector.analyze(faster).get("r0").score
        assert fast_score >= slow_score


class TestIPReputationDetector:
    def test_blocklisted_prefix_alerted(self):
        detector = IPReputationDetector(blocklist={"172.20.5"})
        dataset = Dataset(
            [make_record("bad", ip="172.20.5.9"), make_record("good", ip="10.16.0.9", seconds=1)]
        )
        alerts = detector.analyze(dataset)
        assert "bad" in alerts
        assert "good" not in alerts

    def test_default_blocklist_targets_datacenter_space(self):
        detector = IPReputationDetector(feed_seed=99)
        space = IPSpace()
        assert any(detector.is_blocklisted(prefix + ".1") for prefix in list(detector.blocklist)[:10])
        # Residential space must stay clean.
        import random

        rng = random.Random(0)
        assert not any(detector.is_blocklisted(space.residential.random_address(rng)) for _ in range(50))

    def test_min_requests_from_prefix(self):
        detector = IPReputationDetector(blocklist={"172.20.5"}, min_requests_from_prefix=3)
        dataset = Dataset(
            [
                make_record("a", ip="172.20.5.9"),
                make_record("b", ip="172.20.5.10", seconds=1),
            ]
        )
        assert len(detector.analyze(dataset)) == 0

    def test_invalid_min_requests(self):
        with pytest.raises(ValueError):
            IPReputationDetector(blocklist=set(), min_requests_from_prefix=0)


class TestUserAgentFingerprintDetector:
    def test_scripted_agent_alerted(self):
        detector = UserAgentFingerprintDetector()
        dataset = Dataset(make_records(3, user_agent=SCRIPTED_UA))
        assert len(detector.analyze(dataset)) == 3

    def test_browser_agent_not_alerted(self):
        detector = UserAgentFingerprintDetector()
        dataset = Dataset(make_records(3, user_agent=BROWSER_UA))
        assert len(detector.analyze(dataset)) == 0

    def test_headless_agent_alerted(self):
        detector = UserAgentFingerprintDetector()
        headless = "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like Gecko) HeadlessChrome/64.0.3282.186 Safari/537.36"
        dataset = Dataset(make_records(2, user_agent=headless))
        assert len(detector.analyze(dataset)) == 2

    def test_missing_agent_alerted(self):
        detector = UserAgentFingerprintDetector()
        dataset = Dataset(make_records(2, user_agent=""))
        assert len(detector.analyze(dataset)) == 2

    def test_fake_googlebot_alerted(self):
        detector = UserAgentFingerprintDetector()
        dataset = Dataset(make_records(2, user_agent=GOOGLEBOT_UA, ip="172.20.0.7"))
        alerts = detector.analyze(dataset)
        assert len(alerts) == 2
        assert "unverified" in alerts.get("r0").reasons[0]

    def test_verified_googlebot_not_alerted(self):
        detector = UserAgentFingerprintDetector()
        crawler_ip = "192.168.66.10"
        dataset = Dataset(make_records(2, user_agent=GOOGLEBOT_UA, ip=crawler_ip))
        assert len(detector.analyze(dataset)) == 0
        assert detector.is_verified_crawler(GOOGLEBOT_UA, crawler_ip)

    def test_flags_can_be_disabled(self):
        detector = UserAgentFingerprintDetector(flag_scripted=False, flag_missing_agent=False)
        dataset = Dataset(make_records(2, user_agent=SCRIPTED_UA))
        assert len(detector.analyze(dataset)) == 0
