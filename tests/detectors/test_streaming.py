"""Tests for the streaming (online) detection components."""

from __future__ import annotations

import pytest

from repro.detectors.ratelimit import RateLimitDetector
from repro.detectors.streaming import StreamingDetector, StreamingRateLimiter
from repro.logs.dataset import Dataset
from tests.helpers import BROWSER_UA, SCRIPTED_UA, make_record, make_records


class TestStreamingRateLimiter:
    def test_slow_visitor_never_flagged(self):
        limiter = StreamingRateLimiter(max_requests=30, window_seconds=60)
        verdicts = limiter.observe_stream(make_records(20, gap_seconds=10))
        assert not any(verdict.alerted for verdict in verdicts)

    def test_fast_visitor_flagged_once_budget_exceeded(self):
        limiter = StreamingRateLimiter(max_requests=10, window_seconds=60, penalty_seconds=0)
        verdicts = limiter.observe_stream(make_records(20, gap_seconds=1))
        assert not verdicts[5].alerted  # still under budget
        assert verdicts[11].alerted  # 12th request within the window
        assert "exceeds" in verdicts[11].reason

    def test_penalty_period_keeps_visitor_flagged(self):
        limiter = StreamingRateLimiter(max_requests=5, window_seconds=60, penalty_seconds=600)
        records = make_records(8, gap_seconds=1) + [make_record("late", seconds=120)]
        verdicts = limiter.observe_stream(records)
        assert verdicts[-1].alerted
        assert "penalty" in verdicts[-1].reason

    def test_scripted_agents_flagged_immediately(self):
        limiter = StreamingRateLimiter()
        verdict = limiter.observe(make_record(user_agent=SCRIPTED_UA))
        assert verdict.alerted
        assert "scripted" in verdict.reason

    def test_visitors_tracked_independently(self):
        limiter = StreamingRateLimiter(max_requests=5, window_seconds=60)
        fast = make_records(10, gap_seconds=1, ip="172.20.0.1")
        slow = [make_record(f"s{i}", seconds=i * 30, ip="10.16.0.1") for i in range(10)]
        merged = sorted(fast + slow, key=lambda r: r.timestamp)
        verdicts = {v.request_id: v for v in limiter.observe_stream(merged)}
        assert any(verdicts[f"r{i}"].alerted for i in range(10))
        assert not any(verdicts[f"s{i}"].alerted for i in range(10))

    def test_reset_clears_state(self):
        limiter = StreamingRateLimiter(max_requests=3, window_seconds=60)
        limiter.observe_stream(make_records(6, gap_seconds=1))
        limiter.reset()
        verdict = limiter.observe(make_record("fresh", seconds=100))
        assert not verdict.alerted

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            StreamingRateLimiter(max_requests=0)
        with pytest.raises(ValueError):
            StreamingRateLimiter(window_seconds=0)

    def test_record_alerts_opt_out_bounds_memory(self):
        limiter = StreamingRateLimiter(max_requests=3, window_seconds=60, record_alerts=False)
        verdicts = limiter.observe_stream(make_records(10, gap_seconds=1))
        assert any(verdict.alerted for verdict in verdicts)
        assert len(limiter.final_alert_set()) == 0

    def test_batch_adapter_works_with_alert_free_limiter(self):
        # analyze() must return the alerts even when the limiter was
        # configured alert-free for live deployments.
        limiter = StreamingRateLimiter(max_requests=10, window_seconds=60, record_alerts=False)
        dataset = Dataset(make_records(40, gap_seconds=0.5, user_agent=BROWSER_UA))
        alerts = StreamingDetector(limiter).analyze(dataset)
        assert len(alerts) > 0
        assert limiter.record_alerts is False  # restored afterwards


class TestStreamingDetector:
    def test_batch_adapter_flags_fast_traffic(self):
        dataset = Dataset(make_records(40, gap_seconds=0.5, user_agent=BROWSER_UA))
        alerts = StreamingDetector(StreamingRateLimiter(max_requests=20, window_seconds=60)).analyze(dataset)
        assert len(alerts) > 0
        assert len(alerts) < len(dataset)  # the ramp-up requests pass

    def test_replays_in_time_order(self):
        # Records supplied out of order must still be judged chronologically.
        records = list(reversed(make_records(30, gap_seconds=1)))
        dataset = Dataset(records)
        alerts = StreamingDetector(StreamingRateLimiter(max_requests=10, window_seconds=60)).analyze(dataset)
        assert "r29" in alerts or len(alerts) > 0

    def test_agrees_with_batch_rate_detector_on_aggressive_traffic(self, small_dataset):
        """Online and offline rate limiting should broadly agree on which
        requests belong to fast automation (they use the same signal)."""
        streaming = StreamingDetector(StreamingRateLimiter(max_requests=45, window_seconds=60, flag_scripted_agents=False))
        batch = RateLimitDetector(threshold_rpm=45)
        streaming_ids = streaming.analyze(small_dataset).request_ids()
        batch_ids = batch.analyze(small_dataset).request_ids()
        if not batch_ids:
            pytest.skip("no fast sessions in fixture")
        overlap = len(streaming_ids & batch_ids) / len(batch_ids)
        assert overlap > 0.5

    def test_participates_in_diversity_analysis(self, small_dataset):
        from repro.core.diversity import diversity_breakdown
        from repro.detectors.inhouse import InHouseHeuristicDetector
        from repro.detectors.pipeline import run_detectors

        result = run_detectors(small_dataset, [StreamingDetector(), InHouseHeuristicDetector()])
        breakdown = diversity_breakdown(result.matrix, "streaming-rate", "inhouse")
        assert breakdown.total == len(small_dataset)
