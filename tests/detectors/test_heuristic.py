"""Tests for the heuristic rule engine and its rules."""

from __future__ import annotations

import pytest

from repro.detectors.heuristic import (
    ErrorProbeRule,
    HeuristicRuleDetector,
    PathRepetitionRule,
    RateRule,
    RobotsNoAssetRule,
    ScriptedAgentRule,
)
from repro.detectors.inhouse import InHouseHeuristicDetector, default_rules
from repro.logs.dataset import Dataset
from tests.helpers import BROWSER_UA, SCRIPTED_UA, make_record, make_records, make_session

GOOGLEBOT_UA = "Mozilla/5.0 (compatible; Googlebot/2.1; +http://www.google.com/bot.html)"


class TestRateRule:
    def test_fires_on_fast_sessions(self):
        session = make_session(make_records(30, gap_seconds=0.5))
        assert RateRule(threshold_rpm=30).matches(session) is not None

    def test_quiet_on_slow_sessions(self):
        session = make_session(make_records(30, gap_seconds=10))
        assert RateRule(threshold_rpm=30).matches(session) is None

    def test_quiet_on_small_sessions(self):
        session = make_session(make_records(5, gap_seconds=0.1))
        assert RateRule(threshold_rpm=30, min_requests=10).matches(session) is None

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            RateRule(threshold_rpm=0)


class TestScriptedAgentRule:
    def test_fires_on_scripted_agent(self):
        session = make_session(make_records(3, user_agent=SCRIPTED_UA))
        assert ScriptedAgentRule().matches(session) is not None

    def test_fires_on_empty_agent(self):
        session = make_session(make_records(3, user_agent=""))
        assert ScriptedAgentRule().matches(session) is not None

    def test_quiet_on_browser(self):
        session = make_session(make_records(3, user_agent=BROWSER_UA))
        assert ScriptedAgentRule().matches(session) is None


class TestErrorProbeRule:
    def test_fires_on_error_heavy_session(self):
        records = [make_record(f"r{i}", seconds=i, status=400 if i % 4 == 0 else 200) for i in range(20)]
        assert ErrorProbeRule().matches(make_session(records)) is not None

    def test_fires_on_204_heavy_session(self):
        records = [make_record(f"r{i}", seconds=i, status=204 if i % 5 == 0 else 200, path="/api/availability") for i in range(20)]
        assert ErrorProbeRule().matches(make_session(records)) is not None

    def test_ignores_tracking_beacon_204s(self):
        records = [
            make_record(f"r{i}", seconds=i, status=204 if i % 3 == 0 else 200, path="/track/beacon?pg=/" if i % 3 == 0 else "/search")
            for i in range(20)
        ]
        assert ErrorProbeRule().matches(make_session(records)) is None

    def test_fires_on_head_heavy_session(self):
        records = [make_record(f"r{i}", seconds=i, method="HEAD" if i % 5 == 0 else "GET") for i in range(20)]
        assert ErrorProbeRule().matches(make_session(records)) is not None

    def test_quiet_on_clean_session(self):
        records = make_records(20)
        assert ErrorProbeRule().matches(make_session(records)) is None

    def test_quiet_below_min_requests(self):
        records = [make_record("a", status=400), make_record("b", status=400, seconds=1)]
        assert ErrorProbeRule(min_requests=8).matches(make_session(records)) is None


class TestRobotsNoAssetRule:
    def test_fires_on_robots_without_assets(self):
        records = [make_record("robots", path="/robots.txt")] + make_records(12, gap_seconds=1)
        records = [records[0]] + [make_record(f"p{i}", seconds=i + 1, path=f"/offers/{i}") for i in range(12)]
        assert RobotsNoAssetRule().matches(make_session(records)) is not None

    def test_quiet_when_assets_loaded(self):
        records = [make_record("robots", path="/robots.txt")]
        for i in range(12):
            path = "/static/css/app.css" if i % 3 == 0 else f"/offers/{i}"
            records.append(make_record(f"p{i}", seconds=i + 1, path=path))
        assert RobotsNoAssetRule().matches(make_session(records)) is None

    def test_quiet_without_robots_fetch(self):
        records = [make_record(f"p{i}", seconds=i, path=f"/offers/{i}") for i in range(15)]
        assert RobotsNoAssetRule().matches(make_session(records)) is None


class TestPathRepetitionRule:
    def test_fires_on_hammered_endpoint(self):
        records = [make_record(f"r{i}", seconds=i, path="/api/price?offer=1") for i in range(25)]
        assert PathRepetitionRule().matches(make_session(records)) is not None

    def test_quiet_on_diverse_paths(self):
        records = [make_record(f"r{i}", seconds=i, path=f"/offers/{i}") for i in range(25)]
        assert PathRepetitionRule().matches(make_session(records)) is None


class TestHeuristicRuleDetector:
    def test_requires_at_least_one_rule(self):
        with pytest.raises(ValueError):
            HeuristicRuleDetector([])

    def test_any_firing_rule_alerts_whole_session(self):
        detector = HeuristicRuleDetector([RateRule(threshold_rpm=30)], name="rules")
        dataset = Dataset(make_records(30, gap_seconds=0.5))
        assert len(detector.analyze(dataset)) == 30

    def test_score_grows_with_rule_count(self):
        detector = HeuristicRuleDetector([RateRule(threshold_rpm=30), ScriptedAgentRule()], name="rules")
        one_rule = Dataset(make_records(30, gap_seconds=0.5, user_agent=BROWSER_UA, ip="10.0.0.1"))
        two_rules = Dataset(make_records(30, gap_seconds=0.5, user_agent=SCRIPTED_UA, ip="10.0.0.2"))
        single = detector.analyze(one_rule).get("r0").score
        double = detector.analyze(two_rules).get("r0").score
        assert double > single

    def test_verified_crawler_whitelisted(self):
        detector = InHouseHeuristicDetector()
        # A verified crawler (crawler pool IP) crawling without assets.
        records = [make_record("robots", path="/robots.txt", ip="192.168.66.5", user_agent=GOOGLEBOT_UA)]
        for i in range(20):
            records.append(
                make_record(f"c{i}", seconds=(i + 1) * 2, path=f"/offers/{i}", ip="192.168.66.5", user_agent=GOOGLEBOT_UA)
            )
        assert len(detector.analyze(Dataset(records))) == 0

    def test_unverified_crawler_claim_not_whitelisted(self):
        detector = InHouseHeuristicDetector()
        records = [make_record("robots", path="/robots.txt", ip="172.20.0.5", user_agent=GOOGLEBOT_UA)]
        for i in range(20):
            records.append(
                make_record(f"c{i}", seconds=(i + 1) * 2, path=f"/offers/{i}", ip="172.20.0.5", user_agent=GOOGLEBOT_UA)
            )
        assert len(detector.analyze(Dataset(records))) > 0

    def test_reasons_recorded_per_alert(self):
        detector = InHouseHeuristicDetector()
        dataset = Dataset(make_records(40, gap_seconds=0.5, user_agent=SCRIPTED_UA))
        alert = detector.analyze(dataset).get("r0")
        assert alert is not None
        assert any("session-rate" in reason for reason in alert.reasons)
        assert any("scripted-agent" in reason for reason in alert.reasons)


class TestDefaultRules:
    def test_default_rule_set_composition(self):
        rules = default_rules()
        names = {rule.name for rule in rules}
        assert names == {"session-rate", "scripted-agent", "error-probe", "robots-no-assets", "path-repetition"}

    def test_rate_threshold_forwarded(self):
        rules = default_rules(rate_threshold_rpm=99.0)
        rate_rules = [rule for rule in rules if isinstance(rule, RateRule)]
        assert rate_rules[0].threshold_rpm == 99.0
