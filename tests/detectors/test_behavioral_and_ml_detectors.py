"""Tests for the behavioural, naive-Bayes, decision-tree and anomaly detectors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.anomaly import RobustZScoreModel
from repro.detectors.anomaly_detector import AnomalySessionDetector
from repro.detectors.behavioral import BehavioralSessionDetector, BehaviouralScoreConfig
from repro.detectors.crawler_ml import CrawlerDecisionTreeDetector
from repro.detectors.features import feature_matrix
from repro.detectors.naive_bayes import NaiveBayesRobotDetector, binarize_features, INDICATOR_NAMES
from repro.detectors.features import extract_features
from repro.logs.dataset import Dataset
from repro.logs.sessionization import Sessionizer
from tests.helpers import BROWSER_UA, SCRIPTED_UA, make_record, make_records, make_session


def _human_like_records(prefix: str, ip: str, count: int = 16) -> list:
    """A browsing session with assets, referrers and irregular think times."""
    gaps = [0, 7, 9, 31, 35, 36, 70, 95, 97, 140, 160, 161, 200, 260, 262, 300]
    records = []
    for i in range(count):
        if i % 3 == 1:
            path = "/static/css/app.css"
        elif i % 3 == 2:
            path = "/static/img/offer-3.jpg"
        else:
            path = f"/offers/{i}"
        records.append(
            make_record(
                f"{prefix}{i}",
                seconds=float(gaps[i % len(gaps)]) + (i // len(gaps)) * 400,
                ip=ip,
                path=path,
                referrer="https://shop.example.com/",
            )
        )
    return records


def _stealth_like_records(prefix: str, ip: str, count: int = 40) -> list:
    """A paced, machine-regular scraping session with no assets or referrers."""
    return [
        make_record(f"{prefix}{i}", seconds=i * 7.0, ip=ip, path=f"/offers/{i}", referrer="")
        for i in range(count)
    ]


class TestBehavioralDetector:
    def test_flags_stealth_scraping_session(self):
        dataset = Dataset(_stealth_like_records("s", "10.96.0.1"))
        alerts = BehavioralSessionDetector().analyze(dataset)
        assert len(alerts) == len(dataset)

    def test_ignores_human_like_session(self):
        dataset = Dataset(_human_like_records("h", "10.16.0.1"))
        alerts = BehavioralSessionDetector().analyze(dataset)
        assert len(alerts) == 0

    def test_score_session_reports_signals(self):
        session = make_session(_stealth_like_records("s", "10.96.0.1"))
        score, signals = BehavioralSessionDetector().score_session(session)
        assert score >= 4.0
        assert any("assets" in signal for signal in signals)
        assert any("timing" in signal for signal in signals)

    def test_custom_config_threshold(self):
        config = BehaviouralScoreConfig(alert_threshold=100.0)
        dataset = Dataset(_stealth_like_records("s", "10.96.0.1"))
        assert len(BehavioralSessionDetector(config).analyze(dataset)) == 0

    def test_scripted_fingerprint_adds_evidence(self):
        session_scripted = make_session(make_records(12, gap_seconds=30, user_agent=SCRIPTED_UA))
        session_browser = make_session(make_records(12, gap_seconds=30, user_agent=BROWSER_UA))
        detector = BehavioralSessionDetector()
        scripted_score, _ = detector.score_session(session_scripted)
        browser_score, _ = detector.score_session(session_browser)
        assert scripted_score > browser_score


class TestNaiveBayesDetector:
    def test_binarize_features_shape(self):
        features = extract_features(make_session(make_records(5)))
        vector = binarize_features(features)
        assert vector.shape == (len(INDICATOR_NAMES),)
        assert set(np.unique(vector)) <= {0.0, 1.0}

    def test_alerts_on_obvious_bots_and_spares_humans(self):
        records = []
        records.extend(make_records(60, gap_seconds=0.4, ip="172.20.0.9", user_agent=SCRIPTED_UA))
        records.extend(_human_like_records("h", "10.16.0.1"))
        records.extend(_stealth_like_records("s", "10.96.0.5"))
        dataset = Dataset(records)
        alerts = NaiveBayesRobotDetector().analyze(dataset)
        assert all(rid in alerts for rid in [f"r{i}" for i in range(60)])
        assert not any(rid in alerts for rid in [f"h{i}" for i in range(16)])

    def test_degenerate_population_does_not_crash(self):
        # Only ambiguous sessions: detector should stay silent.
        dataset = Dataset(make_records(12, gap_seconds=8))
        alerts = NaiveBayesRobotDetector().analyze(dataset)
        assert len(alerts) == 0

    def test_invalid_probability_threshold(self):
        with pytest.raises(ValueError):
            NaiveBayesRobotDetector(alert_probability=1.5)


class TestDecisionTreeDetector:
    def test_self_trained_mode_flags_bots(self):
        records = []
        records.extend(make_records(60, gap_seconds=0.4, ip="172.20.0.9", user_agent=SCRIPTED_UA))
        records.extend(_human_like_records("h", "10.16.0.1"))
        dataset = Dataset(records)
        alerts = CrawlerDecisionTreeDetector().analyze(dataset)
        assert any(f"r{i}" in alerts for i in range(60))
        assert not any(f"h{i}" in alerts for i in range(16))

    def test_supervised_mode_uses_fitted_model(self):
        sessions = [
            make_session(_stealth_like_records("s", "10.96.0.5")),
            make_session(_human_like_records("h", "10.16.0.1")),
        ]
        X = feature_matrix(sessions)
        y = np.array([1, 0])
        detector = CrawlerDecisionTreeDetector(min_leaf=1, alert_probability=0.5).fit(X, y)
        dataset = Dataset(_stealth_like_records("t", "10.96.0.7") + _human_like_records("u", "10.16.0.3"))
        alerts = detector.analyze(dataset)
        assert any(f"t{i}" in alerts for i in range(40))

    def test_silent_when_nothing_confident(self):
        dataset = Dataset(make_records(12, gap_seconds=8))
        assert len(CrawlerDecisionTreeDetector().analyze(dataset)) == 0

    def test_invalid_probability_threshold(self):
        with pytest.raises(ValueError):
            CrawlerDecisionTreeDetector(alert_probability=0.0)


class TestAnomalyDetector:
    def test_flags_roughly_the_contamination_fraction(self):
        records = []
        for visitor in range(20):
            records.extend(_human_like_records(f"h{visitor}_", f"10.16.0.{visitor + 1}"))
        records.extend(make_records(80, gap_seconds=0.3, ip="172.20.0.9", user_agent=SCRIPTED_UA))
        dataset = Dataset(records)
        sessions = Sessionizer().sessionize(dataset.records)
        detector = AnomalySessionDetector(RobustZScoreModel(), contamination=0.1)
        alerts = detector.analyze(dataset, sessions=sessions)
        # The single scripted blast session is by far the most anomalous.
        assert all(f"r{i}" in alerts for i in range(80))

    def test_handles_tiny_datasets(self):
        dataset = Dataset(make_records(3))
        assert len(AnomalySessionDetector().analyze(dataset)) == 0

    def test_invalid_contamination(self):
        with pytest.raises(ValueError):
            AnomalySessionDetector(contamination=0.0)

    def test_scores_bounded(self):
        records = _stealth_like_records("s", "10.96.0.5") + _human_like_records("h", "10.16.0.1")
        dataset = Dataset(records)
        alerts = AnomalySessionDetector(RobustZScoreModel(), contamination=0.5).analyze(dataset)
        assert all(0.0 <= alert.score <= 1.0 for alert in alerts.alerts())
