"""Tests for the composite detectors, the registry and the detection pipeline."""

from __future__ import annotations

import pytest

from repro.core.alerts import AlertMatrix
from repro.detectors.base import Detector
from repro.detectors.commercial import CommercialBotDefenceDetector
from repro.detectors.inhouse import InHouseHeuristicDetector
from repro.detectors.pipeline import DetectionPipeline, run_detectors
from repro.detectors.ratelimit import RateLimitDetector
from repro.detectors.registry import available_detectors, create_detector, register_detector
from repro.exceptions import DetectorError
from repro.logs.dataset import Dataset
from tests.helpers import SCRIPTED_UA, make_record, make_records

GOOGLEBOT_UA = "Mozilla/5.0 (compatible; Googlebot/2.1; +http://www.google.com/bot.html)"


class TestCommercialDetector:
    def test_scripted_blast_alerted(self):
        dataset = Dataset(make_records(50, gap_seconds=0.4, ip="172.20.0.9", user_agent=SCRIPTED_UA))
        alerts = CommercialBotDefenceDetector().analyze(dataset)
        assert len(alerts) == 50

    def test_reasons_mention_layer(self):
        dataset = Dataset(make_records(50, gap_seconds=0.4, ip="172.20.0.9", user_agent=SCRIPTED_UA))
        alert = CommercialBotDefenceDetector().analyze(dataset).get("r0")
        assert alert is not None
        assert any(reason.startswith(("fingerprint:", "reputation:", "rate:", "behavioral:")) for reason in alert.reasons)

    def test_verified_crawler_whitelisted(self):
        records = [make_record("robots", path="/robots.txt", ip="192.168.66.7", user_agent=GOOGLEBOT_UA)]
        for i in range(30):
            records.append(
                make_record(f"c{i}", seconds=(i + 1) * 4, path=f"/offers/{i}", ip="192.168.66.7", user_agent=GOOGLEBOT_UA)
            )
        alerts = CommercialBotDefenceDetector().analyze(Dataset(records))
        assert len(alerts) == 0

    def test_detector_classes_on_realistic_traffic(self, small_dataset, pipeline_result):
        """On the generated data set the commercial stand-in detects stealth
        scrapers that the rule engine misses (the paper's Distil-only mass)."""
        truth = small_dataset.ground_truth
        matrix = pipeline_result.matrix
        commercial = matrix.alerted_by("commercial")
        inhouse = matrix.alerted_by("inhouse")
        stealth_ids = [
            record.request_id
            for record in small_dataset
            if truth.actor_class_of(record.request_id) == "stealth_scraper"
        ]
        assert stealth_ids, "the fixture scenario should contain stealth traffic"
        commercial_rate = sum(1 for rid in stealth_ids if rid in commercial) / len(stealth_ids)
        inhouse_rate = sum(1 for rid in stealth_ids if rid in inhouse) / len(stealth_ids)
        assert commercial_rate > 0.6
        assert inhouse_rate < 0.4


class TestInHouseDetector:
    def test_probing_traffic_caught_and_stealth_missed(self, small_dataset, pipeline_result):
        truth = small_dataset.ground_truth
        matrix = pipeline_result.matrix
        inhouse = matrix.alerted_by("inhouse")
        commercial = matrix.alerted_by("commercial")
        probing_ids = [
            record.request_id
            for record in small_dataset
            if truth.actor_class_of(record.request_id) == "probing_scraper"
        ]
        assert probing_ids, "the fixture scenario should contain probing traffic"
        inhouse_rate = sum(1 for rid in probing_ids if rid in inhouse) / len(probing_ids)
        commercial_rate = sum(1 for rid in probing_ids if rid in commercial) / len(probing_ids)
        assert inhouse_rate > 0.6
        assert commercial_rate < 0.4

    def test_aggressive_traffic_caught_by_both(self, small_dataset, pipeline_result):
        truth = small_dataset.ground_truth
        matrix = pipeline_result.matrix
        aggressive_ids = [
            record.request_id
            for record in small_dataset
            if truth.actor_class_of(record.request_id) == "aggressive_scraper"
        ]
        for name in ("commercial", "inhouse"):
            alerted = matrix.alerted_by(name)
            rate = sum(1 for rid in aggressive_ids if rid in alerted) / len(aggressive_ids)
            assert rate > 0.9

    def test_custom_rules_override_defaults(self):
        detector = InHouseHeuristicDetector([], rate_threshold_rpm=10) if False else InHouseHeuristicDetector(
            rules=None, rate_threshold_rpm=10
        )
        dataset = Dataset(make_records(20, gap_seconds=3))  # 20 req/min
        assert len(detector.analyze(dataset)) == 20


class TestRegistry:
    def test_builtins_available(self):
        names = available_detectors()
        assert {"commercial", "inhouse", "rate-limit", "ip-reputation", "behavioral", "naive-bayes", "decision-tree", "anomaly"} <= set(names)

    def test_create_detector_passes_kwargs(self):
        detector = create_detector("rate-limit", threshold_rpm=42.0)
        assert isinstance(detector, RateLimitDetector)
        assert detector.threshold_rpm == 42.0

    def test_unknown_name_raises(self):
        with pytest.raises(DetectorError, match="unknown detector"):
            create_detector("does-not-exist")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(DetectorError, match="already registered"):
            register_detector("commercial", CommercialBotDefenceDetector)

    def test_registration_with_overwrite(self):
        register_detector("commercial", CommercialBotDefenceDetector, overwrite=True)
        assert isinstance(create_detector("commercial"), CommercialBotDefenceDetector)


class TestDetectionPipeline:
    def test_requires_detectors(self):
        with pytest.raises(DetectorError):
            DetectionPipeline([])

    def test_requires_unique_names(self):
        with pytest.raises(DetectorError, match="unique"):
            DetectionPipeline([RateLimitDetector(), RateLimitDetector()])

    def test_produces_matrix_and_timings(self, small_dataset):
        result = run_detectors(small_dataset, [RateLimitDetector(name="fast", threshold_rpm=60)])
        assert isinstance(result.matrix, AlertMatrix)
        assert result.matrix.detector_names == ["fast"]
        assert "fast" in result.timings
        assert result.timings["fast"] >= 0

    def test_alert_set_lookup(self, pipeline_result):
        assert pipeline_result.alert_set("commercial").detector_name == "commercial"
        with pytest.raises(DetectorError):
            pipeline_result.alert_set("nope")

    def test_alert_set_unknown_detector_error_names_the_culprit(self, pipeline_result):
        with pytest.raises(DetectorError, match="no alert set for detector 'phantom'"):
            pipeline_result.alert_set("phantom")

    def test_sessionization_time_is_recorded(self, pipeline_result):
        assert "sessionization" in pipeline_result.timings
        assert pipeline_result.timings["sessionization"] >= 0
        # One entry per detector plus the shared sessionization and
        # batched feature-extraction steps of the columnar engine.
        assert set(pipeline_result.timings) == {
            "commercial",
            "inhouse",
            "sessionization",
            "features",
        }

    def test_matrix_columns_match_detector_order(self, pipeline_result):
        assert pipeline_result.matrix.detector_names == ["commercial", "inhouse"]

    def test_shared_sessions_equivalent_to_independent_runs(self, small_dataset, pipeline_result):
        # Running a detector stand-alone gives the same alerts as inside the
        # pipeline (the shared sessionization is an optimisation only).
        alone = InHouseHeuristicDetector().analyze(small_dataset)
        from_pipeline = pipeline_result.alert_set("inhouse")
        assert alone.request_ids() == from_pipeline.request_ids()


class _BoringDetector(Detector):
    """Alerts on nothing; used for registry round-trips."""

    name = "boring"

    def analyze(self, dataset, *, sessions=None):
        from repro.core.alerts import AlertSet

        return AlertSet(self.name)


class TestCustomDetectorIntegration:
    def test_custom_detector_runs_in_pipeline(self, small_dataset):
        result = run_detectors(small_dataset, [_BoringDetector(), RateLimitDetector(threshold_rpm=60)])
        assert result.matrix.alert_counts()["boring"] == 0
