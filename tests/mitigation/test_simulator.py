"""Closed-loop simulator tests: determinism, pass-through equivalence and
the end-to-end adaptation property of the acceptance criteria."""

from __future__ import annotations

import pytest

from repro.mitigation import (
    build_gateway,
    build_report,
    pass_through_policy,
    run_defense,
    standard_policy,
)
from repro.stream import StreamEngine, WindowedAdjudicator, default_online_detectors
from repro.stream.sources import dataset_replay
from repro.traffic.labels import is_malicious_class

REQUESTS = 2000
SEED = 314


@pytest.fixture(scope="module")
def scripted_run():
    return run_defense(total_requests=REQUESTS, adaptive=False, seed=SEED)


@pytest.fixture(scope="module")
def adaptive_run():
    return run_defense(total_requests=REQUESTS, adaptive=True, seed=SEED)


class TestSimulatorBasics:
    def test_deterministic_given_seed(self, scripted_run):
        again = run_defense(total_requests=REQUESTS, adaptive=False, seed=SEED)
        assert again.log.action_counts() == scripted_run.log.action_counts()
        assert again.stream_result.alert_counts() == scripted_run.stream_result.alert_counts()
        assert [r.request_id for r in again.dataset.records] == [
            r.request_id for r in scripted_run.dataset.records
        ]

    def test_records_arrive_in_time_order(self, scripted_run):
        timestamps = [record.timestamp for record in scripted_run.dataset.records]
        assert timestamps == sorted(timestamps)

    def test_dataset_is_fully_labelled(self, scripted_run):
        truth = scripted_run.dataset.ground_truth
        classes = set(scripted_run.actor_classes.values())
        assert any(is_malicious_class(cls) for cls in classes)
        assert any(not is_malicious_class(cls) for cls in classes)
        for record in scripted_run.dataset.records:
            assert truth.label_of(record.request_id)
            assert record.request_id in scripted_run.actor_ids

    def test_log_covers_every_attempted_request(self, scripted_run):
        assert len(scripted_run.log) == scripted_run.total_requests
        assert scripted_run.stream_result.stats.records == scripted_run.total_requests


class TestPassThroughEquivalence:
    def test_pass_through_simulation_reproduces_stream_results(self):
        # The acceptance property: with a non-enforcing policy, replaying
        # the simulation's own attempted-request log through a fresh
        # streaming engine yields exactly the simulation's alert sets.
        result = run_defense(
            total_requests=REQUESTS, adaptive=False, policy=pass_through_policy(), seed=SEED
        )
        assert result.log.denied_count() == 0
        detectors = default_online_detectors()
        engine = StreamEngine(
            detectors,
            adjudicator=WindowedAdjudicator(
                [d.name for d in detectors], k=2, window_seconds=600.0
            ),
        )
        replayed = engine.run(dataset_replay(result.dataset))
        assert [s.request_ids() for s in result.stream_result.alert_sets] == [
            s.request_ids() for s in replayed.alert_sets
        ]
        assert (
            result.stream_result.adjudication.alerted_ids
            == replayed.adjudication.alerted_ids
        )


class TestAdaptationEndToEnd:
    def test_scripted_campaign_is_neutralized(self, scripted_run):
        report = build_report(scripted_run)
        assert report.attacker_actors_blocked == report.attacker_actors
        assert report.attacker_yield < 0.10
        assert report.median_time_to_first_block is not None
        assert report.requests_saved > 0

    def test_adaptive_campaign_measurably_evades_longer(self, scripted_run, adaptive_run):
        scripted = build_report(scripted_run)
        adaptive = build_report(adaptive_run)
        # The adaptive fleet lands a far larger share of its budget ...
        assert adaptive.attacker_yield > 2 * scripted.attacker_yield
        # ... takes longer to draw its first block ...
        assert adaptive.median_time_to_first_block > scripted.median_time_to_first_block
        # ... and pays for it in burned identities.
        assert adaptive.attacker_identity_rotations > 0
        assert scripted.attacker_identity_rotations == 0

    def test_exhausting_identities_forces_give_up(self):
        result = run_defense(
            total_requests=REQUESTS, adaptive=True, seed=SEED, identities_per_node=2
        )
        report = build_report(result)
        assert report.attacker_gave_up > 0
        # Fewer identities -> less evasion than the well-provisioned fleet.
        rich = build_report(
            run_defense(total_requests=REQUESTS, adaptive=True, seed=SEED, identities_per_node=8)
        )
        assert report.attacker_served <= rich.attacker_served

    def test_good_bots_are_spared_by_the_allowlist(self, scripted_run):
        report = build_report(scripted_run)
        crawler_outcomes = [
            o for o in report.actor_outcomes if o.actor_class in ("search_crawler", "monitoring_bot")
        ]
        assert crawler_outcomes
        assert all(o.denied == 0 for o in crawler_outcomes)


class TestCollateralDamage:
    def test_aggressive_configuration_produces_collateral(self):
        from repro.mitigation import get_policy

        result = run_defense(
            total_requests=2500, adaptive=False, policy=get_policy("strict"), seed=11, k=1
        )
        report = build_report(result)
        # With any-detector voting and a strict ladder, some humans get
        # challenged or blocked: measurable collateral damage.
        assert report.humans_challenged + report.benign_denied > 0
        assert 0.0 <= report.false_block_rate < 0.05
        assert report.human_lockout_rate <= 0.2

    def test_challenge_failures_are_attributed_to_humans(self):
        population_gateway = build_gateway(standard_policy(), k=1)
        # Direct unit check on the report plumbing: a simulated human that
        # cannot solve challenges shows up in the collateral columns.
        from repro.mitigation.simulator import ClosedLoopSimulator
        from repro.traffic.humans import HumanVisitor
        from repro.traffic.ipspace import IPSpace
        from repro.traffic.site import SiteModel
        from repro.traffic.stepping import ResponsiveSteppedActor, SteppedPopulation
        from repro.traffic.actors import TimeWindow
        from datetime import datetime, timezone
        import random

        site, ip_space = SiteModel(), IPSpace()
        rng = random.Random(5)
        population = SteppedPopulation()
        for index in range(6):
            population.add(
                ResponsiveSteppedActor(
                    HumanVisitor(
                        f"power-{index}",
                        site,
                        client_ip=ip_space.residential.random_address(rng),
                        user_agent="Mozilla/5.0 (Windows NT 10.0; Win64; x64)",
                        request_budget=160,
                        power_user=True,
                    ),
                    challenge_skill=0.0,
                    abandon_when_denied=True,
                )
            )
        window = TimeWindow(start=datetime(2018, 3, 14, tzinfo=timezone.utc), days=1)
        simulation = ClosedLoopSimulator(population, window, population_gateway, seed=5).run()
        report = build_report(simulation)
        if report.humans_challenged:
            assert report.humans_challenges_failed == report.humans_challenged
            assert report.humans_denied_ever > 0
