"""Tests for the enforcement gateway, including the pass-through
equivalence guarantee over an existing data set."""

from __future__ import annotations

import pytest

from repro.exceptions import DetectorError
from repro.mitigation import (
    build_gateway,
    pass_through_policy,
    standard_policy,
)
from repro.mitigation.actions import Action
from repro.mitigation.gateway import EnforcementGateway
from repro.stream import StreamEngine, WindowedAdjudicator, default_online_detectors
from repro.stream.sources import dataset_replay
from repro.traffic.generator import generate_dataset
from repro.traffic.scenarios import balanced_small


@pytest.fixture(scope="module")
def replay_dataset():
    return generate_dataset(balanced_small(total_requests=2500, seed=7))


def reference_engine(k: int = 2) -> StreamEngine:
    detectors = default_online_detectors()
    return StreamEngine(
        detectors,
        adjudicator=WindowedAdjudicator(
            [d.name for d in detectors], k=k, window_seconds=600.0
        ),
    )


class TestPassThroughEquivalence:
    def test_pass_through_reproduces_stream_results_exactly(self, replay_dataset):
        gateway = build_gateway(pass_through_policy(), k=2)
        gateway_result = gateway.run(dataset_replay(replay_dataset))
        stream_result = reference_engine(k=2).run(dataset_replay(replay_dataset))

        assert [s.request_ids() for s in gateway_result.stream_result.alert_sets] == [
            s.request_ids() for s in stream_result.alert_sets
        ]
        assert (
            gateway_result.stream_result.adjudication.alerted_ids
            == stream_result.adjudication.alerted_ids
        )
        assert gateway_result.stream_result.alert_counts() == stream_result.alert_counts()

    def test_pass_through_allows_every_request(self, replay_dataset):
        gateway = build_gateway(pass_through_policy(), k=2)
        result = gateway.run(dataset_replay(replay_dataset))
        assert len(result.log) == len(replay_dataset)
        assert result.action_counts()["allow"] == len(replay_dataset)
        assert result.log.denied_count() == 0
        assert result.log.bytes_saved() == 0

    def test_enforcing_policy_still_observes_every_request(self, replay_dataset):
        # Denied requests are logged at the edge, so detection state (and
        # therefore the final alert sets) must be identical to pass-through.
        enforcing = build_gateway(standard_policy(), k=2).run(dataset_replay(replay_dataset))
        observing = build_gateway(pass_through_policy(), k=2).run(dataset_replay(replay_dataset))
        assert enforcing.stream_result.alert_counts() == observing.stream_result.alert_counts()
        assert len(enforcing.log) == len(replay_dataset)


class TestEnforcement:
    def test_standard_policy_blocks_scraping_traffic(self, replay_dataset):
        gateway = build_gateway(standard_policy(), k=2)
        result = gateway.run(dataset_replay(replay_dataset))
        counts = result.action_counts()
        assert counts["block"] > 0
        assert result.log.denied_count() > 0
        assert result.log.bytes_saved() > 0
        # The log and the stream saw the same number of requests.
        assert len(result.log) == result.stream_result.stats.records

    def test_unanswered_challenges_fail(self, replay_dataset):
        gateway = build_gateway(standard_policy(), k=2)
        result = gateway.run(dataset_replay(replay_dataset))
        passed, failed = result.log.challenge_counts()
        assert passed == 0  # no solver in the loop: nobody can answer
        assert failed == result.log.action_counts()["challenge"]

    def test_challenge_solver_is_consulted(self, replay_dataset):
        gateway = build_gateway(standard_policy(), k=2)
        gateway.challenge_solver = lambda record: True
        result = gateway.run(dataset_replay(replay_dataset))
        passed, failed = result.log.challenge_counts()
        assert failed == 0
        assert passed == result.log.action_counts()["challenge"]

    def test_log_records_are_consistent(self, replay_dataset):
        gateway = build_gateway(standard_policy(), k=2)
        result = gateway.run(dataset_replay(replay_dataset))
        for record in result.log:
            assert record.action in Action
            assert record.served == (not record.denied)
            if record.action.denies:
                assert not record.served
            if record.challenge_passed is not None:
                assert record.action is Action.CHALLENGE

    def test_reset_between_runs(self, replay_dataset):
        gateway = build_gateway(standard_policy(), k=2)
        first = gateway.run(dataset_replay(replay_dataset))
        second = gateway.run(dataset_replay(replay_dataset))
        assert first.action_counts() == second.action_counts()
        assert len(second.log) == len(replay_dataset)


class TestGatewayValidation:
    def test_rejects_reorder_buffered_engine(self):
        engine = StreamEngine(default_online_detectors(), max_skew_seconds=30.0)
        with pytest.raises(DetectorError, match="reorder buffer"):
            EnforcementGateway(engine, standard_policy())
