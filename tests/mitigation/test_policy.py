"""Tests for enforcement actions, policies and the policy engine."""

from __future__ import annotations

from datetime import datetime, timedelta, timezone

import pytest

from repro.logs.record import LogRecord, RequestMethod
from repro.mitigation.actions import Action, PolicyError, most_severe
from repro.mitigation.policy import (
    Allowlist,
    EscalationLadder,
    Policy,
    PolicyEngine,
    PolicyRule,
    get_policy,
    good_bot_allowlist,
    list_policies,
    pass_through_policy,
    standard_policy,
    strict_policy,
)
from repro.stream.events import OnlineVerdict, RequestVerdict

START = datetime(2018, 3, 14, 12, 0, 0, tzinfo=timezone.utc)
DETECTORS = ("rate-limit", "ua-fingerprint", "inhouse", "anomaly")


def make_record(seconds: float = 0.0, *, ip: str = "172.20.1.9", ua: str = "Mozilla/5.0", rid: str = "r0") -> LogRecord:
    return LogRecord(
        request_id=rid,
        timestamp=START + timedelta(seconds=seconds),
        client_ip=ip,
        method=RequestMethod.GET,
        path="/search",
        protocol="HTTP/1.1",
        status=200,
        response_size=512,
        referrer="",
        user_agent=ua,
    )


def make_verdict(votes: int, *, rid: str = "r0", alerted: bool | None = None) -> RequestVerdict:
    online = {
        name: OnlineVerdict(request_id=rid, alerted=index < votes)
        for index, name in enumerate(DETECTORS)
    }
    return RequestVerdict(
        request_id=rid,
        timestamp=START,
        alerted=votes > 0 if alerted is None else alerted,
        votes=online,
    )


class TestActions:
    def test_severity_is_strictly_ordered(self):
        severities = [a.severity for a in (Action.ALLOW, Action.THROTTLE, Action.CHALLENGE, Action.BLOCK, Action.TARPIT)]
        assert severities == sorted(severities)
        assert len(set(severities)) == len(severities)

    def test_denying_actions(self):
        assert Action.BLOCK.denies and Action.TARPIT.denies
        assert not Action.ALLOW.denies and not Action.CHALLENGE.denies

    def test_from_string_roundtrip_and_error(self):
        assert Action.from_string("tarpit") is Action.TARPIT
        with pytest.raises(PolicyError, match="unknown action"):
            Action.from_string("nuke")

    def test_most_severe(self):
        assert most_severe([]) is Action.ALLOW
        assert most_severe([Action.THROTTLE, Action.BLOCK, Action.CHALLENGE]) is Action.BLOCK


class TestDeclarativeParts:
    def test_rule_matching_votes_strikes_and_detectors(self):
        rule = PolicyRule(name="r", action=Action.BLOCK, min_votes=2, min_strikes=3)
        assert not rule.matches(make_verdict(2), strikes=2)
        assert not rule.matches(make_verdict(1), strikes=3)
        assert rule.matches(make_verdict(2), strikes=3)
        scoped = PolicyRule(name="s", action=Action.BLOCK, detectors=("inhouse",))
        # "inhouse" is the third detector; it only votes from 3 votes up.
        assert not scoped.matches(make_verdict(2), strikes=1)
        assert scoped.matches(make_verdict(3), strikes=1)

    def test_rule_validation(self):
        with pytest.raises(PolicyError):
            PolicyRule(name="bad", action=Action.BLOCK, min_votes=0)
        with pytest.raises(PolicyError):
            PolicyRule(name="bad", action=Action.BLOCK, min_strikes=0)

    def test_ladder_climbs_and_saturates(self):
        ladder = EscalationLadder(strikes_per_step=2)
        actions = [ladder.action_for(s) for s in range(0, 8)]
        assert actions[0] is Action.ALLOW
        assert actions[1:3] == [Action.THROTTLE, Action.THROTTLE]
        assert actions[3:5] == [Action.CHALLENGE, Action.CHALLENGE]
        assert actions[5:] == [Action.BLOCK] * 3  # saturates at the top rung

    def test_ladder_validation(self):
        with pytest.raises(PolicyError):
            EscalationLadder(steps=())
        with pytest.raises(PolicyError):
            EscalationLadder(strikes_per_step=0)

    def test_allowlist_by_agent_and_prefix(self):
        allowlist = good_bot_allowlist()
        assert allowlist.permits(make_record(ua="Mozilla/5.0 (compatible; Googlebot/2.1; ...)"))
        assert allowlist.permits(make_record(ip="192.168.66.12"))
        assert not allowlist.permits(make_record())
        assert not Allowlist().permits(make_record(ip="192.168.66.12"))


class TestPolicyEngine:
    def test_pass_through_never_acts(self):
        engine = PolicyEngine(pass_through_policy())
        decision = engine.decide(make_record(), make_verdict(4))
        assert decision.action is Action.ALLOW
        assert decision.reason == "pass-through"
        assert engine.tracked_visitors == 0

    def test_allowlisted_good_bot_is_never_escalated(self):
        engine = PolicyEngine(standard_policy())
        for second in range(10):
            decision = engine.decide(
                make_record(second, ip="192.168.66.5"), make_verdict(4)
            )
            assert decision.action is Action.ALLOW
            assert decision.reason == "allowlist"

    def test_ladder_escalates_repeat_offender_to_block(self):
        policy = Policy(
            name="ladder-only",
            ladder=EscalationLadder(strikes_per_step=2),
            block_seconds=60.0,
        )
        engine = PolicyEngine(policy)
        actions = [
            engine.decide(make_record(second, rid=f"r{second}"), make_verdict(1, rid=f"r{second}")).action
            for second in range(6)
        ]
        assert actions[:2] == [Action.THROTTLE, Action.THROTTLE]
        assert actions[2:4] == [Action.CHALLENGE, Action.CHALLENGE]
        assert actions[4] is Action.BLOCK
        # While the block is active it applies regardless of the verdict.
        decision = engine.decide(make_record(5.5, rid="r9"), make_verdict(0, alerted=False))
        assert decision.action is Action.BLOCK
        assert decision.reason == "active-block"

    def test_block_expires_after_block_seconds(self):
        policy = Policy(
            name="fast-block",
            rules=(PolicyRule(name="insta", action=Action.BLOCK),),
            block_seconds=30.0,
        )
        engine = PolicyEngine(policy)
        assert engine.decide(make_record(0), make_verdict(2)).action is Action.BLOCK
        assert engine.decide(make_record(10), make_verdict(0, alerted=False)).action is Action.BLOCK
        after = engine.decide(make_record(45), make_verdict(0, alerted=False))
        assert after.action is Action.ALLOW

    def test_cooldown_wipes_strikes(self):
        policy = Policy(
            name="ladder-only",
            ladder=EscalationLadder(strikes_per_step=1),
            cooldown_seconds=100.0,
            block_seconds=5.0,
        )
        engine = PolicyEngine(policy)
        assert engine.decide(make_record(0), make_verdict(1)).action is Action.THROTTLE
        # A long quiet period resets the ladder to its first rung.
        assert engine.decide(make_record(500), make_verdict(1)).action is Action.THROTTLE

    def test_passed_challenge_grants_grace(self):
        policy = Policy(
            name="challenge-first",
            rules=(PolicyRule(name="ch", action=Action.CHALLENGE),),
            challenge_grace_seconds=600.0,
        )
        engine = PolicyEngine(policy)
        first = engine.decide(make_record(0), make_verdict(2))
        assert first.action is Action.CHALLENGE
        engine.record_challenge(first.visitor_key, True, START.timestamp())
        # Within the grace window the visitor is paced, not re-challenged.
        second = engine.decide(make_record(60, rid="r1"), make_verdict(2, rid="r1"))
        assert second.action is Action.THROTTLE
        assert second.reason == "verified-grace"

    def test_failed_challenge_blocks_immediately(self):
        engine = PolicyEngine(standard_policy())
        engine.record_challenge("172.20.1.9", False, START.timestamp())
        decision = engine.decide(make_record(1), make_verdict(0, alerted=False))
        assert decision.action is Action.BLOCK
        state = engine.state_of("172.20.1.9")
        assert state.challenges_failed == 1

    def test_throttle_and_tarpit_carry_delays(self):
        policy = Policy(
            name="delays",
            rules=(PolicyRule(name="pit", action=Action.TARPIT, min_votes=3),),
            ladder=EscalationLadder(steps=(Action.THROTTLE,), strikes_per_step=1),
            throttle_delay_seconds=1.5,
            tarpit_delay_seconds=9.0,
        )
        engine = PolicyEngine(policy)
        throttled = engine.decide(make_record(0), make_verdict(1))
        assert throttled.action is Action.THROTTLE and throttled.delay_seconds == 1.5
        pitted = engine.decide(make_record(1, ip="172.20.9.9"), make_verdict(4))
        assert pitted.action is Action.TARPIT and pitted.delay_seconds == 9.0

    def test_reset_forgets_visitors(self):
        engine = PolicyEngine(standard_policy())
        engine.decide(make_record(0), make_verdict(2))
        assert engine.tracked_visitors == 1
        engine.reset()
        assert engine.tracked_visitors == 0


class TestPresets:
    def test_registry_lists_and_builds(self):
        assert list_policies() == ["pass-through", "standard", "strict"]
        assert get_policy("standard").name == "standard"
        assert not get_policy("pass-through").enforces
        assert strict_policy().enforces

    def test_unknown_policy_raises(self):
        with pytest.raises(PolicyError, match="unknown policy"):
            get_policy("draconian")

    def test_policy_validation(self):
        with pytest.raises(PolicyError):
            Policy(name="bad", cooldown_seconds=0.0)
