"""Tests for the Table-5-style mitigation report and its rendering."""

from __future__ import annotations

import pytest

from repro.mitigation import build_report, render_comparison, render_mitigation_report, run_defense
from repro.mitigation.metrics import _median


@pytest.fixture(scope="module")
def scripted_report():
    return build_report(
        run_defense(total_requests=1600, adaptive=False, seed=314), policy_name="standard"
    )


@pytest.fixture(scope="module")
def adaptive_report():
    return build_report(
        run_defense(total_requests=1600, adaptive=True, seed=314), policy_name="standard"
    )


class TestMedian:
    def test_empty_is_none(self):
        assert _median([]) is None

    def test_odd_and_even(self):
        assert _median([3.0, 1.0, 2.0]) == 2.0
        assert _median([1.0, 2.0, 3.0, 4.0]) == 2.5


class TestReportInvariants:
    def test_request_accounting_adds_up(self, scripted_report):
        report = scripted_report
        assert report.served_requests + report.denied_requests == report.total_requests
        assert sum(report.action_counts.values()) == report.total_requests
        assert report.attacker_attempted == report.attacker_served + report.attacker_denied
        assert report.requests_saved == report.denied_requests

    def test_actor_outcomes_cover_all_traffic(self, scripted_report):
        report = scripted_report
        assert sum(o.attempted for o in report.actor_outcomes) == report.total_requests
        malicious = sum(o.attempted for o in report.actor_outcomes if o.malicious)
        assert malicious == report.attacker_attempted
        assert report.benign_attempted == report.total_requests - malicious

    def test_rates_are_fractions(self, scripted_report, adaptive_report):
        for report in (scripted_report, adaptive_report):
            assert 0.0 <= report.attacker_yield <= 1.0
            assert 0.0 <= report.false_block_rate <= 1.0
            assert 0.0 <= report.human_lockout_rate <= 1.0

    def test_bytes_saved_tracks_denials(self, scripted_report):
        if scripted_report.denied_requests:
            assert scripted_report.bytes_saved > 0
        else:
            assert scripted_report.bytes_saved == 0


class TestRendering:
    def test_report_contains_the_headline_metrics(self, scripted_report):
        text = render_mitigation_report(scripted_report)
        assert "Table 5" in text
        assert "[standard]" in text
        assert "Requests saved (denied)" in text
        assert "Median time to first block" in text
        assert "False-block rate" in text
        assert "Attacker identity rotations" in text

    def test_comparison_contrasts_the_campaigns(self, scripted_report, adaptive_report):
        text = render_comparison(scripted_report, adaptive_report)
        assert "scripted vs adaptive" in text
        assert "->" in text
        assert "Identity rotations burned" in text

    def test_duration_formatting(self):
        from repro.mitigation.metrics import _duration

        assert _duration(None) == "never"
        assert _duration(12.0) == "12 s"
        assert _duration(600.0) == "10.0 min"
        assert _duration(7200.0) == "2.0 h"
