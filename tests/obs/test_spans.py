"""Tracing spans: nesting, the stage-seconds feed, and serialization."""

from __future__ import annotations

import threading
import time

from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.obs.names import STAGE_SECONDS
from repro.obs.spans import Span, trace_span


def test_nested_spans_build_a_tree():
    registry = MetricsRegistry()
    with trace_span("outer", registry, records=10) as outer:
        with trace_span("inner-a", registry):
            time.sleep(0.001)
        with trace_span("inner-b", registry) as inner:
            inner.set_attribute(sessions=3)
    assert [span.name for span in registry.spans] == ["outer"]
    assert [child.name for child in outer.children] == ["inner-a", "inner-b"]
    assert outer.attributes == {"records": 10}
    assert outer.children[1].attributes == {"sessions": 3}
    assert outer.duration >= sum(child.duration for child in outer.children)


def test_every_span_exit_feeds_the_stage_histogram():
    registry = MetricsRegistry()
    with trace_span("stage-x", registry):
        pass
    with trace_span("stage-x", registry):
        pass
    with trace_span("stage-y", registry):
        pass
    hist = registry.get(STAGE_SECONDS)
    assert hist.count(stage="stage-x") == 2
    assert hist.count(stage="stage-y") == 1
    timings = registry.stage_timings()
    assert set(timings) == {"stage-x", "stage-y"}
    assert timings["stage-x"] >= 0.0


def test_stage_timings_sum_repeated_stages():
    registry = MetricsRegistry()
    hist = registry.histogram(STAGE_SECONDS)
    hist.observe(1.0, stage="detect")
    hist.observe(2.0, stage="detect")
    assert registry.stage_timings() == {"detect": 3.0}


def test_disabled_registry_records_nothing():
    with trace_span("stage", NULL_REGISTRY, records=1) as span:
        span.set_attribute(more=2)  # must be a silent no-op
    assert NULL_REGISTRY.spans == []
    with trace_span("stage") as span:  # None registry resolves to null
        pass
    assert span.duration == 0.0


def test_span_exits_on_exception():
    registry = MetricsRegistry()
    try:
        with trace_span("failing", registry):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert [span.name for span in registry.spans] == ["failing"]
    assert registry.get(STAGE_SECONDS).count(stage="failing") == 1


def test_span_stacks_are_per_thread():
    registry = MetricsRegistry()

    def work(name: str) -> None:
        with trace_span(name, registry):
            time.sleep(0.002)

    threads = [threading.Thread(target=work, args=(f"t{i}",)) for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    # Concurrent spans never nest across threads: four roots, no children.
    assert sorted(span.name for span in registry.spans) == ["t0", "t1", "t2", "t3"]
    assert all(span.children == [] for span in registry.spans)


def test_span_serialization_round_trip():
    registry = MetricsRegistry()
    with trace_span("outer", registry, engine="columnar"):
        with trace_span("inner", registry):
            pass
    snapshot = registry.to_dict()
    rebuilt = MetricsRegistry.from_dict(snapshot)
    assert [span.name for span in rebuilt.spans] == ["outer"]
    assert rebuilt.spans[0].children[0].name == "inner"
    assert rebuilt.to_dict()["spans"] == snapshot["spans"]


def test_span_render_is_an_indented_tree():
    span = Span(name="outer", duration=1.5, attributes={"records": 2})
    span.children.append(Span(name="inner", duration=0.5))
    rendered = span.render()
    lines = rendered.splitlines()
    assert lines[0].startswith("outer: 1.5000s")
    assert "records=2" in lines[0]
    assert lines[1].startswith("  inner:")
