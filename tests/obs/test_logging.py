"""Structured logging: the key=value formatter and ``logging_setup``."""

from __future__ import annotations

import logging

import pytest

from repro.obs.logsetup import KeyValueFormatter, logging_setup


def _format(record: logging.LogRecord) -> str:
    return KeyValueFormatter().format(record)


def _record(message: str, *, extra: dict | None = None, level=logging.INFO) -> logging.LogRecord:
    record = logging.LogRecord("repro.test", level, __file__, 1, message, (), None)
    if extra:
        record.__dict__.update(extra)
    return record


class TestFormatter:
    def test_core_fields_in_order(self):
        line = _format(_record("disk hit"))
        parts = line.split(" ")
        assert parts[0].startswith("ts=")
        assert parts[1] == "level=info"
        assert parts[2] == "logger=repro.test"
        assert 'event="disk hit"' in line

    def test_extra_fields_are_appended_sorted(self):
        line = _format(_record("evt", extra={"zeta": 1, "alpha": "x"}))
        assert line.endswith("alpha=x zeta=1")

    def test_values_with_spaces_quotes_or_equals_are_quoted(self):
        line = _format(_record("evt", extra={"path": "a b", "expr": "k=v", "q": 'say "hi"'}))
        assert 'path="a b"' in line
        assert 'expr="k=v"' in line
        assert 'q="say \\"hi\\""' in line

    def test_plain_values_stay_bare(self):
        line = _format(_record("evt", extra={"count": 42, "tier": "plain"}))
        assert "count=42" in line
        assert "tier=plain" in line

    def test_exceptions_are_folded_into_one_line(self):
        try:
            raise ValueError("bad")
        except ValueError:
            import sys

            record = _record("failed")
            record.exc_info = sys.exc_info()
        line = _format(record)
        assert "\n" not in line
        assert "exc=" in line
        assert "ValueError" in line


class TestLoggingSetup:
    def test_attaches_one_tagged_handler(self):
        logger = logging_setup("info", logger="repro-test-obs")
        tagged = [h for h in logger.handlers if getattr(h, "_repro_obs", False)]
        assert len(tagged) == 1
        assert logger.level == logging.INFO
        assert logger.propagate is False
        assert isinstance(tagged[0].formatter, KeyValueFormatter)

    def test_repeated_setup_replaces_instead_of_stacking(self):
        logging_setup("info", logger="repro-test-obs")
        logger = logging_setup("debug", logger="repro-test-obs")
        tagged = [h for h in logger.handlers if getattr(h, "_repro_obs", False)]
        assert len(tagged) == 1
        assert logger.level == logging.DEBUG

    def test_numeric_level_accepted(self):
        logger = logging_setup(logging.ERROR, logger="repro-test-obs")
        assert logger.level == logging.ERROR

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            logging_setup("loud", logger="repro-test-obs")

    def test_library_messages_flow_through(self, capsys):
        logging_setup("debug", logger="repro-test-obs")
        child = logging.getLogger("repro-test-obs.cache")
        child.debug("cache miss", extra={"fingerprint": "ab12"})
        err = capsys.readouterr().err
        assert 'event="cache miss"' in err
        assert "fingerprint=ab12" in err
        assert "logger=repro-test-obs.cache" in err
