"""The shared background HTTP server underneath /metrics and the dashboard."""

from __future__ import annotations

import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler

import pytest

from repro.obs.httpserve import BackgroundHTTPServer


class _Hello(BaseHTTPRequestHandler):
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        payload = b"hello\n"
        self.send_response(200)
        self.send_header("Content-Type", "text/plain")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass


def test_port_zero_binds_and_advertises_real_port():
    with BackgroundHTTPServer(_Hello) as server:
        assert server.port > 0
        assert server.url == f"http://127.0.0.1:{server.port}/"
        with urllib.request.urlopen(server.url, timeout=10) as response:
            assert response.read() == b"hello\n"


def test_close_releases_the_port():
    server = BackgroundHTTPServer(_Hello)
    url = server.url
    server.close()
    assert not server._thread.is_alive()
    with pytest.raises(urllib.error.URLError):
        urllib.request.urlopen(url, timeout=1)


def test_two_servers_never_collide():
    with BackgroundHTTPServer(_Hello) as first, BackgroundHTTPServer(_Hello) as second:
        assert first.port != second.port


def test_url_path_override():
    class _Sub(BackgroundHTTPServer):
        url_path = "/metrics"

    with _Sub(_Hello) as server:
        assert server.url.endswith("/metrics")
