"""Prometheus exposition: rendered text validated line by line, plus the
live ``/metrics`` endpoint."""

from __future__ import annotations

import re
import urllib.error
import urllib.request

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.prometheus import CONTENT_TYPE, render, serve_metrics

#: ``name{labels} value`` -- the exposition sample-line grammar we emit.
SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>[0-9eE.+-]+|\+Inf|-Inf|NaN)$"
)
LABEL_PAIR = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("repro_demo_total", "Demo events.").inc(3, detector="inhouse")
    registry.counter("repro_demo_total").inc(4, detector="commercial")
    registry.gauge("repro_depth", "Queue depth.").set(2, shard="0")
    hist = registry.histogram("repro_demo_seconds", "Demo durations.", bounds=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 0.5, 5.0, 50.0):
        hist.observe(value)
    return registry


def _parse(text: str) -> list[dict]:
    """Parse exposition text into sample dicts, asserting the grammar."""
    samples = []
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            assert len(line.split(" ", 3)) >= 3
            continue
        match = SAMPLE_LINE.match(line)
        assert match, f"unparseable sample line: {line!r}"
        labels = {}
        body = match.group("labels")
        if body:
            for pair in body[1:-1].split(","):
                assert LABEL_PAIR.match(pair), f"bad label pair: {pair!r} in {line!r}"
                key, value = pair.split("=", 1)
                labels[key] = value[1:-1]
        samples.append(
            {"name": match.group("name"), "labels": labels, "value": match.group("value")}
        )
    return samples


class TestRender:
    def test_every_line_parses(self):
        samples = _parse(render(_populated_registry()))
        assert samples  # non-empty

    def test_counter_and_gauge_samples(self):
        samples = _parse(render(_populated_registry()))
        by_name = {}
        for sample in samples:
            by_name.setdefault(sample["name"], []).append(sample)
        counter_values = {
            sample["labels"]["detector"]: sample["value"]
            for sample in by_name["repro_demo_total"]
        }
        assert counter_values == {"inhouse": "3", "commercial": "4"}
        (gauge,) = by_name["repro_depth"]
        assert gauge["labels"] == {"shard": "0"}
        assert gauge["value"] == "2"

    def test_histogram_buckets_are_cumulative_and_end_at_count(self):
        samples = _parse(render(_populated_registry()))
        buckets = [s for s in samples if s["name"] == "repro_demo_seconds_bucket"]
        les = [s["labels"]["le"] for s in buckets]
        assert les == ["0.1", "1", "10", "+Inf"]
        counts = [int(s["value"]) for s in buckets]
        assert counts == sorted(counts)  # cumulative => non-decreasing
        assert counts == [1, 3, 4, 5]
        (count_sample,) = [s for s in samples if s["name"] == "repro_demo_seconds_count"]
        assert int(count_sample["value"]) == counts[-1] == 5
        (sum_sample,) = [s for s in samples if s["name"] == "repro_demo_seconds_sum"]
        assert float(sum_sample["value"]) == pytest.approx(56.05)

    def test_type_and_help_headers(self):
        text = render(_populated_registry())
        assert "# TYPE repro_demo_total counter" in text
        assert "# TYPE repro_depth gauge" in text
        assert "# TYPE repro_demo_seconds histogram" in text
        assert "# HELP repro_demo_total Demo events." in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_tricky_total").inc(1, path='a"b\\c\nd')
        text = render(registry)
        assert 'path="a\\"b\\\\c\\nd"' in text
        _parse(text)  # still line-parseable

    def test_empty_registry_renders_a_newline(self):
        assert render(MetricsRegistry()) == "\n"

    def test_untouched_metrics_are_skipped(self):
        registry = MetricsRegistry()
        registry.counter("repro_never_hit_total", "Zero series.")
        assert "repro_never_hit_total" not in render(registry)


class TestServer:
    def test_scrape_matches_render(self):
        registry = _populated_registry()
        with serve_metrics(registry, port=0) as server:
            with urllib.request.urlopen(server.url, timeout=5) as response:
                assert response.status == 200
                assert response.headers["Content-Type"] == CONTENT_TYPE
                body = response.read().decode("utf-8")
        assert body == render(registry)
        _parse(body)

    def test_root_path_is_served_and_others_404(self):
        with serve_metrics(MetricsRegistry(), port=0) as server:
            base = f"http://{server.host}:{server.port}"
            with urllib.request.urlopen(f"{base}/", timeout=5) as response:
                assert response.status == 200
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{base}/other", timeout=5)
            assert excinfo.value.code == 404

    def test_scrape_sees_live_updates(self):
        registry = MetricsRegistry()
        with serve_metrics(registry, port=0) as server:
            registry.counter("repro_live_total").inc(7)
            with urllib.request.urlopen(server.url, timeout=5) as response:
                body = response.read().decode("utf-8")
        assert "repro_live_total 7" in body
