"""End-to-end instrumentation: every workload fills one registry.

The contract under test is the ISSUE's acceptance bar: an instrumented
run carries a telemetry snapshot with per-stage duration histograms and
at least ten distinct named counters; the record and columnar batch
engines count *identical* logical events (the shared
:data:`~repro.obs.names.ENGINE_EQUIVALENT_COUNTERS` vocabulary); and an
uninstrumented run stays exactly as it was (no telemetry, legacy
timings only).
"""

from __future__ import annotations

import pytest

from repro.detectors.commercial import CommercialBotDefenceDetector
from repro.detectors.inhouse import InHouseHeuristicDetector
from repro.detectors.pipeline import DetectionPipeline
from repro.obs import names as metric_names
from repro.obs.metrics import MetricsRegistry
from repro.runspec.execute import execute
from repro.runspec.spec import RunSpec, TrafficSpec
from repro.stream.detectors import default_online_detectors
from repro.stream.engine import StreamEngine
from repro.stream.sources import dataset_replay
from repro.traffic.generator import generate_dataset
from repro.traffic.scenarios import get_scenario


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(get_scenario("balanced_small"))


def _pipeline(registry: MetricsRegistry) -> DetectionPipeline:
    return DetectionPipeline(
        [CommercialBotDefenceDetector(), InHouseHeuristicDetector()], registry=registry
    )


def _counter_series(registry: MetricsRegistry, name: str) -> dict:
    counter = registry.get(name)
    if counter is None:
        return {}
    return {tuple(sorted(labels.items())): value for labels, value in counter.series()}


def _distinct_counters(telemetry: dict) -> list[str]:
    return [
        name for name, entry in telemetry["metrics"].items() if entry["kind"] == "counter"
    ]


class TestEngineCounterEquivalence:
    def test_record_and_columnar_engines_count_identical_events(self, dataset):
        observed = {}
        for engine in ("records", "columnar"):
            registry = MetricsRegistry()
            _pipeline(registry).run(dataset, engine=engine)
            observed[engine] = {
                name: _counter_series(registry, name)
                for name in metric_names.ENGINE_EQUIVALENT_COUNTERS
            }
            assert registry.counter(metric_names.RECORDS_INGESTED).total() == len(dataset)
        assert observed["records"] == observed["columnar"]
        # The equivalence vocabulary is non-trivial: every counter in it
        # actually fired.
        for name in metric_names.ENGINE_EQUIVALENT_COUNTERS:
            assert observed["columnar"][name], f"{name} never incremented"

    def test_engines_disagree_only_on_path_labels(self, dataset):
        registry = MetricsRegistry()
        _pipeline(registry).run(dataset, engine="columnar")
        runs = _counter_series(registry, metric_names.DETECTOR_RUNS)
        assert runs and all(dict(labels)["path"] == "columnar" for labels in runs)


class TestExecuteTelemetry:
    def _spec(self, mode: str) -> RunSpec:
        return RunSpec(mode=mode, traffic=TrafficSpec(scenario="balanced_small", seed=3))

    def test_tables_snapshot_meets_the_acceptance_bar(self):
        registry = MetricsRegistry()
        result = execute(self._spec("tables"), registry=registry)
        telemetry = result.telemetry
        assert telemetry is not None
        assert len(_distinct_counters(telemetry)) >= 10
        stage = telemetry["metrics"][metric_names.STAGE_SECONDS]
        assert stage["kind"] == "histogram"
        stages = {dict(series["labels"])["stage"] for series in stage["series"]}
        assert {"dataset", "experiment", "sessionize", "detectors"} <= stages
        # The derived per-stage view is folded into timings, with the
        # legacy pipeline keys preserved.
        assert {"dataset", "experiment", "sessionization", "detectors"} <= set(result.timings)
        # And the whole registry round-trips from the result payload.
        rebuilt = MetricsRegistry.from_dict(result.to_dict()["telemetry"])
        assert rebuilt.to_dict() == telemetry

    def test_stream_snapshot_meets_the_acceptance_bar(self):
        registry = MetricsRegistry()
        result = execute(self._spec("stream"), registry=registry)
        telemetry = result.telemetry
        assert telemetry is not None
        assert len(_distinct_counters(telemetry)) >= 10
        assert metric_names.STAGE_SECONDS in telemetry["metrics"]
        assert {"source", "stream"} <= set(result.timings)
        assert {"stream_seconds", "busy_seconds"} <= set(result.timings)
        ingested = MetricsRegistry.from_dict(telemetry).counter(
            metric_names.RECORDS_INGESTED
        )
        assert ingested.total() == result.total_requests

    def test_defend_snapshot_covers_enforcement(self):
        registry = MetricsRegistry()
        spec = RunSpec(mode="defend", traffic=TrafficSpec(total_requests=800, seed=3))
        result = execute(spec, registry=registry)
        telemetry = result.telemetry
        assert telemetry is not None
        counters = _distinct_counters(telemetry)
        assert metric_names.ENFORCEMENT_ACTIONS in counters
        assert "defense_seconds" in result.timings
        assert {"simulate", "report"} <= set(result.timings)
        actions = _counter_series(registry, metric_names.ENFORCEMENT_ACTIONS)
        assert sum(actions.values()) == result.total_requests

    def test_uninstrumented_execute_is_unchanged(self):
        result = execute(self._spec("tables"))
        assert result.telemetry is None
        assert "dataset" not in result.timings  # no span-derived stages
        assert result.to_dict()["telemetry"] is None

    def test_runs_counter_tracks_mode(self):
        registry = MetricsRegistry()
        execute(self._spec("tables"), registry=registry)
        assert registry.counter(metric_names.RUNS).value(mode="tables") == 1


class TestStreamEngineExport:
    def test_export_matches_the_stream_result(self, dataset):
        registry = MetricsRegistry()
        engine = StreamEngine(default_online_detectors(), registry=registry)
        engine.reset()
        for record in dataset_replay(dataset):
            engine.process(record)
        result = engine.finish()
        assert registry.counter(metric_names.RECORDS_INGESTED).total() == result.stats.records
        assert (
            registry.counter(metric_names.SESSIONS_OPENED).total()
            == result.stats.sessions_opened
        )
        assert (
            registry.counter(metric_names.SESSIONS_CLOSED).total()
            == result.stats.sessions_closed
        )
        assert (
            registry.counter(metric_names.ENSEMBLE_ALERTS).total()
            == result.stats.ensemble_alerts
        )
        verdict_hist = registry.get(metric_names.VERDICT_SECONDS)
        assert verdict_hist is not None
        assert verdict_hist.count() == result.stats.records
