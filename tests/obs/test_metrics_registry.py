"""The metrics core: instruments, registry semantics, snapshots.

Covers the bucket/quantile arithmetic of the histogram against known
distributions, the get-or-create registry contract (including kind and
bounds collisions), the null-registry no-op guarantees, and the
snapshot round trip / merge algebra -- the latter property-based, since
shard merging relies on snapshot addition being exact.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ObsError
from repro.obs.metrics import (
    DEFAULT_BOUNDS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    exponential_bounds,
    resolve_registry,
)


class TestCounter:
    def test_inc_and_total(self):
        counter = Counter("c_total")
        counter.inc()
        counter.inc(4)
        assert counter.value() == 5
        assert counter.total() == 5

    def test_labelled_series_are_independent(self):
        counter = Counter("c_total")
        counter.inc(2, detector="inhouse")
        counter.inc(3, detector="commercial")
        assert counter.value(detector="inhouse") == 2
        assert counter.value(detector="commercial") == 3
        assert counter.value(detector="absent") == 0
        assert counter.total() == 5

    def test_label_order_is_canonical(self):
        counter = Counter("c_total")
        counter.inc(1, a="1", b="2")
        counter.inc(1, b="2", a="1")
        assert counter.value(a="1", b="2") == 2
        assert len(counter) == 1

    def test_negative_increment_rejected(self):
        counter = Counter("c_total")
        with pytest.raises(ObsError, match="cannot decrease"):
            counter.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value() == 12

    def test_gauge_may_go_negative(self):
        gauge = Gauge("g")
        gauge.dec(2)
        assert gauge.value() == -2


class TestHistogramBuckets:
    def test_default_bounds_are_strictly_increasing(self):
        assert all(b > a for a, b in zip(DEFAULT_BOUNDS, DEFAULT_BOUNDS[1:]))
        assert DEFAULT_BOUNDS[0] == pytest.approx(1e-6)
        assert len(DEFAULT_BOUNDS) == 28

    def test_bucket_assignment_is_le_semantics(self):
        hist = Histogram("h_seconds", bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 99.0):
            hist.observe(value)
        ((_labels, series),) = list(hist.series())
        # <=1: {0.5, 1.0}; <=2: {1.5, 2.0}; <=4: {3.0, 4.0}; overflow: {99.0}
        assert series.buckets == [2, 2, 2, 1]
        assert series.count == 7
        assert series.sum == pytest.approx(0.5 + 1.0 + 1.5 + 2.0 + 3.0 + 4.0 + 99.0)
        assert series.min == 0.5
        assert series.max == 99.0

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ObsError, match="strictly increasing"):
            Histogram("h", bounds=(1.0, 1.0, 2.0))
        with pytest.raises(ObsError, match="strictly increasing"):
            Histogram("h", bounds=())


class TestHistogramQuantiles:
    def test_empty_series_reports_zero(self):
        hist = Histogram("h_seconds")
        assert hist.quantile(0.5) == 0.0
        assert hist.count() == 0

    def test_single_observation_is_every_quantile(self):
        hist = Histogram("h_seconds")
        hist.observe(0.125)
        for q in (0.0, 0.5, 0.95, 1.0):
            assert hist.quantile(q) == pytest.approx(0.125)

    def test_quantiles_of_a_uniform_grid(self):
        hist = Histogram("h_seconds")
        values = [i / 1000 for i in range(1, 1001)]  # uniform on (0, 1]
        for value in values:
            hist.observe(value)
        # Exponential buckets are coarse near 1, so allow a loose band.
        assert hist.quantile(0.5) == pytest.approx(0.5, abs=0.15)
        assert hist.quantile(0.95) == pytest.approx(0.95, abs=0.10)
        assert hist.quantile(0.99) == pytest.approx(0.99, abs=0.05)
        assert set(hist.percentiles()) == {"p50", "p95", "p99", "p999"}
        assert hist.percentiles()["p999"] >= hist.percentiles()["p99"]

    def test_quantiles_clamped_to_observed_range(self):
        hist = Histogram("h_seconds")
        for value in (0.2, 0.3, 0.4):
            hist.observe(value)
        assert 0.2 <= hist.quantile(0.0) <= 0.4
        assert hist.quantile(1.0) == pytest.approx(0.4)

    def test_quantiles_are_monotone(self):
        hist = Histogram("h_seconds")
        for value in (1e-5, 3e-4, 0.002, 0.002, 0.7, 12.0):
            hist.observe(value)
        qs = [hist.quantile(q) for q in (0.1, 0.25, 0.5, 0.75, 0.9, 0.99)]
        assert qs == sorted(qs)

    def test_out_of_range_quantile_rejected(self):
        hist = Histogram("h_seconds")
        with pytest.raises(ObsError, match="within"):
            hist.quantile(1.5)


class TestExponentialBounds:
    def test_geometric_progression(self):
        bounds = exponential_bounds(0.001, 10.0, 4)
        assert bounds == pytest.approx((0.001, 0.01, 0.1, 1.0))

    def test_usable_as_histogram_bounds(self):
        hist = Histogram("h_seconds", bounds=exponential_bounds(0.5, 2.0, 6))
        hist.observe(3.0)
        assert hist.count() == 1
        assert 2.0 <= hist.quantile(0.5) <= 4.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ObsError):
            exponential_bounds(0.0, 2.0, 4)
        with pytest.raises(ObsError):
            exponential_bounds(0.1, 1.0, 4)
        with pytest.raises(ObsError):
            exponential_bounds(0.1, 2.0, 0)


class TestRegistry:
    def test_get_or_create_returns_the_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a_total") is registry.counter("a_total")
        assert registry.histogram("h_seconds") is registry.histogram("h_seconds")

    def test_kind_collision_fails_loudly(self):
        registry = MetricsRegistry()
        registry.counter("a_total")
        with pytest.raises(ObsError, match="already registered"):
            registry.gauge("a_total")
        with pytest.raises(ObsError, match="already registered"):
            registry.histogram("a_total")

    def test_histogram_bounds_collision_fails_loudly(self):
        registry = MetricsRegistry()
        registry.histogram("h_seconds", bounds=(1.0, 2.0))
        registry.histogram("h_seconds", bounds=(1.0, 2.0))  # same bounds: fine
        with pytest.raises(ObsError, match="other bounds"):
            registry.histogram("h_seconds", bounds=(1.0, 3.0))

    def test_metrics_listing_is_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b_total")
        registry.gauge("a")
        assert [metric.name for metric in registry.metrics()] == ["a", "b_total"]
        assert registry.get("a").kind == "gauge"
        assert registry.get("missing") is None


class TestNullRegistry:
    def test_disabled_and_shared(self):
        assert NULL_REGISTRY.enabled is False
        assert isinstance(NULL_REGISTRY, NullRegistry)
        assert resolve_registry(None) is NULL_REGISTRY
        live = MetricsRegistry()
        assert resolve_registry(live) is live
        assert live.enabled is True

    def test_instruments_are_inert(self):
        counter = NULL_REGISTRY.counter("a_total")
        counter.inc(5, detector="x")
        assert counter.total() == 0
        hist = NULL_REGISTRY.histogram("h_seconds")
        hist.observe(1.0)
        assert hist.count() == 0
        assert hist.percentiles() == {}
        gauge = NULL_REGISTRY.gauge("g")
        gauge.set(3)
        assert gauge.value() == 0
        assert NULL_REGISTRY.to_dict()["metrics"] == {}


class TestSnapshot:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("a_total", "events").inc(3, detector="x")
        registry.counter("a_total").inc(2, detector="y")
        registry.gauge("g", "depth").set(7, shard="0")
        hist = registry.histogram("h_seconds", "durations")
        for value in (1e-5, 0.004, 0.25, 3.0):
            hist.observe(value, stage="demo")
        return registry

    def test_snapshot_shape(self):
        snap = self._populated().to_dict()
        assert snap["format"] == "repro-obs"
        assert snap["version"] == 1
        assert set(snap["metrics"]) == {"a_total", "g", "h_seconds"}
        entry = snap["metrics"]["h_seconds"]
        assert len(entry["series"][0]["buckets"]) == len(entry["bounds"]) + 1

    def test_json_round_trip(self):
        registry = self._populated()
        snap = json.loads(json.dumps(registry.to_dict()))
        rebuilt = MetricsRegistry.from_dict(snap)
        assert rebuilt.to_dict() == registry.to_dict()
        assert rebuilt.counter("a_total").value(detector="x") == 3
        assert rebuilt.histogram("h_seconds").count(stage="demo") == 4

    def test_from_dict_rejects_foreign_payloads(self):
        with pytest.raises(ObsError, match="format marker"):
            MetricsRegistry.from_dict({"metrics": {}})
        with pytest.raises(ObsError, match="mapping"):
            MetricsRegistry.from_dict([1, 2])

    def test_merge_adds_counters_and_buckets(self):
        registry = self._populated()
        snap = registry.to_dict()
        registry.merge(snap)
        assert registry.counter("a_total").value(detector="x") == 6
        assert registry.histogram("h_seconds").count(stage="demo") == 8
        # Gauges are last-write-wins, not additive.
        assert registry.gauge("g").value(shard="0") == 7

    def test_merge_rejects_mismatched_bounds(self):
        registry = MetricsRegistry()
        registry.histogram("h_seconds", bounds=(1.0, 2.0)).observe(0.5)
        other = MetricsRegistry()
        other.histogram("h_seconds", bounds=(1.0, 4.0)).observe(0.5)
        with pytest.raises(ObsError):
            registry.merge(other.to_dict())


@settings(max_examples=50, deadline=None)
@given(
    counts=st.dictionaries(
        st.sampled_from(["a_total", "b_total", "c_total"]), st.integers(0, 10_000), max_size=3
    ),
    gauge_value=st.floats(-1e6, 1e6, allow_nan=False),
    observations=st.lists(
        st.floats(min_value=1e-7, max_value=120.0, allow_nan=False, allow_infinity=False),
        max_size=60,
    ),
)
def test_snapshot_round_trip_property(counts, gauge_value, observations):
    """to_dict -> json -> from_dict -> to_dict is the identity."""
    registry = MetricsRegistry()
    for name, amount in counts.items():
        registry.counter(name).inc(amount, kind="generated")
    registry.gauge("depth").set(gauge_value)
    hist = registry.histogram("h_seconds")
    for value in observations:
        hist.observe(value)
    snap = json.loads(json.dumps(registry.to_dict()))
    assert MetricsRegistry.from_dict(snap).to_dict() == registry.to_dict()

    # Merging the snapshot into a fresh registry twice doubles every
    # counter and histogram count (the shard-aggregation algebra).
    doubled = MetricsRegistry()
    doubled.merge(snap)
    doubled.merge(snap)
    for name, amount in counts.items():
        assert doubled.counter(name).value(kind="generated") == 2 * amount
    assert doubled.histogram("h_seconds").count() == 2 * len(observations)
