"""``execute(spec, profile=...)`` and the ``repro profile`` CLI family."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.exceptions import ProfError
from repro.obs import MetricsRegistry
from repro.prof import PROFILE_FORMAT, Profile, ProfileOptions
from repro.runspec import RunSpec, TrafficSpec, execute
from repro.runstore import RunStore

SMALL_TRAFFIC = TrafficSpec(
    scenario="balanced_small", seed=3, params={"total_requests": 3000}
)


@pytest.fixture(autouse=True)
def _no_ambient_run_store(monkeypatch):
    monkeypatch.delenv("REPRO_RUN_STORE", raising=False)


# ----------------------------------------------------------------------
# execute(profile=...)
# ----------------------------------------------------------------------
def test_execute_without_profile_keeps_result_clean():
    result = execute(RunSpec(mode="tables", traffic=SMALL_TRAFFIC))
    assert result.profile is None
    assert result.to_dict()["profile"] is None


def test_execute_profile_true_captures_and_attributes():
    result = execute(RunSpec(mode="tables", traffic=SMALL_TRAFFIC), profile=True)
    assert result.profile is not None
    assert result.profile["format"] == PROFILE_FORMAT
    profile = Profile.from_dict(result.profile)
    paths = {stat.path for stat in profile.spans}
    # The batch pipeline's stages are attributed by span path.
    assert "dataset" in paths
    assert "experiment" in paths
    assert any(path.startswith("experiment/") for path in paths)
    assert profile.span("dataset").calls == 1


def test_execute_profile_options_mapping_and_instance():
    spec = RunSpec(mode="tables", traffic=SMALL_TRAFFIC)
    by_mapping = execute(spec, profile={"hz": 199.0, "memory": False})
    assert by_mapping.profile is not None
    assert by_mapping.profile["hz"] == 199.0
    by_options = execute(spec, profile=ProfileOptions(hz=151.0))
    assert by_options.profile is not None
    assert by_options.profile["hz"] == 151.0


def test_execute_profile_works_with_caller_registry():
    registry = MetricsRegistry()
    result = execute(
        RunSpec(mode="tables", traffic=SMALL_TRAFFIC), registry=registry, profile=True
    )
    assert result.profile is not None
    # The caller's registry saw the profiler's live instruments.
    assert registry.counter("repro_profile_samples_total").total() >= 0
    assert result.telemetry is not None
    assert "repro_profile_samples_total" in result.telemetry["metrics"]


def test_execute_rejects_bad_profile_values():
    spec = RunSpec(mode="tables", traffic=SMALL_TRAFFIC)
    with pytest.raises(ProfError, match="unknown profile option"):
        execute(spec, profile={"rate": 10})


def test_profile_round_trips_through_store(tmp_path):
    path = str(tmp_path / "runs.db")
    result = execute(
        RunSpec(mode="tables", traffic=SMALL_TRAFFIC), store=path, profile=True
    )
    with RunStore(path, create=False) as store:
        exported = store.export(1)
        assert exported["profile"] == result.profile
        assert store.profile(1) == result.profile
        # Replay contract: the export rebuilds the identical result.
        from repro.runspec.result import RunResult

        assert RunResult.from_dict(exported).profile == result.profile


# ----------------------------------------------------------------------
# --profile on executing subcommands
# ----------------------------------------------------------------------
def test_tables_profile_flag_records_and_reports(tmp_path, capsys):
    path = str(tmp_path / "runs.db")
    code = main(
        [
            "tables",
            "--scenario",
            "balanced_small",
            "--seed",
            "3",
            "--profile",
            "--profile-hz",
            "199",
            "--store",
            path,
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "profile:" in out  # the report follows the tables rendering
    assert "top spans (self time):" in out
    with RunStore(path, create=False) as store:
        stored = store.profile(1)
        assert stored is not None
        assert stored["hz"] == 199.0
    # runs show --json surfaces the stored capture (the acceptance case).
    code = main(["runs", "show", "1", "--store", path, "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["profile"] == stored


# ----------------------------------------------------------------------
# repro profile run / report / export
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def profiled_store(tmp_path_factory):
    """A store holding one profiled run plus its spec file."""
    root = tmp_path_factory.mktemp("prof-cli")
    config = root / "spec.json"
    RunSpec(mode="tables", traffic=SMALL_TRAFFIC).save(config)
    path = str(root / "runs.db")
    code = main(["profile", "run", "--config", str(config), "--store", path])
    assert code == 0
    return str(config), path


def test_profile_run_reports_and_stores(profiled_store, capsys):
    capsys.readouterr()
    config, path = profiled_store
    with RunStore(path, create=False) as store:
        assert store.profile(1) is not None


def test_profile_run_exports_artifacts(tmp_path, capsys):
    config = tmp_path / "spec.json"
    RunSpec(mode="tables", traffic=SMALL_TRAFFIC).save(config)
    collapsed = tmp_path / "stacks.collapsed"
    speedscope = tmp_path / "profile.speedscope.json"
    code = main(
        [
            "profile",
            "run",
            "--config",
            str(config),
            "--collapsed",
            str(collapsed),
            "--speedscope",
            str(speedscope),
            "--json",
        ]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["format"] == PROFILE_FORMAT
    text = collapsed.read_text()
    assert text  # non-empty collapsed output
    # Every line is "stack count" and parses back (round trip).
    from repro.prof import collapse, parse_collapsed

    assert collapse(parse_collapsed(text)) == text
    doc = json.loads(speedscope.read_text())
    assert doc["profiles"][0]["type"] == "sampled"


def test_profile_report_text_and_json(profiled_store, capsys):
    _config, path = profiled_store
    assert main(["profile", "report", "1", "--store", path]) == 0
    out = capsys.readouterr().out
    assert "top spans (self time):" in out
    assert main(["profile", "report", "1", "--store", path, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["format"] == PROFILE_FORMAT


def test_profile_export_formats(profiled_store, capsys, tmp_path):
    _config, path = profiled_store
    assert main(["profile", "export", "1", "--store", path]) == 0
    collapsed = capsys.readouterr().out
    assert collapsed.strip()
    assert all(line.rsplit(" ", 1)[1].isdigit() for line in collapsed.splitlines())

    out_file = tmp_path / "run1.speedscope.json"
    assert (
        main(
            [
                "profile",
                "export",
                "1",
                "--store",
                path,
                "--format",
                "speedscope",
                "--output",
                str(out_file),
            ]
        )
        == 0
    )
    capsys.readouterr()
    assert json.loads(out_file.read_text())["profiles"][0]["unit"] == "seconds"

    assert main(["profile", "export", "1", "--store", path, "--format", "json"]) == 0
    assert json.loads(capsys.readouterr().out)["format"] == PROFILE_FORMAT


def test_profile_report_without_capture_exits_with_hint(tmp_path, capsys):
    path = str(tmp_path / "plain.db")
    assert (
        main(["tables", "--scenario", "balanced_small", "--seed", "3", "--store", path])
        == 0
    )
    capsys.readouterr()
    with pytest.raises(SystemExit, match="no profile"):
        main(["profile", "report", "1", "--store", path])
