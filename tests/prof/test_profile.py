"""The profile artifact: collapse/parse, snapshots, reports, merging."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ProfError
from repro.prof import (
    Profile,
    SpanStat,
    StackSample,
    collapse,
    frame_label,
    merge_span_stats,
    parse_collapsed,
)


def make_profile() -> Profile:
    return Profile(
        hz=97.0,
        duration_seconds=2.0,
        samples=[
            StackSample(("repro.cli:main", "repro.logs:parse"), 30, "dataset"),
            StackSample(("repro.cli:main", "repro.core:run"), 50, "experiment"),
            StackSample(("repro.cli:main", "repro.ml:fit"), 20, "experiment/detectors"),
            StackSample(("repro.cli:main",), 5),
        ],
        spans=[
            SpanStat("dataset", 30, 30, 1, 4096, 1_000_000),
            SpanStat("experiment", 50, 70, 1, 1024, 500_000),
            SpanStat("experiment/detectors", 20, 20, 2, 512, 250_000),
        ],
    )


# ----------------------------------------------------------------------
# Frame labels
# ----------------------------------------------------------------------
def test_frame_label_escapes_separators():
    assert frame_label("repro.cli", "main") == "repro.cli:main"
    assert frame_label("pkg", "Outer.<locals> helper;x") == "pkg:Outer.<locals>_helper,x"


# ----------------------------------------------------------------------
# StackSample / SpanStat validation
# ----------------------------------------------------------------------
def test_stack_sample_rejects_empty_or_nonpositive():
    with pytest.raises(ProfError, match="positive count"):
        StackSample(("a:b",), 0)
    with pytest.raises(ProfError, match="at least one frame"):
        StackSample((), 1)


def test_stack_sample_stack_prefixes_span_components():
    sample = StackSample(("m:f", "m:g"), 3, "experiment/detectors")
    assert sample.stack() == ("experiment", "detectors", "m:f", "m:g")
    assert StackSample(("m:f",), 1).stack() == ("m:f",)


def test_span_stat_self_seconds():
    stat = SpanStat("dataset", self_samples=97)
    assert stat.self_seconds(97.0) == pytest.approx(1.0)
    assert stat.self_seconds(0.0) == 0.0


# ----------------------------------------------------------------------
# Collapsed stacks
# ----------------------------------------------------------------------
def test_collapse_is_sorted_and_aggregated():
    samples = [
        StackSample(("m:b",), 2),
        StackSample(("m:a", "m:b"), 1),
        StackSample(("m:b",), 3),  # duplicate stack: summed
    ]
    assert collapse(samples) == "m:a;m:b 1\nm:b 5\n"
    assert collapse([]) == ""


def test_parse_collapsed_is_the_inverse():
    text = collapse(make_profile().samples)
    assert collapse(parse_collapsed(text)) == text


def test_parse_collapsed_rejects_malformed_lines():
    with pytest.raises(ProfError, match="no stack"):
        parse_collapsed("42\n")
    with pytest.raises(ProfError, match="non-integer count"):
        parse_collapsed("m:a;m:b many\n")
    with pytest.raises(ProfError, match="non-positive count"):
        parse_collapsed("m:a 0\n")
    with pytest.raises(ProfError, match="empty frame"):
        parse_collapsed("m:a;;m:b 3\n")


# ----------------------------------------------------------------------
# Snapshot round trip
# ----------------------------------------------------------------------
def test_to_dict_round_trips_through_json():
    profile = make_profile()
    snap = json.loads(json.dumps(profile.to_dict()))
    rebuilt = Profile.from_dict(snap)
    assert rebuilt.to_dict() == profile.to_dict()
    assert rebuilt.sample_count() == profile.sample_count() == 105
    assert rebuilt.collapsed() == profile.collapsed()


def test_from_dict_rejects_foreign_payloads():
    with pytest.raises(ProfError, match="format marker"):
        Profile.from_dict({"hz": 97.0})
    with pytest.raises(ProfError, match="mapping"):
        Profile.from_dict([1, 2])


def test_span_lookup():
    profile = make_profile()
    assert profile.span("dataset").peak_bytes == 1_000_000
    with pytest.raises(ProfError, match="no span path"):
        profile.span("absent")


# ----------------------------------------------------------------------
# speedscope export
# ----------------------------------------------------------------------
def test_speedscope_document_shape_and_weights():
    profile = make_profile()
    doc = profile.speedscope("demo")
    assert doc["$schema"] == "https://www.speedscope.app/file-format-schema.json"
    (prof,) = doc["profiles"]
    assert prof["type"] == "sampled"
    assert prof["unit"] == "seconds"
    assert len(prof["samples"]) == len(prof["weights"]) == len(profile.samples)
    # Total weight is total samples over the rate.
    assert prof["endValue"] == pytest.approx(profile.sample_count() / profile.hz)
    # Every referenced frame index exists in the shared table.
    frames = doc["shared"]["frames"]
    assert all(0 <= i < len(frames) for stack in prof["samples"] for i in stack)
    # The document is JSON-serializable as-is.
    json.dumps(doc)


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
def test_top_spans_ordered_by_self_samples():
    assert [s.path for s in make_profile().top_spans()] == [
        "experiment",
        "dataset",
        "experiment/detectors",
    ]
    assert len(make_profile().top_spans(limit=1)) == 1


def test_top_functions_self_and_total():
    rows = {frame: (s, t) for frame, s, t in make_profile().top_functions()}
    # main is never the leaf except in the bare sample, but on every stack.
    assert rows["repro.cli:main"] == (5, 105)
    assert rows["repro.core:run"] == (50, 50)


def test_render_report_mentions_spans_and_functions():
    report = make_profile().render_report()
    assert "105 samples" in report
    assert "top spans (self time):" in report
    assert "experiment/detectors" in report
    assert "top functions (self samples):" in report
    assert "repro.ml:fit" in report


def test_render_report_empty_profile():
    report = Profile(hz=97.0, duration_seconds=0.01).render_report()
    assert "no samples captured" in report


# ----------------------------------------------------------------------
# merge_span_stats
# ----------------------------------------------------------------------
def test_merge_span_stats_totals_include_descendants():
    stats = merge_span_stats(
        {"": 7, "a": 10, "a/b": 5, "a/bc": 3},
        {"a": 100, "a/b": 50},
        {"a": 900, "a/b": 400},
        {"a": 1, "a/b": 2, "a/bc": 1},
    )
    by_path = {stat.path: stat for stat in stats}
    # "a/bc" is not under "a/b" (prefix match is component-wise).
    assert by_path["a"].total_samples == 18
    assert by_path["a/b"].total_samples == 5
    assert by_path["a/b"].calls == 2
    assert by_path["a"].alloc_bytes == 100
    # The unattributed path is excluded from span stats.
    assert "" not in by_path
    assert [stat.path for stat in stats] == sorted(by_path)
