"""The live capture path: options, sampler, memory tracker, Profiler."""

from __future__ import annotations

import time

import pytest

from repro.exceptions import ProfError
from repro.obs import MetricsRegistry, trace_span
from repro.obs.metrics import NULL_REGISTRY
from repro.obs.names import (
    PROFILE_SAMPLES,
    PROFILE_SPAN_ALLOC_BYTES,
    PROFILE_SPAN_PEAK_BYTES,
)
from repro.prof import (
    DEFAULT_HZ,
    MemoryTracker,
    ProfileOptions,
    Profiler,
    StackSampler,
    profile_run,
)


def spin(seconds: float) -> int:
    """Busy work the sampler can catch."""
    deadline = time.perf_counter() + seconds
    total = 0
    while time.perf_counter() < deadline:
        total += sum(range(200))
    return total


# ----------------------------------------------------------------------
# ProfileOptions
# ----------------------------------------------------------------------
class TestProfileOptions:
    def test_coerce_disabled_forms(self):
        assert ProfileOptions.coerce(None) is None
        assert ProfileOptions.coerce(False) is None

    def test_coerce_true_gives_defaults(self):
        options = ProfileOptions.coerce(True)
        assert options == ProfileOptions()
        assert options.hz == DEFAULT_HZ
        assert options.memory is True
        assert options.precise_memory is False

    def test_coerce_passthrough_and_mapping(self):
        explicit = ProfileOptions(hz=50.0, memory=False)
        assert ProfileOptions.coerce(explicit) is explicit
        built = ProfileOptions.coerce({"hz": 50.0, "memory": False})
        assert built == explicit
        precise = ProfileOptions.coerce({"precise_memory": True})
        assert precise is not None and precise.precise_memory is True

    def test_coerce_rejects_unknown_keys_and_types(self):
        with pytest.raises(ProfError, match="unknown profile option"):
            ProfileOptions.coerce({"rate": 50.0})
        with pytest.raises(ProfError, match="got str"):
            ProfileOptions.coerce("fast")

    def test_validation(self):
        with pytest.raises(ProfError, match="hz"):
            ProfileOptions(hz=0.0)
        with pytest.raises(ProfError, match="hz"):
            ProfileOptions(hz=2000.0)
        with pytest.raises(ProfError, match="max_stack_depth"):
            ProfileOptions(max_stack_depth=0)


# ----------------------------------------------------------------------
# StackSampler
# ----------------------------------------------------------------------
class TestStackSampler:
    def test_captures_and_attributes_samples(self):
        registry = MetricsRegistry()
        sampler = StackSampler(registry, hz=250.0)
        sampler.start()
        with trace_span("dataset", registry):
            spin(0.2)
        spin(0.05)  # outside any span
        sampler.stop()

        assert sampler.samples > 0
        assert sampler.span_self_samples.get("dataset", 0) > 0
        # Sampled stacks end in this module's functions.
        leaves = {frames[-1] for (_path, frames) in sampler.counts}
        assert any("spin" in leaf or "test_profiler" in leaf for leaf in leaves)
        # The live counter saw the same total.
        assert registry.counter(PROFILE_SAMPLES).total() == sampler.samples

    def test_single_use(self):
        sampler = StackSampler(MetricsRegistry(), hz=200.0)
        with pytest.raises(ProfError, match="not running"):
            sampler.stop()
        sampler.start()
        with pytest.raises(ProfError, match="already started"):
            sampler.start()
        sampler.stop()
        with pytest.raises(ProfError, match="already started"):
            sampler.start()

    def test_invalid_rates_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ProfError, match="positive"):
            StackSampler(registry, hz=0)
        with pytest.raises(ProfError, match="1000"):
            StackSampler(registry, hz=5000)
        with pytest.raises(ProfError, match="depth"):
            StackSampler(registry, max_depth=0)

    def test_max_depth_truncates_at_the_root(self):
        registry = MetricsRegistry()
        sampler = StackSampler(registry, hz=300.0, max_depth=2)

        def deep(n: int) -> int:
            if n == 0:
                return spin(0.15)
            return deep(n - 1)

        sampler.start()
        with trace_span("dataset", registry):
            deep(6)
        sampler.stop()
        assert sampler.samples > 0
        assert all(len(frames) <= 2 for (_path, frames) in sampler.counts)


# ----------------------------------------------------------------------
# MemoryTracker
# ----------------------------------------------------------------------
class TestMemoryTracker:
    def test_precise_mode_attributes_allocations_to_span_paths(self):
        registry = MetricsRegistry()
        tracker = MemoryTracker(registry, precise=True)
        tracker.start()
        registry.add_span_hook(tracker)
        try:
            with trace_span("experiment", registry):
                with trace_span("detectors", registry):
                    blob = [bytes(1024) for _ in range(512)]  # ~512 KiB live
                del blob
        finally:
            registry.remove_span_hook(tracker)
            tracker.stop()

        assert tracker.precise
        child = "experiment/detectors"
        assert tracker.calls == {"experiment": 1, child: 1}
        # The child held ~512 KiB at peak; the parent's peak includes it.
        assert tracker.peaks[child] > 256 * 1024
        assert tracker.peaks["experiment"] >= tracker.peaks[child]
        # The child freed what it allocated, so the parent's net is small.
        assert abs(tracker.allocated["experiment"]) < 64 * 1024
        # Live instruments carry the same attribution.
        assert registry.gauge(PROFILE_SPAN_PEAK_BYTES).value(span=child) > 0
        assert registry.counter(PROFILE_SPAN_ALLOC_BYTES).value(span=child) > 0

    def test_resident_set_mode_is_the_default_and_attributes_spans(self):
        registry = MetricsRegistry()
        tracker = MemoryTracker(registry)
        tracker.start()
        registry.add_span_hook(tracker)
        try:
            with trace_span("experiment", registry):
                with trace_span("detectors", registry):
                    blob = bytearray(8 * 1024 * 1024)  # 8 MiB, RSS-visible
                    tracker.poll()  # what the sampler tick does
                    del blob
        finally:
            registry.remove_span_hook(tracker)
            tracker.stop()

        assert not tracker.precise
        child = "experiment/detectors"
        assert tracker.calls == {"experiment": 1, child: 1}
        # Peaks are absolute resident-set watermarks: real, ordered, and
        # the parent's includes the child's.
        assert tracker.peaks[child] > 8 * 1024 * 1024
        assert tracker.peaks["experiment"] >= tracker.peaks[child]
        assert registry.gauge(PROFILE_SPAN_PEAK_BYTES).value(span=child) > 0

    def test_falls_back_to_precise_when_tracemalloc_is_already_tracing(self):
        import tracemalloc

        assert not tracemalloc.is_tracing()
        tracemalloc.start(1)
        try:
            tracker = MemoryTracker(MetricsRegistry())
            tracker.start()
            assert tracker.precise
            tracker.stop()
            assert tracemalloc.is_tracing()
        finally:
            tracemalloc.stop()

    def test_stop_only_stops_tracing_it_started(self):
        import tracemalloc

        already_tracing = tracemalloc.is_tracing()
        if not already_tracing:
            tracemalloc.start(1)
        try:
            tracker = MemoryTracker(MetricsRegistry())
            tracker.start()
            tracker.stop()
            assert tracemalloc.is_tracing()
        finally:
            tracemalloc.stop()


# ----------------------------------------------------------------------
# Profiler / profile_run
# ----------------------------------------------------------------------
class TestProfiler:
    def test_end_to_end_capture(self):
        registry = MetricsRegistry()
        profiler = Profiler(registry, ProfileOptions(hz=250.0))
        profiler.start()
        with trace_span("dataset", registry):
            spin(0.2)
        profile = profiler.stop()

        assert profile is profiler.profile
        assert profile.hz == 250.0
        assert profile.duration_seconds > 0.15
        assert profile.sample_count() > 0
        dataset = profile.span("dataset")
        assert dataset.self_samples > 0
        assert dataset.calls == 1
        assert profile.memory == "rss"
        assert profile.collapsed().startswith("dataset;")

    def test_memory_false_skips_span_memory(self):
        registry = MetricsRegistry()
        with profile_run(registry, ProfileOptions(hz=200.0, memory=False)) as profiler:
            with trace_span("dataset", registry):
                spin(0.15)
        profile = profiler.profile
        assert profile is not None
        assert profile.memory == "off"
        assert profile.span("dataset").alloc_bytes == 0
        assert profile.span("dataset").peak_bytes == 0
        # But calls/self samples still attribute via the sampler.
        assert profile.span("dataset").self_samples > 0

    def test_requires_enabled_registry(self):
        with pytest.raises(ProfError, match="enabled MetricsRegistry"):
            Profiler(NULL_REGISTRY)

    def test_single_use_lifecycle(self):
        registry = MetricsRegistry()
        profiler = Profiler(registry)
        with pytest.raises(ProfError, match="not running"):
            profiler.stop()
        profiler.start()
        with pytest.raises(ProfError, match="already started"):
            profiler.start()
        profiler.stop()
        with pytest.raises(ProfError, match="single-use"):
            profiler.start()

    def test_precise_memory_option_marks_the_capture(self):
        registry = MetricsRegistry()
        options = ProfileOptions(hz=200.0, precise_memory=True)
        with profile_run(registry, options) as profiler:
            with trace_span("dataset", registry):
                spin(0.1)
        profile = profiler.profile
        assert profile is not None
        assert profile.memory == "tracemalloc"

    def test_profile_round_trips_to_dict(self):
        registry = MetricsRegistry()
        with profile_run(registry, ProfileOptions(hz=200.0)) as profiler:
            with trace_span("dataset", registry):
                spin(0.15)
        profile = profiler.profile
        assert profile is not None
        from repro.prof import Profile

        rebuilt = Profile.from_dict(profile.to_dict())
        assert rebuilt.to_dict() == profile.to_dict()
