"""Tests for the declarative RunSpec tree: round trips and validation."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import SpecError
from repro.runspec import (
    AdjudicationSpec,
    DetectorSpec,
    ExecutionSpec,
    PolicySpec,
    RunSpec,
    TrafficSpec,
    load_runspec,
)


def full_spec() -> RunSpec:
    """A spec exercising every field of the tree."""
    return RunSpec(
        mode="stream",
        traffic=TrafficSpec(
            scenario="balanced_small",
            seed=3,
            params={"total_requests": 2000},
            campaign="adaptive",
            identities_per_node=4,
        ),
        detectors=(
            DetectorSpec(name="rate-limit"),
            DetectorSpec(name="anomaly", params={"contamination": 0.2}),
        ),
        adjudication=AdjudicationSpec(mode="serial-confirm", k=2, window_seconds=120.0),
        execution=ExecutionSpec(shards=4, backend="process", max_skew_seconds=5.0),
        policy=PolicySpec(name="strict"),
        label="everything",
    )


class TestRoundTrip:
    def test_default_spec_round_trips(self):
        spec = RunSpec()
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_full_spec_round_trips_through_json(self):
        spec = full_spec()
        assert RunSpec.from_json(spec.to_json()) == spec

    def test_to_dict_is_json_serializable(self):
        json.dumps(full_spec().to_dict())

    def test_save_and_load(self, tmp_path):
        path = tmp_path / "spec.json"
        spec = full_spec()
        spec.save(str(path))
        assert load_runspec(str(path)) == spec

    def test_detectors_list_becomes_tuple(self):
        data = RunSpec(detectors=(DetectorSpec(name="commercial"),)).to_dict()
        assert isinstance(data["detectors"], list)
        rebuilt = RunSpec.from_dict(data)
        assert isinstance(rebuilt.detectors, tuple)
        assert rebuilt.detectors[0].name == "commercial"

    def test_none_subspecs_round_trip(self):
        spec = RunSpec(adjudication=None, policy=None)
        rebuilt = RunSpec.from_dict(spec.to_dict())
        assert rebuilt.adjudication is None and rebuilt.policy is None


class TestRejection:
    def test_unknown_top_level_key(self):
        with pytest.raises(SpecError, match="RunSpec key"):
            RunSpec.from_dict({"mode": "tables", "detektors": []})

    def test_unknown_key_suggests_correction(self):
        with pytest.raises(SpecError, match="did you mean 'detectors'"):
            RunSpec.from_dict({"detectord": []})

    def test_unknown_nested_key(self):
        with pytest.raises(SpecError, match="TrafficSpec key"):
            RunSpec.from_dict({"traffic": {"scenari": "balanced_small"}})

    def test_bad_mode_rejected_with_suggestion(self):
        with pytest.raises(SpecError, match="did you mean 'tables'"):
            RunSpec(mode="table")

    def test_bad_mode_rejected_via_from_dict(self):
        with pytest.raises(SpecError, match="unknown run mode"):
            RunSpec.from_dict({"mode": "streaming-fast"})

    def test_bad_campaign_rejected(self):
        with pytest.raises(SpecError, match="campaign"):
            TrafficSpec(campaign="sneaky")

    def test_bad_backend_rejected(self):
        with pytest.raises(SpecError, match="backend"):
            ExecutionSpec(backend="gpu")

    def test_bad_adjudication_mode_rejected(self):
        with pytest.raises(SpecError, match="adjudication mode"):
            AdjudicationSpec(mode="parallell")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"scale": 0.0},
            {"scale": -1.0},
            {"total_requests": 0},
            {"identities_per_node": 0},
        ],
    )
    def test_traffic_bounds(self, kwargs):
        with pytest.raises(SpecError):
            TrafficSpec(**kwargs)

    @pytest.mark.parametrize("kwargs", [{"k": 0}, {"window_seconds": 0.0}])
    def test_adjudication_bounds(self, kwargs):
        with pytest.raises(SpecError):
            AdjudicationSpec(**kwargs)

    @pytest.mark.parametrize(
        "kwargs", [{"shards": 0}, {"max_skew_seconds": -1.0}, {"progress_every": -5}]
    )
    def test_execution_bounds(self, kwargs):
        with pytest.raises(SpecError):
            ExecutionSpec(**kwargs)

    def test_empty_detector_name_rejected(self):
        with pytest.raises(SpecError):
            DetectorSpec(name="")

    def test_empty_policy_name_rejected(self):
        with pytest.raises(SpecError):
            PolicySpec(name="")

    def test_non_spec_detectors_rejected(self):
        with pytest.raises(SpecError):
            RunSpec(detectors=("rate-limit",))

    def test_non_mapping_rejected(self):
        with pytest.raises(SpecError):
            RunSpec.from_dict(["not", "a", "mapping"])

    def test_invalid_json_rejected(self):
        with pytest.raises(SpecError, match="invalid spec JSON"):
            RunSpec.from_json("{not json")

    def test_missing_spec_file(self, tmp_path):
        with pytest.raises(SpecError, match="cannot read spec file"):
            load_runspec(str(tmp_path / "nope.json"))


class TestScenarioKwargs:
    def test_scale_and_seed_merge_into_params(self):
        traffic = TrafficSpec(scale=0.01, seed=7, params={"extra": 1})
        assert traffic.scenario_kwargs() == {"extra": 1, "scale": 0.01, "seed": 7}

    def test_unset_fields_are_omitted(self):
        assert TrafficSpec().scenario_kwargs() == {}
