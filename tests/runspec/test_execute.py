"""Tests for execute(): dispatch, legacy equivalence and cross-workload identities."""

from __future__ import annotations

import pytest

from repro.exceptions import SpecError
from repro.runspec import (
    AdjudicationSpec,
    DetectorSpec,
    ExecutionSpec,
    PolicySpec,
    RunResult,
    RunSpec,
    TrafficSpec,
    build_dataset,
    execute,
)

SMALL_TRAFFIC = TrafficSpec(scenario="balanced_small", seed=3, params={"total_requests": 3000})


@pytest.fixture(scope="module")
def small_spec_dataset():
    return build_dataset(SMALL_TRAFFIC)


class TestTablesMode:
    def test_round_tripped_spec_reproduces_legacy_metrics(self, calibrated_dataset, experiment_result):
        """The acceptance criterion: spec -> dict -> spec -> execute matches
        the legacy ``PaperExperiment`` run on the calibrated scenario."""
        spec = RunSpec(
            mode="tables",
            traffic=TrafficSpec(scenario="amadeus_march_2018", scale=0.005, seed=2018),
        )
        result = execute(RunSpec.from_dict(spec.to_dict()))
        assert result.total_requests == experiment_result.total_requests
        assert result.alert_counts == dict(experiment_result.alert_counts)
        assert result.metrics["both"] == experiment_result.breakdown.both
        assert result.metrics["kappa"] == experiment_result.diversity_metrics.kappa

    def test_tables_render_matches_legacy(self, small_spec_dataset):
        from repro.core.experiment import PaperExperiment

        spec = RunSpec(mode="tables", traffic=SMALL_TRAFFIC)
        result = execute(spec, dataset=small_spec_dataset)
        legacy = PaperExperiment().run_on(small_spec_dataset)
        assert result.render() == legacy.render_all()

    def test_custom_detector_pair_by_name(self, small_spec_dataset):
        spec = RunSpec(
            mode="tables",
            detectors=(DetectorSpec(name="rate-limit"), DetectorSpec(name="inhouse")),
        )
        result = execute(spec, dataset=small_spec_dataset)
        assert set(result.alert_counts) == {"rate-limit", "inhouse"}

    def test_wrong_detector_count_rejected(self):
        spec = RunSpec(mode="tables", detectors=(DetectorSpec(name="rate-limit"),))
        with pytest.raises(SpecError, match="pairwise"):
            execute(spec)

    def test_result_carries_spec_and_raw(self, small_spec_dataset):
        spec = RunSpec(mode="tables", traffic=SMALL_TRAFFIC, label="carry")
        result = execute(spec, dataset=small_spec_dataset)
        assert result.spec == spec.to_dict()
        assert result.label == "carry"
        assert result.raw is not None
        # The serialized form round-trips (raw is dropped).
        rebuilt = RunResult.from_dict(result.to_dict())
        assert rebuilt.alert_counts == result.alert_counts
        assert rebuilt.raw is None


class TestEvaluateMode:
    def test_evaluation_rows_present(self, small_spec_dataset):
        spec = RunSpec(mode="evaluate", traffic=SMALL_TRAFFIC)
        result = execute(spec, dataset=small_spec_dataset)
        assert result.rows["tool_evaluation"]
        assert result.rows["adjudication_evaluation"]
        assert result.rows["actor_class_detection"]
        names = {row["name"] for row in result.rows["tool_evaluation"]}
        assert names == set(result.alert_counts)

    def test_configurations_opt_in(self, small_spec_dataset):
        spec = RunSpec(
            mode="evaluate",
            traffic=SMALL_TRAFFIC,
            execution=ExecutionSpec(compare_configurations=True),
        )
        result = execute(spec, dataset=small_spec_dataset)
        configurations = {row["configuration"] for row in result.rows["configurations"]}
        assert any(name.startswith("serial-confirm") for name in configurations)


class TestStreamMode:
    def test_batch_stream_equivalence_is_a_one_liner(self, small_spec_dataset):
        """The ported detectors produce identical alert sets in both modes."""
        pair = (DetectorSpec(name="rate-limit"), DetectorSpec(name="inhouse"))
        batch = RunSpec(mode="tables", detectors=pair)
        stream = RunSpec(mode="stream", detectors=pair)
        assert (
            execute(stream, dataset=small_spec_dataset).alert_counts
            == execute(batch, dataset=small_spec_dataset).alert_counts
        )

    def test_default_ensemble_and_adjudication(self, small_spec_dataset):
        spec = RunSpec(mode="stream", adjudication=AdjudicationSpec(k=2))
        result = execute(spec, dataset=small_spec_dataset)
        assert set(result.alert_counts) == {"rate-limit", "ua-fingerprint", "inhouse", "anomaly"}
        assert result.metrics["adjudication_scheme"] == "2-out-of-4"
        assert 0 < result.metrics["adjudicated_alerts"] <= result.total_requests
        assert any("adjudicated" in line for line in result.summary)

    def test_sharded_run_matches_single_shard(self, small_spec_dataset):
        single = RunSpec(mode="stream", adjudication=AdjudicationSpec(k=2))
        sharded = RunSpec(
            mode="stream",
            adjudication=AdjudicationSpec(k=2),
            execution=ExecutionSpec(shards=2, backend="serial"),
        )
        first = execute(single, dataset=small_spec_dataset)
        second = execute(sharded, dataset=small_spec_dataset)
        assert first.alert_counts == second.alert_counts

    def test_progress_hook_fires(self, small_spec_dataset):
        milestones = []
        spec = RunSpec(mode="stream", execution=ExecutionSpec(progress_every=500))
        execute(spec, dataset=small_spec_dataset, progress=lambda engine: milestones.append(engine.stats.records))
        assert milestones and all(count >= 500 for count in milestones)


class TestDefendMode:
    def test_pass_through_policy_enforces_nothing(self):
        spec = RunSpec(
            mode="defend",
            traffic=TrafficSpec(total_requests=800, seed=3),
            policy=PolicySpec(name="pass-through"),
        )
        result = execute(spec)
        assert result.metrics["denied_requests"] == 0
        assert result.metrics["served_requests"] == result.total_requests

    def test_defend_reproduces_legacy_run_defense(self):
        from repro.mitigation import build_report, run_defense

        spec = RunSpec(mode="defend", traffic=TrafficSpec(total_requests=800, seed=3))
        result = execute(spec)
        legacy = build_report(
            run_defense(total_requests=800, seed=3), policy_name="standard"
        )
        assert result.total_requests == legacy.total_requests
        assert result.metrics["denied_requests"] == legacy.denied_requests
        assert result.metrics["attacker_yield"] == legacy.attacker_yield
        assert result.enforcement["action_counts"] == dict(legacy.action_counts)

    def test_defend_rejects_injected_dataset(self, small_spec_dataset):
        spec = RunSpec(mode="defend", traffic=TrafficSpec(total_requests=800, seed=3))
        with pytest.raises(SpecError, match="closed-loop"):
            execute(spec, dataset=small_spec_dataset)

    def test_defend_rejects_custom_detectors(self):
        spec = RunSpec(
            mode="defend",
            traffic=TrafficSpec(total_requests=800, seed=3),
            detectors=(DetectorSpec(name="rate-limit"), DetectorSpec(name="inhouse")),
        )
        with pytest.raises(SpecError, match="online ensemble"):
            execute(spec)


class TestModeValidation:
    """Spec fields the mode would ignore are rejected, not dropped."""

    @pytest.mark.parametrize(
        ("spec", "match"),
        [
            (
                RunSpec(mode="defend", traffic=TrafficSpec(scenario="stealth_heavy")),
                "remove traffic.scenario",
            ),
            (
                RunSpec(mode="defend", traffic=TrafficSpec(scale=0.01)),
                "total_requests",
            ),
            (
                RunSpec(mode="defend", adjudication=AdjudicationSpec(mode="serial-confirm")),
                "parallel",
            ),
            (
                RunSpec(mode="stream", traffic=TrafficSpec(total_requests=500)),
                "traffic.params",
            ),
            (
                RunSpec(mode="tables", traffic=TrafficSpec(campaign="adaptive")),
                "defend-only",
            ),
            (
                RunSpec(mode="tables", policy=PolicySpec()),
                "policy",
            ),
            (
                RunSpec(mode="tables", adjudication=AdjudicationSpec()),
                "adjudication",
            ),
            (
                RunSpec(mode="evaluate", execution=ExecutionSpec(shards=2)),
                "stream-only",
            ),
            (
                RunSpec(mode="tables", execution=ExecutionSpec(compare_configurations=True)),
                "evaluate-only",
            ),
            (
                RunSpec(mode="defend", execution=ExecutionSpec(progress_every=100)),
                "stream-only",
            ),
        ],
    )
    def test_inapplicable_fields_rejected(self, spec, match):
        with pytest.raises(SpecError, match=match):
            execute(spec)

    def test_scenario_rejects_parameters_it_does_not_take(self):
        with pytest.raises(SpecError, match="does not accept the given parameters"):
            build_dataset(TrafficSpec(scenario="balanced_small", scale=0.01))

    def test_default_scenario_fills_in(self):
        spec = TrafficSpec()
        assert spec.scenario is None
        # build_dataset falls back to the calibrated scenario; a tiny
        # scale keeps this fast.
        dataset = build_dataset(TrafficSpec(scale=0.001, seed=1))
        assert dataset.metadata.name == "amadeus_march_2018"


class TestBuildDataset:
    def test_log_file_replay(self, tmp_path, small_spec_dataset):
        from repro.logs.writer import LogWriter

        path = tmp_path / "access.log"
        LogWriter().write_file(small_spec_dataset.records, str(path))
        replayed = build_dataset(TrafficSpec(log_file=str(path)))
        assert len(replayed) == len(small_spec_dataset)

    def test_unknown_scenario_has_suggestion(self):
        from repro.exceptions import ScenarioError

        with pytest.raises(ScenarioError, match="did you mean"):
            build_dataset(TrafficSpec(scenario="balanced_smal"))
