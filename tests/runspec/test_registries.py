"""Tests for the shared registry layer and its did-you-mean lookup errors."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    AdjudicationError,
    DetectorError,
    ReproError,
    ScenarioError,
)
from repro.mitigation.actions import PolicyError
from repro.registry import Registry, suggest, unknown_name_message


class TestRegistry:
    def test_register_and_create(self):
        registry = Registry("widget", ReproError)
        registry.register("one", lambda **kw: ("one", kw))
        assert registry.names() == ["one"]
        assert "one" in registry
        assert registry.create("one", a=1) == ("one", {"a": 1})

    def test_duplicate_requires_overwrite(self):
        registry = Registry("widget", ReproError)
        registry.register("one", dict)
        with pytest.raises(ReproError, match="already registered"):
            registry.register("one", dict)
        registry.register("one", list, overwrite=True)
        assert registry.create("one") == []

    def test_empty_name_rejected(self):
        registry = Registry("widget", ReproError)
        with pytest.raises(ReproError, match="non-empty"):
            registry.register("", dict)

    def test_unknown_name_raises_registry_error_type(self):
        class WidgetError(ReproError):
            pass

        registry = Registry("widget", WidgetError)
        registry.register("sprocket", dict)
        with pytest.raises(WidgetError, match="did you mean 'sprocket'"):
            registry.get("sproket")

    def test_suggest_returns_none_for_distant_names(self):
        assert suggest("zzzzz", ["commercial", "inhouse"]) is None

    def test_unknown_name_message_lists_candidates(self):
        message = unknown_name_message("widget", "x", ["b", "a"])
        assert "available: ['a', 'b']" in message


class TestBuiltinRegistries:
    def test_detector_lookup_miss(self):
        from repro.detectors.registry import create_detector

        with pytest.raises(DetectorError, match="did you mean 'commercial'"):
            create_detector("comercial")

    def test_online_detector_lookup_miss(self):
        from repro.stream.detectors import create_online_detector

        with pytest.raises(DetectorError, match="did you mean 'anomaly'"):
            create_online_detector("anomoly")

    def test_online_detector_create(self):
        from repro.stream.detectors import available_online_detectors, create_online_detector

        assert {"rate-limit", "ua-fingerprint", "inhouse", "anomaly"} <= set(
            available_online_detectors()
        )
        detector = create_online_detector("anomaly", contamination=0.2)
        assert detector.name == "anomaly"

    def test_scenario_lookup_miss(self):
        from repro.traffic.scenarios import get_scenario

        with pytest.raises(ScenarioError, match="did you mean 'balanced_small'"):
            get_scenario("balanced_smol")

    def test_scenario_registration(self):
        from repro.traffic.scenarios import balanced_small, get_scenario, register_scenario

        register_scenario("tiny_custom", lambda **kw: balanced_small(total_requests=600, **kw))
        try:
            assert get_scenario("tiny_custom", seed=5).seed == 5
        finally:
            # The registry is module-global; leave no trace for other tests.
            from repro.traffic.scenarios import _SCENARIO_REGISTRY

            _SCENARIO_REGISTRY._factories.pop("tiny_custom")

    def test_policy_lookup_miss(self):
        from repro.mitigation.policy import get_policy

        with pytest.raises(PolicyError, match="did you mean 'standard'"):
            get_policy("standad")

    def test_adjudication_scheme_registry(self):
        from repro.core.adjudication import (
            available_adjudication_schemes,
            create_adjudication_scheme,
        )

        assert "majority" in available_adjudication_schemes()
        scheme = create_adjudication_scheme("k-out-of-n", k=2)
        assert scheme.k == 2
        with pytest.raises(AdjudicationError, match="did you mean 'majority'"):
            create_adjudication_scheme("majorty")
