"""Tests for the from-scratch anomaly-detection models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.anomaly import (
    AnomalyModel,
    IsolationForestModel,
    KNNDistanceModel,
    MahalanobisModel,
    RobustZScoreModel,
)
from repro.exceptions import DetectorNotFittedError

ALL_MODELS = [RobustZScoreModel, MahalanobisModel, KNNDistanceModel, IsolationForestModel]


def _clustered_data_with_outliers(seed: int = 0, n: int = 300, outliers: int = 6) -> tuple[np.ndarray, np.ndarray]:
    """A tight Gaussian cluster plus a few far-away outliers."""
    rng = np.random.default_rng(seed)
    inliers = rng.normal(0.0, 1.0, size=(n, 4))
    anomalies = rng.normal(12.0, 1.0, size=(outliers, 4))
    X = np.vstack([inliers, anomalies])
    labels = np.concatenate([np.zeros(n), np.ones(outliers)])
    return X, labels


class TestAnomalyBase:
    @pytest.mark.parametrize("model_cls", ALL_MODELS)
    def test_score_before_fit_raises(self, model_cls):
        with pytest.raises(DetectorNotFittedError):
            model_cls().score(np.zeros((3, 4)))

    @pytest.mark.parametrize("model_cls", ALL_MODELS)
    def test_rejects_non_2d_input(self, model_cls):
        with pytest.raises(ValueError):
            model_cls().fit(np.zeros(5))

    @pytest.mark.parametrize("model_cls", ALL_MODELS)
    def test_rejects_empty_input(self, model_cls):
        with pytest.raises(ValueError):
            model_cls().fit(np.zeros((0, 4)))

    @pytest.mark.parametrize("model_cls", ALL_MODELS)
    def test_rejects_nan_input(self, model_cls):
        X = np.zeros((5, 3))
        X[2, 1] = np.nan
        with pytest.raises(ValueError):
            model_cls().fit(X)

    def test_threshold_for_contamination_bounds(self):
        model = RobustZScoreModel()
        scores = np.linspace(0, 1, 101)
        threshold = model.threshold_for_contamination(scores, 0.1)
        assert 0.85 <= threshold <= 0.95
        with pytest.raises(ValueError):
            model.threshold_for_contamination(scores, 0.0)
        with pytest.raises(ValueError):
            model.threshold_for_contamination(scores, 1.0)


class TestOutlierSeparation:
    @pytest.mark.parametrize("model_cls", ALL_MODELS)
    def test_outliers_score_higher_than_inliers(self, model_cls):
        X, labels = _clustered_data_with_outliers()
        scores = model_cls().fit_score(X)
        assert scores.shape == (X.shape[0],)
        mean_outlier = scores[labels == 1].mean()
        mean_inlier = scores[labels == 0].mean()
        assert mean_outlier > mean_inlier * 1.5

    @pytest.mark.parametrize("model_cls", ALL_MODELS)
    def test_scores_are_finite_and_nonnegative(self, model_cls):
        X, _ = _clustered_data_with_outliers(seed=3)
        scores = model_cls().fit_score(X)
        assert np.isfinite(scores).all()
        assert (scores >= 0).all()

    @pytest.mark.parametrize("model_cls", ALL_MODELS)
    def test_contamination_threshold_selects_top_fraction(self, model_cls):
        X, labels = _clustered_data_with_outliers(n=200, outliers=10)
        model = model_cls()
        scores = model.fit_score(X)
        threshold = model.threshold_for_contamination(scores, 0.05)
        flagged = scores >= threshold
        # The flagged fraction is close to the contamination and catches
        # most of the injected outliers.
        assert 0.02 <= flagged.mean() <= 0.12
        assert flagged[labels == 1].mean() >= 0.8

    @pytest.mark.parametrize("model_cls", ALL_MODELS)
    def test_deterministic_given_same_input(self, model_cls):
        X, _ = _clustered_data_with_outliers(seed=5)
        first = model_cls().fit_score(X)
        second = model_cls().fit_score(X)
        np.testing.assert_allclose(first, second)


class TestRobustZScore:
    def test_constant_feature_contributes_nothing(self):
        X = np.random.default_rng(0).normal(size=(100, 3))
        X[:, 2] = 7.0  # constant feature
        scores_with = RobustZScoreModel().fit_score(X)
        scores_without = RobustZScoreModel().fit_score(X[:, :2])
        # The constant column only rescales by the number of features.
        np.testing.assert_allclose(scores_with * 3, scores_without * 2, rtol=1e-8)

    def test_clip_limits_extreme_scores(self):
        X = np.vstack([np.zeros((50, 2)), np.full((1, 2), 1e9)])
        X[:50] += np.random.default_rng(1).normal(0, 1, size=(50, 2))
        scores = RobustZScoreModel(clip=5.0).fit_score(X)
        assert scores.max() <= 5.0 + 1e-9

    def test_invalid_clip(self):
        with pytest.raises(ValueError):
            RobustZScoreModel(clip=0)


class TestMahalanobis:
    def test_handles_collinear_features(self):
        rng = np.random.default_rng(2)
        base = rng.normal(size=(100, 1))
        X = np.hstack([base, base * 2.0, rng.normal(size=(100, 1))])
        scores = MahalanobisModel().fit_score(X)
        assert np.isfinite(scores).all()

    def test_accounts_for_correlation(self):
        rng = np.random.default_rng(3)
        base = rng.normal(size=(500, 1))
        X = np.hstack([base, base + rng.normal(0, 0.1, size=(500, 1))])
        model = MahalanobisModel(shrinkage=0.0).fit(X)
        # A point far off the correlation axis should score higher than a
        # point equally far along it.
        on_axis = np.array([[3.0, 3.0]])
        off_axis = np.array([[3.0, -3.0]])
        assert model.score(off_axis)[0] > model.score(on_axis)[0]

    def test_invalid_shrinkage(self):
        with pytest.raises(ValueError):
            MahalanobisModel(shrinkage=1.5)


class TestKNN:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            KNNDistanceModel(k=0)
        with pytest.raises(ValueError):
            KNNDistanceModel(max_reference=1)

    def test_subsampling_keeps_model_usable(self):
        X, labels = _clustered_data_with_outliers(n=500, outliers=8)
        model = KNNDistanceModel(k=5, max_reference=100)
        scores = model.fit_score(X)
        assert scores[labels == 1].mean() > scores[labels == 0].mean()


class TestIsolationForest:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            IsolationForestModel(n_trees=0)
        with pytest.raises(ValueError):
            IsolationForestModel(subsample=1)

    def test_scores_bounded_in_unit_interval(self):
        X, _ = _clustered_data_with_outliers()
        scores = IsolationForestModel(n_trees=50).fit_score(X)
        assert (scores > 0).all()
        assert (scores < 1).all()

    def test_seed_controls_forest(self):
        X, _ = _clustered_data_with_outliers()
        a = IsolationForestModel(n_trees=30, seed=1).fit_score(X)
        b = IsolationForestModel(n_trees=30, seed=1).fit_score(X)
        c = IsolationForestModel(n_trees=30, seed=2).fit_score(X)
        np.testing.assert_allclose(a, b)
        assert not np.allclose(a, c)

    def test_base_class_contract(self):
        assert issubclass(IsolationForestModel, AnomalyModel)
