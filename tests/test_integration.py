"""End-to-end integration tests.

These tests exercise the whole chain the paper's study implies:
generate traffic -> write an Apache access log to disk -> parse it back ->
run both stand-in tools -> compute the diversity tables -> evaluate the
adjudication schemes against the ground truth.
"""

from __future__ import annotations


from repro.core.adjudication import adjudicate
from repro.core.diversity import diversity_breakdown
from repro.core.evaluation import evaluate_alert_set, per_actor_class_detection
from repro.core.experiment import PaperExperiment
from repro.detectors.commercial import CommercialBotDefenceDetector
from repro.detectors.inhouse import InHouseHeuristicDetector
from repro.detectors.pipeline import run_detectors
from repro.logs.dataset import Dataset
from repro.logs.parser import LogParser
from repro.logs.writer import LogWriter
from repro.traffic.generator import generate_dataset
from repro.traffic.scenarios import amadeus_march_2018, balanced_small, stealth_heavy


class TestLogRoundTripPipeline:
    def test_detectors_see_identical_traffic_after_disk_roundtrip(self, tmp_path, small_dataset):
        """Writing the synthetic data set to disk and re-parsing it must not
        change any detector's verdicts -- the generator output is a real
        Apache access log."""
        path = tmp_path / "access.log"
        LogWriter().write_file(small_dataset.records, str(path))
        reparsed = Dataset(LogParser().parse_file(str(path)))
        assert len(reparsed) == len(small_dataset)

        detector = InHouseHeuristicDetector()
        original_alerts = detector.analyze(small_dataset)
        # Request ids differ (parser assigns r0..rN in file order, which is
        # the same order), so compare positionally.
        reparsed_alerts = detector.analyze(reparsed)
        original_flags = [record.request_id in original_alerts for record in small_dataset]
        reparsed_flags = [record.request_id in reparsed_alerts for record in reparsed]
        assert original_flags == reparsed_flags


class TestPaperPipeline:
    def test_full_experiment_shape_on_calibrated_traffic(self, experiment_result):
        """The calibrated scenario reproduces the structural findings of the
        paper: both tools alert on most traffic, they agree on the bulk of
        it, and each tool has a non-empty exclusive contribution."""
        breakdown = experiment_result.breakdown
        total = breakdown.total
        assert breakdown.both / total > 0.6
        assert breakdown.neither / total > 0.03
        assert breakdown.first_only > 0
        assert breakdown.second_only > 0
        # The commercial tool's exclusive mass exceeds the in-house tool's,
        # as in the paper (Distil-only >> Arcane-only).
        assert breakdown.first_only > breakdown.second_only

    def test_exclusive_alerts_have_different_status_profiles(self, experiment_result):
        """Table 4's qualitative asymmetry: in-house-only alerts are richer in
        204/400/304 probe responses than commercial-only alerts."""
        inhouse_only = experiment_result.exclusive_status_tables["inhouse"]
        commercial_only = experiment_result.exclusive_status_tables["commercial"]
        probe_statuses = ["204 (No content)", "400 (Bad request)", "304 (Not modified)"]
        inhouse_probe_fraction = sum(inhouse_only.fraction_of(s) for s in probe_statuses)
        commercial_probe_fraction = sum(commercial_only.fraction_of(s) for s in probe_statuses)
        assert inhouse_probe_fraction > commercial_probe_fraction

    def test_adjudication_improves_on_single_tools(self, calibrated_dataset, experiment_result):
        matrix = experiment_result.matrix
        union = evaluate_alert_set(calibrated_dataset, adjudicate(matrix, 1).alerted_ids, name="1oo2")
        strict = evaluate_alert_set(calibrated_dataset, adjudicate(matrix, 2).alerted_ids, name="2oo2")
        singles = experiment_result.tool_evaluations
        assert union.sensitivity >= max(e.sensitivity for e in singles)
        assert strict.specificity >= max(e.specificity for e in singles)

    def test_detection_rate_asymmetry_per_actor_class(self, calibrated_dataset, experiment_result):
        matrix = experiment_result.matrix
        commercial = per_actor_class_detection(calibrated_dataset, matrix.alerted_by("commercial"))
        inhouse = per_actor_class_detection(calibrated_dataset, matrix.alerted_by("inhouse"))
        assert commercial["stealth_scraper"] > inhouse["stealth_scraper"]
        assert inhouse["probing_scraper"] > commercial["probing_scraper"]
        assert commercial["aggressive_scraper"] > 0.9
        assert inhouse["aggressive_scraper"] > 0.9


class TestAlternativeScenarios:
    def test_stealth_heavy_scenario_widens_the_gap(self):
        """When stealthy scraping dominates, the rule-based tool misses much
        more traffic and the benefit of diversity grows."""
        dataset = generate_dataset(stealth_heavy(total_requests=5000, seed=23))
        result = run_detectors(dataset, [CommercialBotDefenceDetector(), InHouseHeuristicDetector()])
        breakdown = diversity_breakdown(result.matrix, "commercial", "inhouse")
        union = evaluate_alert_set(dataset, adjudicate(result.matrix, 1).alerted_ids, name="1oo2")
        inhouse_only_eval = evaluate_alert_set(dataset, result.matrix.alerted_by("inhouse"), name="inhouse")
        assert breakdown.first_only > breakdown.second_only
        assert union.sensitivity > inhouse_only_eval.sensitivity + 0.2

    def test_three_detector_ensemble(self, small_dataset):
        from repro.detectors.naive_bayes import NaiveBayesRobotDetector

        result = run_detectors(
            small_dataset,
            [CommercialBotDefenceDetector(), InHouseHeuristicDetector(), NaiveBayesRobotDetector()],
        )
        assert result.matrix.n_detectors == 3
        union = adjudicate(result.matrix, 1)
        majority = adjudicate(result.matrix, 2)
        unanimous = adjudicate(result.matrix, 3)
        assert union.alert_count >= majority.alert_count >= unanimous.alert_count

    def test_experiment_is_reproducible(self):
        scenario = balanced_small(total_requests=1200, seed=77)
        first = PaperExperiment().run_on(generate_dataset(scenario))
        second = PaperExperiment().run_on(generate_dataset(scenario))
        assert first.alert_counts == second.alert_counts
        assert first.breakdown.as_dict() == second.breakdown.as_dict()

    def test_full_scale_parameters_exposed(self):
        """The full-size scenario (scale=1.0) has the paper's request budget."""
        scenario = amadeus_march_2018(scale=1.0)
        assert scenario.total_requests == 1_469_744
        assert scenario.window.days == 8
