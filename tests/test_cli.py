"""Tests for the ``repro-scrapeguard`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_arguments(self):
        args = build_parser().parse_args(["generate", "--output", "x.log", "--scale", "0.01"])
        assert args.command == "generate"
        assert args.scale == 0.01

    def test_version_flag_prints_version_and_exits(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestCommands:
    def test_scenarios_lists_presets_with_mix_fractions(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "amadeus_march_2018" in out
        assert "balanced_small" in out
        # Each preset line carries its traffic mix fractions.
        for line in out.strip().splitlines():
            assert "aggressive=" in line and "human=" in line
        assert "aggressive=0.828" in out

    def test_generate_writes_log_and_labels(self, tmp_path, capsys):
        log_path = tmp_path / "access.log"
        labels_path = tmp_path / "labels.json"
        code = main(
            [
                "generate",
                "--scenario",
                "balanced_small",
                "--seed",
                "3",
                "--output",
                str(log_path),
                "--labels",
                str(labels_path),
            ]
        )
        assert code == 0
        assert log_path.exists() and log_path.stat().st_size > 0
        assert labels_path.exists()
        out = capsys.readouterr().out
        assert "wrote" in out

    def test_tables_from_generated_scenario(self, capsys):
        code = main(["tables", "--scenario", "balanced_small", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 2" in out
        assert "HTTP status" in out

    def test_tables_from_log_file(self, tmp_path, capsys):
        log_path = tmp_path / "access.log"
        main(["generate", "--scenario", "balanced_small", "--seed", "3", "--output", str(log_path)])
        capsys.readouterr()
        code = main(["tables", "--log-file", str(log_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_evaluate_prints_labelled_metrics(self, capsys):
        code = main(["evaluate", "--scenario", "balanced_small", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Per-tool labelled evaluation" in out
        assert "Adjudication schemes" in out
        assert "actor class" in out

    def test_evaluate_with_configurations(self, capsys):
        code = main(["evaluate", "--scenario", "balanced_small", "--seed", "3", "--configurations"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Parallel vs serial configurations" in out
        assert "serial-confirm" in out


class TestStreamCommand:
    def test_stream_scenario_prints_live_totals_and_summary(self, capsys):
        code = main(
            [
                "stream",
                "--scenario",
                "balanced_small",
                "--seed",
                "3",
                "--progress-every",
                "1000",
                "--k",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "after 1,000 requests" in out  # live alert totals
        assert "Streaming Table 1" in out
        assert "adjudicated (2-out-of-4)" in out
        assert "requests/sec" in out

    def test_stream_from_log_file_with_shards(self, tmp_path, capsys):
        log_path = tmp_path / "access.log"
        main(["generate", "--scenario", "balanced_small", "--seed", "3", "--output", str(log_path)])
        capsys.readouterr()
        code = main(["stream", "--log-file", str(log_path), "--shards", "2", "--backend", "serial"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Streaming Table 1" in out
        assert "rate-limit" in out

    def test_stream_parser_defaults(self):
        args = build_parser().parse_args(["stream"])
        assert args.command == "stream"
        assert args.shards == 1
        assert args.k == 1

    def test_stream_rejects_non_positive_shards(self):
        from repro.exceptions import SpecError

        with pytest.raises(SpecError):
            main(["stream", "--scenario", "balanced_small", "--shards", "0"])


class TestDefendCommand:
    def test_defend_scripted_campaign_prints_table5(self, capsys):
        code = main(["defend", "--requests", "1200", "--seed", "3", "--campaign", "scripted"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 5" in out
        assert "Requests saved (denied)" in out
        assert "Median time to first block" in out

    def test_defend_both_campaigns_prints_comparison(self, capsys):
        code = main(["defend", "--requests", "1200", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("Table 5") == 2
        assert "scripted vs adaptive" in out

    def test_defend_pass_through_policy_denies_nothing(self, capsys):
        code = main(
            ["defend", "--requests", "800", "--seed", "3", "--campaign", "scripted", "--policy", "pass-through"]
        )
        assert code == 0
        out = capsys.readouterr().out
        saved_line = next(
            line for line in out.splitlines() if "Requests saved (denied)" in line
        )
        assert saved_line.rstrip().endswith(" 0")

    def test_defend_parser_defaults(self):
        args = build_parser().parse_args(["defend"])
        assert args.command == "defend"
        assert args.campaign == "both"
        assert args.policy == "standard"
        assert args.k == 2


#: Keys every serialized RunResult carries, whatever the workload.
RUN_RESULT_KEYS = {
    "mode",
    "source",
    "label",
    "total_requests",
    "alert_counts",
    "metrics",
    "tables",
    "rows",
    "timings",
    "telemetry",
    "summary",
    "enforcement",
    "spec",
    "profile",
}


def _json_out(capsys) -> dict:
    return json.loads(capsys.readouterr().out)


class TestJsonOutput:
    """``--json`` on every subcommand emits the structured RunResult."""

    def test_tables_json_schema(self, capsys):
        assert main(["tables", "--scenario", "balanced_small", "--seed", "3", "--json"]) == 0
        data = _json_out(capsys)
        assert set(data) == RUN_RESULT_KEYS
        assert data["mode"] == "tables"
        assert set(data["tables"]) == {"table1", "table2", "table3", "table4"}
        assert set(data["alert_counts"]) == {"commercial", "inhouse"}
        assert data["spec"]["traffic"]["scenario"] == "balanced_small"

    def test_evaluate_json_schema(self, capsys):
        assert main(["evaluate", "--scenario", "balanced_small", "--seed", "3", "--json"]) == 0
        data = _json_out(capsys)
        assert set(data) == RUN_RESULT_KEYS
        assert data["mode"] == "evaluate"
        assert {"tool_evaluation", "adjudication_evaluation"} <= set(data["rows"])

    def test_stream_json_schema(self, capsys):
        assert main(["stream", "--scenario", "balanced_small", "--seed", "3", "--k", "2", "--json"]) == 0
        data = _json_out(capsys)
        assert set(data) == RUN_RESULT_KEYS
        assert data["mode"] == "stream"
        assert data["metrics"]["adjudication_scheme"] == "2-out-of-4"
        assert data["metrics"]["adjudicated_alerts"] <= data["total_requests"]

    def test_defend_json_schema(self, capsys):
        assert main(
            ["defend", "--requests", "800", "--seed", "3", "--campaign", "scripted", "--json"]
        ) == 0
        data = _json_out(capsys)
        assert set(data) == {"scripted"}
        assert set(data["scripted"]) == RUN_RESULT_KEYS
        assert data["scripted"]["enforcement"]["policy"] == "standard"

    def test_generate_json_schema(self, tmp_path, capsys):
        log_path = tmp_path / "access.log"
        assert main(
            [
                "generate", "--scenario", "balanced_small", "--seed", "3",
                "--output", str(log_path), "--json",
            ]
        ) == 0
        data = _json_out(capsys)
        assert set(data) == {"scenario", "records", "output", "labels"}
        assert data["records"] > 0 and log_path.exists()

    def test_scenarios_json_is_machine_readable(self, capsys):
        assert main(["scenarios", "--json"]) == 0
        listing = _json_out(capsys)
        names = {entry["name"] for entry in listing}
        assert {"amadeus_march_2018", "balanced_small", "stealth_heavy"} <= names
        for entry in listing:
            assert set(entry) == {"name", "total_requests", "days", "mix"}
            assert abs(sum(entry["mix"].values()) - 1.0) < 0.03


class TestRunCommand:
    """``repro run --config spec.json`` executes any saved spec."""

    def _write_spec(self, tmp_path, payload: dict) -> str:
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(payload))
        return str(path)

    def test_run_config_drives_tables(self, tmp_path, capsys):
        config = self._write_spec(
            tmp_path,
            {"mode": "tables", "traffic": {"scenario": "balanced_small", "seed": 3}},
        )
        assert main(["run", "--config", config]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 2" in out

    def test_run_config_json_matches_subcommand(self, tmp_path, capsys):
        config = self._write_spec(
            tmp_path,
            {"mode": "tables", "traffic": {"scenario": "balanced_small", "seed": 3}},
        )
        assert main(["run", "--config", config, "--json"]) == 0
        from_config = _json_out(capsys)
        assert main(["tables", "--scenario", "balanced_small", "--seed", "3", "--json"]) == 0
        from_subcommand = _json_out(capsys)
        assert from_config["alert_counts"] == from_subcommand["alert_counts"]
        assert from_config["metrics"] == from_subcommand["metrics"]

    def test_run_rejects_unknown_spec_key(self, tmp_path):
        from repro.exceptions import SpecError

        config = self._write_spec(tmp_path, {"mode": "tables", "detektors": []})
        with pytest.raises(SpecError, match="did you mean"):
            main(["run", "--config", config])

    def test_run_rejects_missing_config(self, tmp_path):
        from repro.exceptions import SpecError

        with pytest.raises(SpecError, match="cannot read spec file"):
            main(["run", "--config", str(tmp_path / "absent.json")])


class TestObservability:
    """The obs surface: ``obs dump``, --metrics-port, --log-level, telemetry."""

    def _write_spec(self, tmp_path) -> str:
        path = tmp_path / "spec.json"
        path.write_text(
            json.dumps({"mode": "tables", "traffic": {"scenario": "balanced_small", "seed": 3}})
        )
        return str(path)

    def test_obs_dump_prints_the_metric_reference(self, capsys):
        assert main(["obs", "dump"]) == 0
        out = capsys.readouterr().out
        assert "repro_stage_seconds (histogram" in out
        assert "repro_records_ingested_total (counter" in out

    def test_obs_dump_reference_json(self, capsys):
        assert main(["obs", "dump", "--json"]) == 0
        reference = _json_out(capsys)
        names = {entry["name"] for entry in reference}
        assert "repro_stage_seconds" in names
        assert all({"name", "kind", "labels", "help"} <= set(entry) for entry in reference)

    def test_obs_dump_config_emits_a_snapshot(self, tmp_path, capsys):
        assert main(["obs", "dump", "--config", self._write_spec(tmp_path)]) == 0
        snapshot = _json_out(capsys)
        assert snapshot["format"] == "repro-obs"
        assert "repro_records_ingested_total" in snapshot["metrics"]
        assert snapshot["spans"]

    def test_obs_dump_config_prometheus_format(self, tmp_path, capsys):
        assert main(
            ["obs", "dump", "--config", self._write_spec(tmp_path), "--format", "prometheus"]
        ) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_stage_seconds histogram" in out
        assert "repro_records_ingested_total" in out

    def test_tables_json_carries_the_telemetry_snapshot(self, capsys):
        assert main(["tables", "--scenario", "balanced_small", "--seed", "3", "--json"]) == 0
        data = _json_out(capsys)
        telemetry = data["telemetry"]
        assert telemetry["format"] == "repro-obs"
        counters = [
            name for name, entry in telemetry["metrics"].items() if entry["kind"] == "counter"
        ]
        assert len(counters) >= 10
        assert telemetry["metrics"]["repro_stage_seconds"]["kind"] == "histogram"

    def test_stream_json_carries_the_telemetry_snapshot(self, capsys):
        assert main(["stream", "--scenario", "balanced_small", "--seed", "3", "--json"]) == 0
        data = _json_out(capsys)
        counters = [
            name
            for name, entry in data["telemetry"]["metrics"].items()
            if entry["kind"] == "counter"
        ]
        assert len(counters) >= 10
        assert "repro_stage_seconds" in data["telemetry"]["metrics"]

    def test_metrics_port_serves_for_the_duration_of_the_run(self, capsys):
        assert main(
            ["tables", "--scenario", "balanced_small", "--seed", "3", "--metrics-port", "0"]
        ) == 0
        out = capsys.readouterr().out
        assert "serving metrics at http://" in out
        assert "Table 1" in out

    def test_log_level_installs_the_structured_handler(self):
        import logging

        assert main(
            ["tables", "--scenario", "balanced_small", "--seed", "3", "--log-level", "debug"]
        ) == 0
        logger = logging.getLogger("repro")
        assert any(getattr(h, "_repro_obs", False) for h in logger.handlers)
        assert logger.level == logging.DEBUG


class TestTraceCommands:
    def _record(self, tmp_path, name="rec.trace", seed="3"):
        path = tmp_path / name
        code = main(
            [
                "trace",
                "record",
                "--scenario",
                "balanced_small",
                "--seed",
                seed,
                "--output",
                str(path),
            ]
        )
        assert code == 0
        return path

    def test_record_writes_a_trace_and_prints_its_info(self, tmp_path, capsys):
        path = self._record(tmp_path)
        out = capsys.readouterr().out
        assert path.exists() and path.stat().st_size > 0
        assert "recorded" in out and "labelled:     yes" in out

    def test_info_is_machine_readable(self, tmp_path, capsys):
        path = self._record(tmp_path)
        capsys.readouterr()
        assert main(["trace", "info", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["records"] > 0
        assert payload["labelled"] is True
        assert payload["time_ordered"] is True
        assert payload["dataset"]["name"] == "balanced_small"

    def test_recorded_trace_drives_a_run_config(self, tmp_path, capsys):
        path = self._record(tmp_path)
        capsys.readouterr()
        config = tmp_path / "spec.json"
        config.write_text(
            json.dumps(
                {"mode": "tables", "traffic": {"source": "trace", "path": str(path)}}
            )
        )
        assert main(["run", "--config", str(config), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["source"] == "balanced_small"
        assert payload["alert_counts"]

    def test_import_gzipped_log(self, tmp_path, capsys):
        import gzip

        from repro.logs.writer import format_record
        from tests.helpers import make_records

        log = tmp_path / "access.log.gz"
        with gzip.open(log, "wt", encoding="utf-8") as handle:
            for record in make_records(8, gap_seconds=2):
                handle.write(format_record(record) + "\n")
        out_path = tmp_path / "imported.trace"
        assert main(["trace", "import", str(log), "--output", str(out_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["parsed"] == 8
        assert payload["trace"]["records"] == 8
        assert payload["trace"]["labelled"] is False

    def test_mix_interleaves_two_recordings(self, tmp_path, capsys):
        base = self._record(tmp_path, "base.trace", seed="3")
        overlay = self._record(tmp_path, "overlay.trace", seed="4")
        capsys.readouterr()
        mixed = tmp_path / "mixed.trace"
        code = main(
            [
                "trace",
                "mix",
                "--base",
                str(base),
                "--overlay",
                str(overlay),
                "--output",
                str(mixed),
                "--shift",
                "600",
                "--sample",
                "0.5",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["time_ordered"] is True
        assert payload["records"] > 0

    def test_trace_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])
