"""Tests for :mod:`repro.logs.writer`."""

from __future__ import annotations

import io

from repro.logs.parser import parse_line
from repro.logs.writer import LogWriter, format_record, format_records, write_records
from tests.helpers import make_record, make_records


class TestFormatRecord:
    def test_contains_all_fields(self):
        record = make_record(ip="10.1.2.3", path="/search?o=PAR", status=302, size=420, referrer="https://ref/")
        line = format_record(record)
        assert line.startswith("10.1.2.3 - - [")
        assert '"GET /search?o=PAR HTTP/1.1"' in line
        assert " 302 420 " in line
        assert '"https://ref/"' in line

    def test_empty_referrer_and_agent_become_dashes(self):
        record = make_record(referrer="", user_agent="")
        line = format_record(record)
        assert line.endswith('"-" "-"')

    def test_zero_size_rendered_as_zero(self):
        record = make_record(status=204, size=0)
        assert " 204 0 " in format_record(record)

    def test_roundtrip_through_parser(self):
        original = make_record(path="/offers/99?cur=EUR", status=302, size=512, referrer="https://shop.example.com/")
        reparsed = parse_line(format_record(original), request_id=original.request_id)
        assert reparsed.client_ip == original.client_ip
        assert reparsed.path == original.path
        assert reparsed.status == original.status
        assert reparsed.response_size == original.response_size
        assert reparsed.referrer == original.referrer
        assert reparsed.user_agent == original.user_agent
        assert reparsed.timestamp == original.timestamp


class TestWriteRecords:
    def test_write_to_handle_counts_lines(self):
        records = make_records(5)
        buffer = io.StringIO()
        count = write_records(records, buffer)
        assert count == 5
        assert len(buffer.getvalue().splitlines()) == 5

    def test_format_records_yields_one_line_each(self):
        records = make_records(3)
        assert len(list(format_records(records))) == 3


class TestLogWriter:
    def test_write_file_and_reparse(self, tmp_path):
        from repro.logs.parser import LogParser

        records = make_records(10, gap_seconds=2.0)
        path = tmp_path / "out.log"
        count = LogWriter().write_file(records, str(path))
        assert count == 10
        reparsed = LogParser().parse_file(str(path))
        assert len(reparsed) == 10
        assert [r.status for r in reparsed] == [r.status for r in records]

    def test_to_lines(self):
        lines = LogWriter().to_lines(make_records(4))
        assert len(lines) == 4
        assert all(isinstance(line, str) for line in lines)
