"""Tests for :mod:`repro.logs.anonymize`."""

from __future__ import annotations

import pytest

from repro.logs.anonymize import LogAnonymizer
from tests.helpers import make_labelled_dataset, make_record


class TestIPAnonymisation:
    def test_deterministic_for_same_secret(self):
        a = LogAnonymizer(secret="k1")
        b = LogAnonymizer(secret="k1")
        assert a.anonymize_ip("10.16.3.7") == b.anonymize_ip("10.16.3.7")

    def test_differs_across_secrets(self):
        a = LogAnonymizer(secret="k1")
        b = LogAnonymizer(secret="k2")
        assert a.anonymize_ip("10.16.3.7") != b.anonymize_ip("10.16.3.7")

    def test_does_not_leak_original_address(self):
        anonymized = LogAnonymizer().anonymize_ip("172.20.5.9")
        assert anonymized != "172.20.5.9"
        assert not anonymized.startswith("172.20.5.")

    def test_preserves_subnet_relationships(self):
        anon = LogAnonymizer(secret="k1")
        same_subnet_a = anon.anonymize_ip("10.16.3.7")
        same_subnet_b = anon.anonymize_ip("10.16.3.99")
        other_subnet = anon.anonymize_ip("10.17.44.7")
        prefix = lambda ip: ip.rsplit(".", 1)[0]  # noqa: E731
        assert prefix(same_subnet_a) == prefix(same_subnet_b)
        assert prefix(same_subnet_a) != prefix(other_subnet)

    def test_distinct_hosts_usually_stay_distinct_in_subnet(self):
        anon = LogAnonymizer(secret="k1")
        mapped = {anon.anonymize_ip(f"10.16.3.{host}") for host in range(1, 60)}
        # A keyed byte permutation of 59 hosts should keep most distinct.
        assert len(mapped) > 40

    def test_non_ipv4_input_hashed(self):
        anon = LogAnonymizer()
        assert anon.anonymize_ip("2001:db8::1").startswith("anon-")

    def test_empty_secret_rejected(self):
        with pytest.raises(ValueError):
            LogAnonymizer(secret="")


class TestQueryScrubbing:
    def test_values_replaced_keys_kept(self):
        anon = LogAnonymizer()
        scrubbed = anon.scrub_path("/search?o=PAR&d=LIS&pax=2")
        assert scrubbed.startswith("/search?")
        assert "PAR" not in scrubbed and "LIS" not in scrubbed
        assert "o=" in scrubbed and "d=" in scrubbed and "pax=" in scrubbed

    def test_path_without_query_unchanged(self):
        assert LogAnonymizer().scrub_path("/offers/42") == "/offers/42"


class TestRecordAndDatasetAnonymisation:
    def test_record_fields_transformed(self):
        record = make_record(ip="172.20.5.9", path="/search?o=PAR&d=LIS", referrer="https://shop.example.com/search?o=PAR")
        anonymized = LogAnonymizer().anonymize_record(record)
        assert anonymized.client_ip != record.client_ip
        assert "PAR" not in anonymized.path
        assert "PAR" not in anonymized.referrer
        assert anonymized.user_agent == record.user_agent
        assert anonymized.status == record.status
        assert anonymized.request_id == record.request_id

    def test_dataset_anonymisation_preserves_labels_and_size(self):
        dataset = make_labelled_dataset(["m0", "m1"], ["b0"])
        anonymized = LogAnonymizer().anonymize_dataset(dataset)
        assert len(anonymized) == len(dataset)
        assert anonymized.ground_truth is dataset.ground_truth
        assert anonymized.is_labelled

    def test_detector_results_stable_under_anonymisation(self, small_dataset):
        """Anonymisation must not change what the rule engine sees: session
        grouping survives because subnet/host relations are preserved.

        The one documented exception is IP-range whitelisting: pseudonymised
        crawler addresses no longer fall in the published crawler ranges, so
        verified crawlers lose their whitelist protection.  Any extra alerts
        must therefore come from that benign crawler traffic, and nothing
        that was alerted before may stop being alerted.
        """
        from repro.detectors.inhouse import InHouseHeuristicDetector

        truth = small_dataset.ground_truth
        anonymized = LogAnonymizer(secret="share").anonymize_dataset(small_dataset)
        original_alerts = InHouseHeuristicDetector().analyze(small_dataset).request_ids()
        anonymized_alerts = InHouseHeuristicDetector().analyze(anonymized).request_ids()

        lost = original_alerts - anonymized_alerts
        gained = anonymized_alerts - original_alerts
        assert len(lost) <= max(5, len(original_alerts) // 100)
        benign_bot_classes = {"search_crawler", "monitoring_bot"}
        unexplained_gains = [
            rid for rid in gained if truth.actor_class_of(rid) not in benign_bot_classes
        ]
        assert len(unexplained_gains) <= max(5, len(original_alerts) // 100)
