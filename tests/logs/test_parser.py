"""Tests for :mod:`repro.logs.parser`."""

from __future__ import annotations

import pytest

from repro.exceptions import LogParseError
from repro.logs.parser import LogParser, parse_apache_timestamp, parse_line, parse_lines
from repro.logs.record import RequestMethod

COMBINED_LINE = (
    '203.0.113.9 - - [11/Mar/2018:06:25:31 +0000] "GET /search?o=PAR&d=LIS HTTP/1.1" '
    '200 18311 "https://shop.example.com/" "Mozilla/5.0 (X11; Linux x86_64)"'
)
COMMON_LINE = '203.0.113.9 - - [11/Mar/2018:06:25:31 +0000] "GET /robots.txt HTTP/1.0" 200 180'


class TestParseLine:
    def test_combined_format_fields(self):
        record = parse_line(COMBINED_LINE, request_id="x1")
        assert record.request_id == "x1"
        assert record.client_ip == "203.0.113.9"
        assert record.method is RequestMethod.GET
        assert record.path == "/search?o=PAR&d=LIS"
        assert record.protocol == "HTTP/1.1"
        assert record.status == 200
        assert record.response_size == 18311
        assert record.referrer == "https://shop.example.com/"
        assert "Mozilla" in record.user_agent

    def test_timestamp_parsed_with_offset(self):
        record = parse_line(COMBINED_LINE)
        assert record.timestamp.year == 2018
        assert record.timestamp.month == 3
        assert record.timestamp.day == 11
        assert record.timestamp.hour == 6
        assert record.timestamp.utcoffset().total_seconds() == 0

    def test_common_format_without_headers(self):
        record = parse_line(COMMON_LINE)
        assert record.referrer == ""
        assert record.user_agent == ""
        assert record.path == "/robots.txt"

    def test_dash_size_becomes_zero(self):
        line = '10.0.0.1 - - [11/Mar/2018:06:25:31 +0000] "GET /track/beacon HTTP/1.1" 204 - "-" "Mozilla/5.0"'
        assert parse_line(line).response_size == 0

    def test_dash_referrer_and_agent_become_empty(self):
        line = '10.0.0.1 - - [11/Mar/2018:06:25:31 +0000] "GET / HTTP/1.1" 200 12 "-" "-"'
        record = parse_line(line)
        assert record.referrer == ""
        assert record.user_agent == ""

    def test_default_request_id_uses_line_number(self):
        record = parse_line(COMBINED_LINE, line_number=42)
        assert record.request_id == "r41"

    def test_empty_line_raises(self):
        with pytest.raises(LogParseError, match="empty log line"):
            parse_line("   ")

    def test_garbage_line_raises(self):
        with pytest.raises(LogParseError, match="does not match"):
            parse_line("this is not an access log line")

    def test_malformed_request_line_raises(self):
        line = '10.0.0.1 - - [11/Mar/2018:06:25:31 +0000] "GARBAGE" 200 12 "-" "-"'
        with pytest.raises(LogParseError, match="malformed request line"):
            parse_line(line)

    def test_unknown_method_raises(self):
        line = '10.0.0.1 - - [11/Mar/2018:06:25:31 +0000] "BREW /pot HTTP/1.1" 200 12 "-" "-"'
        with pytest.raises(LogParseError, match="unknown HTTP method"):
            parse_line(line)

    def test_bad_timestamp_raises(self):
        line = '10.0.0.1 - - [99/Foo/2018:99:99:99 +0000] "GET / HTTP/1.1" 200 12 "-" "-"'
        with pytest.raises(LogParseError):
            parse_line(line)

    def test_missing_protocol_defaults(self):
        line = '10.0.0.1 - - [11/Mar/2018:06:25:31 +0000] "GET /" 200 12 "-" "-"'
        assert parse_line(line).protocol == "HTTP/1.0"


class TestParseApacheTimestamp:
    def test_valid(self):
        parsed = parse_apache_timestamp("11/Mar/2018:06:25:31 +0100")
        assert parsed.utcoffset().total_seconds() == 3600

    def test_invalid_raises(self):
        with pytest.raises(LogParseError, match="invalid timestamp"):
            parse_apache_timestamp("not a timestamp")


class TestParseLines:
    def test_sequential_request_ids(self):
        records = list(parse_lines([COMBINED_LINE, COMMON_LINE]))
        assert [record.request_id for record in records] == ["r0", "r1"]

    def test_blank_lines_skipped(self):
        records = list(parse_lines([COMBINED_LINE, "", "   ", COMMON_LINE]))
        assert len(records) == 2

    def test_malformed_raises_by_default(self):
        with pytest.raises(LogParseError):
            list(parse_lines([COMBINED_LINE, "garbage"]))

    def test_malformed_skipped_when_requested(self):
        records = list(parse_lines([COMBINED_LINE, "garbage", COMMON_LINE], skip_malformed=True))
        assert len(records) == 2
        assert [record.request_id for record in records] == ["r0", "r1"]

    def test_custom_prefix(self):
        records = list(parse_lines([COMBINED_LINE], request_id_prefix="q"))
        assert records[0].request_id == "q0"


class TestLogParser:
    def test_parse_list(self):
        parser = LogParser()
        records = parser.parse([COMBINED_LINE, COMMON_LINE])
        assert len(records) == 2

    def test_parse_file_roundtrip(self, tmp_path):
        path = tmp_path / "access.log"
        path.write_text(COMBINED_LINE + "\n" + COMMON_LINE + "\n", encoding="utf-8")
        records = LogParser().parse_file(str(path))
        assert len(records) == 2
        assert records[0].client_ip == "203.0.113.9"

    def test_parse_report_counts_errors(self):
        parser = LogParser()
        records, report = parser.parse_report([COMBINED_LINE, "garbage", COMMON_LINE])
        assert len(records) == 2
        assert report.total_lines == 3
        assert report.parsed == 2
        assert report.skipped == 1
        assert len(report.errors) == 1
        assert isinstance(report.errors[0], LogParseError)

    def test_parse_report_never_raises(self):
        parser = LogParser(skip_malformed=False)
        _, report = parser.parse_report(["garbage"] * 3)
        assert report.parsed == 0
        assert report.skipped == 3


class TestGzipParsing:
    def test_parse_file_reads_gzip_transparently(self, tmp_path):
        import gzip

        path = tmp_path / "access.log.gz"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write(COMBINED_LINE + "\n" + COMMON_LINE + "\n")
        records = LogParser().parse_file(str(path))
        assert len(records) == 2
        assert records[0].client_ip == "203.0.113.9"

    def test_open_log_plain_and_gz_agree(self, tmp_path):
        import gzip

        from repro.logs.parser import open_log

        plain = tmp_path / "a.log"
        packed = tmp_path / "a.log.gz"
        plain.write_text(COMBINED_LINE + "\n", encoding="utf-8")
        with gzip.open(packed, "wt", encoding="utf-8") as handle:
            handle.write(COMBINED_LINE + "\n")
        with open_log(str(plain)) as first, open_log(str(packed)) as second:
            assert first.read() == second.read()
