"""Tests for :mod:`repro.logs.statuses`, :mod:`repro.logs.filters` and
:mod:`repro.logs.rotation`."""

from __future__ import annotations


import pytest

from repro.logs.dataset import Dataset
from repro.logs.filters import (
    and_filter,
    by_day,
    by_ip,
    by_method,
    by_path_prefix,
    by_status,
    by_status_class,
    by_user_agent_substring,
    not_filter,
    or_filter,
)
from repro.logs.rotation import iter_days, split_by_day
from repro.logs.statuses import STATUS_REGISTRY, describe_status, status_class
from tests.helpers import make_record


class TestStatuses:
    def test_describe_matches_paper_labels(self):
        assert describe_status(200) == "200 (OK)"
        assert describe_status(302) == "302 (Found)"
        assert describe_status(204) == "204 (No content)"
        assert describe_status(400) == "400 (Bad request)"
        assert describe_status(304) == "304 (Not modified)"
        assert describe_status(500) == "500 (Internal Server Error)"
        assert describe_status(404) == "404 (Not found)"
        assert describe_status(403) == "403 (Forbidden)"

    def test_unknown_code_falls_back_to_class(self):
        assert describe_status(299) == "299 (Success)"
        assert describe_status(599) == "599 (Server error)"

    def test_status_class(self):
        assert status_class(204) == 2
        assert status_class(499) == 4

    def test_status_class_rejects_invalid(self):
        with pytest.raises(ValueError):
            status_class(42)

    def test_registry_covers_paper_statuses(self):
        for code in (200, 302, 204, 400, 304, 500, 404, 403):
            assert code in STATUS_REGISTRY


class TestFilters:
    def test_by_status(self):
        assert by_status(404)(make_record(status=404))
        assert not by_status(404)(make_record(status=200))

    def test_by_status_class(self):
        assert by_status_class(4)(make_record(status=404))
        assert not by_status_class(4)(make_record(status=200))

    def test_by_ip(self):
        assert by_ip("10.0.0.1")(make_record(ip="10.0.0.1"))
        assert not by_ip("10.0.0.1")(make_record(ip="10.0.0.2"))

    def test_by_method_case_insensitive(self):
        assert by_method("head")(make_record(method="HEAD"))

    def test_by_path_prefix(self):
        assert by_path_prefix("/api/")(make_record(path="/api/price?x=1"))
        assert not by_path_prefix("/api/")(make_record(path="/search"))

    def test_by_user_agent_substring(self):
        assert by_user_agent_substring("chrome")(make_record())
        assert not by_user_agent_substring("curl")(make_record())

    def test_by_day(self):
        assert by_day("2018-03-11")(make_record())
        assert not by_day("2018-03-12")(make_record())

    def test_and_or_not_combinators(self):
        ok_search = and_filter(by_status(200), by_path_prefix("/search"))
        assert ok_search(make_record(path="/search?x=1", status=200))
        assert not ok_search(make_record(path="/search?x=1", status=302))

        redirect_or_error = or_filter(by_status_class(3), by_status_class(4))
        assert redirect_or_error(make_record(status=302))
        assert redirect_or_error(make_record(status=404))
        assert not redirect_or_error(make_record(status=200))

        not_ok = not_filter(by_status(200))
        assert not_ok(make_record(status=500))
        assert not not_ok(make_record(status=200))

    def test_filters_compose_with_dataset(self):
        records = [
            make_record("a", status=200),
            make_record("b", status=404, seconds=1),
            make_record("c", status=500, seconds=2),
        ]
        dataset = Dataset(records)
        errors = dataset.filter(by_status_class(5))
        assert errors.request_ids == ["c"]


class TestRotation:
    def _three_day_dataset(self) -> Dataset:
        records = []
        for day in range(3):
            for i in range(2 + day):
                records.append(
                    make_record(
                        f"d{day}r{i}",
                        seconds=day * 86_400 + i * 60,
                    )
                )
        return Dataset(records)

    def test_split_by_day_counts(self):
        per_day = split_by_day(self._three_day_dataset())
        assert len(per_day) == 3
        sizes = [len(d) for d in per_day.values()]
        assert sizes == [2, 3, 4]

    def test_split_keys_are_iso_dates(self):
        per_day = split_by_day(self._three_day_dataset())
        assert sorted(per_day) == ["2018-03-11", "2018-03-12", "2018-03-13"]

    def test_split_preserves_total(self):
        dataset = self._three_day_dataset()
        per_day = split_by_day(dataset)
        assert sum(len(d) for d in per_day.values()) == len(dataset)

    def test_iter_days_in_order(self):
        days = [day for day, _ in iter_days(self._three_day_dataset())]
        assert days == sorted(days)

    def test_per_day_metadata_names_include_day(self):
        per_day = split_by_day(self._three_day_dataset())
        for day, dataset in per_day.items():
            assert day in dataset.metadata.name

    def test_timestamps_inside_each_day(self):
        for day, dataset in iter_days(self._three_day_dataset()):
            for record in dataset:
                assert record.day == day
