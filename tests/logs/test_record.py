"""Tests for :mod:`repro.logs.record`."""

from __future__ import annotations

from datetime import datetime, timezone

import pytest

from repro.logs.record import LogRecord, RequestMethod
from tests.helpers import make_record


class TestRequestMethod:
    def test_from_string_accepts_lowercase(self):
        assert RequestMethod.from_string("get") is RequestMethod.GET

    def test_from_string_accepts_uppercase(self):
        assert RequestMethod.from_string("POST") is RequestMethod.POST

    def test_from_string_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown HTTP method"):
            RequestMethod.from_string("BREW")

    def test_all_methods_roundtrip(self):
        for method in RequestMethod:
            assert RequestMethod.from_string(method.value) is method


class TestLogRecordValidation:
    def test_naive_timestamp_is_normalised_to_utc(self):
        record = LogRecord(
            request_id="r0",
            timestamp=datetime(2018, 3, 11, 9, 0, 0),
            client_ip="10.0.0.1",
            method=RequestMethod.GET,
            path="/",
            protocol="HTTP/1.1",
            status=200,
            response_size=10,
        )
        assert record.timestamp.tzinfo is timezone.utc

    def test_invalid_status_rejected(self):
        with pytest.raises(ValueError, match="invalid HTTP status"):
            make_record(status=99)

    def test_status_above_599_rejected(self):
        with pytest.raises(ValueError, match="invalid HTTP status"):
            make_record(status=700)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError, match="negative response size"):
            make_record(size=-1)


class TestLogRecordDerivedProperties:
    def test_url_path_strips_query(self):
        record = make_record(path="/search?o=PAR&d=LIS")
        assert record.url_path == "/search"

    def test_query_string(self):
        record = make_record(path="/search?o=PAR&d=LIS")
        assert record.query_string == "o=PAR&d=LIS"

    def test_query_params(self):
        record = make_record(path="/search?o=PAR&d=LIS&pax=2")
        assert record.query_params == {"o": "PAR", "d": "LIS", "pax": "2"}

    def test_query_params_empty_when_no_query(self):
        assert make_record(path="/offers/12").query_params == {}

    def test_day_is_iso_date(self):
        assert make_record().day == "2018-03-11"

    def test_status_class(self):
        assert make_record(status=200).status_class == 2
        assert make_record(status=302).status_class == 3
        assert make_record(status=404).status_class == 4
        assert make_record(status=500).status_class == 5

    def test_is_error(self):
        assert not make_record(status=200).is_error
        assert not make_record(status=304).is_error
        assert make_record(status=400).is_error
        assert make_record(status=503).is_error

    @pytest.mark.parametrize(
        "path,expected",
        [
            ("/static/css/app.css", True),
            ("/static/js/bundle-3.js", True),
            ("/static/img/offer-9.jpg", True),
            ("/favicon.ico", True),
            ("/fonts/brand.woff2", True),
            ("/search?o=PAR", False),
            ("/offers/12", False),
        ],
    )
    def test_is_asset_request(self, path, expected):
        assert make_record(path=path).is_asset_request is expected

    def test_has_referrer(self):
        assert not make_record(referrer="").has_referrer
        assert not make_record(referrer="-").has_referrer
        assert make_record(referrer="https://shop.example.com/").has_referrer

    def test_has_user_agent(self):
        assert not make_record(user_agent="").has_user_agent
        assert make_record().has_user_agent

    def test_with_status_returns_modified_copy(self):
        record = make_record(status=200)
        modified = record.with_status(404)
        assert modified.status == 404
        assert record.status == 200
        assert modified.request_id == record.request_id

    def test_actor_key_is_ip_and_agent(self):
        record = make_record(ip="10.1.2.3")
        assert record.actor_key() == ("10.1.2.3", record.user_agent)

    def test_records_are_immutable(self):
        record = make_record()
        with pytest.raises(AttributeError):
            record.status = 500  # type: ignore[misc]
