"""Tests for :mod:`repro.logs.dataset`."""

from __future__ import annotations

import pytest

from repro.exceptions import DatasetError, LabelError
from repro.logs.dataset import BENIGN, MALICIOUS, Dataset, DatasetMetadata, GroundTruth
from tests.helpers import make_labelled_dataset, make_record, make_records


class TestGroundTruth:
    def test_set_and_lookup(self):
        truth = GroundTruth()
        truth.set("r0", MALICIOUS, "aggressive_scraper")
        truth.set("r1", BENIGN, "human")
        assert truth.is_malicious("r0")
        assert not truth.is_malicious("r1")
        assert truth.actor_class_of("r0") == "aggressive_scraper"

    def test_unknown_label_rejected(self):
        truth = GroundTruth()
        with pytest.raises(LabelError, match="unknown label"):
            truth.set("r0", "suspicious")

    def test_missing_request_raises(self):
        truth = GroundTruth()
        with pytest.raises(LabelError, match="no ground truth"):
            truth.label_of("missing")

    def test_contains_and_len(self):
        truth = GroundTruth()
        truth.set("r0", MALICIOUS)
        assert "r0" in truth
        assert "r1" not in truth
        assert len(truth) == 1

    def test_malicious_and_benign_sets(self):
        truth = GroundTruth()
        truth.set("a", MALICIOUS)
        truth.set("b", BENIGN)
        truth.set("c", MALICIOUS)
        assert truth.malicious_ids() == {"a", "c"}
        assert truth.benign_ids() == {"b"}

    def test_actor_class_counts(self):
        truth = GroundTruth()
        truth.set("a", MALICIOUS, "stealth_scraper")
        truth.set("b", MALICIOUS, "stealth_scraper")
        truth.set("c", BENIGN, "human")
        assert truth.actor_class_counts() == {"stealth_scraper": 2, "human": 1}

    def test_dict_roundtrip(self):
        truth = GroundTruth()
        truth.set("a", MALICIOUS, "probing_scraper")
        truth.set("b", BENIGN, "human")
        restored = GroundTruth.from_dict(truth.to_dict())
        assert restored.is_malicious("a")
        assert restored.actor_class_of("a") == "probing_scraper"
        assert not restored.is_malicious("b")


class TestDatasetBasics:
    def test_len_iter_getitem(self):
        records = make_records(5)
        dataset = Dataset(records)
        assert len(dataset) == 5
        assert list(dataset)[0].request_id == "r0"
        assert dataset[2].request_id == "r2"

    def test_duplicate_request_ids_rejected(self):
        records = [make_record("dup"), make_record("dup", seconds=1)]
        with pytest.raises(DatasetError, match="duplicate request id"):
            Dataset(records)

    def test_get_by_id(self):
        dataset = Dataset(make_records(3))
        assert dataset.get("r1").request_id == "r1"

    def test_get_missing_raises(self):
        dataset = Dataset(make_records(1))
        with pytest.raises(DatasetError, match="no record"):
            dataset.get("nope")

    def test_contains(self):
        dataset = Dataset(make_records(2))
        assert "r0" in dataset
        assert "r9" not in dataset

    def test_request_ids_in_order(self):
        dataset = Dataset(make_records(4))
        assert dataset.request_ids == ["r0", "r1", "r2", "r3"]


class TestDatasetLabels:
    def test_is_labelled_false_without_truth(self):
        assert not Dataset(make_records(2)).is_labelled

    def test_is_labelled_false_when_partial(self):
        records = make_records(2)
        truth = GroundTruth()
        truth.set("r0", BENIGN)
        assert not Dataset(records, ground_truth=truth).is_labelled

    def test_require_labels_raises_when_partial(self):
        records = make_records(2)
        truth = GroundTruth()
        truth.set("r0", BENIGN)
        with pytest.raises(LabelError, match="lack ground truth"):
            Dataset(records, ground_truth=truth).require_labels()

    def test_require_labels_raises_when_absent(self):
        with pytest.raises(LabelError, match="no ground truth"):
            Dataset(make_records(1)).require_labels()

    def test_malicious_fraction(self):
        dataset = make_labelled_dataset(["m0", "m1", "m2"], ["b0"])
        assert dataset.malicious_fraction() == pytest.approx(0.75)


class TestDatasetViews:
    def test_filter_keeps_matching_records(self):
        dataset = make_labelled_dataset(["m0"], ["b0", "b1"], status_for={"m0": 404})
        errors = dataset.filter(lambda record: record.is_error, name="errors")
        assert len(errors) == 1
        assert errors[0].request_id == "m0"
        assert errors.metadata.name == "errors"

    def test_filter_shares_ground_truth(self):
        dataset = make_labelled_dataset(["m0"], ["b0"])
        view = dataset.filter(lambda record: True)
        assert view.ground_truth is dataset.ground_truth

    def test_status_counts(self):
        dataset = make_labelled_dataset(["m0"], ["b0", "b1"], status_for={"m0": 404, "b0": 302})
        counts = dataset.status_counts()
        assert counts[404] == 1
        assert counts[302] == 1
        assert counts[200] == 1

    def test_method_and_day_counts(self):
        dataset = Dataset(make_records(3))
        assert dataset.method_counts() == {"GET": 3}
        assert dataset.day_counts() == {"2018-03-11": 3}

    def test_unique_ips_and_agents(self):
        records = [make_record("a", ip="10.0.0.1"), make_record("b", ip="10.0.0.2", seconds=1)]
        dataset = Dataset(records)
        assert dataset.unique_ips() == {"10.0.0.1", "10.0.0.2"}
        assert len(dataset.unique_user_agents()) == 1

    def test_time_span(self):
        dataset = Dataset(make_records(3, gap_seconds=10))
        start, end = dataset.time_span()
        assert (end - start).total_seconds() == pytest.approx(20.0)

    def test_time_span_empty_raises(self):
        with pytest.raises(DatasetError, match="empty data set"):
            Dataset([]).time_span()

    def test_sorted_by_time(self):
        records = [make_record("late", seconds=100), make_record("early", seconds=0)]
        dataset = Dataset(records).sorted_by_time()
        assert dataset.request_ids == ["early", "late"]

    def test_summary_contains_core_fields(self):
        dataset = make_labelled_dataset(["m0"], ["b0"])
        summary = dataset.summary()
        assert summary["records"] == 2
        assert summary["labelled"] is True
        assert "malicious_fraction" in summary

    def test_label_save_and_load(self, tmp_path):
        dataset = make_labelled_dataset(["m0"], ["b0"])
        path = tmp_path / "labels.json"
        dataset.save_labels(str(path))
        truth = Dataset.load_labels(str(path))
        assert truth.is_malicious("m0")
        assert not truth.is_malicious("b0")


class TestDatasetMetadata:
    def test_defaults(self):
        metadata = DatasetMetadata()
        assert metadata.name == "unnamed"
        assert metadata.scale == 1.0

    def test_attached_to_dataset(self):
        metadata = DatasetMetadata(name="demo", scenario="balanced_small", seed=7)
        dataset = Dataset(make_records(1), metadata=metadata)
        assert dataset.metadata.scenario == "balanced_small"


class TestTimeOrdering:
    def test_unknown_ordering_is_settled_by_a_scan(self):
        ordered = Dataset(make_records(5))
        assert ordered._time_ordered is None
        assert ordered.is_time_ordered
        assert ordered._time_ordered is True  # cached

    def test_unordered_dataset_is_detected(self):
        assert not Dataset(list(reversed(make_records(5)))).is_time_ordered

    def test_constructor_mark_is_trusted(self):
        dataset = Dataset(make_records(3), time_ordered=True)
        assert dataset._time_ordered is True

    def test_sorted_by_time_marks_the_copy(self):
        dataset = Dataset(list(reversed(make_records(4)))).sorted_by_time()
        assert dataset._time_ordered is True

    def test_filter_preserves_a_known_ordering(self):
        dataset = Dataset(make_records(6), time_ordered=True)
        view = dataset.filter(lambda record: record.status == 200)
        assert view._time_ordered is True

    def test_empty_and_single_record_datasets_are_ordered(self):
        assert Dataset([]).is_time_ordered
        assert Dataset([make_record("r0")]).is_time_ordered


class TestGroundTruthFromColumns:
    def test_matches_per_record_set(self):
        bulk = GroundTruth.from_columns(
            ["r0", "r1", "r2"], [MALICIOUS, BENIGN, BENIGN], ["scraper", "human", ""]
        )
        loop = GroundTruth()
        loop.set("r0", MALICIOUS, "scraper")
        loop.set("r1", BENIGN, "human")
        loop.set("r2", BENIGN, "")
        for request_id in ("r0", "r1", "r2"):
            assert bulk.label_of(request_id) == loop.label_of(request_id)
            assert bulk.actor_class_of(request_id) == loop.actor_class_of(request_id)

    def test_rejects_unknown_labels(self):
        with pytest.raises(LabelError, match="unknown labels"):
            GroundTruth.from_columns(["r0"], ["suspicious"], [""])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(LabelError, match="equal lengths"):
            GroundTruth.from_columns(["r0", "r1"], [BENIGN], ["", ""])
