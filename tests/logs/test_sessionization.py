"""Tests for :mod:`repro.logs.sessionization`."""

from __future__ import annotations

from datetime import timedelta

import pytest

from repro.logs.sessionization import Session, Sessionizer
from tests.helpers import BROWSER_UA, make_record, make_records, make_session


class TestSessionizer:
    def test_single_visitor_single_session(self):
        records = make_records(5, gap_seconds=10)
        sessions = Sessionizer().sessionize(records)
        assert len(sessions) == 1
        assert sessions[0].request_count == 5

    def test_gap_longer_than_timeout_splits_sessions(self):
        records = make_records(2, gap_seconds=1)
        records.append(make_record("r9", seconds=60 * 60))  # an hour later
        sessions = Sessionizer().sessionize(records)
        assert len(sessions) == 2
        assert sessions[0].request_count == 2
        assert sessions[1].request_count == 1

    def test_distinct_ips_get_distinct_sessions(self):
        records = [
            make_record("a", ip="10.0.0.1"),
            make_record("b", ip="10.0.0.2", seconds=1),
        ]
        sessions = Sessionizer().sessionize(records)
        assert len(sessions) == 2

    def test_distinct_agents_get_distinct_sessions(self):
        records = [
            make_record("a", user_agent=BROWSER_UA),
            make_record("b", user_agent="curl/7.58.0", seconds=1),
        ]
        assert len(Sessionizer().sessionize(records)) == 2

    def test_records_sorted_before_grouping(self):
        records = [make_record("late", seconds=50), make_record("early", seconds=0)]
        sessions = Sessionizer().sessionize(records)
        assert sessions[0].records[0].request_id == "early"

    def test_custom_timeout(self):
        records = make_records(2, gap_seconds=120)
        sessions = Sessionizer(timeout=timedelta(minutes=1)).sessionize(records)
        assert len(sessions) == 2

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            Sessionizer(timeout=timedelta(seconds=0))

    def test_sessions_sorted_by_start(self):
        records = [
            make_record("b0", ip="10.0.0.2", seconds=100),
            make_record("a0", ip="10.0.0.1", seconds=0),
        ]
        sessions = Sessionizer().sessionize(records)
        assert sessions[0].client_ip == "10.0.0.1"

    def test_sessionize_by_ip(self):
        records = [
            make_record("a", ip="10.0.0.1"),
            make_record("b", ip="10.0.0.1", seconds=1),
            make_record("c", ip="10.0.0.2", seconds=2),
        ]
        by_ip = Sessionizer().sessionize_by_ip(records)
        assert set(by_ip) == {"10.0.0.1", "10.0.0.2"}
        assert by_ip["10.0.0.1"][0].request_count == 2

    def test_session_ids_unique(self):
        records = [make_record(f"r{i}", ip=f"10.0.0.{i}", seconds=i) for i in range(5)]
        sessions = Sessionizer().sessionize(records)
        ids = [session.session_id for session in sessions]
        assert len(set(ids)) == len(ids)


class TestSessionMetrics:
    def test_duration_and_rate(self):
        session = make_session(make_records(7, gap_seconds=10))
        assert session.duration_seconds == pytest.approx(60.0)
        assert session.requests_per_minute() == pytest.approx(7.0)

    def test_single_request_session_rate(self):
        session = make_session([make_record()])
        assert session.requests_per_minute() == 1.0
        assert session.mean_interarrival_seconds() == 0.0

    def test_mean_interarrival(self):
        session = make_session(make_records(4, gap_seconds=5))
        assert session.mean_interarrival_seconds() == pytest.approx(5.0)

    def test_interarrival_list_length(self):
        session = make_session(make_records(4))
        assert len(session.interarrival_seconds()) == 3

    def test_error_rate(self):
        records = [make_record("a", status=200), make_record("b", status=400, seconds=1)]
        assert make_session(records).error_rate() == pytest.approx(0.5)

    def test_status_fraction(self):
        records = [make_record("a", status=204), make_record("b", status=200, seconds=1)]
        assert make_session(records).status_fraction(204) == pytest.approx(0.5)

    def test_asset_fraction(self):
        records = [
            make_record("a", path="/static/css/app.css"),
            make_record("b", path="/search", seconds=1),
        ]
        assert make_session(records).asset_fraction() == pytest.approx(0.5)

    def test_referrer_fraction(self):
        records = [
            make_record("a", referrer="https://shop.example.com/"),
            make_record("b", seconds=1),
        ]
        assert make_session(records).referrer_fraction() == pytest.approx(0.5)

    def test_unique_paths_and_repetition(self):
        records = [
            make_record("a", path="/offers/1"),
            make_record("b", path="/offers/1", seconds=1),
            make_record("c", path="/offers/2", seconds=2),
        ]
        session = make_session(records)
        assert session.unique_paths() == 2
        assert session.path_repetition() == pytest.approx(1.5)

    def test_head_fraction(self):
        records = [make_record("a", method="HEAD"), make_record("b", seconds=1)]
        assert make_session(records).head_fraction() == pytest.approx(0.5)

    def test_robots_txt_hits(self):
        records = [make_record("a", path="/robots.txt"), make_record("b", path="/", seconds=1)]
        assert make_session(records).robots_txt_hits() == 1

    def test_request_ids_order(self):
        session = make_session(make_records(3))
        assert session.request_ids() == ["r0", "r1", "r2"]

    def test_empty_session_metrics_are_zero(self):
        session = Session(session_id="s0", client_ip="10.0.0.1", user_agent=BROWSER_UA)
        assert session.error_rate() == 0.0
        assert session.asset_fraction() == 0.0
        assert session.referrer_fraction() == 0.0
        assert session.head_fraction() == 0.0
        assert session.path_repetition() == 0.0
