"""Small factories shared across the test suite."""

from __future__ import annotations

from datetime import datetime, timedelta, timezone
from typing import Sequence

from repro.core.alerts import AlertMatrix, AlertSet
from repro.logs.dataset import BENIGN, MALICIOUS, Dataset, GroundTruth
from repro.logs.record import LogRecord, RequestMethod
from repro.logs.sessionization import Session

BASE_TIME = datetime(2018, 3, 11, 12, 0, 0, tzinfo=timezone.utc)

BROWSER_UA = (
    "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 "
    "(KHTML, like Gecko) Chrome/64.0.3282.186 Safari/537.36"
)
SCRIPTED_UA = "python-requests/2.18.4"


def make_record(
    request_id: str = "r0",
    *,
    seconds: float = 0.0,
    ip: str = "10.16.0.1",
    method: str = "GET",
    path: str = "/search?o=PAR&d=LIS",
    status: int = 200,
    size: int = 1024,
    referrer: str = "",
    user_agent: str = BROWSER_UA,
) -> LogRecord:
    """Build one log record with sensible defaults."""
    return LogRecord(
        request_id=request_id,
        timestamp=BASE_TIME + timedelta(seconds=seconds),
        client_ip=ip,
        method=RequestMethod(method),
        path=path,
        protocol="HTTP/1.1",
        status=status,
        response_size=size,
        referrer=referrer,
        user_agent=user_agent,
    )


def make_records(count: int, *, gap_seconds: float = 1.0, **kwargs) -> list[LogRecord]:
    """Build ``count`` records with consecutive ids and fixed inter-arrival gaps."""
    return [
        make_record(request_id=f"r{i}", seconds=i * gap_seconds, **kwargs)
        for i in range(count)
    ]


def make_session(records: Sequence[LogRecord], session_id: str = "s0") -> Session:
    """Wrap records (assumed same visitor) into a session."""
    first = records[0]
    session = Session(session_id=session_id, client_ip=first.client_ip, user_agent=first.user_agent)
    for record in records:
        session.add(record)
    return session


def make_labelled_dataset(
    malicious_ids: Sequence[str],
    benign_ids: Sequence[str],
    *,
    status_for: dict[str, int] | None = None,
) -> Dataset:
    """A labelled data set with one record per id (statuses optionally overridden)."""
    status_for = status_for or {}
    records = []
    truth = GroundTruth()
    for index, request_id in enumerate(list(malicious_ids) + list(benign_ids)):
        records.append(
            make_record(
                request_id=request_id,
                seconds=float(index),
                status=status_for.get(request_id, 200),
            )
        )
    for request_id in malicious_ids:
        truth.set(request_id, MALICIOUS, "aggressive_scraper")
    for request_id in benign_ids:
        truth.set(request_id, BENIGN, "human")
    return Dataset(records, ground_truth=truth)


def make_alert_matrix(
    dataset: Dataset,
    alerted_by_detector: dict[str, Sequence[str]],
) -> AlertMatrix:
    """Build an alert matrix from explicit per-detector alerted id lists."""
    alert_sets = []
    for detector_name, request_ids in alerted_by_detector.items():
        alert_set = AlertSet(detector_name)
        for request_id in request_ids:
            alert_set.add(request_id)
        alert_sets.append(alert_set)
    return AlertMatrix.from_alert_sets(dataset, alert_sets)
