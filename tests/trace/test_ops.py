"""Tests for trace composition operators (:mod:`repro.trace.ops`)."""

from __future__ import annotations

from datetime import timedelta

import pytest

from repro.exceptions import TraceError
from repro.logs.dataset import BENIGN, MALICIOUS, Dataset, DatasetMetadata, GroundTruth
from repro.trace import (
    concat_traces,
    interleave_traces,
    read_trace,
    sample_trace,
    shift_trace,
    write_trace,
)
from tests.helpers import make_record, make_records


def _write(tmp_path, name, records, *, labels=None):
    truth = None
    if labels is not None:
        truth = GroundTruth()
        for record, label in zip(records, labels):
            truth.set(record.request_id, label, "unit_actor")
    dataset = Dataset(records, ground_truth=truth, metadata=DatasetMetadata(name=name))
    path = str(tmp_path / f"{name}.trace")
    write_trace(dataset, path)
    return path


class TestConcat:
    def test_concatenates_and_reassigns_ids(self, tmp_path):
        a = _write(tmp_path, "a", make_records(4))
        b = _write(tmp_path, "b", make_records(3, gap_seconds=2.0))
        out = str(tmp_path / "out.trace")
        info = concat_traces([a, b], out)
        assert info.records == 7
        replayed = read_trace(out)
        assert [r.request_id for r in replayed] == [f"r{i}" for i in range(7)]

    def test_labels_survive_when_all_inputs_are_labelled(self, tmp_path):
        a = _write(tmp_path, "a", make_records(2), labels=[MALICIOUS, BENIGN])
        b = _write(tmp_path, "b", make_records(2), labels=[BENIGN, BENIGN])
        out = str(tmp_path / "out.trace")
        assert concat_traces([a, b], out).labelled
        truth = read_trace(out).ground_truth
        assert truth.label_of("r0") == MALICIOUS
        assert truth.actor_class_of("r0") == "unit_actor"

    def test_labels_are_dropped_when_any_input_is_unlabelled(self, tmp_path):
        a = _write(tmp_path, "a", make_records(2), labels=[MALICIOUS, BENIGN])
        b = _write(tmp_path, "b", make_records(2))
        out = str(tmp_path / "out.trace")
        assert not concat_traces([a, b], out).labelled

    def test_requires_at_least_one_input(self, tmp_path):
        with pytest.raises(TraceError, match="at least one"):
            concat_traces([], str(tmp_path / "out.trace"))


class TestShift:
    def test_shifts_every_timestamp(self, tmp_path):
        path = _write(tmp_path, "a", make_records(3))
        out = str(tmp_path / "out.trace")
        shift_trace(path, out, seconds=3600)
        original = read_trace(path).records
        shifted = read_trace(out).records
        for before, after in zip(original, shifted):
            assert after.timestamp - before.timestamp == timedelta(hours=1)
            assert after.request_id == before.request_id

    def test_negative_shift_moves_backwards(self, tmp_path):
        path = _write(tmp_path, "a", make_records(2))
        out = str(tmp_path / "out.trace")
        shift_trace(path, out, seconds=-60)
        assert read_trace(out).records[0].timestamp == make_record("r0").timestamp - timedelta(
            minutes=1
        )


class TestSample:
    def test_sample_is_deterministic_per_seed(self, tmp_path):
        path = _write(tmp_path, "a", make_records(200))
        out1 = str(tmp_path / "s1.trace")
        out2 = str(tmp_path / "s2.trace")
        sample_trace(path, out1, fraction=0.4, seed=9)
        sample_trace(path, out2, fraction=0.4, seed=9)
        assert [r.request_id for r in read_trace(out1)] == [
            r.request_id for r in read_trace(out2)
        ]

    def test_sample_keeps_roughly_the_fraction(self, tmp_path):
        path = _write(tmp_path, "a", make_records(400))
        out = str(tmp_path / "s.trace")
        info = sample_trace(path, out, fraction=0.25, seed=1)
        assert 50 <= info.records <= 150

    def test_full_fraction_keeps_everything(self, tmp_path):
        path = _write(tmp_path, "a", make_records(10))
        out = str(tmp_path / "s.trace")
        assert sample_trace(path, out, fraction=1.0).records == 10

    def test_invalid_fraction_is_rejected(self, tmp_path):
        path = _write(tmp_path, "a", make_records(2))
        with pytest.raises(TraceError, match="fraction"):
            sample_trace(path, str(tmp_path / "s.trace"), fraction=0.0)


class TestInterleave:
    def test_merges_in_timestamp_order(self, tmp_path):
        base = _write(tmp_path, "base", make_records(10, gap_seconds=10.0))
        overlay = _write(
            tmp_path,
            "overlay",
            [make_record(f"o{i}", seconds=5.0 + 10.0 * i, ip="10.99.0.1") for i in range(5)],
        )
        out = str(tmp_path / "mix.trace")
        info = interleave_traces(base, overlay, out)
        assert info.records == 15
        replayed = read_trace(out)
        timestamps = [r.timestamp for r in replayed]
        assert timestamps == sorted(timestamps)
        assert replayed.is_time_ordered
        assert len({r.request_id for r in replayed}) == 15

    def test_shift_and_sample_apply_to_the_overlay_only(self, tmp_path):
        base = _write(tmp_path, "base", make_records(4, gap_seconds=100.0))
        overlay = _write(
            tmp_path, "overlay", [make_record(f"o{i}", seconds=i, ip="10.99.0.1") for i in range(50)]
        )
        out = str(tmp_path / "mix.trace")
        info = interleave_traces(
            base, overlay, out, shift_overlay_seconds=1000.0, sample_overlay=0.5, seed=3
        )
        replayed = read_trace(out)
        overlay_records = [r for r in replayed if r.client_ip == "10.99.0.1"]
        base_records = [r for r in replayed if r.client_ip != "10.99.0.1"]
        assert len(base_records) == 4
        assert 10 <= len(overlay_records) <= 40
        assert all(
            r.timestamp >= make_record("x", seconds=1000.0).timestamp for r in overlay_records
        )
        assert info.records == len(replayed.records)

    def test_unordered_input_is_rejected(self, tmp_path):
        unordered = _write(
            tmp_path, "u", [make_record("r0", seconds=50), make_record("r1", seconds=0)]
        )
        ordered = _write(tmp_path, "o", make_records(2))
        with pytest.raises(TraceError, match="time-ordered"):
            interleave_traces(unordered, ordered, str(tmp_path / "mix.trace"))
