"""Trace-backed run specifications: validation, execution, caching."""

from __future__ import annotations

import pytest

from repro.exceptions import SpecError
from repro.runspec import RunSpec, TrafficSpec, build_dataset, execute
from repro.trace import write_trace
from repro.trace.cache import CACHE_DIR_ENV


def _normalized(result) -> dict:
    """A result's ``to_dict()`` minus the fields that legitimately vary.

    Wall-clock timings (and the metrics derived from them) differ run to
    run, and the spec block differs between a live-generation spec and
    the trace-replay spec of the same traffic; everything else must be
    identical.
    """
    payload = result.to_dict()
    payload.pop("timings")
    payload.pop("telemetry")
    payload.pop("spec")
    payload["metrics"].pop("records_per_second", None)
    for name in [key for key in payload["metrics"] if key.startswith("latency_")]:
        payload["metrics"].pop(name)
    payload["summary"] = [line for line in payload["summary"] if "requests/sec" not in line]
    return payload


@pytest.fixture(scope="module")
def small_traffic() -> TrafficSpec:
    return TrafficSpec(scenario="balanced_small", seed=3, params={"total_requests": 2500})


@pytest.fixture(scope="module")
def recorded_trace(small_traffic, tmp_path_factory) -> str:
    path = str(tmp_path_factory.mktemp("traces") / "small.trace")
    write_trace(build_dataset(small_traffic), path)
    return path


class TestTrafficSpecValidation:
    def test_trace_source_needs_a_path(self):
        with pytest.raises(SpecError, match="needs traffic.path"):
            TrafficSpec(source="trace")

    def test_log_source_needs_a_log_file(self):
        with pytest.raises(SpecError, match="needs traffic.log_file"):
            TrafficSpec(source="log")

    def test_unknown_source_gets_a_did_you_mean(self):
        with pytest.raises(SpecError, match="did you mean"):
            TrafficSpec(source="trcae", path="x.trace")

    def test_path_with_non_trace_source_is_rejected(self):
        with pytest.raises(SpecError, match="source='trace'"):
            TrafficSpec(source="scenario", path="x.trace")

    def test_path_and_log_file_are_mutually_exclusive(self):
        with pytest.raises(SpecError, match="mutually exclusive"):
            TrafficSpec(path="x.trace", log_file="x.log")

    def test_trace_replay_rejects_scenario_fields(self):
        for kwargs in ({"scenario": "balanced_small"}, {"scale": 0.1}, {"seed": 1}, {"params": {"x": 1}}):
            with pytest.raises(SpecError, match="replays exactly"):
                TrafficSpec(source="trace", path="x.trace", **kwargs)

    def test_cache_applies_to_scenario_traffic_only(self):
        with pytest.raises(SpecError, match="cache"):
            TrafficSpec(source="trace", path="x.trace", cache=True)
        with pytest.raises(SpecError, match="cache"):
            TrafficSpec(log_file="x.log", cache=True)

    def test_source_is_inferred(self):
        assert TrafficSpec().resolved_source() == "scenario"
        assert TrafficSpec(log_file="x.log").resolved_source() == "log"
        assert TrafficSpec(path="x.trace").resolved_source() == "trace"

    def test_trace_spec_round_trips_through_dict(self):
        spec = RunSpec(mode="stream", traffic=TrafficSpec(source="trace", path="x.trace"))
        rebuilt = RunSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.traffic.resolved_source() == "trace"

    def test_cache_flag_round_trips_through_dict(self):
        spec = RunSpec(traffic=TrafficSpec(scale=0.01, cache=True))
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_defend_mode_rejects_trace_traffic(self):
        spec = RunSpec(mode="defend", traffic=TrafficSpec(path="x.trace"))
        with pytest.raises(SpecError, match="closed-loop"):
            execute(spec)


class TestTraceExecution:
    @pytest.mark.parametrize("mode", ["tables", "evaluate", "stream"])
    def test_trace_replay_matches_live_generation(self, mode, small_traffic, recorded_trace):
        live = execute(RunSpec(mode=mode, traffic=small_traffic))
        replayed = execute(
            RunSpec(mode=mode, traffic=TrafficSpec(source="trace", path=recorded_trace))
        )
        assert _normalized(live) == _normalized(replayed)

    def test_trace_replay_keeps_the_source_name(self, recorded_trace):
        result = execute(RunSpec(traffic=TrafficSpec(path=recorded_trace)))
        assert result.source == "balanced_small"

    def test_missing_trace_fails_loudly(self, tmp_path):
        from repro.exceptions import TraceError

        spec = RunSpec(traffic=TrafficSpec(path=str(tmp_path / "missing.trace")))
        with pytest.raises(TraceError, match="cannot read"):
            execute(spec)


class TestCachedExecution:
    def test_cached_runs_are_identical_and_recorded(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache"))
        spec = RunSpec(
            mode="tables",
            traffic=TrafficSpec(
                scenario="balanced_small", seed=5, params={"total_requests": 2000}, cache=True
            ),
        )
        first = execute(spec)
        entries = list((tmp_path / "cache").glob("*.trace"))
        assert len(entries) == 1
        second = execute(spec)
        assert _normalized(first) == _normalized(second)

    def test_cache_serves_across_cache_objects(self, tmp_path, monkeypatch):
        from repro.trace import GenerationCache, traffic_fingerprint

        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache"))
        traffic = TrafficSpec(
            scenario="balanced_small", seed=6, params={"total_requests": 1500}, cache=True
        )
        live = build_dataset(traffic)
        # A brand-new cache object (fresh process simulation) must replay
        # the recording rather than regenerate.
        cache = GenerationCache(str(tmp_path / "cache"))
        fingerprint = traffic_fingerprint(
            scenario="balanced_small", seed=6, params={"total_requests": 1500}
        )
        replayed = cache.get_or_generate(
            fingerprint, lambda: pytest.fail("expected a disk hit")
        )
        assert replayed.records == live.records
        assert replayed.is_labelled == live.is_labelled


class TestStreamIsOutOfCore:
    def test_stream_mode_never_materialises_the_trace(self, recorded_trace, monkeypatch):
        """Trace-backed stream runs must feed from trace_replay, not read_trace."""
        import importlib

        # ``repro.runspec.execute`` the *attribute* is the function; go
        # through importlib to reach the module of the same name.
        execute_module = importlib.import_module("repro.runspec.execute")

        def fail(*_args, **_kwargs):  # pragma: no cover - called means regression
            raise AssertionError("stream mode materialised the whole trace")

        monkeypatch.setattr(execute_module, "read_trace", fail)
        result = execute(
            RunSpec(mode="stream", traffic=TrafficSpec(source="trace", path=recorded_trace))
        )
        assert result.total_requests > 0
        assert result.source == "balanced_small"


class TestFingerprintVersioning:
    def test_fingerprint_changes_with_the_library_version(self, monkeypatch):
        from repro.trace import traffic_fingerprint

        before = traffic_fingerprint(scenario="s", scale=0.1, seed=7)
        monkeypatch.setattr("repro.__version__", "0.0.0-test")
        after = traffic_fingerprint(scenario="s", scale=0.1, seed=7)
        assert before != after
