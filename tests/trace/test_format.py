"""Tests for the byte-level trace format (:mod:`repro.trace.format`)."""

from __future__ import annotations

import pytest

from repro.exceptions import TraceError
from repro.trace.format import (
    DICT_COLUMNS,
    BlockColumns,
    decode_block,
    decode_strings_section,
    decode_trailer,
    encode_block,
    encode_strings_section,
    encode_trailer,
)


def _columns(count: int, *, labelled: bool = False, extras: bool = False) -> BlockColumns:
    return BlockColumns(
        request_ids=[f"r{i}" for i in range(count)],
        timestamps_us=[1_520_000_000_000_000 + i * 997 for i in range(count)],
        tz_offsets_s=[0] * count,
        statuses=[200 + (i % 3) for i in range(count)],
        sizes=[1024 * i for i in range(count)],
        dict_indices={name: [i % 2 for i in range(count)] for name in DICT_COLUMNS},
        labels=[i % 2 for i in range(count)] if labelled else None,
        actor_indices=[0] * count if labelled else None,
        extras=[{"k": i} for i in range(count)] if extras else None,
    )


class TestBlockRoundTrip:
    def test_plain_block_round_trips(self):
        columns = _columns(10)
        decoded = decode_block(encode_block(columns))
        assert decoded.request_ids == columns.request_ids
        assert decoded.timestamps_us == columns.timestamps_us
        assert decoded.tz_offsets_s == columns.tz_offsets_s
        assert decoded.statuses == columns.statuses
        assert decoded.sizes == columns.sizes
        assert decoded.dict_indices == columns.dict_indices
        assert decoded.labels is None
        assert decoded.actor_indices is None
        assert decoded.extras is None

    def test_labelled_block_round_trips(self):
        columns = _columns(7, labelled=True)
        decoded = decode_block(encode_block(columns))
        assert decoded.labels == columns.labels
        assert decoded.actor_indices == columns.actor_indices

    def test_extras_round_trip(self):
        columns = _columns(4, extras=True)
        decoded = decode_block(encode_block(columns))
        assert decoded.extras == [{"k": 0}, {"k": 1}, {"k": 2}, {"k": 3}]

    def test_single_record_block(self):
        decoded = decode_block(encode_block(_columns(1)))
        assert len(decoded) == 1

    def test_negative_and_huge_timestamps_survive(self):
        columns = _columns(3)
        columns.timestamps_us = [-62_000_000_000_000_000, 0, 4_102_444_800_000_000]
        decoded = decode_block(encode_block(columns))
        assert decoded.timestamps_us == columns.timestamps_us

    def test_non_utc_offsets_survive(self):
        columns = _columns(3)
        columns.tz_offsets_s = [3600, -18_000, 0]
        decoded = decode_block(encode_block(columns))
        assert decoded.tz_offsets_s == columns.tz_offsets_s

    def test_empty_block_is_rejected(self):
        with pytest.raises(TraceError, match="empty block"):
            encode_block(BlockColumns())

    def test_corrupt_block_raises(self):
        with pytest.raises(TraceError, match="corrupt"):
            decode_block(b"definitely not zlib data")

    def test_truncated_block_raises(self):
        body = encode_block(_columns(5))
        import zlib

        truncated = zlib.compress(zlib.decompress(body)[:-40])
        with pytest.raises(TraceError):
            decode_block(truncated)


class TestSections:
    def test_trailer_round_trips(self):
        assert decode_trailer(encode_trailer(123, 456_789)) == (123, 456_789)

    def test_bad_trailer_magic_raises(self):
        buf = bytearray(encode_trailer(1, 2))
        buf[-1] ^= 0xFF
        with pytest.raises(TraceError, match="magic"):
            decode_trailer(bytes(buf))

    def test_strings_section_round_trips(self):
        tables = {name: [f"{name}-{i}" for i in range(3)] for name in DICT_COLUMNS}
        actors = ["human", "aggressive_scraper"]
        decoded_tables, decoded_actors = decode_strings_section(
            encode_strings_section(tables, actors)
        )
        assert decoded_tables == tables
        assert decoded_actors == actors

    def test_strings_section_missing_column_raises(self):
        tables = {name: [] for name in DICT_COLUMNS if name != "path"}
        with pytest.raises(TraceError, match="missing columns"):
            decode_strings_section(encode_strings_section(tables, []))
