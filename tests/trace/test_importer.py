"""Tests for the Apache CLF importer (:mod:`repro.trace.importer`)."""

from __future__ import annotations

import gzip

import pytest

from repro.exceptions import LogParseError, TraceError
from repro.logs.writer import LogWriter, format_record
from repro.trace import expand_rotated, import_clf, read_trace
from tests.helpers import make_record, make_records


def _write_log(path, records):
    LogWriter().write_file(records, str(path))


def _write_gz(path, records):
    with gzip.open(str(path), "wt", encoding="utf-8") as handle:
        for record in records:
            handle.write(format_record(record) + "\n")


class TestImport:
    def test_plain_file_imports_exactly(self, tmp_path):
        records = make_records(30, gap_seconds=3.0)
        log = tmp_path / "access.log"
        _write_log(log, records)
        out = str(tmp_path / "t.trace")
        report = import_clf([str(log)], out)
        assert report.parsed == 30 and report.skipped == 0
        replayed = read_trace(out)
        assert len(replayed) == 30
        assert [r.client_ip for r in replayed] == [r.client_ip for r in records]
        assert replayed.is_time_ordered
        assert not replayed.is_labelled

    def test_gzipped_file_imports(self, tmp_path):
        records = make_records(10)
        log = tmp_path / "access.log.gz"
        _write_gz(log, records)
        out = str(tmp_path / "t.trace")
        report = import_clf([str(log)], out)
        assert report.parsed == 10
        assert report.trace is not None and report.trace.records == 10

    def test_malformed_lines_are_counted_and_skipped(self, tmp_path):
        log = tmp_path / "access.log"
        _write_log(log, make_records(3))
        with open(log, "a", encoding="utf-8") as handle:
            handle.write("not a log line\n\n")
            handle.write(format_record(make_record("r3", seconds=30)) + "\n")
        report = import_clf([str(log)], str(tmp_path / "t.trace"))
        assert report.parsed == 4
        assert report.skipped == 1
        assert report.total_lines == 5

    def test_strict_mode_raises_on_malformed_lines(self, tmp_path):
        log = tmp_path / "access.log"
        log.write_text("garbage\n")
        with pytest.raises(LogParseError):
            import_clf([str(log)], str(tmp_path / "t.trace"), skip_malformed=False)

    def test_request_ids_continue_across_files(self, tmp_path):
        first = tmp_path / "a.log"
        second = tmp_path / "b.log"
        _write_log(first, make_records(3))
        _write_log(second, [make_record("x", seconds=100 + i) for i in range(2)])
        out = str(tmp_path / "t.trace")
        import_clf([str(first), str(second)], out)
        assert [r.request_id for r in read_trace(out)] == ["r0", "r1", "r2", "r3", "r4"]

    def test_no_inputs_is_rejected(self, tmp_path):
        with pytest.raises(TraceError, match="no input"):
            import_clf([], str(tmp_path / "t.trace"))


class TestRotation:
    def _rotation_set(self, tmp_path):
        # Oldest traffic in access.log.2.gz, newest in the live file.
        _write_gz(tmp_path / "access.log.2.gz", make_records(3, gap_seconds=1.0))
        _write_log(
            tmp_path / "access.log.1",
            [make_record(f"m{i}", seconds=100 + i) for i in range(3)],
        )
        _write_log(
            tmp_path / "access.log",
            [make_record(f"n{i}", seconds=200 + i) for i in range(3)],
        )
        return str(tmp_path / "access.log")

    def test_expand_rotated_orders_oldest_first(self, tmp_path):
        base = self._rotation_set(tmp_path)
        names = [path.rsplit("/", 1)[-1] for path in expand_rotated(base)]
        assert names == ["access.log.2.gz", "access.log.1", "access.log"]

    def test_rotated_import_is_chronological(self, tmp_path):
        base = self._rotation_set(tmp_path)
        out = str(tmp_path / "t.trace")
        report = import_clf([base], out, rotated=True)
        assert report.parsed == 9
        assert len(report.files) == 3
        replayed = read_trace(out)
        assert replayed.is_time_ordered
        timestamps = [r.timestamp for r in replayed]
        assert timestamps == sorted(timestamps)

    def test_expand_rotated_without_any_files_raises(self, tmp_path):
        with pytest.raises(TraceError, match="no log files"):
            expand_rotated(str(tmp_path / "missing.log"))

    def test_unrelated_siblings_are_ignored(self, tmp_path):
        base = self._rotation_set(tmp_path)
        (tmp_path / "access.log.bak").write_text("junk\n")
        (tmp_path / "other.log.1").write_text("junk\n")
        assert len(expand_rotated(base)) == 3
