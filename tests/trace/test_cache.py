"""Tests for the content-addressed generation cache (:mod:`repro.trace.cache`)."""

from __future__ import annotations

import pytest

from repro.exceptions import TraceError
from repro.logs.dataset import Dataset
from repro.trace import GenerationCache, default_cache, traffic_fingerprint
from repro.trace.cache import CACHE_DIR_ENV
from tests.helpers import make_records


class TestFingerprint:
    def test_same_inputs_same_fingerprint(self):
        a = traffic_fingerprint(scenario="s", scale=0.1, seed=7, params={"x": 1, "y": 2})
        b = traffic_fingerprint(scenario="s", scale=0.1, seed=7, params={"y": 2, "x": 1})
        assert a == b

    def test_any_input_changes_the_fingerprint(self):
        base = traffic_fingerprint(scenario="s", scale=0.1, seed=7)
        assert traffic_fingerprint(scenario="t", scale=0.1, seed=7) != base
        assert traffic_fingerprint(scenario="s", scale=0.2, seed=7) != base
        assert traffic_fingerprint(scenario="s", scale=0.1, seed=8) != base
        assert traffic_fingerprint(scenario="s", scale=0.1, seed=7, params={"k": 1}) != base

    def test_unserializable_params_are_rejected(self):
        with pytest.raises(TraceError, match="JSON-serializable"):
            traffic_fingerprint(scenario="s", params={"bad": object()})


class TestGenerationCache:
    def _dataset(self, count: int = 8) -> Dataset:
        return Dataset(make_records(count))

    def test_get_or_generate_builds_once(self, tmp_path):
        cache = GenerationCache(str(tmp_path / "cache"))
        calls = []

        def builder():
            calls.append(1)
            return self._dataset()

        fp = traffic_fingerprint(scenario="s", seed=1)
        first = cache.get_or_generate(fp, builder)
        second = cache.get_or_generate(fp, builder)
        assert len(calls) == 1
        assert first.records == second.records
        assert cache.memory_hits == 1 and cache.misses == 1

    def test_disk_hit_after_memory_is_cleared(self, tmp_path):
        cache = GenerationCache(str(tmp_path / "cache"))
        fp = traffic_fingerprint(scenario="s", seed=2)
        original = cache.get_or_generate(fp, self._dataset)
        cache.clear_memory()
        replayed = cache.get_or_generate(fp, lambda: pytest.fail("should hit disk"))
        assert replayed.records == original.records
        assert cache.disk_hits == 1

    def test_distinct_fingerprints_get_distinct_entries(self, tmp_path):
        cache = GenerationCache(str(tmp_path / "cache"))
        cache.get_or_generate(traffic_fingerprint(scenario="a"), self._dataset)
        cache.get_or_generate(traffic_fingerprint(scenario="b"), lambda: self._dataset(3))
        assert len(cache.entries()) == 2

    def test_corrupt_entry_is_regenerated(self, tmp_path):
        cache = GenerationCache(str(tmp_path / "cache"))
        fp = traffic_fingerprint(scenario="s", seed=3)
        cache.get_or_generate(fp, self._dataset)
        cache.clear_memory()
        with open(cache.path_for(fp), "wb") as handle:
            handle.write(b"garbage" * 10)
        rebuilt = cache.get_or_generate(fp, lambda: self._dataset(5))
        assert len(rebuilt) == 5
        assert cache.misses == 2

    def test_memory_lru_is_bounded(self, tmp_path):
        cache = GenerationCache(str(tmp_path / "cache"), memory_slots=2)
        for name in ("a", "b", "c"):
            cache.get_or_generate(traffic_fingerprint(scenario=name), self._dataset)
        assert len(cache._memory) == 2
        # Oldest entry fell out of memory but is still on disk.
        cache.get_or_generate(traffic_fingerprint(scenario="a"), lambda: pytest.fail("disk!"))
        assert cache.disk_hits == 1

    def test_clear_removes_disk_entries(self, tmp_path):
        cache = GenerationCache(str(tmp_path / "cache"))
        cache.get_or_generate(traffic_fingerprint(scenario="s"), self._dataset)
        assert cache.clear() == 1
        assert cache.entries() == []

    def test_entries_report_trace_infos(self, tmp_path):
        cache = GenerationCache(str(tmp_path / "cache"))
        cache.get_or_generate(traffic_fingerprint(scenario="s"), lambda: self._dataset(6))
        (entry,) = cache.entries()
        assert entry.records == 6


class TestDefaultCache:
    def test_default_cache_follows_the_env_var(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache-a"))
        first = default_cache()
        assert first.root == str(tmp_path / "cache-a")
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache-b"))
        second = default_cache()
        assert second.root == str(tmp_path / "cache-b")
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache-a"))
        assert default_cache() is first
