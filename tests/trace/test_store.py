"""Tests for the trace store (:mod:`repro.trace.store`)."""

from __future__ import annotations

from datetime import timedelta, timezone

import pytest

from repro.exceptions import TraceError
from repro.logs.dataset import BENIGN, MALICIOUS, Dataset, DatasetMetadata, GroundTruth
from repro.trace import TraceReader, TraceWriter, read_trace, trace_info, write_trace
from tests.helpers import BASE_TIME, make_record, make_records


def _labelled_dataset(count: int = 20) -> Dataset:
    records = make_records(count, gap_seconds=60.0)
    truth = GroundTruth()
    for index, record in enumerate(records):
        label = MALICIOUS if index % 3 == 0 else BENIGN
        actor = "aggressive_scraper" if label == MALICIOUS else "human"
        truth.set(record.request_id, label, actor)
    metadata = DatasetMetadata(name="unit", scenario="unit_scenario", scale=0.5, seed=11)
    return Dataset(records, ground_truth=truth, metadata=metadata, time_ordered=True)


class TestRoundTrip:
    def test_records_round_trip_exactly(self, tmp_path):
        dataset = _labelled_dataset()
        path = str(tmp_path / "t.trace")
        write_trace(dataset, path)
        replayed = read_trace(path)
        assert replayed.records == dataset.records

    def test_labels_and_actor_classes_round_trip(self, tmp_path):
        dataset = _labelled_dataset()
        path = str(tmp_path / "t.trace")
        write_trace(dataset, path)
        replayed = read_trace(path)
        assert replayed.is_labelled
        truth, original = replayed.ground_truth, dataset.ground_truth
        for record in dataset:
            assert truth.label_of(record.request_id) == original.label_of(record.request_id)
            assert truth.actor_class_of(record.request_id) == original.actor_class_of(
                record.request_id
            )

    def test_metadata_round_trips(self, tmp_path):
        dataset = _labelled_dataset()
        path = str(tmp_path / "t.trace")
        write_trace(dataset, path)
        metadata = read_trace(path).metadata
        assert metadata.name == "unit"
        assert metadata.scenario == "unit_scenario"
        assert metadata.scale == 0.5
        assert metadata.seed == 11

    def test_unlabelled_dataset_round_trips(self, tmp_path):
        dataset = Dataset(make_records(5))
        path = str(tmp_path / "t.trace")
        info = write_trace(dataset, path)
        assert not info.labelled
        replayed = read_trace(path)
        assert replayed.records == dataset.records
        assert replayed.ground_truth is None

    def test_non_utc_timestamps_round_trip(self, tmp_path):
        tz = timezone(timedelta(hours=5, minutes=30))
        records = [
            make_record("r0"),
            make_record("r1", seconds=60).with_status(301),
        ]
        shifted = [r for r in records]
        object.__setattr__(shifted[1], "timestamp", records[1].timestamp.astimezone(tz))
        path = str(tmp_path / "t.trace")
        write_trace(Dataset(shifted), path)
        replayed = read_trace(path).records
        assert replayed == shifted
        assert replayed[1].timestamp.utcoffset() == timedelta(hours=5, minutes=30)

    def test_empty_dataset_round_trips(self, tmp_path):
        path = str(tmp_path / "t.trace")
        info = write_trace(Dataset([]), path)
        assert info.records == 0
        assert info.time_range is None
        assert read_trace(path).records == []

    def test_extra_mapping_round_trips_as_json(self, tmp_path):
        record = make_record("r0")
        object.__setattr__(record, "extra", {"upstream": "cdn-3", "retries": 2})
        path = str(tmp_path / "t.trace")
        write_trace(Dataset([record, make_record("r1", seconds=1)]), path)
        replayed = read_trace(path).records
        assert replayed[0].extra == {"upstream": "cdn-3", "retries": 2}
        assert replayed[1].extra == {}


class TestBlocks:
    def test_multi_block_iteration_preserves_order(self, tmp_path):
        dataset = _labelled_dataset(25)
        path = str(tmp_path / "t.trace")
        info = write_trace(dataset, path, block_size=4)
        assert info.block_count == 7
        reader = TraceReader(path)
        assert list(reader.iter_records()) == dataset.records

    def test_time_window_pruning(self, tmp_path):
        dataset = _labelled_dataset(30)  # one record per minute
        path = str(tmp_path / "t.trace")
        write_trace(dataset, path, block_size=5)
        reader = TraceReader(path)
        start = BASE_TIME + timedelta(minutes=10)
        end = BASE_TIME + timedelta(minutes=20)
        window = list(reader.iter_records(start=start, end=end))
        assert [r.request_id for r in window] == [f"r{i}" for i in range(10, 20)]

    def test_iter_labelled_pairs_records_with_labels(self, tmp_path):
        dataset = _labelled_dataset(9)
        path = str(tmp_path / "t.trace")
        write_trace(dataset, path, block_size=4)
        truth = dataset.ground_truth
        for record, label, actor in TraceReader(path).iter_labelled():
            assert label == truth.label_of(record.request_id)
            assert actor == truth.actor_class_of(record.request_id)


class TestInfo:
    def test_info_matches_content(self, tmp_path):
        dataset = _labelled_dataset(12)
        path = str(tmp_path / "t.trace")
        write_trace(dataset, path, block_size=5)
        info = trace_info(path)
        assert info.records == 12
        assert info.labelled
        assert info.time_ordered
        assert info.block_count == 3
        first, last = info.time_range
        assert first == dataset.records[0].timestamp
        assert last == dataset.records[-1].timestamp
        assert info.dataset["name"] == "unit"

    def test_info_to_dict_is_json_ready(self, tmp_path):
        import json

        path = str(tmp_path / "t.trace")
        write_trace(_labelled_dataset(3), path)
        payload = json.loads(json.dumps(trace_info(path).to_dict()))
        assert payload["records"] == 3
        assert payload["labelled"] is True

    def test_render_mentions_key_facts(self, tmp_path):
        path = str(tmp_path / "t.trace")
        write_trace(_labelled_dataset(3), path)
        text = trace_info(path).render()
        assert "records" in text and "labelled" in text and "unit" in text

    def test_unordered_writes_are_flagged(self, tmp_path):
        records = [make_record("r0", seconds=100), make_record("r1", seconds=0)]
        path = str(tmp_path / "t.trace")
        info = write_trace(Dataset(records), path)
        assert not info.time_ordered
        assert read_trace(path).records == records


class TestWriterContract:
    def test_mixed_labelled_unlabelled_writes_are_rejected(self, tmp_path):
        with pytest.raises(TraceError, match="all-or-nothing"):
            with TraceWriter(str(tmp_path / "t.trace")) as writer:
                writer.write(make_record("r0"), label=BENIGN)
                writer.write(make_record("r1", seconds=1))

    def test_unknown_label_is_rejected(self, tmp_path):
        with pytest.raises(TraceError, match="unknown label"):
            with TraceWriter(str(tmp_path / "t.trace")) as writer:
                writer.write(make_record("r0"), label="suspicious")

    def test_write_after_close_is_rejected(self, tmp_path):
        writer = TraceWriter(str(tmp_path / "t.trace"))
        writer.close()
        with pytest.raises(TraceError, match="closed"):
            writer.write(make_record("r0"))

    def test_failed_write_leaves_no_valid_trace(self, tmp_path):
        path = tmp_path / "t.trace"
        with pytest.raises(RuntimeError):
            with TraceWriter(str(path)) as writer:
                writer.write(make_record("r0"))
                raise RuntimeError("boom")
        with pytest.raises(TraceError):
            trace_info(str(path))


class TestReaderErrors:
    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(TraceError, match="cannot read"):
            TraceReader(str(tmp_path / "nope.trace"))

    def test_non_trace_file_raises(self, tmp_path):
        path = tmp_path / "not.trace"
        path.write_bytes(b"x" * 200)
        with pytest.raises(TraceError, match="magic"):
            TraceReader(str(path))

    def test_tiny_file_raises(self, tmp_path):
        path = tmp_path / "tiny.trace"
        path.write_bytes(b"RT")
        with pytest.raises(TraceError, match="too small"):
            TraceReader(str(path))

    def test_truncated_trace_raises(self, tmp_path):
        path = tmp_path / "t.trace"
        write_trace(_labelled_dataset(5), str(path))
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(TraceError):
            TraceReader(str(path))

    def test_replayed_dataset_is_marked_time_ordered(self, tmp_path):
        path = str(tmp_path / "t.trace")
        write_trace(_labelled_dataset(5), path)
        assert read_trace(path).is_time_ordered
