"""Property tests: lint findings survive their JSON journey."""

from __future__ import annotations

import json

from hypothesis import given
from hypothesis import strategies as st

from repro.lint import Finding, severity_rank
from repro.lint.findings import SEVERITIES

_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), min_size=1, max_size=60
)

findings = st.builds(
    Finding,
    rule=st.sampled_from([f"REP00{n}" for n in range(1, 9)]),
    severity=st.sampled_from(SEVERITIES),
    path=_text,
    line=st.integers(min_value=1, max_value=10_000),
    col=st.integers(min_value=1, max_value=500),
    message=_text,
    suggestion=st.none() | _text,
)


@given(findings)
def test_finding_json_round_trip(finding):
    payload = json.loads(json.dumps(finding.to_dict()))
    assert Finding.from_dict(payload) == finding


@given(findings)
def test_fingerprint_ignores_location_but_not_content(finding):
    moved = Finding(
        rule=finding.rule,
        severity=finding.severity,
        path=finding.path,
        line=finding.line + 7,
        col=1,
        message=finding.message,
        suggestion=None,
    )
    assert moved.fingerprint() == finding.fingerprint()


@given(findings)
def test_render_carries_location_and_severity(finding):
    text = finding.render()
    assert f"{finding.path}:{finding.line}:{finding.col}" in text
    assert finding.rule in text
    assert f"[{finding.severity}]" in text
    assert severity_rank(finding.severity) in range(len(SEVERITIES))


@given(st.lists(findings, max_size=20))
def test_sorting_is_stable_and_deterministic(items):
    once = sorted(items, key=Finding.sort_key)
    twice = sorted(once, key=Finding.sort_key)
    assert once == twice
    assert sorted(items, key=Finding.sort_key) == once
