"""Property-based tests: RunSpec serialization is a lossless bijection.

For any spec the strategies can build, ``from_dict(to_dict(spec))`` is
the identity -- including a full trip through JSON text, which is what a
config file on disk sees.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runspec import (
    ADJUDICATION_MODES,
    BACKENDS,
    CAMPAIGNS,
    RUN_MODES,
    AdjudicationSpec,
    DetectorSpec,
    ExecutionSpec,
    PolicySpec,
    RunSpec,
    TrafficSpec,
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
_param_values = st.one_of(
    st.integers(-1000, 1000),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.booleans(),
    st.text(max_size=12),
)
_params = st.dictionaries(st.text(min_size=1, max_size=12), _param_values, max_size=3)

_traffic_specs = st.builds(
    TrafficSpec,
    scenario=st.one_of(
        st.none(),
        st.sampled_from(["amadeus_march_2018", "balanced_small", "stealth_heavy"]),
    ),
    scale=st.one_of(st.none(), st.floats(min_value=0.001, max_value=1.0, allow_nan=False)),
    seed=st.one_of(st.none(), st.integers(0, 2**31)),
    params=_params,
    log_file=st.one_of(st.none(), st.text(min_size=1, max_size=20)),
    campaign=st.sampled_from(CAMPAIGNS),
    total_requests=st.one_of(st.none(), st.integers(1, 10**6)),
    identities_per_node=st.integers(1, 64),
)

_detector_specs = st.builds(
    DetectorSpec,
    name=st.text(min_size=1, max_size=16),
    params=_params,
)

_adjudication_specs = st.builds(
    AdjudicationSpec,
    mode=st.sampled_from(ADJUDICATION_MODES),
    k=st.integers(1, 8),
    window_seconds=st.floats(min_value=1.0, max_value=86400.0, allow_nan=False),
)

_execution_specs = st.builds(
    ExecutionSpec,
    shards=st.integers(1, 16),
    backend=st.sampled_from(BACKENDS),
    max_skew_seconds=st.floats(min_value=0.0, max_value=3600.0, allow_nan=False),
    track_latency=st.booleans(),
    progress_every=st.integers(0, 10**6),
    compare_configurations=st.booleans(),
)

_policy_specs = st.builds(
    PolicySpec,
    name=st.text(min_size=1, max_size=16),
    params=_params,
)

_run_specs = st.builds(
    RunSpec,
    mode=st.sampled_from(RUN_MODES),
    traffic=_traffic_specs,
    detectors=st.lists(_detector_specs, max_size=4).map(tuple),
    adjudication=st.one_of(st.none(), _adjudication_specs),
    execution=_execution_specs,
    policy=st.one_of(st.none(), _policy_specs),
    label=st.text(max_size=20),
)


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------
@settings(max_examples=150, deadline=None)
@given(_run_specs)
def test_from_dict_to_dict_is_identity(spec):
    assert RunSpec.from_dict(spec.to_dict()) == spec


@settings(max_examples=150, deadline=None)
@given(_run_specs)
def test_json_text_round_trip_is_identity(spec):
    assert RunSpec.from_json(json.dumps(spec.to_dict())) == spec


@settings(max_examples=50, deadline=None)
@given(_run_specs)
def test_to_dict_is_pure(spec):
    """Serializing twice gives equal dictionaries (no hidden state)."""
    assert spec.to_dict() == spec.to_dict()


@settings(max_examples=50, deadline=None)
@given(_traffic_specs)
def test_traffic_sub_spec_round_trips(traffic):
    assert TrafficSpec.from_dict(traffic.to_dict()) == traffic
