"""Property tests: columnar alerts mirror the dict path on any pattern.

:class:`~repro.columns.alertframe.DetectorAlerts` must be a lossless
re-encoding of an :class:`~repro.core.alerts.AlertSet` -- same ids, same
scores, same reason tuples -- for *every* alert pattern a detector could
emit: no alerts, every row alerted, shared reason tuples, zero scores.
The shard scatter/merge must likewise be invariant under any partition
of the rows, which is what makes the multi-process frame pipeline a pure
representation change.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columns import RecordFrame
from repro.columns.alertframe import DetectorAlerts, ReasonEncoder
from repro.core.alerts import AlertSet
from tests.helpers import make_records

#: A handful of distinct reason tuples, deliberately including the empty
#: tuple and tuples that several rows will share (the dictionary-encoded
#: case the columnar representation exists for).
REASON_POOL = [
    (),
    ("rate limit exceeded",),
    ("scripted agent", "no asset requests"),
    ("coverage breadth",),
]

_FRAMES: dict[int, RecordFrame] = {}


def _frame(n: int) -> RecordFrame:
    """A cached n-row frame (hypothesis re-runs patterns, not frames)."""
    frame = _FRAMES.get(n)
    if frame is None:
        frame = _FRAMES[n] = RecordFrame.from_records(make_records(n))
    return frame


@st.composite
def alert_patterns(draw):
    """``(n, {row: (score, reasons)})`` over an n-row frame."""
    n = draw(st.integers(min_value=0, max_value=24))
    rows = draw(
        st.lists(st.integers(min_value=0, max_value=n - 1), unique=True, max_size=n)
        if n
        else st.just([])
    )
    scored = {}
    for row in rows:
        score = draw(st.floats(min_value=0.0, max_value=16.0, allow_nan=False))
        reasons = draw(st.sampled_from(REASON_POOL))
        scored[row] = (score, reasons)
    return n, scored


def _decoded(alerts: DetectorAlerts) -> dict[int, tuple[float, tuple[str, ...]]]:
    """The code-independent content of alert columns."""
    return {
        int(row): (float(alerts.scores[row]), alerts.reasons_of(int(row)))
        for row in np.flatnonzero(alerts.flags)
    }


def _alert_set(frame: RecordFrame, scored) -> AlertSet:
    ids = frame.request_ids
    return AlertSet.from_scored(
        "prop-detector", {ids[row]: payload for row, payload in scored.items()}
    )


@settings(max_examples=60, deadline=None)
@given(alert_patterns())
def test_alert_set_round_trips_through_columns(pattern):
    n, scored = pattern
    frame = _frame(n)
    alert_set = _alert_set(frame, scored)
    columns = DetectorAlerts.from_alert_set(frame, alert_set)
    assert _decoded(columns) == scored
    back = columns.to_alert_set(frame.request_ids)
    assert {a.request_id: (a.score, a.reasons) for a in back.alerts()} == {
        a.request_id: (a.score, a.reasons) for a in alert_set.alerts()
    }
    # The reason table is dictionary-encoded: one entry per distinct tuple.
    assert len(columns.reason_table) == len(set(columns.reason_table))


@settings(max_examples=60, deadline=None)
@given(alert_patterns(), st.integers(min_value=1, max_value=4), st.randoms())
def test_scatter_merge_is_partition_invariant(pattern, shards, rng):
    n, scored = pattern
    frame = _frame(n)
    alert_set = _alert_set(frame, scored)
    direct = DetectorAlerts.from_alert_set(frame, alert_set)

    assignment = np.array([rng.randrange(shards) for _ in range(n)], dtype=np.int64)
    merged = DetectorAlerts.empty("prop-detector", n)
    encoder = ReasonEncoder()
    for shard in range(shards):
        rows = np.flatnonzero(assignment == shard)
        sub = frame.take(rows)
        shard_ids = set(sub.request_ids)
        shard_alerts = DetectorAlerts.from_alert_set(
            sub, alert_set.restrict_to(shard_ids)
        )
        merged.scatter(rows, shard_alerts, encoder)

    assert _decoded(merged) == _decoded(direct)
    assert (merged.flags == direct.flags).all()
    # Equal reason tuples keep one code regardless of originating shard.
    assert len(merged.reason_table) == len(set(merged.reason_table))
