"""Drift guard: the feature schema has exactly one definition.

``SessionFeatures.vector()`` order, :data:`FEATURE_NAMES` and the
:class:`~repro.columns.FeatureMatrix` column order must always agree --
the single source of truth is :mod:`repro.columns.features`, and this
suite makes any divergence (a reordered field, a renamed column, a
matrix built in a different order) fail loudly.
"""

from __future__ import annotations

import dataclasses

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columns import FEATURE_NAMES, FeatureMatrix, SessionFeatures
from repro.columns.features import SessionArrays
from repro.detectors import features as detector_features
from tests.helpers import BROWSER_UA, SCRIPTED_UA, make_records, make_session


def test_feature_names_match_dataclass_fields_in_order():
    field_names = [field.name for field in dataclasses.fields(SessionFeatures)]
    assert field_names[0] == "session_id"
    assert tuple(field_names[1:]) == FEATURE_NAMES


def test_detectors_features_reexports_the_same_objects():
    # The legacy import site must alias, not copy, the schema.
    assert detector_features.FEATURE_NAMES is FEATURE_NAMES
    assert detector_features.SessionFeatures is SessionFeatures
    assert detector_features.FeatureMatrix is FeatureMatrix


@st.composite
def feature_records(draw):
    """A syntactically valid SessionFeatures with arbitrary values."""
    finite = st.floats(
        min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
    )
    return SessionFeatures(
        session_id=draw(st.text(min_size=1, max_size=8)),
        request_count=draw(st.integers(min_value=0, max_value=10_000)),
        requests_per_minute=draw(finite),
        mean_interarrival=draw(finite),
        interarrival_cv=draw(finite),
        error_rate=draw(finite),
        no_content_fraction=draw(finite),
        not_modified_fraction=draw(finite),
        asset_fraction=draw(finite),
        referrer_fraction=draw(finite),
        unique_path_ratio=draw(finite),
        head_fraction=draw(finite),
        robots_hits=draw(st.integers(min_value=0, max_value=1_000)),
        night_fraction=draw(finite),
        scripted_agent=draw(st.booleans()),
        headless_agent=draw(st.booleans()),
        crawler_claim=draw(st.booleans()),
    )


@settings(max_examples=100, deadline=None)
@given(features=feature_records())
def test_vector_positions_match_feature_names(features):
    vector = features.vector()
    assert vector.shape == (len(FEATURE_NAMES),)
    for position, name in enumerate(FEATURE_NAMES):
        assert vector[position] == float(getattr(features, name))
    assert features.as_dict() == dict(zip(FEATURE_NAMES, vector.tolist()))


@settings(max_examples=30, deadline=None)
@given(
    count=st.integers(min_value=1, max_value=12),
    gap=st.floats(min_value=0.05, max_value=90.0, allow_nan=False),
    scripted=st.booleans(),
)
def test_matrix_row_round_trips_through_session_features(count, gap, scripted):
    # FeatureMatrix.row(i).vector() must reproduce the matrix row exactly:
    # the record object is a view of the matrix, never a recomputation.
    session = make_session(
        make_records(count, gap_seconds=gap, user_agent=SCRIPTED_UA if scripted else BROWSER_UA)
    )
    arrays = SessionArrays.from_session_records(
        session.records, user_agent=session.user_agent, session_id=session.session_id
    )
    matrix = FeatureMatrix.from_arrays(arrays)
    assert matrix.shape == (1, len(FEATURE_NAMES))
    row = matrix.row(0)
    assert row.session_id == session.session_id
    assert np.array_equal(row.vector(), matrix.values[0])
    # And the per-session extractor agrees bit for bit.
    assert np.array_equal(detector_features.extract_features(session).vector(), matrix.values[0])


def test_matrix_column_lookup_follows_feature_names():
    sessions = [make_session(make_records(4)), make_session(make_records(7, ip="10.9.9.9"))]
    matrix = np.vstack([detector_features.extract_features(s).vector() for s in sessions])
    arrays = [
        SessionArrays.from_session_records(s.records, user_agent=s.user_agent, session_id=s.session_id)
        for s in sessions
    ]
    built = [FeatureMatrix.from_arrays(a) for a in arrays]
    for j, name in enumerate(FEATURE_NAMES):
        for i, one in enumerate(built):
            assert one.column(name)[0] == matrix[i, j]
