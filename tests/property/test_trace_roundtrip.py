"""Property-based round-trip tests for the persistence layers.

Two encoders must be lossless for the replay guarantees to hold:

* the trace store -- ``write -> read`` of arbitrary ``LogRecord``
  streams (exotic timezones, microsecond timestamps, unicode paths,
  labels) must reproduce every field exactly, including through the
  reader's fast slot-filling construction path; and
* the CLF writer/parser pair -- ``parse(format(record))`` and the
  idempotence of ``format(parse(line))`` over CLF-representable records.
"""

from __future__ import annotations

from datetime import datetime, timedelta, timezone

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logs.dataset import BENIGN, MALICIOUS, Dataset, GroundTruth
from repro.logs.parser import parse_line
from repro.logs.record import LogRecord, RequestMethod
from repro.logs.writer import format_record
from repro.trace import TraceReader, read_trace, write_trace

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
_timezones = st.one_of(
    st.just(timezone.utc),
    st.integers(-14 * 60, 14 * 60).map(lambda minutes: timezone(timedelta(minutes=minutes))),
)

_timestamps = st.builds(
    lambda seconds, us, tz: datetime(2000, 1, 1, tzinfo=timezone.utc).astimezone(tz)
    + timedelta(seconds=seconds, microseconds=us),
    st.integers(0, 40 * 365 * 86_400),
    st.integers(0, 999_999),
    _timezones,
)

# Field values are free-form text for the trace round trip (the columnar
# store must preserve anything a parsed or generated record can hold).
_text = st.text(min_size=0, max_size=40)
_token = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Zs", "Cc")), min_size=1, max_size=30
)


@st.composite
def trace_records(draw, index: int = 0):
    return LogRecord(
        request_id=f"r{index}",
        timestamp=draw(_timestamps),
        client_ip=draw(_token),
        method=draw(st.sampled_from(list(RequestMethod))),
        path=draw(_token),
        protocol=draw(st.sampled_from(["HTTP/1.0", "HTTP/1.1", "HTTP/2.0"])),
        status=draw(st.integers(100, 599)),
        response_size=draw(st.integers(0, 2**48)),
        referrer=draw(_text),
        user_agent=draw(_text),
        ident=draw(st.sampled_from(["-", "ident0"])),
        auth_user=draw(st.sampled_from(["-", "alice", "bob"])),
        extra=draw(
            st.one_of(
                st.just({}),
                st.dictionaries(st.sampled_from(["a", "b"]), st.integers(0, 9), max_size=2),
            )
        ),
    )


@st.composite
def record_lists(draw):
    count = draw(st.integers(1, 25))
    return [draw(trace_records(index=i)) for i in range(count)]


# ----------------------------------------------------------------------
# Trace encode -> decode
# ----------------------------------------------------------------------
@given(record_lists(), st.integers(1, 7))
@settings(max_examples=60, deadline=None)
def test_trace_roundtrip_is_exact(tmp_path_factory, records, block_size):
    path = str(tmp_path_factory.mktemp("prop") / "t.trace")
    write_trace(Dataset(records), path, block_size=block_size)
    replayed = read_trace(path).records
    assert replayed == records
    for before, after in zip(records, replayed):
        # Dataclass equality treats equal-instant datetimes in different
        # timezones as equal; the offset itself must survive too.
        assert after.timestamp.utcoffset() == before.timestamp.utcoffset()
        assert after.extra == before.extra


@given(record_lists(), st.integers(1, 7))
@settings(max_examples=30, deadline=None)
def test_trace_block_iteration_equals_bulk_read(tmp_path_factory, records, block_size):
    path = str(tmp_path_factory.mktemp("prop") / "t.trace")
    write_trace(Dataset(records), path, block_size=block_size)
    reader = TraceReader(path)
    assert list(reader.iter_records()) == read_trace(path).records
    assert reader.info.records == len(records)


@given(record_lists())
@settings(max_examples=30, deadline=None)
def test_trace_labels_roundtrip(tmp_path_factory, records):
    truth = GroundTruth()
    for index, record in enumerate(records):
        label = MALICIOUS if index % 2 else BENIGN
        truth.set(record.request_id, label, f"actor_{index % 3}")
    path = str(tmp_path_factory.mktemp("prop") / "t.trace")
    write_trace(Dataset(records, ground_truth=truth), path, block_size=4)
    replayed = read_trace(path)
    assert replayed.is_labelled
    for record in records:
        assert replayed.ground_truth.label_of(record.request_id) == truth.label_of(
            record.request_id
        )
        assert replayed.ground_truth.actor_class_of(record.request_id) == truth.actor_class_of(
            record.request_id
        )


# ----------------------------------------------------------------------
# CLF parse -> write -> parse
# ----------------------------------------------------------------------
# CLF-representable values: no whitespace/quotes in tokens, second
# timestamp precision, whole-minute offsets (Apache's %z is +-HHMM).
_clf_timestamps = st.builds(
    lambda seconds, minutes: datetime(2018, 3, 11, tzinfo=timezone.utc).astimezone(
        timezone(timedelta(minutes=minutes))
    )
    + timedelta(seconds=seconds),
    st.integers(0, 8 * 86_400),
    st.integers(-14 * 60, 14 * 60),
)
_clf_token = st.text(
    alphabet=st.characters(
        # A CLF token must match \S+ and survive line.strip(): exclude
        # every Unicode whitespace class, not just ASCII space.
        blacklist_categories=("Cs", "Zs", "Zl", "Zp", "Cc"),
        blacklist_characters='"\\',
    ),
    min_size=1,
    max_size=25,
)
_clf_header = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc"), blacklist_characters='"\\'),
    min_size=0,
    max_size=40,
)


@st.composite
def clf_records(draw):
    return LogRecord(
        request_id="r0",
        timestamp=draw(_clf_timestamps),
        client_ip=draw(_clf_token),
        method=draw(st.sampled_from(list(RequestMethod))),
        path=draw(_clf_token),
        protocol=draw(st.sampled_from(["HTTP/1.0", "HTTP/1.1", "HTTP/2.0"])),
        status=draw(st.integers(100, 599)),
        response_size=draw(st.integers(0, 10**12)),
        referrer=draw(_clf_header.filter(lambda s: s.strip() != "-")),
        user_agent=draw(_clf_header.filter(lambda s: s.strip() != "-")),
    )


@given(clf_records())
@settings(max_examples=150, deadline=None)
def test_clf_parse_write_parse_preserves_every_field(record):
    reparsed = parse_line(format_record(record), request_id=record.request_id)
    assert reparsed.timestamp == record.timestamp
    assert reparsed.timestamp.utcoffset() == record.timestamp.utcoffset()
    assert reparsed.client_ip == record.client_ip
    assert reparsed.method == record.method
    assert reparsed.path == record.path
    assert reparsed.protocol == record.protocol
    assert reparsed.status == record.status
    assert reparsed.response_size == record.response_size
    assert reparsed.referrer == record.referrer
    assert reparsed.user_agent == record.user_agent


@given(clf_records())
@settings(max_examples=100, deadline=None)
def test_clf_format_is_idempotent_after_one_parse(record):
    """format -> parse -> format is a fixed point (canonical form)."""
    line = format_record(record)
    assert format_record(parse_line(line, request_id="r0")) == line


@given(clf_records())
@settings(max_examples=60, deadline=None)
def test_clf_then_trace_roundtrip_composes(tmp_path_factory, record):
    """A parsed CLF record survives the trace store unchanged."""
    parsed = parse_line(format_record(record), request_id="r0")
    path = str(tmp_path_factory.mktemp("prop") / "t.trace")
    write_trace(Dataset([parsed]), path)
    (replayed,) = read_trace(path).records
    assert replayed == parsed
    assert format_record(replayed) == format_record(parsed)
