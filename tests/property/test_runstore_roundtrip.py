"""Property-based tests: the run store is a lossless RunResult round trip.

For any result the strategies can build -- including an arbitrary
telemetry snapshot assembled through a real ``MetricsRegistry`` --
``store.record`` followed by ``store.export``/``store.load`` returns a
dictionary equal to the original ``RunResult.to_dict()``, and identical
specs always land in the same series.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry
from repro.runspec.result import RunResult
from repro.runstore import RunStore, spec_fingerprint

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=12
)
_json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(10**9), 10**9),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)
_metrics = st.dictionaries(_names, _json_scalars, max_size=5)
_alert_counts = st.dictionaries(_names, st.integers(0, 10**6), max_size=3)
_tables = st.dictionaries(_names, st.text(max_size=80), max_size=3)
_rows = st.dictionaries(
    _names,
    st.lists(st.dictionaries(_names, _json_scalars, max_size=3), max_size=3),
    max_size=2,
)
_timings = st.dictionaries(
    _names, st.floats(min_value=0.0, max_value=1e4, allow_nan=False), max_size=4
)
_specs = st.one_of(
    st.none(),
    st.fixed_dictionaries(
        {
            "mode": st.sampled_from(["tables", "evaluate", "stream", "defend"]),
            "traffic": st.fixed_dictionaries(
                {
                    "scenario": st.sampled_from(["balanced_small", "stealth_heavy"]),
                    "seed": st.integers(0, 100),
                }
            ),
        }
    ),
)

_counter_name = st.sampled_from(
    ["repro_records_ingested_total", "repro_detector_alerts_total", "repro_runs_total"]
)
_observations = st.lists(
    st.floats(min_value=1e-6, max_value=1e3, allow_nan=False), min_size=1, max_size=8
)


@st.composite
def telemetry_snapshots(draw):
    """A real registry snapshot: counters with labels plus one histogram."""
    if draw(st.booleans()):
        return None
    registry = MetricsRegistry()
    for name in draw(st.lists(_counter_name, max_size=3, unique=True)):
        registry.counter(name, "Property counter.").inc(
            draw(st.integers(1, 10**6)), detector=draw(st.sampled_from(["a", "b"]))
        )
    if draw(st.booleans()):
        histogram = registry.histogram("repro_stage_seconds", "Property histogram.")
        for value in draw(_observations):
            histogram.observe(value, stage="x")
    return registry.to_dict()


@st.composite
def run_results(draw):
    return RunResult(
        mode=draw(st.sampled_from(["tables", "evaluate", "stream", "defend"])),
        source=draw(_names),
        total_requests=draw(st.integers(0, 10**7)),
        alert_counts=draw(_alert_counts),
        metrics=draw(_metrics),
        tables=draw(_tables),
        rows=draw(_rows),
        timings=draw(_timings),
        telemetry=draw(telemetry_snapshots()),
        summary=draw(st.lists(st.text(max_size=40), max_size=3)),
        enforcement=draw(st.one_of(st.none(), _metrics)),
        spec=draw(_specs),
        label=draw(st.text(max_size=16)),
    )


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    with RunStore(tmp_path_factory.mktemp("prop") / "runs.db") as store:
        yield store


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(result=run_results())
def test_store_round_trip_is_byte_identical(store, result):
    expected = result.to_dict()
    recorded = store.record(result)
    assert store.export(recorded.run_id) == expected
    assert store.load(recorded.run_id).to_dict() == expected
    # Telemetry specifically survives its separate-column storage.
    assert store.export(recorded.run_id)["telemetry"] == expected["telemetry"]


@settings(max_examples=40, deadline=None)
@given(result=run_results())
def test_series_membership_follows_spec_fingerprint(store, result):
    first = store.record(result)
    second = store.record(result)
    assert first.spec_hash == second.spec_hash == spec_fingerprint(result.spec)
    assert second.series_index == first.series_index + 1
    summary = store.get(second.run_id)
    assert summary.mode == result.mode
    assert summary.label == result.label
    assert summary.total_requests == result.total_requests


@settings(max_examples=20, deadline=None)
@given(result=run_results())
def test_fingerprint_is_key_order_invariant(result):
    spec = result.spec
    if not spec:
        reordered = spec
    else:
        reordered = {key: spec[key] for key in reversed(list(spec))}
    assert spec_fingerprint(reordered) == spec_fingerprint(spec)
