"""Property-based tests (hypothesis) on the core invariants.

These cover the data structures and arithmetic at the heart of the
analysis: the parser/writer round trip, the alert matrix accounting, the
diversity breakdown identities, the adjudication monotonicity and the
confusion-matrix rate bounds.
"""

from __future__ import annotations

from datetime import datetime, timedelta, timezone

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adjudication import KOutOfNScheme
from repro.core.alerts import AlertMatrix, AlertSet
from repro.core.confusion import ConfusionMatrix
from repro.core.diversity import DiversityBreakdown, diversity_breakdown, multi_detector_breakdown
from repro.core.metrics import cohens_kappa, disagreement_measure, entropy_measure, yules_q
from repro.logs.dataset import Dataset
from repro.logs.parser import parse_line
from repro.logs.record import LogRecord, RequestMethod
from repro.logs.writer import format_record

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
_paths = st.one_of(
    st.just("/"),
    st.just("/robots.txt"),
    st.builds(lambda n: f"/offers/{n}", st.integers(0, 9999)),
    st.builds(lambda o, d: f"/search?o={o}&d={d}", st.sampled_from(["PAR", "LIS", "NYC"]), st.sampled_from(["LON", "MAD"])),
    st.builds(lambda n: f"/static/js/bundle-{n}.js", st.integers(0, 50)),
)

_statuses = st.sampled_from([200, 204, 302, 304, 400, 403, 404, 500])

_agents = st.sampled_from(
    [
        "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 Chrome/64.0 Safari/537.36",
        "python-requests/2.18.4",
        "curl/7.58.0",
        "",
    ]
)


@st.composite
def log_records(draw, request_id: str = "r0"):
    timestamp = datetime(2018, 3, 11, tzinfo=timezone.utc) + timedelta(seconds=draw(st.integers(0, 8 * 86_400 - 1)))
    return LogRecord(
        request_id=request_id,
        timestamp=timestamp,
        client_ip=f"10.{draw(st.integers(0, 250))}.{draw(st.integers(0, 250))}.{draw(st.integers(1, 250))}",
        method=draw(st.sampled_from([RequestMethod.GET, RequestMethod.POST, RequestMethod.HEAD])),
        path=draw(_paths),
        protocol="HTTP/1.1",
        status=draw(_statuses),
        response_size=draw(st.integers(0, 10_000_000)),
        referrer=draw(st.sampled_from(["", "https://shop.example.com/", "https://www.google.com/"])),
        user_agent=draw(_agents),
    )


@st.composite
def alert_matrices(draw):
    n_requests = draw(st.integers(1, 40))
    n_detectors = draw(st.integers(2, 4))
    records = []
    base = datetime(2018, 3, 11, tzinfo=timezone.utc)
    for i in range(n_requests):
        records.append(
            LogRecord(
                request_id=f"r{i}",
                timestamp=base + timedelta(seconds=i),
                client_ip="10.0.0.1",
                method=RequestMethod.GET,
                path="/",
                protocol="HTTP/1.1",
                status=200,
                response_size=1,
            )
        )
    dataset = Dataset(records)
    alert_sets = []
    for d in range(n_detectors):
        alerts = AlertSet(f"d{d}")
        for i in range(n_requests):
            if draw(st.booleans()):
                alerts.add(f"r{i}")
        alert_sets.append(alerts)
    return dataset, AlertMatrix.from_alert_sets(dataset, alert_sets)


# ----------------------------------------------------------------------
# Parser / writer round trip
# ----------------------------------------------------------------------
@given(log_records())
@settings(max_examples=200, deadline=None)
def test_writer_parser_roundtrip_preserves_fields(record):
    reparsed = parse_line(format_record(record), request_id=record.request_id)
    assert reparsed.client_ip == record.client_ip
    assert reparsed.method == record.method
    assert reparsed.path == record.path
    assert reparsed.status == record.status
    assert reparsed.response_size == record.response_size
    assert reparsed.referrer == record.referrer
    assert reparsed.user_agent == record.user_agent
    assert reparsed.timestamp == record.timestamp


# ----------------------------------------------------------------------
# Alert matrix and diversity breakdown identities
# ----------------------------------------------------------------------
@given(alert_matrices())
@settings(max_examples=60, deadline=None)
def test_pairwise_breakdown_partitions_the_traffic(data):
    _, matrix = data
    first, second = matrix.detector_names[0], matrix.detector_names[1]
    breakdown = diversity_breakdown(matrix, first, second)
    assert breakdown.both + breakdown.neither + breakdown.first_only + breakdown.second_only == matrix.n_requests
    counts = matrix.alert_counts()
    assert breakdown.first_total == counts[first]
    assert breakdown.second_total == counts[second]
    assert 0.0 <= breakdown.agreement_rate() <= 1.0


@given(alert_matrices())
@settings(max_examples=60, deadline=None)
def test_votes_histogram_partitions_the_traffic(data):
    _, matrix = data
    breakdown = multi_detector_breakdown(matrix)
    assert sum(breakdown.votes_histogram.values()) == matrix.n_requests
    assert breakdown.alerted_by_none == breakdown.votes_histogram.get(0, 0)
    assert breakdown.alerted_by_all == breakdown.votes_histogram.get(matrix.n_detectors, 0)
    for name, exclusive in breakdown.exclusive_counts.items():
        assert exclusive <= len(matrix.alerted_by(name))


@given(alert_matrices())
@settings(max_examples=60, deadline=None)
def test_k_out_of_n_is_monotone_in_k(data):
    _, matrix = data
    previous = None
    for k in range(1, matrix.n_detectors + 1):
        result = KOutOfNScheme(k).apply(matrix)
        if previous is not None:
            assert result.alerted_ids <= previous
        previous = result.alerted_ids
    union = KOutOfNScheme(1).apply(matrix).alerted_ids
    assert union == set().union(*(matrix.alerted_by(name) for name in matrix.detector_names)) or not union


# ----------------------------------------------------------------------
# Metric bounds
# ----------------------------------------------------------------------
_counts = st.integers(0, 10_000)


@given(_counts, _counts, _counts, _counts)
@settings(max_examples=200, deadline=None)
def test_pairwise_metric_bounds(both, neither, first_only, second_only):
    breakdown = DiversityBreakdown("a", "b", both=both, neither=neither, first_only=first_only, second_only=second_only)
    assert -1.000001 <= yules_q(breakdown) <= 1.000001
    assert -1.000001 <= cohens_kappa(breakdown) <= 1.000001
    assert 0.0 <= disagreement_measure(breakdown) <= 1.0
    assert 0.0 <= entropy_measure(breakdown) <= 2.0 + 1e-9


@given(_counts, _counts, _counts, _counts)
@settings(max_examples=200, deadline=None)
def test_confusion_matrix_rate_bounds(tp, fp, tn, fn):
    cm = ConfusionMatrix(true_positives=tp, false_positives=fp, true_negatives=tn, false_negatives=fn)
    for value in (
        cm.sensitivity(),
        cm.specificity(),
        cm.precision(),
        cm.accuracy(),
        cm.f1_score(),
        cm.balanced_accuracy(),
    ):
        assert 0.0 <= value <= 1.0
    assert -1.0 - 1e-9 <= cm.matthews_correlation() <= 1.0 + 1e-9
    assert cm.false_positive_rate() == 1.0 - cm.specificity()
    assert cm.false_negative_rate() == 1.0 - cm.sensitivity()


@given(st.lists(st.tuples(st.booleans(), st.booleans()), min_size=1, max_size=200))
@settings(max_examples=100, deadline=None)
def test_confusion_matrix_matches_manual_count(flags):
    """Building the matrix through from_alerts agrees with direct counting."""
    from repro.logs.dataset import BENIGN, MALICIOUS, GroundTruth

    base = datetime(2018, 3, 11, tzinfo=timezone.utc)
    records = []
    truth = GroundTruth()
    alerted = set()
    for index, (malicious, alert) in enumerate(flags):
        request_id = f"r{index}"
        records.append(
            LogRecord(
                request_id=request_id,
                timestamp=base + timedelta(seconds=index),
                client_ip="10.0.0.1",
                method=RequestMethod.GET,
                path="/",
                protocol="HTTP/1.1",
                status=200,
                response_size=1,
            )
        )
        truth.set(request_id, MALICIOUS if malicious else BENIGN)
        if alert:
            alerted.add(request_id)
    dataset = Dataset(records, ground_truth=truth)
    cm = ConfusionMatrix.from_alerts(dataset, alerted)
    assert cm.total == len(flags)
    assert cm.true_positives == sum(1 for malicious, alert in flags if malicious and alert)
    assert cm.false_positives == sum(1 for malicious, alert in flags if not malicious and alert)
    assert cm.predicted_positives == len(alerted)


# ----------------------------------------------------------------------
# Anomaly model sanity under arbitrary numeric input
# ----------------------------------------------------------------------
@given(
    st.integers(5, 60),
    st.integers(2, 6),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=30, deadline=None)
def test_robust_zscore_finite_on_arbitrary_matrices(rows, columns, seed):
    from repro.anomaly import RobustZScoreModel

    rng = np.random.default_rng(seed)
    X = rng.normal(0, 100, size=(rows, columns))
    scores = RobustZScoreModel().fit_score(X)
    assert scores.shape == (rows,)
    assert np.isfinite(scores).all()
    assert (scores >= 0).all()
