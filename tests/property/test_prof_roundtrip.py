"""Property-based tests: the profile schema round-trips losslessly.

Two invariants carry the profiler's interchange contract:

* ``collapse -> parse_collapsed -> collapse`` is byte-identical for any
  sample set the strategies can build (the flamegraph.pl surface);
* ``Profile.to_dict -> json -> Profile.from_dict -> to_dict`` is the
  identity (the run-store persistence surface).
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.prof import Profile, SpanStat, StackSample, collapse, parse_collapsed

# Frame labels as frame_label() emits them: no ";" (frame separator), no
# space (count separator), no newlines; never empty.
_frame_alphabet = "abcdefghijklmnopqrstuvwxyz0123456789._:<>,"
_frames = st.text(alphabet=_frame_alphabet, min_size=1, max_size=20)
_stacks = st.lists(_frames, min_size=1, max_size=6).map(tuple)

# Span names never contain the path separator; paths join 0-3 of them.
_span_names = st.text(alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=10)
_span_paths = st.lists(_span_names, min_size=0, max_size=3).map("/".join)

_samples = st.lists(
    st.builds(
        StackSample,
        frames=_stacks,
        count=st.integers(1, 10**6),
        span_path=_span_paths,
    ),
    max_size=20,
)

_span_stats = st.lists(
    st.builds(
        SpanStat,
        path=_span_paths.filter(bool),
        self_samples=st.integers(0, 10**6),
        total_samples=st.integers(0, 10**6),
        calls=st.integers(0, 10**4),
        alloc_bytes=st.integers(-(10**9), 10**9),
        peak_bytes=st.integers(0, 10**9),
    ),
    max_size=10,
)


@settings(max_examples=100, deadline=None)
@given(samples=_samples)
def test_collapse_parse_collapse_is_byte_identical(samples):
    text = collapse(samples)
    parsed = parse_collapsed(text)
    assert collapse(parsed) == text
    # Aggregation preserves the total sample count.
    assert sum(s.count for s in parsed) == sum(s.count for s in samples)


@settings(max_examples=100, deadline=None)
@given(
    hz=st.floats(min_value=0.5, max_value=1000.0, allow_nan=False),
    duration=st.floats(min_value=0.0, max_value=10**6, allow_nan=False),
    samples=_samples,
    spans=_span_stats,
    memory=st.sampled_from(["rss", "tracemalloc", "off"]),
)
def test_profile_json_round_trip_is_the_identity(hz, duration, samples, spans, memory):
    profile = Profile(
        hz=hz, duration_seconds=duration, samples=samples, spans=spans, memory=memory
    )
    snap = json.loads(json.dumps(profile.to_dict()))
    rebuilt = Profile.from_dict(snap)
    assert rebuilt.to_dict() == profile.to_dict()
    assert rebuilt.collapsed() == profile.collapsed()
    assert json.loads(json.dumps(rebuilt.speedscope())) == profile.speedscope()
