"""Tests for the benchmark-support package (expected values, shape checks, report)."""

from __future__ import annotations

import pytest

from repro.bench.comparison import ShapeCheck, compare_fractions, compare_ordering
from repro.bench.expected import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    paper_alert_fraction,
    paper_fractions_table2,
    paper_status_fractions,
)
from repro.bench.report import render_experiments_report
from repro.core.experiment import PaperExperiment


class TestExpectedValues:
    def test_table2_sums_to_table1_total(self):
        assert sum(PAPER_TABLE2.values()) == PAPER_TABLE1["total"]

    def test_table1_consistent_with_table2(self):
        assert PAPER_TABLE1["commercial"] == PAPER_TABLE2["both"] + PAPER_TABLE2["commercial_only"]
        assert PAPER_TABLE1["inhouse"] == PAPER_TABLE2["both"] + PAPER_TABLE2["inhouse_only"]

    def test_table3_totals_match_table1(self):
        # The paper's per-status counts sum to each tool's alerted total.
        assert sum(PAPER_TABLE3["inhouse"].values()) == PAPER_TABLE1["inhouse"]
        assert sum(PAPER_TABLE3["commercial"].values()) == PAPER_TABLE1["commercial"]

    def test_table4_totals_match_table2_exclusives(self):
        assert sum(PAPER_TABLE4["inhouse"].values()) == PAPER_TABLE2["inhouse_only"]
        assert sum(PAPER_TABLE4["commercial"].values()) == PAPER_TABLE2["commercial_only"]

    def test_fraction_helpers(self):
        fractions = paper_fractions_table2()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert paper_alert_fraction("commercial") == pytest.approx(0.8675, abs=0.001)
        status_fractions = paper_status_fractions(PAPER_TABLE3, "inhouse")
        assert status_fractions[200] > 0.95
        assert sum(status_fractions.values()) == pytest.approx(1.0)


class TestShapeCheck:
    def test_fraction_within_factor_passes(self):
        check = ShapeCheck("demo")
        check.check_fraction("x", 0.10, 0.12, tolerance_factor=2.0)
        assert check.passed

    def test_fraction_outside_factor_fails(self):
        check = ShapeCheck("demo")
        check.check_fraction("x", 0.9, 0.1, tolerance_factor=2.0)
        assert not check.passed
        assert len(check.failures()) == 1

    def test_small_fractions_get_absolute_slack(self):
        check = ShapeCheck("demo")
        check.check_fraction("tiny", 0.015, 0.001, tolerance_factor=2.0, absolute_slack=0.02)
        assert check.passed

    def test_greater_and_dominant(self):
        check = ShapeCheck("demo")
        check.check_greater("a>b", 2.0, 1.0)
        check.check_dominant("top", {"x": 5, "y": 1}, "x")
        check.check_dominant("top-fails", {"x": 1, "y": 5}, "x")
        assert not check.passed
        assert len(check.failures()) == 1

    def test_dominant_on_empty_counts_fails(self):
        check = ShapeCheck("demo")
        check.check_dominant("empty", {}, "x")
        assert not check.passed

    def test_report_mentions_every_check(self):
        check = ShapeCheck("demo")
        check.add("first", True, "ok")
        check.add("second", False, "nope")
        report = check.report()
        assert "[PASS] first" in report
        assert "[FAIL] second" in report
        assert "1 CHECK(S) FAILED" in report

    def test_compare_fractions_and_ordering(self):
        fractions = compare_fractions("f", {"a": 0.5}, {"a": 0.4})
        assert fractions.passed
        ordering = compare_ordering("o", {"a": 3.0, "b": 2.0, "c": 1.0}, ["a", "b", "c"])
        assert ordering.passed
        bad = compare_ordering("o", {"a": 1.0, "b": 2.0}, ["a", "b"])
        assert not bad.passed


class TestExperimentsReport:
    def test_report_contains_all_tables_and_extensions(self, calibrated_dataset):
        result = PaperExperiment().run_on(calibrated_dataset)
        report = render_experiments_report(result, scale=0.005, seed=2018)
        for heading in (
            "# EXPERIMENTS",
            "## Table 1",
            "## Table 2",
            "## Table 3",
            "## Table 4",
            "Labelled evaluation of each tool",
            "Adjudication schemes",
            "Pairwise diversity metrics",
        ):
            assert heading in report
        # Paper's headline numbers appear alongside measured ones.
        assert "1,469,744" in report
        assert "1,231,408" in report
        assert f"{result.total_requests:,}" in report

    def test_report_is_valid_markdown_tables(self, calibrated_dataset):
        result = PaperExperiment().run_on(calibrated_dataset)
        report = render_experiments_report(result, scale=0.005, seed=2018)
        table_lines = [line for line in report.splitlines() if line.startswith("|")]
        assert table_lines, "the report should contain markdown tables"
        assert all(line.count("|") >= 3 for line in table_lines)
