"""Shared pytest fixtures.

The fixtures build small, deterministic data sets once per session so the
many tests that need "a realistic labelled data set with both tools run
over it" do not regenerate traffic repeatedly.
"""

from __future__ import annotations

import os
import sys

import pytest

# Allow running the tests without installing the package (e.g. straight
# from a source checkout) by putting ``src/`` on the path.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.core.experiment import PaperExperiment  # noqa: E402
from repro.detectors.commercial import CommercialBotDefenceDetector  # noqa: E402
from repro.detectors.inhouse import InHouseHeuristicDetector  # noqa: E402
from repro.detectors.pipeline import DetectionPipeline  # noqa: E402
from repro.logs.sessionization import Sessionizer  # noqa: E402
from repro.traffic.generator import generate_dataset  # noqa: E402
from repro.traffic.scenarios import amadeus_march_2018, balanced_small  # noqa: E402


@pytest.fixture(scope="session")
def small_dataset():
    """A small balanced labelled data set (a few thousand requests)."""
    return generate_dataset(balanced_small(total_requests=4000, seed=7))


@pytest.fixture(scope="session")
def calibrated_dataset():
    """A small-scale version of the calibrated March-2018 scenario."""
    return generate_dataset(amadeus_march_2018(scale=0.005, seed=2018))


@pytest.fixture(scope="session")
def small_sessions(small_dataset):
    """Sessions of the small data set."""
    return Sessionizer().sessionize(small_dataset.records)


@pytest.fixture(scope="session")
def pipeline_result(small_dataset):
    """Both stand-in tools run over the small data set."""
    pipeline = DetectionPipeline([CommercialBotDefenceDetector(), InHouseHeuristicDetector()])
    return pipeline.run(small_dataset)


@pytest.fixture(scope="session")
def experiment_result(calibrated_dataset):
    """The full paper experiment on the small calibrated data set."""
    return PaperExperiment().run_on(calibrated_dataset)
