"""One firing fixture per rule: each tree violates exactly that rule.

Every test asserts three things: the expected rule (and only it) fires,
the finding points at the right location, and the clean twin of the same
fixture produces nothing -- the no-false-positive half of each rule's
contract.
"""

from __future__ import annotations

from tests.lint.util import only_rule

# ----------------------------------------------------------------------
# REP001 determinism
# ----------------------------------------------------------------------
def test_rep001_fires_on_wall_clock(lint_tree):
    report = lint_tree(
        {
            "src/repro/core/clocky.py": """
            import time

            def stamp():
                return time.time()
            """
        }
    )
    (finding,) = only_rule(report, "REP001")
    assert finding.path == "src/repro/core/clocky.py"
    assert finding.line == 5
    assert "time.time()" in finding.message
    assert finding.suggestion is not None


def test_rep001_fires_on_global_random_and_datetime_now(lint_tree):
    report = lint_tree(
        {
            "src/repro/traffic/wobbly.py": """
            import random
            from datetime import datetime

            def jitter():
                return random.random() + datetime.now().timestamp()
            """
        }
    )
    findings = only_rule(report, "REP001")
    messages = " / ".join(finding.message for finding in findings)
    assert "random.random()" in messages
    assert "datetime.now()" in messages


def test_rep001_allows_seeded_generators_and_out_of_scope_files(lint_tree):
    report = lint_tree(
        {
            # Seeded construction in scope: fine.
            "src/repro/core/seeded.py": """
            import random

            def draw(seed):
                return random.Random(seed).random()
            """,
            # Wall clock outside the engine paths: fine.
            "src/repro/obs/clocky.py": """
            import time

            def stamp():
                return time.time()
            """,
        }
    )
    assert report.findings == []


# ----------------------------------------------------------------------
# REP003 engine parity
# ----------------------------------------------------------------------
_DETECTOR_PREAMBLE = """
class Detector:
    pass
"""


def test_rep003_fires_without_columnar_path_or_marker(lint_tree):
    report = lint_tree(
        {
            "src/repro/detectors/lonely.py": _DETECTOR_PREAMBLE
            + """
class LonelyDetector(Detector):
    def analyze(self, dataset):
        return None
"""
        }
    )
    (finding,) = only_rule(report, "REP003")
    assert "LonelyDetector" in finding.message
    assert "columnar_fallback" in finding.suggestion


def test_rep003_satisfied_by_analyze_columns_or_marker(lint_tree):
    report = lint_tree(
        {
            "src/repro/detectors/fine.py": _DETECTOR_PREAMBLE
            + """
class ColumnarDetector(Detector):
    def analyze(self, dataset):
        return None

    def analyze_columns(self, frame):
        return None

    def alert_columns(self, frame):
        return None


class FallbackDetector(Detector):
    columnar_fallback = True

    def analyze(self, dataset):
        return None


class NotADetector:
    def analyze(self, dataset):
        return None
"""
        }
    )
    assert report.findings == []


def test_rep010_fires_on_analyze_columns_without_alert_columns(lint_tree):
    report = lint_tree(
        {
            "src/repro/detectors/halfway.py": _DETECTOR_PREAMBLE
            + """
class HalfColumnarDetector(Detector):
    def analyze(self, dataset):
        return None

    def analyze_columns(self, frame):
        return None
"""
        }
    )
    assert [finding.rule for finding in report.findings] == ["REP010"]
    assert "alert_columns" in report.findings[0].message


def test_rep010_satisfied_by_alert_columns_or_frame_marker(lint_tree):
    report = lint_tree(
        {
            "src/repro/detectors/framefine.py": _DETECTOR_PREAMBLE
            + """
class FrameNativeDetector(Detector):
    def analyze_columns(self, frame):
        return None

    def alert_columns(self, frame):
        return None


class BridgedDetector(Detector):
    frame_fallback = True

    def analyze_columns(self, frame):
        return None
"""
        }
    )
    assert report.findings == []


# ----------------------------------------------------------------------
# REP004 registry discipline
# ----------------------------------------------------------------------
def test_rep004_fires_on_factories_poke(lint_tree):
    report = lint_tree(
        {
            "src/repro/detectors/sneaky.py": """
            from repro.registry import Registry

            def smuggle(registry, name, factory):
                registry._factories[name] = factory
            """
        }
    )
    (finding,) = only_rule(report, "REP004")
    assert "_factories" in finding.message


def test_rep004_fires_on_private_registry_import(lint_tree):
    report = lint_tree(
        {
            "src/repro/detectors/sneaky.py": """
            from repro.registry import _factories_of
            """
        }
    )
    (finding,) = only_rule(report, "REP004")
    assert "_factories_of" in finding.message


def test_rep004_exempts_the_registry_module_itself(lint_tree):
    report = lint_tree(
        {
            "src/repro/registry.py": """
            class Registry:
                def __init__(self):
                    self._factories = {}

                def register(self, name, factory):
                    self._factories[name] = factory
            """
        }
    )
    assert report.findings == []


# ----------------------------------------------------------------------
# REP005 spec round-trip
# ----------------------------------------------------------------------
def test_rep005_fires_on_dropped_field(lint_tree):
    report = lint_tree(
        {
            "src/repro/runspec/leaky.py": """
            from dataclasses import dataclass

            @dataclass
            class LeakySpec:
                kept: int = 0
                dropped: int = 0

                def to_dict(self):
                    return {"kept": self.kept}

                @classmethod
                def from_dict(cls, data):
                    return cls(kept=data["kept"])
            """
        }
    )
    findings = only_rule(report, "REP005")
    assert len(findings) == 2  # not serialized + not restored
    assert all("dropped" in finding.message for finding in findings)
    # Both anchor at the field declaration, so one pragma covers both.
    assert {finding.line for finding in findings} == {7}


def test_rep005_passes_complete_serializers_and_generic_classes(lint_tree):
    report = lint_tree(
        {
            "src/repro/runspec/tight.py": """
            from dataclasses import dataclass, fields

            @dataclass
            class TightSpec:
                kept: int = 0

                def to_dict(self):
                    return {"kept": self.kept}

                @classmethod
                def from_dict(cls, data):
                    return cls(kept=data["kept"])

            @dataclass
            class GenericSpec:
                anything: int = 0
                # no explicit serializers: dataclasses.fields-driven base
            """
        }
    )
    assert report.findings == []


# ----------------------------------------------------------------------
# REP006 lock guard
# ----------------------------------------------------------------------
def test_rep006_fires_on_unguarded_write(lint_tree):
    report = lint_tree(
        {
            "src/repro/runstore/racy.py": """
            import threading

            class Racy:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0

                def bump(self):
                    with self._lock:
                        self.count += 1

                def reset(self):
                    self.count = 0
            """
        }
    )
    (finding,) = only_rule(report, "REP006")
    assert "reset" in finding.message and "count" in finding.message
    assert finding.line == 14


def test_rep006_allows_init_locked_methods_and_guarded_writes(lint_tree):
    report = lint_tree(
        {
            "src/repro/runstore/tidy.py": """
            import threading

            class Tidy:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0

                def bump(self):
                    with self._lock:
                        self.count += 1
                        self._bump_locked()

                def _bump_locked(self):
                    self.count += 1
            """
        }
    )
    assert report.findings == []


# ----------------------------------------------------------------------
# REP007 exception hygiene
# ----------------------------------------------------------------------
def test_rep007_fires_on_bare_except_and_swallowed_pass(lint_tree):
    report = lint_tree(
        {
            "src/repro/stream/sloppy.py": """
            def run(work):
                try:
                    work()
                except:
                    return None

            def best_effort(work):
                try:
                    work()
                except ValueError:
                    pass
            """
        }
    )
    findings = only_rule(report, "REP007")
    by_severity = {finding.severity for finding in findings}
    assert by_severity == {"error", "warning"}
    bare = next(f for f in findings if f.severity == "error")
    assert "bare except" in bare.message


def test_rep007_swallow_is_scoped_but_bare_except_is_not(lint_tree):
    report = lint_tree(
        {
            # Outside the engine/persistence paths: swallowing is not
            # flagged, a bare except still is.
            "src/repro/logs/elsewhere.py": """
            def best_effort(work):
                try:
                    work()
                except ValueError:
                    pass

            def worse(work):
                try:
                    work()
                except:
                    pass
            """
        }
    )
    (finding,) = only_rule(report, "REP007")
    assert "bare except" in finding.message
