"""Engine mechanics: pragmas, baseline, REP000, select/ignore, config."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import LintError
from repro.lint import (
    LintConfig,
    available_rules,
    load_baseline,
    load_config,
    run_lint,
    write_baseline,
)
from repro.lint.engine import collect_sources
from tests.lint.util import write_tree

_CLOCKY = """
import time

def stamp():
    return time.time()
"""

_CLOCKY_ALLOWED = """
import time

def stamp():
    return time.time()  # repro-lint: allow[REP001] display-only timestamp
"""


def _run(root, files, **overrides):
    write_tree(root, files)
    return run_lint(root, config=LintConfig(baseline=None, **overrides))


def test_pragma_suppresses_only_named_rule_on_its_line(lint_tree):
    report = lint_tree({"src/repro/core/clocky.py": _CLOCKY_ALLOWED})
    assert report.findings == []
    assert report.suppressed == 1


def test_pragma_with_several_rules(tmp_path):
    source = _CLOCKY.replace(
        "time.time()",
        "time.time()  # repro-lint: allow[REP001, REP007] reason",
    )
    report = _run(tmp_path, {"src/repro/core/clocky.py": source})
    assert report.findings == []
    assert report.suppressed == 1


def test_pragma_for_other_rule_does_not_suppress(tmp_path):
    source = _CLOCKY.replace(
        "time.time()", "time.time()  # repro-lint: allow[REP007] wrong rule"
    )
    report = _run(tmp_path, {"src/repro/core/clocky.py": source})
    assert [finding.rule for finding in report.findings] == ["REP001"]
    assert report.suppressed == 0


def test_baseline_absorbs_findings_and_reports_stale_entries(tmp_path):
    write_tree(tmp_path, {"src/repro/core/clocky.py": _CLOCKY})
    first = run_lint(tmp_path, config=LintConfig(baseline=None))
    assert len(first.findings) == 1

    baseline_path = tmp_path / "lint-baseline.json"
    write_baseline(baseline_path, first.findings)
    config = LintConfig(baseline="lint-baseline.json")
    absorbed = run_lint(tmp_path, config=config)
    assert absorbed.findings == []
    assert [finding.rule for finding in absorbed.baselined] == ["REP001"]
    assert absorbed.stale_baseline == []

    # The baseline is line-insensitive: shifting the file does not break it.
    path = tmp_path / "src/repro/core/clocky.py"
    path.write_text("# a new leading comment\n" + path.read_text())
    shifted = run_lint(tmp_path, config=config)
    assert shifted.findings == []

    # Fixing the finding leaves a stale entry to burn down.
    path.write_text("def stamp():\n    return 0.0\n")
    fixed = run_lint(tmp_path, config=config)
    assert fixed.findings == []
    assert len(fixed.stale_baseline) == 1
    assert fixed.stale_baseline[0].startswith("REP001|src/repro/core/clocky.py|")


def test_load_baseline_missing_file_is_empty(tmp_path):
    assert load_baseline(tmp_path / "absent.json") == set()


@pytest.mark.parametrize(
    "payload, match",
    [
        ({"format": "other"}, "not a repro-lint baseline"),
        ({"format": "repro-lint-baseline", "version": 99}, "version"),
        (
            {"format": "repro-lint-baseline", "version": 1, "findings": [1]},
            "fingerprint strings",
        ),
    ],
)
def test_load_baseline_rejects_bad_files(tmp_path, payload, match):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps(payload))
    with pytest.raises(LintError, match=match):
        load_baseline(path)


def test_unparseable_file_becomes_rep000(tmp_path):
    report = _run(tmp_path, {"src/repro/core/broken.py": "def oops(:\n"})
    (finding,) = report.findings
    assert finding.rule == "REP000"
    assert finding.severity == "error"
    assert "does not parse" in finding.message


def test_select_and_ignore_filter_rules(tmp_path):
    files = {
        "src/repro/core/sloppy.py": """
def run(work):
    try:
        return work()
    except:
        return None
""",
        "src/repro/core/clocky.py": _CLOCKY,
    }
    both = _run(tmp_path, dict(files))
    assert {finding.rule for finding in both.findings} == {"REP001", "REP007"}
    selected = run_lint(
        tmp_path, config=LintConfig(baseline=None, select=("REP001",))
    )
    assert {finding.rule for finding in selected.findings} == {"REP001"}
    ignored = run_lint(
        tmp_path, config=LintConfig(baseline=None, ignore=("REP001",))
    )
    assert {finding.rule for finding in ignored.findings} == {"REP007"}


def test_collect_sources_rejects_missing_root(tmp_path):
    with pytest.raises(LintError, match="does not exist"):
        collect_sources(tmp_path, ("src/absent",))


def test_available_rules_covers_the_documented_suite():
    ids = [rule.rule_id for rule in available_rules()]
    assert ids == [f"REP00{n}" for n in range(1, 10)] + ["REP010"]
    for rule in available_rules():
        assert rule.summary and rule.autofix_hint


def test_load_config_reads_pyproject_section(tmp_path):
    (tmp_path / "pyproject.toml").write_text(
        """
[tool.repro-lint]
roots = ["lib"]
ignore = ["REP006"]
baseline = "accepted.json"
deterministic-paths = ["lib/engine"]
"""
    )
    config = load_config(tmp_path)
    assert config.roots == ("lib",)
    assert config.ignore == ("REP006",)
    assert config.baseline == "accepted.json"
    assert config.deterministic_paths == ("lib/engine",)
    # Untouched keys keep their defaults.
    assert config.cli_module == "src/repro/cli.py"


def test_load_config_rejects_unknown_keys_and_bad_types(tmp_path):
    (tmp_path / "pyproject.toml").write_text("[tool.repro-lint]\nrootz = ['x']\n")
    with pytest.raises(LintError, match="rootz"):
        load_config(tmp_path)
    (tmp_path / "pyproject.toml").write_text("[tool.repro-lint]\nroots = 3\n")
    with pytest.raises(LintError, match="list of strings"):
        load_config(tmp_path)


def test_load_config_defaults_without_pyproject(tmp_path):
    assert load_config(tmp_path) == LintConfig()
