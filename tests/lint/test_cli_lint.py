"""The ``repro lint`` subcommand: output modes, gating, baseline flow."""

from __future__ import annotations

import json

from repro.cli import main
from tests.lint.util import write_tree

_CLOCKY = """
import time

def stamp():
    return time.time()
"""

_CLEAN = """
def stamp():
    return 0.0
"""


def _project(tmp_path, source=_CLOCKY):
    write_tree(tmp_path, {"src/repro/core/clocky.py": source})
    return str(tmp_path)


def test_lint_reports_findings_and_fails_the_gate(tmp_path, capsys):
    code = main(["lint", "--root", _project(tmp_path)])
    out = capsys.readouterr().out
    assert code == 1
    assert "REP001" in out
    assert "clocky.py:5:" in out
    assert "1 error(s)" in out


def test_lint_clean_tree_exits_zero(tmp_path, capsys):
    code = main(["lint", "--root", _project(tmp_path, _CLEAN)])
    out = capsys.readouterr().out
    assert code == 0
    assert "no findings" in out


def test_lint_fail_on_threshold(tmp_path, capsys):
    # A swallowed except in an engine path is a warning: --fail-on error
    # lets it pass, the default (warning) does not.
    root = str(tmp_path)
    write_tree(
        tmp_path,
        {
            "src/repro/core/soft.py": """
def run(work):
    try:
        return work()
    except ValueError:
        pass
"""
        },
    )
    assert main(["lint", "--root", root, "--fail-on", "error"]) == 0
    assert main(["lint", "--root", root]) == 1
    capsys.readouterr()


def test_lint_json_output_round_trips(tmp_path, capsys):
    code = main(["lint", "--root", _project(tmp_path), "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["format"] == "repro-lint"
    assert payload["counts"] == {"error": 1}
    (finding,) = payload["findings"]
    assert finding["rule"] == "REP001"
    assert finding["path"] == "src/repro/core/clocky.py"


def test_lint_update_baseline_then_clean(tmp_path, capsys):
    root = _project(tmp_path)
    assert main(["lint", "--root", root]) == 1
    assert main(["lint", "--root", root, "--update-baseline"]) == 0
    assert (tmp_path / "lint-baseline.json").is_file()
    assert main(["lint", "--root", root]) == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out

    # --no-baseline sees through the accepted findings again.
    assert main(["lint", "--root", root, "--no-baseline"]) == 1
    capsys.readouterr()


def test_lint_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in [f"REP00{n}" for n in range(1, 10)]:
        assert rule_id in out
    assert "fix:" in out


def test_lint_list_rules_json(capsys):
    assert main(["lint", "--list-rules", "--json"]) == 0
    rules = json.loads(capsys.readouterr().out)
    assert [rule["rule"] for rule in rules] == [f"REP00{n}" for n in range(1, 10)] + ["REP010"]
