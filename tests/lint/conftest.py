"""Fixture helpers: build a throwaway project tree and lint it.

Fixture trees mirror the real layout (``src/repro/...``) so the default
:class:`~repro.lint.config.LintConfig` scopes apply unmodified -- the
same paths the rules govern in the repository govern the fixtures.
"""

from __future__ import annotations

import pytest

from repro.lint import LintConfig, LintReport, run_lint
from tests.lint.util import write_tree


@pytest.fixture
def lint_tree(tmp_path):
    """``lint_tree(files, **config_overrides) -> LintReport``."""

    def _lint(files: dict[str, str], **overrides) -> LintReport:
        write_tree(tmp_path, files)
        config = LintConfig(baseline=None, **overrides)
        return run_lint(tmp_path, config=config, baseline=set())

    _lint.root = tmp_path
    return _lint
