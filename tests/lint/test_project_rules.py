"""REP002 / REP008: cross-file rules over mini project trees.

The fixture trees put the catalogue, spec, and CLI modules at the same
paths the default config points at, so the rules run exactly as they do
against the repository.
"""

from __future__ import annotations

from tests.lint.util import only_rule

_CATALOGUE = """
RECORDS_TOTAL = "repro_records_total"
LATENCY_SECONDS = "repro_latency_seconds"

METRIC_REFERENCE: tuple = (
    (RECORDS_TOTAL, "counter", "-", "records seen"),
    (LATENCY_SECONDS, "histogram", "-", "latency"),
)
"""


# ----------------------------------------------------------------------
# REP002 metric names
# ----------------------------------------------------------------------
def test_rep002_fires_on_uncatalogued_call_site_with_suggestion(lint_tree):
    report = lint_tree(
        {
            "src/repro/obs/names.py": _CATALOGUE,
            "src/repro/stream/instrumented.py": """
            def run(registry):
                registry.counter("repro_record_total", "typo'd name").inc()
            """,
        }
    )
    (finding,) = only_rule(report, "REP002")
    assert finding.path == "src/repro/stream/instrumented.py"
    assert "repro_record_total" in finding.message
    assert "did you mean 'repro_records_total'?" == finding.suggestion


def test_rep002_fires_on_constant_missing_from_reference(lint_tree):
    report = lint_tree(
        {
            "src/repro/obs/names.py": """
            CATALOGUED = "repro_catalogued_total"
            ORPHANED = "repro_orphaned_total"

            METRIC_REFERENCE: tuple = (
                (CATALOGUED, "counter", "-", "present"),
            )
            """
        }
    )
    (finding,) = only_rule(report, "REP002")
    assert "ORPHANED" in finding.message
    assert finding.path == "src/repro/obs/names.py"


def test_rep002_fires_on_reference_row_without_constant(lint_tree):
    report = lint_tree(
        {
            "src/repro/obs/names.py": """
            CATALOGUED = "repro_catalogued_total"

            METRIC_REFERENCE: tuple = (
                (CATALOGUED, "counter", "-", "present"),
                ("repro_ghost_total", "counter", "-", "no constant defines me"),
            )
            """
        }
    )
    (finding,) = only_rule(report, "REP002")
    assert "repro_ghost_total" in finding.message


def test_rep002_resolves_imported_constants_and_skips_dynamic_names(lint_tree):
    report = lint_tree(
        {
            "src/repro/obs/names.py": _CATALOGUE,
            "src/repro/stream/ok.py": """
            from repro.obs import names
            from repro.obs.names import RECORDS_TOTAL

            def run(registry, dynamic):
                registry.counter(RECORDS_TOTAL, "by from-import").inc()
                registry.histogram(names.LATENCY_SECONDS, "by attribute").observe(1.0)
                registry.counter(dynamic, "unresolvable: skipped").inc()
            """,
        }
    )
    assert report.findings == []


# ----------------------------------------------------------------------
# REP009 span names
# ----------------------------------------------------------------------
_SPAN_CATALOGUE = _CATALOGUE + """
SPAN_REFERENCE: tuple = (
    ("dataset", "traffic materialisation"),
    ("experiment", "the batch experiment"),
)
"""


def test_rep009_fires_on_uncatalogued_stage_with_suggestion(lint_tree):
    report = lint_tree(
        {
            "src/repro/obs/names.py": _SPAN_CATALOGUE,
            "src/repro/runspec/run.py": """
            from repro.obs.spans import trace_span

            def run(registry):
                with trace_span("dataset", registry):
                    with trace_span("experiment", registry):
                        pass
                with trace_span("experiments", registry):  # typo'd stage
                    pass
            """,
        }
    )
    (finding,) = only_rule(report, "REP009")
    assert finding.path == "src/repro/runspec/run.py"
    assert "experiments" in finding.message
    assert finding.suggestion == "did you mean 'experiment'?"


def test_rep009_fires_on_unopened_reference_row(lint_tree):
    report = lint_tree(
        {
            "src/repro/obs/names.py": _SPAN_CATALOGUE,
            "src/repro/runspec/run.py": """
            from repro.obs.spans import trace_span

            def run(registry):
                with trace_span("dataset", registry):
                    pass
            """,
        }
    )
    (finding,) = only_rule(report, "REP009")
    assert finding.path == "src/repro/obs/names.py"
    assert "'experiment'" in finding.message


def test_rep009_fires_when_spans_opened_without_a_catalogue(lint_tree):
    report = lint_tree(
        {
            "src/repro/obs/names.py": _CATALOGUE,
            "src/repro/runspec/run.py": """
            from repro.obs.spans import trace_span

            def run(registry):
                with trace_span("dataset", registry):
                    pass
            """,
        }
    )
    (finding,) = only_rule(report, "REP009")
    assert finding.path == "src/repro/obs/names.py"
    assert "SPAN_REFERENCE" in finding.message


def test_rep009_covers_registry_span_and_skips_dynamic_and_paths(lint_tree):
    report = lint_tree(
        {
            "src/repro/obs/names.py": _SPAN_CATALOGUE,
            "src/repro/runspec/run.py": """
            from repro.obs import spans

            def run(registry, profile, stage):
                with spans.trace_span("dataset", registry):
                    with registry.span("experiment"):
                        pass
                with registry.span(stage):  # dynamic: skipped
                    pass
                profile.span("dataset/experiment")  # path lookup: skipped
            """,
        }
    )
    assert report.findings == []


# ----------------------------------------------------------------------
# REP008 CLI drift
# ----------------------------------------------------------------------
_SPEC = """
from dataclasses import dataclass

@dataclass
class ExecutionSpec:
    shards: int = 1
    backend: str = "thread"
    track_latency: bool = False
"""


def test_rep008_fires_on_unreachable_field(lint_tree):
    report = lint_tree(
        {
            "src/repro/runspec/spec.py": _SPEC,
            "src/repro/cli.py": """
            from repro.runspec.spec import ExecutionSpec

            def command(args):
                return ExecutionSpec(shards=args.shards, backend=args.backend)
            """,
        }
    )
    (finding,) = only_rule(report, "REP008")
    assert finding.path == "src/repro/runspec/spec.py"
    assert "track_latency" in finding.message
    assert "--track-latency" in finding.suggestion


def test_rep008_union_of_call_sites_counts(lint_tree):
    report = lint_tree(
        {
            "src/repro/runspec/spec.py": _SPEC,
            "src/repro/cli.py": """
            from repro.runspec.spec import ExecutionSpec

            def stream(args):
                return ExecutionSpec(shards=args.shards, track_latency=args.track_latency)

            def tables(args):
                return ExecutionSpec(backend=args.backend)
            """,
        }
    )
    assert report.findings == []


def test_rep008_splatted_construction_disables_the_rule(lint_tree):
    report = lint_tree(
        {
            "src/repro/runspec/spec.py": _SPEC,
            "src/repro/cli.py": """
            from repro.runspec.spec import ExecutionSpec

            def command(kwargs):
                return ExecutionSpec(**kwargs)
            """,
        }
    )
    assert report.findings == []


def test_rep008_fires_when_cli_never_builds_the_spec(lint_tree):
    report = lint_tree(
        {
            "src/repro/runspec/spec.py": _SPEC,
            "src/repro/cli.py": """
            def command(args):
                return 0
            """,
        }
    )
    (finding,) = only_rule(report, "REP008")
    assert finding.path == "src/repro/cli.py"
    assert "never constructs" in finding.message
