"""Shared helpers for the lint test suite."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.lint import LintReport


def write_tree(root: Path, files: dict[str, str]) -> None:
    """Write ``{rel_path: source}`` fixture files under ``root``."""
    for rel_path, source in files.items():
        path = root / rel_path
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")


def only_rule(report: LintReport, rule_id: str) -> list:
    """Assert every finding is of ``rule_id`` and return them."""
    assert report.findings, f"expected {rule_id} findings, got none"
    assert {finding.rule for finding in report.findings} == {rule_id}, [
        finding.render() for finding in report.findings
    ]
    return report.findings
