"""The suite over the real repository: clean outside the baseline.

This is the no-false-positive test the rules must keep passing: the
shipping ``src/repro`` tree, linted with the shipping configuration,
produces zero findings beyond the checked-in baseline.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import load_config, run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_repository_is_lint_clean():
    report = run_lint(REPO_ROOT, config=load_config(REPO_ROOT))
    assert report.findings == [], [finding.render() for finding in report.findings]
    assert report.checked_files > 100
    assert report.stale_baseline == []


def test_repository_suppressions_are_the_documented_ones():
    # Every inline pragma in the tree is deliberate; this pins the count
    # so new suppressions show up in review rather than slipping by.
    report = run_lint(REPO_ROOT, config=load_config(REPO_ROOT))
    assert report.suppressed == 5
