"""Finding mechanics: validation, ordering, rendering, JSON round-trip."""

from __future__ import annotations

import pytest

from repro.exceptions import LintError
from repro.lint import Finding, severity_rank
from repro.lint.findings import SEVERITIES


def _finding(**overrides) -> Finding:
    payload = dict(
        rule="REP001",
        severity="error",
        path="src/repro/core/x.py",
        line=10,
        col=5,
        message="call to time.time() reads the wall clock in an engine path",
        suggestion="derive time from the record stream",
    )
    payload.update(overrides)
    return Finding(**payload)


def test_severity_rank_orders_the_scale():
    ranks = [severity_rank(s) for s in SEVERITIES]
    assert ranks == sorted(ranks)
    assert severity_rank("error") > severity_rank("warning") > severity_rank("info")


def test_severity_rank_rejects_unknown_with_suggestion():
    with pytest.raises(LintError, match="did you mean 'warning'"):
        severity_rank("warn")


def test_finding_validates_fields():
    with pytest.raises(LintError, match="severity"):
        _finding(severity="fatal")
    with pytest.raises(LintError, match="line"):
        _finding(line=0)
    with pytest.raises(LintError, match="rule"):
        _finding(rule="")


def test_render_carries_location_and_suggestion():
    text = _finding().render()
    assert "src/repro/core/x.py:10:5" in text
    assert "REP001" in text
    assert "[error]" in text
    assert text.endswith("(derive time from the record stream)")
    assert not _finding(suggestion=None).render().endswith(")")


def test_fingerprint_is_line_insensitive():
    assert _finding(line=10).fingerprint() == _finding(line=99, col=1).fingerprint()
    assert _finding().fingerprint() != _finding(message="other").fingerprint()
    assert _finding().fingerprint() != _finding(path="src/other.py").fingerprint()


def test_sort_key_orders_by_path_then_line():
    first = _finding(path="a.py", line=5)
    second = _finding(path="a.py", line=9)
    third = _finding(path="b.py", line=1)
    unsorted = [third, second, first]
    assert sorted(unsorted, key=Finding.sort_key) == [first, second, third]


def test_dict_round_trip():
    finding = _finding()
    assert Finding.from_dict(finding.to_dict()) == finding
    bare = _finding(suggestion=None)
    assert Finding.from_dict(bare.to_dict()) == bare


def test_from_dict_rejects_unknown_keys():
    payload = _finding().to_dict()
    payload["extra"] = 1
    with pytest.raises(LintError, match="extra"):
        Finding.from_dict(payload)


def test_from_dict_rejects_missing_keys():
    payload = _finding().to_dict()
    del payload["message"]
    with pytest.raises(LintError, match="message"):
        Finding.from_dict(payload)
