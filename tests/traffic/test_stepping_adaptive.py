"""Tests for the step-wise generation protocol and the adaptive actors."""

from __future__ import annotations

import random
from datetime import datetime, timedelta, timezone

import pytest

from repro.traffic.actors import TimeWindow
from repro.traffic.adaptive import AdaptiveCampaign, AdaptiveScraperNode
from repro.traffic.humans import HumanVisitor
from repro.traffic.ipspace import IPSpace
from repro.traffic.site import SiteModel
from repro.traffic.stepping import (
    ALLOW_FEEDBACK,
    Feedback,
    ResponsiveSteppedActor,
    ScriptedSteppedActor,
    as_stepped,
)
from repro.traffic.useragents import UserAgentCatalog

WINDOW = TimeWindow(start=datetime(2018, 3, 14, tzinfo=timezone.utc), days=1)


def make_human(budget: int = 60) -> HumanVisitor:
    return HumanVisitor(
        "human-0",
        SiteModel(),
        client_ip="10.16.0.9",
        user_agent="Mozilla/5.0 (Windows NT 10.0; Win64; x64)",
        request_budget=budget,
    )


def drain(actor, rng, feedback=ALLOW_FEEDBACK):
    events = []
    while actor.peek() is not None:
        event = actor.emit()
        actor.feedback(event, feedback, rng)
        events.append(event)
    return events


class TestFeedback:
    def test_denied_covers_blocks_and_failed_challenges(self):
        assert Feedback(action="block", served=False).denied
        assert Feedback(action="tarpit", served=False).denied
        assert Feedback(action="challenge", served=False, challenge_passed=False).denied
        assert not Feedback(action="challenge", served=True, challenge_passed=True).denied
        assert not ALLOW_FEEDBACK.denied


class TestScriptedSteppedActor:
    def test_replays_the_batch_trace_in_time_order(self):
        human = make_human()
        batch_events = sorted(
            human.generate(WINDOW, random.Random(3)), key=lambda e: e.timestamp
        )
        stepped = ScriptedSteppedActor(make_human())
        stepped.begin(WINDOW, random.Random(3))
        replayed = drain(stepped, random.Random(0))
        assert [e.timestamp for e in replayed] == [e.timestamp for e in batch_events]
        assert [e.path for e in replayed] == [e.path for e in batch_events]
        assert stepped.actor_class == "human"

    def test_peek_announces_emit(self):
        stepped = ScriptedSteppedActor(make_human())
        stepped.begin(WINDOW, random.Random(3))
        while stepped.peek() is not None:
            announced = stepped.peek()
            assert stepped.emit().timestamp == announced

    def test_scripts_cannot_solve_challenges(self):
        stepped = ScriptedSteppedActor(make_human())
        assert stepped.solve_challenge(random.Random(0)) is False

    def test_as_stepped_wraps_a_population(self):
        population = as_stepped([make_human(), make_human()])
        assert len(population) == 2
        assert population.class_counts() == {"human": 2}


class TestResponsiveSteppedActor:
    def test_abandons_after_denial(self):
        actor = ResponsiveSteppedActor(make_human(120), challenge_skill=0.9)
        actor.begin(WINDOW, random.Random(3))
        event = actor.emit()
        remaining_before = actor.remaining
        assert remaining_before > 0
        actor.feedback(event, Feedback(action="block", served=False), random.Random(0))
        assert actor.peek() is None
        assert actor.abandoned_requests == remaining_before

    def test_keeps_going_when_served(self):
        actor = ResponsiveSteppedActor(make_human(120))
        actor.begin(WINDOW, random.Random(3))
        event = actor.emit()
        actor.feedback(event, ALLOW_FEEDBACK, random.Random(0))
        assert actor.peek() is not None
        assert actor.abandoned_requests == 0

    def test_challenge_skill_bounds(self):
        with pytest.raises(ValueError):
            ResponsiveSteppedActor(make_human(), challenge_skill=1.5)
        never = ResponsiveSteppedActor(make_human(), challenge_skill=0.0)
        always = ResponsiveSteppedActor(make_human(), challenge_skill=1.0)
        rng = random.Random(1)
        assert not any(never.solve_challenge(rng) for _ in range(20))
        assert all(always.solve_challenge(rng) for _ in range(20))


def make_node(**kwargs) -> AdaptiveScraperNode:
    defaults = dict(
        ip_space=IPSpace(),
        agents=UserAgentCatalog(),
        request_budget=500,
        requests_per_minute=90.0,
        identities=4,
    )
    defaults.update(kwargs)
    return AdaptiveScraperNode("adaptive-0", SiteModel(), **defaults)


class TestAdaptiveScraperNode:
    def test_emits_nondecreasing_timestamps_within_window(self):
        node = make_node()
        node.begin(WINDOW, random.Random(9))
        events = drain(node, random.Random(9))
        assert events
        timestamps = [e.timestamp for e in events]
        assert timestamps == sorted(timestamps)
        assert all(WINDOW.contains(ts) for ts in timestamps)
        assert all(e.actor_class == "adaptive_scraper" for e in events)

    def test_rotates_identity_and_lies_low_after_block(self):
        node = make_node()
        rng = random.Random(9)
        node.begin(WINDOW, rng)
        event = node.emit()
        old_identity = (event.client_ip, event.user_agent)
        before = node.peek()
        node.feedback(event, Feedback(action="block", served=False), rng)
        assert node.rotations == 1
        after = node.peek()
        # Lies low at least long enough for the old session to time out.
        assert after - before >= timedelta(minutes=30)
        follow_up = node.emit()
        assert (follow_up.client_ip, follow_up.user_agent) != old_identity

    def test_gives_up_when_identities_run_out(self):
        node = make_node(identities=2)
        rng = random.Random(9)
        node.begin(WINDOW, rng)
        node.feedback(node.emit(), Feedback(action="block", served=False), rng)
        assert node.rotations == 1 and not node.gave_up
        node.feedback(node.emit(), Feedback(action="block", served=False), rng)
        assert node.gave_up
        assert node.peek() is None

    def test_failed_challenge_counts_as_denial(self):
        node = make_node()
        rng = random.Random(9)
        node.begin(WINDOW, rng)
        node.feedback(
            node.emit(),
            Feedback(action="challenge", served=False, challenge_passed=False),
            rng,
        )
        assert node.rotations == 1

    def test_backs_off_on_throttle_and_recovers(self):
        node = make_node()
        rng = random.Random(9)
        node.begin(WINDOW, rng)
        node.feedback(node.emit(), Feedback(action="throttle", served=True, delay_seconds=2.0), rng)
        slowed = node._slowdown
        assert slowed > 1.0
        node.feedback(node.emit(), ALLOW_FEEDBACK, rng)
        assert node._slowdown < slowed

    def test_validation(self):
        with pytest.raises(ValueError):
            make_node(identities=0)
        with pytest.raises(ValueError):
            make_node(challenge_skill=2.0)
        with pytest.raises(ValueError):
            make_node(backoff_factor=0.5)


class TestAdaptiveCampaign:
    def test_builds_budgeted_fleet(self):
        campaign = AdaptiveCampaign(name="camp", total_requests=5000, nodes=4)
        rng = random.Random(2)
        actors = campaign.build_actors(SiteModel(), IPSpace(), UserAgentCatalog(), rng)
        assert len(actors) == 4
        assert {actor.actor_id for actor in actors} == {f"camp-node{i}" for i in range(4)}
        assert sum(actor.request_budget for actor in actors) >= 4000

    def test_population_builder_and_validation(self):
        campaign = AdaptiveCampaign(name="camp", total_requests=1000, nodes=2)
        population = campaign.build_population(
            SiteModel(), IPSpace(), UserAgentCatalog(), random.Random(2)
        )
        assert population.class_counts() == {"adaptive_scraper": 2}
        with pytest.raises(ValueError):
            AdaptiveCampaign(name="bad", total_requests=-1, nodes=2)
        with pytest.raises(ValueError):
            AdaptiveCampaign(name="bad", total_requests=10, nodes=0)
