"""Tests for :mod:`repro.traffic.site`."""

from __future__ import annotations

import random

import pytest

from repro.traffic.site import Endpoint, SiteModel


@pytest.fixture()
def site() -> SiteModel:
    return SiteModel()


@pytest.fixture()
def rng() -> random.Random:
    return random.Random(42)


class TestEndpoint:
    def test_choose_status_respects_weights(self, rng):
        endpoint = Endpoint(name="x", path_template="/x", status_weights={200: 1.0}, mean_size=100)
        assert endpoint.choose_status(rng) == 200

    def test_choose_status_only_returns_listed_codes(self, rng):
        endpoint = Endpoint(name="x", path_template="/x", status_weights={200: 0.5, 302: 0.5}, mean_size=100)
        statuses = {endpoint.choose_status(rng) for _ in range(200)}
        assert statuses <= {200, 302}
        assert len(statuses) == 2


class TestSiteModelEndpoints:
    def test_default_endpoints_include_core_pages(self, site):
        names = set(site.endpoint_names())
        assert {"home", "search", "offer", "price_api", "availability", "booking", "beacon", "robots"} <= names

    def test_unknown_endpoint_raises(self, site):
        with pytest.raises(KeyError, match="unknown endpoint"):
            site.endpoint("nope")

    def test_build_path_substitutes_item_id(self, site, rng):
        path = site.build_path("offer", rng, item_id=123)
        assert path == "/offers/123"

    def test_build_path_search_has_query(self, site, rng):
        path = site.build_path("search", rng)
        assert path.startswith("/search?")
        assert "o=" in path and "d=" in path

    def test_build_path_api_has_query(self, site, rng):
        path = site.build_path("price_api", rng)
        assert path.startswith("/api/price?")

    def test_build_path_custom_query(self, site, rng):
        path = site.build_path("search", rng, query="o=PAR&d=LIS")
        assert path == "/search?o=PAR&d=LIS"

    def test_search_query_origin_differs_from_destination(self, site, rng):
        for _ in range(50):
            query = site.search_query(rng)
            params = dict(part.split("=") for part in query.split("&"))
            assert params["o"] != params["d"]

    def test_malformed_query_is_nonempty(self, site, rng):
        assert site.malformed_query(rng)


class TestSiteModelResponses:
    def test_malformed_request_returns_400(self, site, rng):
        status, size = site.respond("search", rng, malformed=True)
        assert status == 400
        assert size > 0

    def test_not_found_returns_404(self, site, rng):
        status, _ = site.respond("offer", rng, not_found=True)
        assert status == 404

    def test_conditional_asset_returns_304_with_zero_size(self, site, rng):
        status, size = site.respond("asset_css", rng, conditional=True)
        assert status == 304
        assert size == 0

    def test_conditional_ignored_for_non_conditional_endpoints(self, site, rng):
        statuses = {site.respond("search", rng, conditional=True)[0] for _ in range(100)}
        assert 304 not in statuses

    def test_beacon_mostly_204(self, site, rng):
        statuses = [site.respond("beacon", rng)[0] for _ in range(300)]
        assert statuses.count(204) > 250

    def test_search_mostly_200_with_some_302(self, site, rng):
        statuses = [site.respond("search", rng)[0] for _ in range(2000)]
        assert statuses.count(200) > 1800
        assert statuses.count(302) > 10

    def test_204_and_304_have_zero_size(self, site, rng):
        for _ in range(200):
            status, size = site.respond("availability", rng)
            if status == 204:
                assert size == 0

    def test_200_sizes_scale_with_endpoint_mean(self, site, rng):
        search_sizes = []
        beacon_like = []
        for _ in range(200):
            status, size = site.respond("search", rng)
            if status == 200:
                search_sizes.append(size)
            status, size = site.respond("price_api", rng)
            if status == 200:
                beacon_like.append(size)
        assert sum(search_sizes) / len(search_sizes) > sum(beacon_like) / len(beacon_like)

    def test_responses_deterministic_for_same_seed(self, site):
        first = [site.respond("search", random.Random(7)) for _ in range(1)]
        second = [site.respond("search", random.Random(7)) for _ in range(1)]
        assert first == second
