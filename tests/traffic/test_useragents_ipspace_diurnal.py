"""Tests for user agents, IP space and diurnal profile models."""

from __future__ import annotations

import random
from datetime import datetime, timezone

import pytest

from repro.traffic.diurnal import DiurnalProfile
from repro.traffic.ipspace import (
    CRAWLER_POOL,
    DATACENTER_POOL,
    RESIDENTIAL_POOL,
    IPPool,
    IPSpace,
    addresses_from,
    prefix24,
    spread_over_pools,
)
from repro.traffic.useragents import (
    UserAgentCatalog,
    is_headless_agent,
    is_known_crawler_agent,
    is_scripted_agent,
)


class TestUserAgentClassification:
    @pytest.mark.parametrize(
        "agent",
        ["python-requests/2.18.4", "curl/7.58.0", "Scrapy/1.5.0 (+https://scrapy.org)", "Java/1.8.0_161", "Go-http-client/1.1"],
    )
    def test_scripted_agents_detected(self, agent):
        assert is_scripted_agent(agent)

    def test_browser_agent_not_scripted(self):
        catalog = UserAgentCatalog()
        rng = random.Random(1)
        assert not is_scripted_agent(catalog.random_browser(rng))

    def test_headless_detected(self):
        assert is_headless_agent(
            "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like Gecko) HeadlessChrome/64.0.3282.186 Safari/537.36"
        )

    def test_known_crawler_detected(self):
        assert is_known_crawler_agent("Mozilla/5.0 (compatible; Googlebot/2.1; +http://www.google.com/bot.html)")
        assert not is_known_crawler_agent("curl/7.58.0")

    def test_catalog_draws_from_each_family(self):
        catalog = UserAgentCatalog()
        rng = random.Random(3)
        assert is_scripted_agent(catalog.random_scripted(rng))
        assert is_headless_agent(catalog.random_headless(rng))
        assert is_known_crawler_agent(catalog.random_crawler(rng))
        assert not is_scripted_agent(catalog.random_browser(rng))


class TestIPPools:
    def test_random_address_is_inside_pool(self):
        rng = random.Random(5)
        for pool in (RESIDENTIAL_POOL, DATACENTER_POOL, CRAWLER_POOL):
            for _ in range(20):
                assert pool.contains(pool.random_address(rng))

    def test_pools_are_disjoint(self):
        rng = random.Random(5)
        for _ in range(20):
            address = DATACENTER_POOL.random_address(rng)
            assert not RESIDENTIAL_POOL.contains(address)

    def test_pool_of_classifies_addresses(self):
        space = IPSpace()
        rng = random.Random(5)
        assert space.pool_of(space.datacenter.random_address(rng)) == "datacenter"
        assert space.pool_of(space.residential.random_address(rng)) == "residential"
        assert space.pool_of("203.0.113.9") == "unknown"

    def test_prefix24(self):
        assert prefix24("10.16.3.7") == "10.16.3"

    def test_reputation_blocklist_targets_datacenter_space(self):
        space = IPSpace()
        blocklist = space.reputation_blocklist(random.Random(99))
        assert blocklist, "the feed should flag something"
        # Every flagged prefix comes from the datacenter pool.
        for prefix in list(blocklist)[:50]:
            assert space.datacenter.contains(prefix + ".1")
        # And no residential prefix is flagged.
        rng = random.Random(1)
        for _ in range(50):
            address = space.residential.random_address(rng)
            assert prefix24(address) not in blocklist

    def test_reputation_blocklist_fraction_scales(self):
        space = IPSpace()
        small = space.reputation_blocklist(random.Random(1), datacenter_fraction=0.1)
        large = space.reputation_blocklist(random.Random(1), datacenter_fraction=0.9)
        assert len(large) > len(small)

    def test_addresses_from_and_spread(self):
        rng = random.Random(2)
        addresses = addresses_from(RESIDENTIAL_POOL, 10, rng)
        assert len(addresses) == 10
        spread = spread_over_pools([RESIDENTIAL_POOL, DATACENTER_POOL], 10, rng)
        assert len(spread) == 10

    def test_custom_pool_contains(self):
        pool = IPPool(name="test", cidrs=("192.0.2.0/24",))
        assert pool.contains("192.0.2.55")
        assert not pool.contains("192.0.3.55")


class TestDiurnalProfile:
    def test_needs_24_weights(self):
        with pytest.raises(ValueError, match="24 hourly weights"):
            DiurnalProfile(hourly_weights=(1.0,) * 23)

    def test_rejects_negative_weights(self):
        weights = [1.0] * 24
        weights[3] = -1.0
        with pytest.raises(ValueError, match="non-negative"):
            DiurnalProfile(hourly_weights=tuple(weights))

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError, match="positive"):
            DiurnalProfile(hourly_weights=(0.0,) * 24)

    def test_samples_fall_within_day(self):
        profile = DiurnalProfile.human()
        day_start = datetime(2018, 3, 11, tzinfo=timezone.utc)
        rng = random.Random(11)
        times = profile.sample_times(day_start, 200, rng)
        assert all(t.date() == day_start.date() for t in times)
        assert times == sorted(times)

    def test_human_profile_prefers_evening_over_night(self):
        profile = DiurnalProfile.human()
        day_start = datetime(2018, 3, 11, tzinfo=timezone.utc)
        rng = random.Random(11)
        hours = [profile.random_time_in_day(day_start, rng).hour for _ in range(3000)]
        night = sum(1 for hour in hours if hour < 6)
        evening = sum(1 for hour in hours if 18 <= hour < 23)
        assert evening > night * 2

    def test_flat_profile_is_roughly_uniform(self):
        profile = DiurnalProfile.flat()
        day_start = datetime(2018, 3, 11, tzinfo=timezone.utc)
        rng = random.Random(11)
        hours = [profile.random_time_in_day(day_start, rng).hour for _ in range(4800)]
        counts = [hours.count(hour) for hour in range(24)]
        assert min(counts) > 100  # ~200 expected per hour
