"""Tests for the actor framework, humans, good bots and scraper families."""

from __future__ import annotations

import random
from datetime import datetime, timezone

import pytest

from repro.traffic.actors import ActorPopulation, TimeWindow, split_budget, spread_session_starts
from repro.traffic.goodbots import MonitoringBot, SearchEngineCrawler
from repro.traffic.humans import HumanVisitor
from repro.traffic.ipspace import IPSpace
from repro.traffic.scrapers import AggressiveScraper, ProbingScraper, StealthScraper
from repro.traffic.site import SiteModel
from repro.traffic.useragents import UserAgentCatalog, is_known_crawler_agent

WINDOW = TimeWindow(start=datetime(2018, 3, 11, tzinfo=timezone.utc), days=2)
SITE = SiteModel()
AGENTS = UserAgentCatalog()
IPS = IPSpace()


def _rng(seed: int = 7) -> random.Random:
    return random.Random(seed)


class TestTimeWindow:
    def test_end_is_start_plus_days(self):
        assert (WINDOW.end - WINDOW.start).days == 2

    def test_rejects_non_positive_days(self):
        with pytest.raises(ValueError):
            TimeWindow(start=WINDOW.start, days=0)

    def test_contains_and_clamp(self):
        inside = WINDOW.start.replace(hour=5)
        assert WINDOW.contains(inside)
        assert not WINDOW.contains(WINDOW.end)
        assert WINDOW.clamp(WINDOW.end) < WINDOW.end
        assert WINDOW.clamp(WINDOW.start) == WINDOW.start

    def test_day_starts(self):
        starts = WINDOW.day_starts()
        assert len(starts) == 2
        assert starts[0] == WINDOW.start


class TestHelpers:
    def test_split_budget_sums_to_roughly_total(self):
        shares = split_budget(1000, 7, _rng())
        assert len(shares) == 7
        assert abs(sum(shares) - 1000) < 100

    def test_split_budget_zero_parts(self):
        assert split_budget(100, 0, _rng()) == []

    def test_split_budget_zero_total(self):
        assert split_budget(0, 3, _rng()) == [0, 0, 0]

    def test_split_budget_negative_parts(self):
        assert split_budget(100, -2, _rng()) == []

    def test_split_budget_negative_total(self):
        assert split_budget(-5, 3, _rng()) == [0, 0, 0]

    def test_split_budget_parts_are_positive_when_budget_allows(self):
        # Every part is at least 1 whenever total >= parts, so no actor is
        # ever instantiated with an empty budget.
        for seed in range(20):
            for total, parts in ((10, 10), (50, 7), (1000, 13)):
                shares = split_budget(total, parts, random.Random(seed))
                assert len(shares) == parts
                assert all(share >= 1 for share in shares)

    def test_split_budget_sum_preserved_up_to_rounding(self):
        # The normalised weights keep the total exact up to one rounding
        # unit per part (plus the >=1 clamp when total >= parts).
        for seed in range(20):
            total, parts = 10_000, 11
            shares = split_budget(total, parts, random.Random(seed))
            assert abs(sum(shares) - total) <= parts

    def test_split_budget_jitter_bounds_the_largest_share(self):
        # With multiplicative jitter j the largest normalised weight is at
        # most (1+j)/(parts*(1-j)), bounding every share accordingly.
        total, parts, jitter = 12_000, 8, 0.2
        upper = total * (1 + jitter) / (parts * (1 - jitter)) + 1
        for seed in range(20):
            shares = split_budget(total, parts, random.Random(seed), jitter=jitter)
            assert max(shares) <= upper
            assert min(shares) >= 1

    def test_spread_session_starts_sorted_and_inside_window(self):
        starts = spread_session_starts(WINDOW, 50, _rng())
        assert starts == sorted(starts)
        assert all(WINDOW.start <= s < WINDOW.end or s < WINDOW.end for s in starts)


class TestActorPopulation:
    def test_add_and_counts(self):
        population = ActorPopulation()
        population.add(HumanVisitor("h0", SITE, client_ip="10.16.0.1", user_agent=AGENTS.random_browser(_rng())))
        population.extend(
            [
                AggressiveScraper("a0", SITE, client_ip="172.20.0.5", user_agent="curl/7.58.0", request_budget=100),
                AggressiveScraper("a1", SITE, client_ip="172.20.0.6", user_agent="curl/7.58.0", request_budget=100),
            ]
        )
        assert len(population) == 3
        assert population.class_counts() == {"human": 1, "aggressive_scraper": 2}


class TestHumanVisitor:
    def test_generates_roughly_its_budget(self):
        human = HumanVisitor("h0", SITE, client_ip="10.16.0.1", user_agent=AGENTS.random_browser(_rng()), request_budget=40)
        events = human.generate(WINDOW, _rng())
        assert 10 <= len(events) <= 60

    def test_loads_assets_and_sends_referrers(self):
        human = HumanVisitor("h0", SITE, client_ip="10.16.0.1", user_agent=AGENTS.random_browser(_rng()), request_budget=60)
        events = human.generate(WINDOW, _rng())
        asset_fraction = sum(1 for e in events if "/static/" in e.path) / len(events)
        referrer_fraction = sum(1 for e in events if e.referrer) / len(events)
        assert asset_fraction > 0.15
        assert referrer_fraction > 0.5

    def test_human_pacing_is_not_machine_fast(self):
        human = HumanVisitor("h0", SITE, client_ip="10.16.0.1", user_agent=AGENTS.random_browser(_rng()), request_budget=40)
        events = sorted(human.generate(WINDOW, _rng()), key=lambda e: e.timestamp)
        gaps = [
            (b.timestamp - a.timestamp).total_seconds()
            for a, b in zip(events, events[1:])
            if (b.timestamp - a.timestamp).total_seconds() < 1800
        ]
        assert sum(gaps) / len(gaps) > 2.0

    def test_events_within_window(self):
        human = HumanVisitor("h0", SITE, client_ip="10.16.0.1", user_agent=AGENTS.random_browser(_rng()), request_budget=30)
        for event in human.generate(WINDOW, _rng()):
            assert WINDOW.start <= event.timestamp < WINDOW.end

    def test_actor_class_label(self):
        human = HumanVisitor("h0", SITE, client_ip="10.16.0.1", user_agent="x", request_budget=10)
        assert human.actor_class == "human"
        assert all(e.actor_class == "human" for e in human.generate(WINDOW, _rng()))


class TestGoodBots:
    def test_crawler_fetches_robots_and_paces_politely(self):
        crawler = SearchEngineCrawler(
            "c0", SITE, client_ip=IPS.crawler.random_address(_rng()), user_agent=AGENTS.random_crawler(_rng()), request_budget=100
        )
        events = crawler.generate(WINDOW, _rng())
        assert any(e.path == "/robots.txt" for e in events)
        assert all(is_known_crawler_agent(e.user_agent) for e in events)
        assert 20 <= len(events) <= 130

    def test_monitoring_bot_interval(self):
        bot = MonitoringBot("m0", SITE, client_ip=IPS.crawler.random_address(_rng()), user_agent=AGENTS.random_crawler(_rng()), interval_minutes=60)
        events = bot.generate(WINDOW, _rng())
        # Two days at one probe per hour.
        assert 40 <= len(events) <= 56
        assert any(e.method == "HEAD" for e in events)


class TestScrapers:
    def test_aggressive_scraper_volume_and_rate(self):
        scraper = AggressiveScraper(
            "a0", SITE, client_ip="172.20.1.5", user_agent="python-requests/2.18.4", request_budget=600, requests_per_minute=120
        )
        events = sorted(scraper.generate(WINDOW, _rng()), key=lambda e: e.timestamp)
        assert 400 <= len(events) <= 700
        gaps = [
            (b.timestamp - a.timestamp).total_seconds()
            for a, b in zip(events, events[1:])
            if (b.timestamp - a.timestamp).total_seconds() < 300
        ]
        assert sum(gaps) / len(gaps) < 2.0  # machine-fast pacing

    def test_aggressive_scraper_never_loads_assets(self):
        scraper = AggressiveScraper("a0", SITE, client_ip="172.20.1.5", user_agent="curl/7.58.0", request_budget=300)
        events = scraper.generate(WINDOW, _rng())
        assert not any("/static/" in e.path for e in events)
        assert all(e.referrer == "" for e in events)

    def test_stealth_scraper_rotates_ips_and_paces_slowly(self):
        ips = ["10.96.0.5", "10.96.0.6", "10.96.0.7"]
        scraper = StealthScraper(
            "s0", SITE, client_ips=ips, user_agent=AGENTS.random_browser(_rng()), request_budget=300, requests_per_minute=8, evasive_fraction=0.0
        )
        events = scraper.generate(WINDOW, _rng())
        assert {e.client_ip for e in events} <= set(ips)
        assert len({e.client_ip for e in events}) >= 2
        assert 200 <= len(events) <= 350

    def test_stealth_scraper_requires_ips(self):
        with pytest.raises(ValueError, match="at least one client IP"):
            StealthScraper("s0", SITE, client_ips=[], user_agent="x")

    def test_probing_scraper_produces_probe_statuses(self):
        scraper = ProbingScraper(
            "p0", SITE, client_ip="10.96.2.9", user_agent=AGENTS.random_browser(_rng()), request_budget=600
        )
        events = scraper.generate(WINDOW, _rng())
        statuses = [e.status for e in events]
        assert statuses.count(204) / len(statuses) > 0.03
        assert statuses.count(400) / len(statuses) > 0.02
        assert any(e.method == "HEAD" for e in events)
        assert statuses.count(200) / len(statuses) > 0.5

    def test_scraper_budgets_respected_roughly(self):
        scraper = ProbingScraper("p0", SITE, client_ip="10.96.2.9", user_agent="x", request_budget=200)
        events = scraper.generate(WINDOW, _rng())
        assert 120 <= len(events) <= 260

    def test_all_scraper_classes_labelled_malicious(self):
        from repro.traffic.labels import is_malicious_class

        for actor_class in ("aggressive_scraper", "stealth_scraper", "probing_scraper"):
            assert is_malicious_class(actor_class)
        for actor_class in ("human", "search_crawler", "monitoring_bot", "somebody_else"):
            assert not is_malicious_class(actor_class)
