"""Tests for the botnet builder, the generator and the scenario presets."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import ScenarioError
from repro.traffic.actors import TimeWindow
from repro.traffic.botnet import BotnetCampaign
from repro.traffic.generator import TrafficGenerator, generate_dataset
from repro.traffic.ipspace import IPSpace
from repro.traffic.labels import actor_label
from repro.traffic.scenarios import (
    DEFAULT_MIX,
    PAPER_TOTAL_REQUESTS,
    Scenario,
    amadeus_march_2018,
    balanced_small,
    get_scenario,
    list_scenarios,
    stealth_heavy,
)
from repro.traffic.site import SiteModel
from repro.traffic.useragents import UserAgentCatalog


class TestBotnetCampaign:
    def test_rejects_unknown_family(self):
        with pytest.raises(ValueError, match="unknown campaign family"):
            BotnetCampaign(name="x", family="weird", total_requests=10, nodes=1)

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError, match="at least one node"):
            BotnetCampaign(name="x", family="aggressive", total_requests=10, nodes=0)

    def test_builds_requested_node_count(self):
        campaign = BotnetCampaign(name="camp", family="aggressive", total_requests=1000, nodes=4)
        actors = campaign.build_actors(SiteModel(), IPSpace(), UserAgentCatalog(), random.Random(3))
        assert len(actors) == 4
        assert all(actor.actor_class == "aggressive_scraper" for actor in actors)

    def test_stealth_nodes_use_proxy_pool(self):
        campaign = BotnetCampaign(name="camp", family="stealth", total_requests=500, nodes=3)
        space = IPSpace()
        actors = campaign.build_actors(SiteModel(), space, UserAgentCatalog(), random.Random(3))
        for actor in actors:
            for ip in actor.client_ips:
                assert space.proxy.contains(ip)

    def test_aggressive_nodes_use_datacenter_pool(self):
        campaign = BotnetCampaign(name="camp", family="aggressive", total_requests=500, nodes=3)
        space = IPSpace()
        actors = campaign.build_actors(SiteModel(), space, UserAgentCatalog(), random.Random(3))
        assert all(space.datacenter.contains(actor.client_ip) for actor in actors)


class TestTrafficGenerator:
    def test_generation_is_deterministic(self):
        scenario = balanced_small(total_requests=1500, seed=11)
        first = generate_dataset(scenario)
        second = generate_dataset(scenario)
        assert len(first) == len(second)
        assert [r.path for r in first][:50] == [r.path for r in second][:50]
        assert [r.client_ip for r in first][:50] == [r.client_ip for r in second][:50]

    def test_different_seeds_differ(self):
        first = generate_dataset(balanced_small(total_requests=1500, seed=1))
        second = generate_dataset(balanced_small(total_requests=1500, seed=2))
        assert [r.path for r in first][:100] != [r.path for r in second][:100]

    def test_records_sorted_by_time_with_unique_ids(self, small_dataset):
        timestamps = [r.timestamp for r in small_dataset]
        assert timestamps == sorted(timestamps)
        assert len(set(small_dataset.request_ids)) == len(small_dataset)

    def test_every_record_labelled(self, small_dataset):
        assert small_dataset.is_labelled

    def test_labels_match_actor_classes(self, small_dataset):
        truth = small_dataset.ground_truth
        for record in list(small_dataset)[:500]:
            actor_class = truth.actor_class_of(record.request_id)
            assert truth.label_of(record.request_id) == actor_label(actor_class)

    def test_total_request_budget_roughly_met(self):
        dataset = generate_dataset(balanced_small(total_requests=3000, seed=5))
        assert 0.7 * 3000 <= len(dataset) <= 1.3 * 3000

    def test_generation_result_accounting(self):
        scenario = balanced_small(total_requests=1000, seed=3)
        population = scenario.build_population(random.Random(scenario.seed))
        generator = TrafficGenerator(population, scenario.window, seed=scenario.seed)
        result = generator.run(dataset_name="demo")
        assert result.total_requests == len(result.dataset)
        assert set(result.events_per_class) <= {
            "human",
            "search_crawler",
            "monitoring_bot",
            "aggressive_scraper",
            "stealth_scraper",
            "probing_scraper",
        }


class TestScenarioValidation:
    def test_mix_must_sum_to_one(self):
        window = TimeWindow(start=amadeus_march_2018().window.start, days=1)
        with pytest.raises(ScenarioError, match="sum to 1.0"):
            Scenario(name="bad", window=window, total_requests=100, mix={"human": 0.5})

    def test_unknown_class_rejected(self):
        window = TimeWindow(start=amadeus_march_2018().window.start, days=1)
        with pytest.raises(ScenarioError, match="unknown traffic classes"):
            Scenario(name="bad", window=window, total_requests=100, mix={"human": 0.5, "aliens": 0.5})

    def test_positive_budget_required(self):
        window = TimeWindow(start=amadeus_march_2018().window.start, days=1)
        with pytest.raises(ScenarioError, match="positive request budget"):
            Scenario(name="bad", window=window, total_requests=0)

    def test_budget_for(self):
        scenario = amadeus_march_2018(scale=0.01)
        assert scenario.budget_for("aggressive") == int(round(scenario.total_requests * DEFAULT_MIX["aggressive"]))
        assert scenario.budget_for("unknown") == 0


class TestScenarioPresets:
    def test_amadeus_scenario_shape(self):
        scenario = amadeus_march_2018(scale=0.01)
        assert scenario.window.days == 8
        assert scenario.window.start.year == 2018 and scenario.window.start.month == 3 and scenario.window.start.day == 11
        assert scenario.total_requests == int(round(PAPER_TOTAL_REQUESTS * 0.01))

    def test_amadeus_scale_must_be_positive(self):
        with pytest.raises(ScenarioError):
            amadeus_march_2018(scale=0)

    def test_scenario_listing_and_lookup(self):
        names = list_scenarios()
        assert {"amadeus_march_2018", "balanced_small", "stealth_heavy"} <= set(names)
        scenario = get_scenario("stealth_heavy", total_requests=2000)
        assert scenario.name == "stealth_heavy"

    def test_unknown_scenario_raises(self):
        with pytest.raises(ScenarioError, match="unknown scenario"):
            get_scenario("nope")

    def test_calibrated_scenario_is_bot_dominated(self, calibrated_dataset):
        assert calibrated_dataset.malicious_fraction() > 0.7

    def test_balanced_scenario_is_more_even(self, small_dataset):
        fraction = small_dataset.malicious_fraction()
        assert 0.3 < fraction < 0.75

    def test_stealth_heavy_has_more_stealth_than_aggressive(self):
        dataset = generate_dataset(stealth_heavy(total_requests=4000, seed=23))
        counts = dataset.ground_truth.actor_class_counts()
        assert counts.get("stealth_scraper", 0) > counts.get("aggressive_scraper", 0)

    def test_calibrated_statuses_include_paper_codes(self, calibrated_dataset):
        statuses = set(calibrated_dataset.status_counts())
        assert {200, 302, 204, 400} <= statuses

    def test_population_contains_all_classes(self):
        scenario = amadeus_march_2018(scale=0.01)
        population = scenario.build_population(random.Random(1))
        counts = population.class_counts()
        assert {"aggressive_scraper", "stealth_scraper", "probing_scraper", "human", "search_crawler", "monitoring_bot"} <= set(counts)

    def test_eight_days_of_traffic(self, calibrated_dataset):
        assert len(calibrated_dataset.day_counts()) == 8
