"""Tests for :mod:`repro.core.alerts`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.alerts import Alert, AlertMatrix, AlertSet
from repro.exceptions import AnalysisError
from repro.logs.dataset import Dataset
from tests.helpers import make_alert_matrix, make_records


class TestAlert:
    def test_negative_score_rejected(self):
        with pytest.raises(ValueError):
            Alert(request_id="r0", detector="d", score=-0.1)

    def test_defaults(self):
        alert = Alert(request_id="r0", detector="d")
        assert alert.score == 1.0
        assert alert.reasons == ()


class TestAlertSet:
    def test_requires_name(self):
        with pytest.raises(ValueError):
            AlertSet("")

    def test_add_and_membership(self):
        alerts = AlertSet("tool")
        alerts.add("r0", score=0.5, reasons=("x",))
        assert "r0" in alerts
        assert "r1" not in alerts
        assert len(alerts) == 1
        assert alerts.request_ids() == {"r0"}

    def test_duplicate_add_merges_reasons_and_keeps_max_score(self):
        alerts = AlertSet("tool")
        alerts.add("r0", score=0.4, reasons=("first",))
        alerts.add("r0", score=0.9, reasons=("second", "first"))
        alert = alerts.get("r0")
        assert alert.score == 0.9
        assert alert.reasons == ("first", "second")
        assert len(alerts) == 1

    def test_add_alert_enforces_detector_name(self):
        alerts = AlertSet("tool")
        with pytest.raises(AnalysisError):
            alerts.add_alert(Alert(request_id="r0", detector="other"))

    def test_reason_counts(self):
        alerts = AlertSet("tool")
        alerts.add("r0", reasons=("rate",))
        alerts.add("r1", reasons=("rate", "agent"))
        assert alerts.reason_counts() == {"rate": 2, "agent": 1}

    def test_restrict_to(self):
        alerts = AlertSet("tool")
        alerts.add("r0")
        alerts.add("r1")
        restricted = alerts.restrict_to(["r1", "r9"])
        assert restricted.request_ids() == {"r1"}
        assert restricted.detector_name == "tool"

    def test_iteration_yields_request_ids(self):
        alerts = AlertSet("tool")
        alerts.add("a")
        alerts.add("b")
        assert set(alerts) == {"a", "b"}


class TestAlertMatrix:
    def _dataset(self, n: int = 6) -> Dataset:
        return Dataset(make_records(n))

    def test_from_alert_sets_shape_and_counts(self):
        dataset = self._dataset()
        matrix = make_alert_matrix(dataset, {"a": ["r0", "r1"], "b": ["r1", "r2", "r3"]})
        assert matrix.n_requests == 6
        assert matrix.n_detectors == 2
        assert matrix.alert_counts() == {"a": 2, "b": 3}

    def test_duplicate_detector_names_rejected(self):
        dataset = self._dataset()
        sets = [AlertSet("a"), AlertSet("a")]
        with pytest.raises(AnalysisError, match="duplicate detector names"):
            AlertMatrix.from_alert_sets(dataset, sets)

    def test_unknown_request_id_rejected_when_strict(self):
        dataset = self._dataset()
        alerts = AlertSet("a")
        alerts.add("not-a-request")
        with pytest.raises(AnalysisError, match="unknown request id"):
            AlertMatrix.from_alert_sets(dataset, [alerts])

    def test_unknown_request_id_ignored_when_lenient(self):
        dataset = self._dataset()
        alerts = AlertSet("a")
        alerts.add("not-a-request")
        matrix = AlertMatrix.from_alert_sets(dataset, [alerts], strict=False)
        assert matrix.alert_counts() == {"a": 0}

    def test_column_and_row_access(self):
        dataset = self._dataset(3)
        matrix = make_alert_matrix(dataset, {"a": ["r0"], "b": ["r0", "r2"]})
        np.testing.assert_array_equal(matrix.column("a"), [True, False, False])
        np.testing.assert_array_equal(matrix.row("r0"), [True, True])
        with pytest.raises(AnalysisError):
            matrix.column("nope")
        with pytest.raises(AnalysisError):
            matrix.row("nope")

    def test_votes_and_set_queries(self):
        dataset = self._dataset(4)
        matrix = make_alert_matrix(dataset, {"a": ["r0", "r1"], "b": ["r1", "r2"]})
        assert list(matrix.votes_per_request()) == [1, 2, 1, 0]
        assert matrix.alerted_by("a") == {"r0", "r1"}
        assert matrix.alerted_by_exactly("a") == {"r0"}
        assert matrix.alerted_by_all() == {"r1"}
        assert matrix.alerted_by_none() == {"r3"}

    def test_select_subset_of_detectors(self):
        dataset = self._dataset(3)
        matrix = make_alert_matrix(dataset, {"a": ["r0"], "b": ["r1"], "c": ["r2"]})
        sub = matrix.select(["c", "a"])
        assert sub.detector_names == ["c", "a"]
        assert sub.alert_counts() == {"c": 1, "a": 1}
        with pytest.raises(AnalysisError):
            matrix.select(["nope"])

    def test_to_alert_sets_roundtrip(self):
        dataset = self._dataset(4)
        matrix = make_alert_matrix(dataset, {"a": ["r0", "r3"], "b": []})
        restored = matrix.to_alert_sets()
        assert restored[0].request_ids() == {"r0", "r3"}
        assert len(restored[1]) == 0

    def test_mismatched_matrix_shape_rejected(self):
        with pytest.raises(AnalysisError, match="shape"):
            AlertMatrix(["r0", "r1"], ["a"], np.zeros((3, 1), dtype=bool))
