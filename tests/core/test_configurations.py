"""Tests for the parallel vs serial deployment configurations."""

from __future__ import annotations

import pytest

from repro.core.alerts import AlertSet
from repro.core.configurations import (
    ConfigurationComparison,
    ParallelConfiguration,
    SerialConfiguration,
    compare_configurations,
)
from repro.detectors.base import Detector
from repro.detectors.commercial import CommercialBotDefenceDetector
from repro.detectors.inhouse import InHouseHeuristicDetector
from repro.exceptions import ConfigurationError
from repro.logs.dataset import Dataset
from tests.helpers import make_labelled_dataset, make_records


class _FixedDetector(Detector):
    """Alerts on a fixed set of request ids (ignores the traffic)."""

    def __init__(self, name: str, alerted: set[str]):
        self.name = name
        self.alerted = alerted

    def analyze(self, dataset: Dataset, *, sessions=None) -> AlertSet:
        alerts = AlertSet(self.name)
        for record in dataset:
            if record.request_id in self.alerted:
                alerts.add(record.request_id)
        return alerts


def _fixture():
    dataset = make_labelled_dataset(["m0", "m1", "m2", "m3"], ["b0", "b1", "b2", "b3"])
    first = _FixedDetector("first", {"m0", "m1", "m2", "b0"})
    second = _FixedDetector("second", {"m1", "m2", "m3"})
    return dataset, first, second


class TestParallelConfiguration:
    def test_union_and_intersection(self):
        dataset, first, second = _fixture()
        union = ParallelConfiguration([first, second], k=1).run(dataset)
        both = ParallelConfiguration([first, second], k=2).run(dataset)
        assert union.alerted_ids == frozenset({"m0", "m1", "m2", "m3", "b0"})
        assert both.alerted_ids == frozenset({"m1", "m2"})

    def test_workload_is_full_traffic_per_tool(self):
        dataset, first, second = _fixture()
        outcome = ParallelConfiguration([first, second], k=1).run(dataset)
        assert outcome.workload == {"first": 8, "second": 8}
        assert outcome.total_workload == 16

    def test_confusion_attached_when_labelled(self):
        dataset, first, second = _fixture()
        outcome = ParallelConfiguration([first, second], k=1).run(dataset)
        assert outcome.confusion is not None
        assert outcome.confusion.sensitivity() == pytest.approx(1.0)

    def test_invalid_parameters(self):
        _, first, second = _fixture()
        with pytest.raises(ConfigurationError):
            ParallelConfiguration([], k=1)
        with pytest.raises(ConfigurationError):
            ParallelConfiguration([first, second], k=3)


class TestSerialConfiguration:
    def test_confirm_mode_requires_both(self):
        dataset, first, second = _fixture()
        outcome = SerialConfiguration(first, second, mode="confirm").run(dataset)
        assert outcome.alerted_ids == frozenset({"m1", "m2"})
        # The second tool only saw what the first alerted on.
        assert outcome.workload["second"] == 4
        assert outcome.workload["first"] == 8

    def test_escalate_mode_is_union_with_reduced_workload(self):
        dataset, first, second = _fixture()
        outcome = SerialConfiguration(first, second, mode="escalate").run(dataset)
        assert outcome.alerted_ids == frozenset({"m0", "m1", "m2", "m3", "b0"})
        assert outcome.workload["second"] == 4  # only the 4 unalerted requests

    def test_confirm_reduces_false_positives(self):
        dataset, first, second = _fixture()
        solo = ParallelConfiguration([first], k=1).run(dataset)
        confirmed = SerialConfiguration(first, second, mode="confirm").run(dataset)
        assert confirmed.confusion.false_positive_rate() <= solo.confusion.false_positive_rate()

    def test_unknown_mode_rejected(self):
        _, first, second = _fixture()
        with pytest.raises(ConfigurationError):
            SerialConfiguration(first, second, mode="sideways")

    def test_order_matters_for_workload(self):
        dataset, first, second = _fixture()
        forward = SerialConfiguration(first, second, mode="confirm").run(dataset)
        backward = SerialConfiguration(second, first, mode="confirm").run(dataset)
        assert forward.workload["second"] == 4
        assert backward.workload["first"] == 3
        # But the confirmed alerts are the same set (intersection).
        assert forward.alerted_ids == backward.alerted_ids

    def test_empty_forwarded_traffic_handled(self):
        dataset = Dataset(make_records(4))
        nothing = _FixedDetector("nothing", set())
        outcome = SerialConfiguration(nothing, _FixedDetector("x", {"r0"}), mode="confirm").run(dataset)
        assert outcome.alert_count == 0
        assert outcome.workload["x"] == 0


class TestComparison:
    def test_compare_configurations_names(self):
        dataset, first, second = _fixture()
        comparison = compare_configurations(dataset, first, second)
        names = comparison.names()
        assert "parallel-1oo2" in names
        assert "parallel-2oo2" in names
        assert any(name.startswith("serial-confirm") for name in names)
        assert any(name.startswith("serial-escalate") for name in names)
        assert len(names) == 6

    def test_by_name_and_best_by(self):
        dataset, first, second = _fixture()
        comparison = compare_configurations(dataset, first, second, include_reversed=False)
        assert comparison.by_name("parallel-1oo2").alert_count >= comparison.by_name("parallel-2oo2").alert_count
        best = comparison.best_by("sensitivity")
        assert best.confusion.sensitivity() == max(
            outcome.confusion.sensitivity() for outcome in comparison.outcomes
        )
        with pytest.raises(ConfigurationError):
            comparison.by_name("nope")

    def test_best_by_requires_labels(self):
        comparison = ConfigurationComparison(outcomes=[])
        with pytest.raises(ConfigurationError):
            comparison.best_by("f1")

    def test_workload_fraction(self):
        dataset, first, second = _fixture()
        parallel = ParallelConfiguration([first, second], k=1).run(dataset)
        serial = SerialConfiguration(first, second, mode="confirm").run(dataset)
        assert parallel.workload_fraction() == pytest.approx(1.0)
        assert serial.workload_fraction() < 1.0

    def test_realistic_tools_serial_vs_parallel(self, small_dataset):
        """With the real stand-in tools the serial-confirm deployment cuts the
        second tool's workload dramatically while keeping specificity."""
        comparison = compare_configurations(
            small_dataset,
            CommercialBotDefenceDetector(),
            InHouseHeuristicDetector(),
            include_reversed=False,
        )
        parallel_union = comparison.by_name("parallel-1oo2")
        serial_confirm = comparison.by_name("serial-confirm(commercial->inhouse)")
        assert serial_confirm.total_workload < parallel_union.total_workload
        assert serial_confirm.confusion.specificity() >= parallel_union.confusion.specificity()
        assert parallel_union.confusion.sensitivity() >= serial_confirm.confusion.sensitivity()
