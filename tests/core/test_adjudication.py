"""Tests for the adjudication schemes."""

from __future__ import annotations

import pytest

from repro.core.adjudication import (
    KOutOfNScheme,
    MajorityScheme,
    UnanimousScheme,
    WeightedVoteScheme,
    adjudicate,
    all_k_out_of_n,
    scheme_comparison,
)
from repro.exceptions import AdjudicationError
from repro.logs.dataset import Dataset
from tests.helpers import make_alert_matrix, make_records


def _matrix():
    """Five requests, three detectors with staggered coverage."""
    dataset = Dataset(make_records(5))
    return make_alert_matrix(
        dataset,
        {
            "a": ["r0", "r1", "r2"],
            "b": ["r0", "r1"],
            "c": ["r0", "r3"],
        },
    )


class TestKOutOfN:
    def test_one_out_of_n_is_union(self):
        result = adjudicate(_matrix(), 1)
        assert result.alerted_ids == frozenset({"r0", "r1", "r2", "r3"})
        assert result.alert_count == 4

    def test_n_out_of_n_is_intersection(self):
        result = adjudicate(_matrix(), 3)
        assert result.alerted_ids == frozenset({"r0"})

    def test_intermediate_k(self):
        result = adjudicate(_matrix(), 2)
        assert result.alerted_ids == frozenset({"r0", "r1"})

    def test_alert_rate(self):
        assert adjudicate(_matrix(), 1).alert_rate() == pytest.approx(0.8)

    def test_k_must_be_positive(self):
        with pytest.raises(AdjudicationError):
            KOutOfNScheme(0)

    def test_k_larger_than_n_rejected(self):
        with pytest.raises(AdjudicationError):
            adjudicate(_matrix(), 4)

    def test_scheme_name_includes_k_and_n(self):
        result = adjudicate(_matrix(), 2)
        assert result.scheme_name == "2-out-of-3"

    def test_monotone_in_k(self):
        results = all_k_out_of_n(_matrix())
        sizes = [result.alert_count for result in results]
        assert sizes == sorted(sizes, reverse=True)
        assert len(results) == 3

    def test_result_contains_and_alert_set(self):
        result = adjudicate(_matrix(), 1)
        assert "r0" in result
        assert "r4" not in result
        alert_set = result.to_alert_set()
        assert alert_set.request_ids() == set(result.alerted_ids)


class TestConvenienceSchemes:
    def test_unanimous_equals_n_out_of_n(self):
        matrix = _matrix()
        assert UnanimousScheme().apply(matrix).alerted_ids == adjudicate(matrix, 3).alerted_ids

    def test_majority_is_two_of_three(self):
        matrix = _matrix()
        assert MajorityScheme().apply(matrix).alerted_ids == adjudicate(matrix, 2).alerted_ids

    def test_named_results(self):
        matrix = _matrix()
        assert UnanimousScheme().apply(matrix).scheme_name == "unanimous"
        assert MajorityScheme().apply(matrix).scheme_name == "majority"


class TestWeightedVote:
    def test_heavily_weighted_detector_dominates(self):
        matrix = _matrix()
        scheme = WeightedVoteScheme({"a": 10.0, "b": 1.0, "c": 1.0}, threshold=0.5)
        result = scheme.apply(matrix)
        assert result.alerted_ids == frozenset({"r0", "r1", "r2"})

    def test_equal_weights_match_k_out_of_n(self):
        matrix = _matrix()
        weighted = WeightedVoteScheme({"a": 1.0, "b": 1.0, "c": 1.0}, threshold=2 / 3).apply(matrix)
        assert weighted.alerted_ids == adjudicate(matrix, 2).alerted_ids

    def test_missing_weights_default_to_one(self):
        matrix = _matrix()
        result = WeightedVoteScheme({}, threshold=1.0).apply(matrix)
        assert result.alerted_ids == adjudicate(matrix, 3).alerted_ids

    def test_invalid_threshold_and_weights(self):
        with pytest.raises(AdjudicationError):
            WeightedVoteScheme({}, threshold=0.0)
        with pytest.raises(AdjudicationError):
            WeightedVoteScheme({"a": -1.0})

    def test_zero_total_weight_rejected(self):
        matrix = _matrix()
        scheme = WeightedVoteScheme({"a": 0.0, "b": 0.0, "c": 0.0})
        with pytest.raises(AdjudicationError):
            scheme.apply(matrix)


class TestSchemeComparison:
    def test_results_keyed_by_name(self):
        matrix = _matrix()
        results = scheme_comparison(matrix, [KOutOfNScheme(1), UnanimousScheme()])
        assert set(results) == {"1-out-of-3", "unanimous"}

    def test_paper_schemes_on_two_tools(self, pipeline_result):
        """The 1-out-of-2 and 2-out-of-2 schemes from the paper's Section V."""
        matrix = pipeline_result.matrix
        union = adjudicate(matrix, 1)
        intersection = adjudicate(matrix, 2)
        counts = matrix.alert_counts()
        assert union.alert_count >= max(counts.values())
        assert intersection.alert_count <= min(counts.values())
        assert intersection.alerted_ids <= union.alerted_ids
