"""Tests for the pairwise diversity metrics."""

from __future__ import annotations

import pytest

from repro.core.diversity import DiversityBreakdown
from repro.core.metrics import (
    all_pairwise_diversity,
    cohens_kappa,
    correlation_coefficient,
    disagreement_measure,
    double_fault_measure,
    entropy_measure,
    mean_pairwise_disagreement,
    pairwise_diversity,
    yules_q,
)
from repro.exceptions import AnalysisError
from tests.helpers import make_alert_matrix, make_labelled_dataset


def _breakdown(both: int, neither: int, first_only: int, second_only: int) -> DiversityBreakdown:
    return DiversityBreakdown(
        first_detector="a",
        second_detector="b",
        both=both,
        neither=neither,
        first_only=first_only,
        second_only=second_only,
    )


class TestKappa:
    def test_perfect_agreement_is_one(self):
        assert cohens_kappa(_breakdown(50, 50, 0, 0)) == pytest.approx(1.0)

    def test_complete_disagreement_is_negative(self):
        assert cohens_kappa(_breakdown(0, 0, 50, 50)) < 0

    def test_independent_detectors_near_zero(self):
        # P(alert)=0.5 for both, independent: both=25, neither=25, each only=25.
        assert cohens_kappa(_breakdown(25, 25, 25, 25)) == pytest.approx(0.0)

    def test_empty_population(self):
        assert cohens_kappa(_breakdown(0, 0, 0, 0)) == 1.0


class TestYulesQ:
    def test_always_together_is_one(self):
        assert yules_q(_breakdown(40, 40, 0, 0)) > 0.95

    def test_never_together_is_minus_one(self):
        assert yules_q(_breakdown(0, 0, 40, 40)) < -0.95

    def test_independence_is_zero(self):
        assert yules_q(_breakdown(25, 25, 25, 25)) == pytest.approx(0.0)

    def test_bounded(self):
        q = yules_q(_breakdown(10, 3, 7, 2))
        assert -1.0 <= q <= 1.0


class TestOtherPairwiseMetrics:
    def test_correlation_matches_sign_of_association(self):
        assert correlation_coefficient(_breakdown(40, 40, 5, 5)) > 0
        assert correlation_coefficient(_breakdown(5, 5, 40, 40)) < 0

    def test_correlation_degenerate_is_zero(self):
        assert correlation_coefficient(_breakdown(10, 0, 0, 0)) == 0.0

    def test_disagreement_measure(self):
        assert disagreement_measure(_breakdown(2, 2, 3, 3)) == pytest.approx(0.6)
        assert disagreement_measure(_breakdown(0, 0, 0, 0)) == 0.0

    def test_entropy_bounds(self):
        assert entropy_measure(_breakdown(25, 25, 25, 25)) == pytest.approx(2.0)
        assert entropy_measure(_breakdown(100, 0, 0, 0)) == 0.0
        assert entropy_measure(_breakdown(0, 0, 0, 0)) == 0.0


class TestDoubleFault:
    def test_counts_malicious_missed_by_both(self):
        dataset = make_labelled_dataset(["m0", "m1", "m2", "m3"], ["b0", "b1"])
        matrix = make_alert_matrix(dataset, {"a": ["m0", "m1"], "b": ["m1", "m2"]})
        # m3 is missed by both -> 1 of 4 malicious.
        assert double_fault_measure(matrix, dataset, "a", "b") == pytest.approx(0.25)

    def test_requires_malicious_requests(self):
        dataset = make_labelled_dataset([], ["b0", "b1"])
        matrix = make_alert_matrix(dataset, {"a": [], "b": []})
        with pytest.raises(AnalysisError):
            double_fault_measure(matrix, dataset, "a", "b")


class TestPairwiseDiversityAggregate:
    def test_contains_all_metrics(self):
        dataset = make_labelled_dataset(["m0", "m1"], ["b0", "b1"])
        matrix = make_alert_matrix(dataset, {"a": ["m0", "m1"], "b": ["m0"]})
        result = pairwise_diversity(matrix, "a", "b", dataset=dataset)
        values = result.as_dict()
        assert {"kappa", "q_statistic", "correlation", "disagreement", "entropy", "double_fault"} <= set(values)
        assert result.breakdown.both == 1

    def test_double_fault_absent_without_labels(self):
        from repro.logs.dataset import Dataset
        from tests.helpers import make_records

        dataset = Dataset(make_records(4))
        matrix = make_alert_matrix(dataset, {"a": ["r0"], "b": ["r1"]})
        result = pairwise_diversity(matrix, "a", "b")
        assert result.double_fault is None
        assert "double_fault" not in result.as_dict()

    def test_all_pairwise_covers_every_pair(self):
        dataset = make_labelled_dataset(["m0"], ["b0"])
        matrix = make_alert_matrix(dataset, {"a": ["m0"], "b": [], "c": ["m0", "b0"]})
        pairs = all_pairwise_diversity(matrix)
        names = {(p.first_detector, p.second_detector) for p in pairs}
        assert names == {("a", "b"), ("a", "c"), ("b", "c")}

    def test_mean_pairwise_disagreement(self):
        dataset = make_labelled_dataset(["m0", "m1"], ["b0", "b1"])
        matrix = make_alert_matrix(dataset, {"a": ["m0", "m1"], "b": ["m0", "m1"]})
        assert mean_pairwise_disagreement(matrix) == pytest.approx(0.0)

    def test_paper_numbers_yield_high_agreement_low_kappa_structure(self):
        """Sanity check the metrics on the actual published counts."""
        from repro.bench.expected import PAPER_TABLE2

        breakdown = DiversityBreakdown(
            first_detector="commercial",
            second_detector="inhouse",
            both=PAPER_TABLE2["both"],
            neither=PAPER_TABLE2["neither"],
            first_only=PAPER_TABLE2["commercial_only"],
            second_only=PAPER_TABLE2["inhouse_only"],
        )
        # The published tools agree on ~96% of requests with strongly
        # positive association.
        assert disagreement_measure(breakdown) == pytest.approx(0.036, abs=0.002)
        assert cohens_kappa(breakdown) > 0.8
        assert yules_q(breakdown) > 0.95

    def test_realistic_experiment_agreement(self, experiment_result):
        metrics = experiment_result.diversity_metrics
        assert metrics.kappa > 0.5
        assert metrics.disagreement < 0.2
        assert metrics.double_fault is not None
        assert metrics.double_fault < 0.2
