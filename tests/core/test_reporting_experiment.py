"""Tests for the table rendering and the end-to-end paper experiment."""

from __future__ import annotations


from repro.core.diversity import DiversityBreakdown
from repro.core.experiment import PaperExperiment
from repro.core.reporting import (
    render_evaluation_rows,
    render_side_by_side,
    render_status_breakdown,
    render_table,
    render_table1,
    render_table2,
)
from repro.core.breakdown import BreakdownTable
from repro.detectors.ratelimit import RateLimitDetector
from repro.logs.dataset import Dataset
from tests.helpers import make_records


class TestRendering:
    def test_render_table_aligns_and_formats_counts(self):
        text = render_table("Demo", [("Total HTTP requests", 1_469_744), ("Something", 12)])
        assert "Demo" in text
        assert "1,469,744" in text
        lines = text.splitlines()
        assert len(lines) == 5

    def test_render_table1_mentions_each_tool(self):
        text = render_table1(100, {"commercial": 80, "inhouse": 75})
        assert "Total HTTP requests" in text
        assert "commercial" in text and "inhouse" in text
        assert "80" in text and "75" in text

    def test_render_table2_has_four_rows(self):
        breakdown = DiversityBreakdown("commercial", "inhouse", both=10, neither=5, first_only=3, second_only=2)
        text = render_table2(breakdown)
        assert "Both commercial and inhouse" in text
        assert "Neither" in text
        assert "inhouse only" in text
        assert "commercial only" in text

    def test_render_status_breakdown_sorted(self):
        table = BreakdownTable(detector="x", dimension="http_status", counts={"200 (OK)": 10, "302 (Found)": 3})
        text = render_status_breakdown(table)
        assert text.index("200 (OK)") < text.index("302 (Found)")

    def test_render_side_by_side_preserves_lines(self):
        left = "A\nB\nC"
        right = "X\nY"
        combined = render_side_by_side(left, right)
        lines = combined.splitlines()
        assert len(lines) == 3
        assert "A" in lines[0] and "X" in lines[0]

    def test_render_evaluation_rows(self):
        rows = [{"name": "commercial", "sensitivity": 0.98, "tp": 123}]
        text = render_evaluation_rows(rows, title="Eval")
        assert "Eval" in text
        assert "0.9800" in text
        assert "123" in text

    def test_render_evaluation_rows_empty(self):
        assert "(no rows)" in render_evaluation_rows([], title="Empty")


class TestPaperExperiment:
    def test_result_contains_all_tables(self, experiment_result):
        result = experiment_result
        assert result.total_requests == len(result.dataset)
        assert set(result.alert_counts) == {"commercial", "inhouse"}
        assert set(result.status_tables) == {"commercial", "inhouse"}
        assert set(result.exclusive_status_tables) == {"commercial", "inhouse"}

    def test_breakdown_consistent_with_alert_counts(self, experiment_result):
        breakdown = experiment_result.breakdown
        counts = experiment_result.alert_counts
        assert breakdown.first_total == counts["commercial"]
        assert breakdown.second_total == counts["inhouse"]
        assert breakdown.total == experiment_result.total_requests

    def test_status_tables_sum_to_alert_counts(self, experiment_result):
        for name, table in experiment_result.status_tables.items():
            assert table.total() == experiment_result.alert_counts[name]

    def test_exclusive_tables_match_breakdown(self, experiment_result):
        breakdown = experiment_result.breakdown
        assert experiment_result.exclusive_status_tables["commercial"].total() == breakdown.first_only
        assert experiment_result.exclusive_status_tables["inhouse"].total() == breakdown.second_only

    def test_labelled_evaluations_present(self, experiment_result):
        assert len(experiment_result.tool_evaluations) == 2
        assert len(experiment_result.adjudication_evaluations) == 2
        for evaluation in experiment_result.tool_evaluations:
            assert 0.0 <= evaluation.sensitivity <= 1.0
            assert 0.0 <= evaluation.specificity <= 1.0

    def test_render_methods_produce_text(self, experiment_result):
        assert "Table 1" in experiment_result.render_table1()
        assert "Table 2" in experiment_result.render_table2()
        assert "HTTP status" in experiment_result.render_table3()
        assert "only" in experiment_result.render_table4()
        full = experiment_result.render_all()
        assert full.count("Table") >= 2

    def test_timings_recorded_per_tool_and_sessionization(self, experiment_result):
        # The columnar engine reports the batched feature extraction as
        # its own shared step next to sessionization.
        assert set(experiment_result.timings) == {
            "commercial",
            "inhouse",
            "sessionization",
            "features",
        }
        assert all(value >= 0.0 for value in experiment_result.timings.values())

    def test_custom_detectors_can_be_used(self):
        dataset = Dataset(make_records(30, gap_seconds=0.5))
        experiment = PaperExperiment(
            RateLimitDetector(name="fast", threshold_rpm=60),
            RateLimitDetector(name="slow", threshold_rpm=600),
        )
        result = experiment.run_on(dataset)
        assert result.alert_counts["fast"] == 30
        assert result.alert_counts["slow"] == 0
        # Unlabelled data set -> no labelled evaluations.
        assert result.tool_evaluations == []

    def test_run_scenario_smoke(self):
        from repro.traffic.scenarios import balanced_small

        result = PaperExperiment().run_scenario(balanced_small(total_requests=800, seed=3))
        assert result.total_requests > 300
