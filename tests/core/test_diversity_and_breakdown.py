"""Tests for the diversity breakdowns and the Table 3/4 dimension breakdowns."""

from __future__ import annotations

import pytest

from repro.core.breakdown import (
    breakdown_by,
    day_breakdown,
    exclusive_status_breakdown,
    method_breakdown,
    status_breakdown,
)
from repro.core.diversity import diversity_breakdown, multi_detector_breakdown
from repro.exceptions import AnalysisError
from repro.logs.dataset import Dataset
from tests.helpers import make_alert_matrix, make_labelled_dataset, make_records


def _two_tool_matrix():
    """Six requests: r0,r1 both; r2 first-only; r3 second-only; r4,r5 neither."""
    dataset = Dataset(make_records(6))
    matrix = make_alert_matrix(dataset, {"first": ["r0", "r1", "r2"], "second": ["r0", "r1", "r3"]})
    return dataset, matrix


class TestDiversityBreakdown:
    def test_counts_match_construction(self):
        _, matrix = _two_tool_matrix()
        breakdown = diversity_breakdown(matrix, "first", "second")
        assert breakdown.both == 2
        assert breakdown.first_only == 1
        assert breakdown.second_only == 1
        assert breakdown.neither == 2
        assert breakdown.total == 6

    def test_totals_consistent_with_table1(self):
        _, matrix = _two_tool_matrix()
        breakdown = diversity_breakdown(matrix, "first", "second")
        assert breakdown.first_total == matrix.alert_counts()["first"]
        assert breakdown.second_total == matrix.alert_counts()["second"]

    def test_agreement_and_disagreement(self):
        _, matrix = _two_tool_matrix()
        breakdown = diversity_breakdown(matrix, "first", "second")
        assert breakdown.agreement == 4
        assert breakdown.disagreement == 2
        assert breakdown.agreement_rate() == pytest.approx(4 / 6)

    def test_same_detector_rejected(self):
        _, matrix = _two_tool_matrix()
        with pytest.raises(AnalysisError):
            diversity_breakdown(matrix, "first", "first")

    def test_as_dict_and_contingency(self):
        _, matrix = _two_tool_matrix()
        breakdown = diversity_breakdown(matrix, "first", "second")
        as_dict = breakdown.as_dict()
        assert as_dict["both"] == 2
        assert as_dict["first_only"] == 1
        table = breakdown.contingency()
        assert table.shape == (2, 2)
        assert table.sum() == 6

    def test_breakdown_is_symmetric_in_counts(self):
        _, matrix = _two_tool_matrix()
        forward = diversity_breakdown(matrix, "first", "second")
        backward = diversity_breakdown(matrix, "second", "first")
        assert forward.both == backward.both
        assert forward.neither == backward.neither
        assert forward.first_only == backward.second_only


class TestMultiDetectorBreakdown:
    def test_histogram_and_exclusives(self):
        dataset = Dataset(make_records(5))
        matrix = make_alert_matrix(
            dataset,
            {"a": ["r0", "r1", "r2"], "b": ["r0", "r1"], "c": ["r0", "r4"]},
        )
        breakdown = multi_detector_breakdown(matrix)
        assert breakdown.votes_histogram == {0: 1, 1: 2, 2: 1, 3: 1}
        assert breakdown.exclusive_counts == {"a": 1, "b": 0, "c": 1}
        assert breakdown.alerted_by_all == 1
        assert breakdown.alerted_by_none == 1
        assert breakdown.coverage_union() == 4
        assert breakdown.total == 5

    def test_histogram_sums_to_total(self, pipeline_result):
        breakdown = multi_detector_breakdown(pipeline_result.matrix)
        assert sum(breakdown.votes_histogram.values()) == breakdown.total


class TestStatusBreakdowns:
    def _status_dataset(self):
        dataset = make_labelled_dataset(
            ["m0", "m1", "m2"],
            ["b0"],
            status_for={"m0": 200, "m1": 302, "m2": 400, "b0": 200},
        )
        matrix = make_alert_matrix(dataset, {"first": ["m0", "m1", "m2"], "second": ["m0"]})
        return dataset, matrix

    def test_status_breakdown_counts(self):
        dataset, matrix = self._status_dataset()
        table = status_breakdown(dataset, matrix, "first")
        assert table.counts["200 (OK)"] == 1
        assert table.counts["302 (Found)"] == 1
        assert table.counts["400 (Bad request)"] == 1
        assert table.total() == 3

    def test_status_breakdown_unlabelled_keys(self):
        dataset, matrix = self._status_dataset()
        table = status_breakdown(dataset, matrix, "first", labelled=False)
        assert table.counts[200] == 1

    def test_exclusive_breakdown_only_counts_single_tool_alerts(self):
        dataset, matrix = self._status_dataset()
        table = exclusive_status_breakdown(dataset, matrix, "first")
        # m0 is alerted by both, so only m1 and m2 remain.
        assert table.total() == 2
        assert "200 (OK)" not in table.counts

    def test_sorted_rows_descending(self):
        dataset, matrix = self._status_dataset()
        rows = status_breakdown(dataset, matrix, "first").sorted_rows()
        counts = [count for _, count in rows]
        assert counts == sorted(counts, reverse=True)

    def test_fraction_of(self):
        dataset, matrix = self._status_dataset()
        table = status_breakdown(dataset, matrix, "first")
        assert table.fraction_of("200 (OK)") == pytest.approx(1 / 3)
        assert table.fraction_of("nope") == 0.0

    def test_top_n(self):
        dataset, matrix = self._status_dataset()
        assert len(status_breakdown(dataset, matrix, "first").top(2)) == 2

    def test_breakdown_by_custom_dimension(self):
        dataset, matrix = self._status_dataset()
        table = breakdown_by(dataset, matrix.alerted_by("first"), lambda r: r.method.value, dimension="method")
        assert table.counts == {"GET": 3}

    def test_day_and_method_breakdowns(self):
        dataset, matrix = self._status_dataset()
        assert day_breakdown(dataset, matrix, "first").counts == {"2018-03-11": 3}
        assert method_breakdown(dataset, matrix, "first").counts == {"GET": 3}

    def test_empty_breakdown(self):
        dataset = Dataset(make_records(2))
        matrix = make_alert_matrix(dataset, {"a": []})
        table = status_breakdown(dataset, matrix, "a")
        assert table.total() == 0
        assert table.sorted_rows() == []
        assert table.as_dict() == {}
