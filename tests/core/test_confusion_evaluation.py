"""Tests for the confusion matrix and the labelled evaluation helpers."""

from __future__ import annotations

import pytest

from repro.core.adjudication import adjudicate
from repro.core.confusion import ConfusionMatrix
from repro.core.evaluation import (
    evaluate_alert_set,
    evaluate_ensemble,
    evaluate_matrix,
    per_actor_class_detection,
    sensitivity_specificity_tradeoff,
)
from repro.exceptions import AnalysisError
from tests.helpers import make_alert_matrix, make_labelled_dataset


class TestConfusionMatrix:
    def test_rates_from_counts(self):
        cm = ConfusionMatrix(true_positives=80, false_positives=10, true_negatives=90, false_negatives=20)
        assert cm.sensitivity() == pytest.approx(0.8)
        assert cm.specificity() == pytest.approx(0.9)
        assert cm.precision() == pytest.approx(80 / 90)
        assert cm.false_positive_rate() == pytest.approx(0.1)
        assert cm.false_negative_rate() == pytest.approx(0.2)
        assert cm.accuracy() == pytest.approx(170 / 200)
        assert cm.balanced_accuracy() == pytest.approx(0.85)
        assert 0 < cm.f1_score() < 1
        assert 0 < cm.matthews_correlation() < 1

    def test_negative_counts_rejected(self):
        with pytest.raises(AnalysisError):
            ConfusionMatrix(true_positives=-1, false_positives=0, true_negatives=0, false_negatives=0)

    def test_degenerate_populations(self):
        no_positives = ConfusionMatrix(0, 0, 10, 0)
        assert no_positives.sensitivity() == 1.0
        assert no_positives.precision() == 1.0
        no_negatives = ConfusionMatrix(10, 0, 0, 0)
        assert no_negatives.specificity() == 1.0
        empty = ConfusionMatrix(0, 0, 0, 0)
        assert empty.accuracy() == 1.0
        # An empty population is vacuously perfect (sensitivity and precision
        # both default to 1.0), so F1 follows; MCC degenerates to 0.
        assert empty.f1_score() == 1.0
        assert empty.matthews_correlation() == 0.0

    def test_from_alerts(self):
        dataset = make_labelled_dataset(["m0", "m1", "m2"], ["b0", "b1"])
        cm = ConfusionMatrix.from_alerts(dataset, {"m0", "m1", "b0"})
        assert cm.true_positives == 2
        assert cm.false_negatives == 1
        assert cm.false_positives == 1
        assert cm.true_negatives == 1
        assert cm.total == 5

    def test_from_alerts_with_explicit_ids(self):
        dataset = make_labelled_dataset(["m0", "m1"], ["b0"])
        cm = ConfusionMatrix.from_alerts(dataset, {"m0"}, request_ids=["m0", "b0"])
        assert cm.total == 2

    def test_as_dict_keys(self):
        cm = ConfusionMatrix(1, 2, 3, 4)
        assert {"tp", "fp", "tn", "fn", "sensitivity", "specificity", "precision", "f1"} <= set(cm.as_dict())


class TestEvaluation:
    def _setup(self):
        dataset = make_labelled_dataset(["m0", "m1", "m2", "m3"], ["b0", "b1", "b2", "b3"])
        matrix = make_alert_matrix(
            dataset,
            {
                "sharp": ["m0", "m1", "m2"],
                "noisy": ["m0", "m1", "m2", "m3", "b0", "b1"],
            },
        )
        return dataset, matrix

    def test_evaluate_alert_set(self):
        dataset, matrix = self._setup()
        evaluation = evaluate_alert_set(dataset, matrix.alerted_by("sharp"), name="sharp")
        assert evaluation.sensitivity == pytest.approx(0.75)
        assert evaluation.specificity == pytest.approx(1.0)
        assert evaluation.name == "sharp"
        assert evaluation.as_dict()["name"] == "sharp"

    def test_evaluate_matrix_covers_all_detectors(self):
        dataset, matrix = self._setup()
        evaluations = {e.name: e for e in evaluate_matrix(dataset, matrix)}
        assert set(evaluations) == {"sharp", "noisy"}
        assert evaluations["noisy"].sensitivity == pytest.approx(1.0)
        assert evaluations["noisy"].specificity == pytest.approx(0.5)

    def test_evaluate_ensemble_k_schemes(self):
        dataset, matrix = self._setup()
        evaluations = evaluate_ensemble(dataset, matrix)
        assert len(evaluations) == 2  # k = 1, 2
        union, intersection = evaluations
        assert union.sensitivity >= intersection.sensitivity
        assert intersection.specificity >= union.specificity

    def test_evaluate_ensemble_specific_ks(self):
        dataset, matrix = self._setup()
        evaluations = evaluate_ensemble(dataset, matrix, ks=[2])
        assert len(evaluations) == 1

    def test_tradeoff_points_structure(self):
        dataset, matrix = self._setup()
        points = sensitivity_specificity_tradeoff(dataset, matrix)
        assert len(points) == 2
        assert all({"scheme", "sensitivity", "specificity", "precision", "f1"} <= set(p) for p in points)

    def test_adjudication_tradeoff_direction(self):
        """1-out-of-2 never has lower sensitivity, 2-out-of-2 never lower specificity."""
        dataset, matrix = self._setup()
        single = [evaluate_alert_set(dataset, matrix.alerted_by(n), name=n) for n in matrix.detector_names]
        union = evaluate_alert_set(dataset, adjudicate(matrix, 1).alerted_ids, name="1oo2")
        both = evaluate_alert_set(dataset, adjudicate(matrix, 2).alerted_ids, name="2oo2")
        assert union.sensitivity >= max(e.sensitivity for e in single)
        assert both.specificity >= max(e.specificity for e in single)

    def test_per_actor_class_detection(self):
        dataset = make_labelled_dataset(["m0", "m1"], ["b0"])
        rates = per_actor_class_detection(dataset, {"m0"})
        assert rates["aggressive_scraper"] == pytest.approx(0.5)
        assert rates["human"] == 0.0

    def test_per_actor_class_on_generated_traffic(self, small_dataset, pipeline_result):
        rates = per_actor_class_detection(small_dataset, pipeline_result.matrix.alerted_by("commercial"))
        assert rates["aggressive_scraper"] > 0.9
        assert rates["human"] < 0.1
