"""Tests for :mod:`repro.core.selection`."""

from __future__ import annotations

import pytest

from repro.core.selection import greedy_selection, marginal_coverage, redundancy_matrix
from repro.exceptions import AnalysisError
from tests.helpers import make_alert_matrix, make_labelled_dataset


def _pool():
    """Four malicious, four benign requests; three detectors of varying quality."""
    dataset = make_labelled_dataset(["m0", "m1", "m2", "m3"], ["b0", "b1", "b2", "b3"])
    matrix = make_alert_matrix(
        dataset,
        {
            "good": ["m0", "m1", "m2"],            # precise, misses m3
            "complement": ["m3"],                    # catches exactly what "good" misses
            "noisy": ["m0", "m1", "b0", "b1", "b2"],  # redundant and noisy
        },
    )
    return dataset, matrix


class TestMarginalCoverage:
    def test_counts_unique_contributions(self):
        _, matrix = _pool()
        coverage = marginal_coverage(matrix)
        assert coverage["complement"] == 1  # m3 is caught only by it
        assert coverage["noisy"] == 3  # the three benign false positives
        assert coverage["good"] == 1  # m2 is caught by nobody else

    def test_redundancy_matrix_bounds_and_symmetric_pairs(self):
        _, matrix = _pool()
        overlaps = redundancy_matrix(matrix)
        assert set(overlaps) == {("good", "complement"), ("good", "noisy"), ("complement", "noisy")}
        assert all(0.0 <= value <= 1.0 for value in overlaps.values())
        assert overlaps[("good", "complement")] == 0.0
        assert overlaps[("good", "noisy")] > 0.0


class TestGreedySelection:
    def test_selects_complementary_pair_over_noisy(self):
        dataset, matrix = _pool()
        result = greedy_selection(dataset, matrix, objective="f1")
        assert result.steps[0].added_detector == "good"
        assert set(result.selected) == {"good", "complement"}
        assert "noisy" not in result.selected
        assert result.best_objective == pytest.approx(1.0)

    def test_budget_limits_subset_size(self):
        dataset, matrix = _pool()
        result = greedy_selection(dataset, matrix, max_detectors=1)
        assert len(result.selected) == 1

    def test_objective_monotone_over_steps(self):
        dataset, matrix = _pool()
        result = greedy_selection(dataset, matrix, objective="sensitivity")
        values = [step.objective for step in result.steps]
        assert values == sorted(values)

    def test_unknown_objective_rejected(self):
        dataset, matrix = _pool()
        with pytest.raises(AnalysisError):
            greedy_selection(dataset, matrix, objective="vibes")

    def test_invalid_budget_rejected(self):
        dataset, matrix = _pool()
        with pytest.raises(AnalysisError):
            greedy_selection(dataset, matrix, max_detectors=0)

    def test_requires_labels(self):
        from repro.logs.dataset import Dataset
        from tests.helpers import make_records

        dataset = Dataset(make_records(4))
        matrix = make_alert_matrix(dataset, {"a": ["r0"]})
        with pytest.raises(Exception):
            greedy_selection(dataset, matrix)

    def test_on_realistic_two_tool_pool(self, small_dataset, pipeline_result):
        """On the generated traffic the greedy selection keeps both tools:
        each contributes coverage the other lacks."""
        result = greedy_selection(small_dataset, pipeline_result.matrix, objective="f1")
        assert set(result.selected) == {"commercial", "inhouse"}
        assert result.steps[-1].objective >= result.steps[0].objective
