"""Tests for the timeline analysis and the threshold-sweep machinery."""

from __future__ import annotations

import pytest

from repro.core.thresholds import compare_sweep_to_ensemble, sweep_detector
from repro.core.timeline import agreement_timeline, alert_timeline, detect_alert_bursts
from repro.core.confusion import ConfusionMatrix
from repro.detectors.ratelimit import RateLimitDetector
from repro.exceptions import AnalysisError
from repro.logs.dataset import Dataset
from tests.helpers import make_alert_matrix, make_record, make_records


def _three_day_matrix():
    records = []
    for day in range(3):
        for i in range(4):
            records.append(make_record(f"d{day}r{i}", seconds=day * 86_400 + i * 600))
    dataset = Dataset(records)
    matrix = make_alert_matrix(
        dataset,
        {
            # Detector "a" alerts heavily on day 1 only; "b" alerts on one
            # request every day.
            "a": ["d1r0", "d1r1", "d1r2", "d1r3"],
            "b": ["d0r0", "d1r0", "d2r0"],
        },
    )
    return dataset, matrix


class TestAlertTimeline:
    def test_day_buckets_cover_all_days(self):
        dataset, matrix = _three_day_matrix()
        buckets = alert_timeline(dataset, matrix, granularity="day")
        assert [bucket.bucket for bucket in buckets] == ["2018-03-11", "2018-03-12", "2018-03-13"]
        assert all(bucket.total_requests == 4 for bucket in buckets)

    def test_alert_counts_per_bucket(self):
        dataset, matrix = _three_day_matrix()
        buckets = alert_timeline(dataset, matrix, granularity="day")
        assert [bucket.alert_counts["a"] for bucket in buckets] == [0, 4, 0]
        assert [bucket.alert_counts["b"] for bucket in buckets] == [1, 1, 1]

    def test_alert_rate(self):
        dataset, matrix = _three_day_matrix()
        buckets = alert_timeline(dataset, matrix, granularity="day")
        assert buckets[1].alert_rate("a") == pytest.approx(1.0)
        assert buckets[0].alert_rate("a") == 0.0

    def test_hour_granularity(self):
        dataset, matrix = _three_day_matrix()
        buckets = alert_timeline(dataset, matrix, granularity="hour")
        assert len(buckets) >= 3
        assert all(" " in bucket.bucket for bucket in buckets)

    def test_unknown_granularity_rejected(self):
        dataset, matrix = _three_day_matrix()
        with pytest.raises(AnalysisError):
            alert_timeline(dataset, matrix, granularity="week")

    def test_totals_sum_to_dataset(self):
        dataset, matrix = _three_day_matrix()
        buckets = alert_timeline(dataset, matrix)
        assert sum(bucket.total_requests for bucket in buckets) == len(dataset)


class TestAgreementTimeline:
    def test_per_bucket_breakdowns_partition_each_day(self):
        dataset, matrix = _three_day_matrix()
        per_day = agreement_timeline(dataset, matrix, "a", "b")
        assert set(per_day) == {"2018-03-11", "2018-03-12", "2018-03-13"}
        for breakdown in per_day.values():
            assert breakdown.total == 4

    def test_day_one_has_agreement_mass(self):
        dataset, matrix = _three_day_matrix()
        per_day = agreement_timeline(dataset, matrix, "a", "b")
        assert per_day["2018-03-12"].both == 1
        assert per_day["2018-03-12"].first_only == 3
        assert per_day["2018-03-11"].second_only == 1

    def test_matches_global_breakdown_when_summed(self):
        from repro.core.diversity import diversity_breakdown

        dataset, matrix = _three_day_matrix()
        per_day = agreement_timeline(dataset, matrix, "a", "b")
        total = diversity_breakdown(matrix, "a", "b")
        assert sum(b.both for b in per_day.values()) == total.both
        assert sum(b.neither for b in per_day.values()) == total.neither


class TestBurstDetection:
    def test_detects_the_campaign_day(self):
        dataset, matrix = _three_day_matrix()
        buckets = alert_timeline(dataset, matrix, granularity="day")
        bursts = detect_alert_bursts(buckets, "a", threshold_factor=2.0)
        assert len(bursts) == 1
        assert bursts[0].start_bucket == "2018-03-12"
        assert bursts[0].peak_alerts == 4

    def test_steady_detector_has_no_bursts(self):
        dataset, matrix = _three_day_matrix()
        buckets = alert_timeline(dataset, matrix, granularity="day")
        assert detect_alert_bursts(buckets, "b", threshold_factor=2.0) == []

    def test_invalid_threshold_factor(self):
        with pytest.raises(AnalysisError):
            detect_alert_bursts([], "a", threshold_factor=1.0)

    def test_empty_buckets(self):
        assert detect_alert_bursts([], "a") == []


class TestThresholdSweep:
    def _fast_and_slow_dataset(self) -> Dataset:
        """Malicious blast at ~120 req/min plus a slow benign visitor."""
        from repro.logs.dataset import BENIGN, MALICIOUS, GroundTruth

        records = []
        truth = GroundTruth()
        for i in range(40):
            rid = f"m{i}"
            records.append(make_record(rid, seconds=i * 0.5, ip="172.20.0.9"))
            truth.set(rid, MALICIOUS, "aggressive_scraper")
        for i in range(20):
            rid = f"b{i}"
            records.append(make_record(rid, seconds=i * 30.0, ip="10.16.0.1"))
            truth.set(rid, BENIGN, "human")
        return Dataset(records, ground_truth=truth)

    def test_sweep_produces_one_point_per_parameter(self):
        dataset = self._fast_and_slow_dataset()
        sweep = sweep_detector(
            dataset,
            lambda t: RateLimitDetector(threshold_rpm=t),
            [10.0, 60.0, 500.0],
        )
        assert len(sweep.points) == 3
        assert sweep.detector_name == "rate-limit"

    def test_lower_threshold_means_higher_sensitivity(self):
        dataset = self._fast_and_slow_dataset()
        sweep = sweep_detector(dataset, lambda t: RateLimitDetector(threshold_rpm=t), [10.0, 500.0])
        aggressive, conservative = sweep.points
        assert aggressive.sensitivity >= conservative.sensitivity
        assert conservative.specificity >= aggressive.specificity - 1e-9

    def test_auc_in_unit_interval_and_reasonable(self):
        dataset = self._fast_and_slow_dataset()
        sweep = sweep_detector(dataset, lambda t: RateLimitDetector(threshold_rpm=t), [10.0, 60.0, 200.0, 500.0])
        assert 0.5 <= sweep.auc() <= 1.0

    def test_best_by_f1(self):
        dataset = self._fast_and_slow_dataset()
        sweep = sweep_detector(dataset, lambda t: RateLimitDetector(threshold_rpm=t), [10.0, 60.0, 500.0])
        best = sweep.best_by_f1()
        assert best.confusion.f1_score() == max(p.confusion.f1_score() for p in sweep.points)

    def test_empty_parameters_rejected(self):
        dataset = self._fast_and_slow_dataset()
        with pytest.raises(AnalysisError):
            sweep_detector(dataset, lambda t: RateLimitDetector(threshold_rpm=t), [])

    def test_requires_labels(self):
        dataset = Dataset(make_records(5))
        with pytest.raises(Exception):
            sweep_detector(dataset, lambda t: RateLimitDetector(threshold_rpm=t), [10.0])

    def test_compare_sweep_to_ensemble(self):
        dataset = self._fast_and_slow_dataset()
        sweep = sweep_detector(dataset, lambda t: RateLimitDetector(threshold_rpm=t), [10.0, 60.0])
        ensemble = ConfusionMatrix(true_positives=40, false_positives=0, true_negatives=20, false_negatives=0)
        comparison = compare_sweep_to_ensemble(sweep, ensemble)
        assert comparison["ensemble_sensitivity"] == 1.0
        assert comparison["sensitivity_gain"] >= 0.0
        assert {"best_single_parameter", "specificity_gain"} <= set(comparison)
