"""Extension study: adjudication schemes and their FP/FN trade-offs.

The paper's Section V asks whether the observed diversity is useful, and
proposes answering it with adjudication schemes (1-out-of-2 vs 2-out-of-2)
once labels exist.  This example runs that analysis on labelled synthetic
traffic -- for the two stand-in tools and for a five-member ensemble that
adds stand-alone statistical detectors -- and prints the full
sensitivity/specificity trade-off curve, plus weighted-voting variants.

Run with::

    python examples/adjudication_tradeoffs.py
"""

from __future__ import annotations

from repro.core.adjudication import WeightedVoteScheme, adjudicate
from repro.core.evaluation import evaluate_alert_set, sensitivity_specificity_tradeoff
from repro.core.metrics import all_pairwise_diversity
from repro.core.reporting import render_evaluation_rows
from repro.detectors.commercial import CommercialBotDefenceDetector
from repro.detectors.inhouse import InHouseHeuristicDetector
from repro.detectors.naive_bayes import NaiveBayesRobotDetector
from repro.detectors.pipeline import run_detectors
from repro.detectors.ratelimit import RateLimitDetector
from repro.detectors.reputation import IPReputationDetector
from repro.traffic.generator import generate_dataset
from repro.traffic.scenarios import balanced_small


def main() -> int:
    # A balanced scenario makes the specificity side of the trade-off visible
    # (the calibrated bot-dominated scenario has very little benign traffic).
    dataset = generate_dataset(balanced_small(total_requests=12_000, seed=41))
    print(f"Scenario: {len(dataset):,} requests, {dataset.malicious_fraction():.1%} malicious.\n")

    # ------------------------------------------------------------------
    # The paper's two tools.
    # ------------------------------------------------------------------
    two_tools = run_detectors(dataset, [CommercialBotDefenceDetector(), InHouseHeuristicDetector()])
    rows = []
    for name in two_tools.matrix.detector_names:
        evaluation = evaluate_alert_set(dataset, two_tools.matrix.alerted_by(name), name=name)
        rows.append(evaluation.as_dict())
    for k, label in ((1, "1-out-of-2 (either tool)"), (2, "2-out-of-2 (both tools)")):
        result = adjudicate(two_tools.matrix, k)
        rows.append(evaluate_alert_set(dataset, result.alerted_ids, name=label).as_dict())
    print(render_evaluation_rows(rows, title="Two tools and their adjudications"))
    print()

    # ------------------------------------------------------------------
    # A five-member diverse ensemble.
    # ------------------------------------------------------------------
    ensemble = run_detectors(
        dataset,
        [
            CommercialBotDefenceDetector(),
            InHouseHeuristicDetector(),
            RateLimitDetector(threshold_rpm=45),
            IPReputationDetector(),
            NaiveBayesRobotDetector(),
        ],
    )
    points = sensitivity_specificity_tradeoff(dataset, ensemble.matrix)
    print(render_evaluation_rows(points, title="k-out-of-5 trade-off curve"))
    print()

    weighted = WeightedVoteScheme(
        {"commercial": 2.0, "inhouse": 2.0, "rate-limit": 1.0, "ip-reputation": 0.5, "naive-bayes": 1.0},
        threshold=0.4,
        name="weighted(0.4)",
    )
    weighted_result = weighted.apply(ensemble.matrix)
    weighted_row = evaluate_alert_set(dataset, weighted_result.alerted_ids, name=weighted.name).as_dict()
    print(render_evaluation_rows([weighted_row], title="Weighted voting (composite tools weighted double)"))
    print()

    # ------------------------------------------------------------------
    # How diverse are the ensemble members?
    # ------------------------------------------------------------------
    pair_rows = []
    for pair in all_pairwise_diversity(ensemble.matrix, dataset=dataset):
        pair_rows.append(
            {
                "pair": f"{pair.first_detector} / {pair.second_detector}",
                "kappa": pair.kappa,
                "disagreement": pair.disagreement,
                "double_fault": pair.double_fault if pair.double_fault is not None else float("nan"),
            }
        )
    print(render_evaluation_rows(pair_rows, title="Pairwise diversity within the ensemble"))
    print()
    print("Reading the tables: 1-out-of-N maximises sensitivity (nothing slips "
          "past every detector), N-out-of-N maximises specificity (no tool "
          "alone can cause a false alarm), and the useful operating points "
          "lie in between -- the trade-off the paper's Section V describes.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
