"""Quickstart: reproduce the paper's four tables in one script.

Generates a scaled-down version of the calibrated March-2018 scenario
(the stand-in for the Amadeus data set), runs the two stand-in tools
(commercial "Distil-like" and in-house "Arcane-like") over it and prints
the reproductions of Tables 1-4 plus the labelled extension analyses the
paper lists as next steps.

Run with::

    python examples/quickstart.py [scale]

where ``scale`` is the fraction of the paper's 1,469,744 requests to
simulate (default 0.02, i.e. ~29k requests, a few seconds of runtime).
"""

from __future__ import annotations

import sys

from repro import PaperExperiment, amadeus_march_2018, generate_dataset
from repro.core.reporting import render_evaluation_rows


def main() -> int:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.02

    print(f"Generating the calibrated March-2018 scenario at scale {scale} ...")
    dataset = generate_dataset(amadeus_march_2018(scale=scale))
    print(f"  {len(dataset):,} HTTP requests, {len(dataset.unique_ips()):,} client IPs, "
          f"{dataset.malicious_fraction():.1%} of requests from scrapers (ground truth)\n")

    print("Running the commercial-style and in-house-style detectors ...\n")
    result = PaperExperiment().run_on(dataset)

    # The paper's evaluation: Tables 1-4.
    print(result.render_table1())
    print()
    print(result.render_table2())
    print()
    print(result.render_table3())
    print()
    print(result.render_table4())
    print()

    # The paper's Section-V next steps, possible here because the synthetic
    # data set carries ground truth.
    print(render_evaluation_rows(
        [evaluation.as_dict() for evaluation in result.tool_evaluations],
        title="Per-tool labelled evaluation (sensitivity / specificity)",
    ))
    print()
    print(render_evaluation_rows(
        [evaluation.as_dict() for evaluation in result.adjudication_evaluations],
        title="Adjudication schemes: 1-out-of-2 vs 2-out-of-2",
    ))
    print()
    metrics = result.diversity_metrics
    print("Pairwise diversity metrics:")
    for name, value in metrics.as_dict().items():
        print(f"  {name:>14}: {value:.4f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
