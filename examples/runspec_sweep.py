"""Experiments as data: the RunSpec API.

Demonstrates the unified entry point of :mod:`repro.runspec`:

1. one declarative spec per workload -- batch tables, streaming, closed
   loop -- all executed by the same :func:`~repro.runspec.execute.execute`
   call and compared through the uniform
   :class:`~repro.runspec.result.RunResult`;
2. JSON round-tripping: a spec is saved to disk, reloaded and re-executed,
   reproducing the original run exactly;
3. a small sweep: because specs are data, sweeping a parameter is a list
   comprehension, not a bespoke script.

Usage::

    python examples/runspec_sweep.py
"""

from __future__ import annotations

import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.runspec import (  # noqa: E402
    AdjudicationSpec,
    PolicySpec,
    RunSpec,
    TrafficSpec,
    execute,
    load_runspec,
)


def main() -> int:
    traffic = TrafficSpec(scenario="balanced_small", seed=3)

    # 1. One spec per workload, one entry point for all of them.
    batch = RunSpec(mode="tables", traffic=traffic, label="demo-batch")
    stream = RunSpec(
        mode="stream", traffic=traffic, adjudication=AdjudicationSpec(k=2), label="demo-stream"
    )
    defend = RunSpec(
        mode="defend",
        traffic=TrafficSpec(campaign="adaptive", total_requests=1_500, seed=3),
        policy=PolicySpec(name="standard"),
        label="demo-defend",
    )
    for spec in (batch, stream, defend):
        result = execute(spec)
        print(f"[{spec.label}] mode={result.mode} requests={result.total_requests:,} "
              f"alerts={result.alert_counts}")

    # 2. Specs round-trip through JSON: save, reload, re-execute.
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "spec.json")
        batch.save(path)
        replayed = execute(load_runspec(path))
    original = execute(batch)
    assert replayed.alert_counts == original.alert_counts
    print("\nreplayed spec.json reproduces the original run:", replayed.alert_counts)

    # 3. Sweeping a parameter is a list comprehension over specs.
    print("\nadjudication sweep (k-out-of-4 on the streaming ensemble):")
    sweep = [
        RunSpec(mode="stream", traffic=traffic, adjudication=AdjudicationSpec(k=k))
        for k in (1, 2, 3, 4)
    ]
    for spec, result in ((s, execute(s)) for s in sweep):
        print(
            f"  k={spec.adjudication.k}: {result.metrics['adjudicated_alerts']:,} "
            f"of {result.total_requests:,} requests alerted "
            f"({result.metrics['adjudicated_rate']:.1%})"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
