"""Live streaming detection over a generated botnet burst.

The batch examples answer the paper's retrospective question; this one
answers the production question: *as the requests arrive, which ones do
we block?*  A scraping-heavy scenario is generated and fed, in arrival
order, through the :mod:`repro.stream` engine: incremental
sessionization, the four online detector ports and a windowed
2-out-of-4 adjudicator producing one ensemble verdict per request.

While the stream runs, the live alert totals and the trailing-window
alert rate are printed; at the end, the batch-equivalent Table-1-style
summary, the adjudicated verdict and the observed decision latency.

Run with::

    python examples/streaming_live_detection.py [total_requests]

(default 8000 requests, a couple of seconds of runtime).
"""

from __future__ import annotations

import sys
from datetime import datetime, timezone

from repro.core.reporting import render_table1
from repro.stream import StreamEngine, WindowedAdjudicator, default_online_detectors, generator_feed
from repro.traffic.actors import TimeWindow
from repro.traffic.scenarios import Scenario


def botnet_burst(total_requests: int) -> Scenario:
    """A scraping-dominated day: an aggressive campaign over organic traffic."""
    return Scenario(
        name="botnet_burst",
        window=TimeWindow(start=datetime(2018, 3, 14, 0, 0, 0, tzinfo=timezone.utc), days=1),
        total_requests=total_requests,
        mix={
            "aggressive": 0.55,
            "stealth": 0.10,
            "probing": 0.05,
            "human": 0.27,
            "crawler": 0.02,
            "monitoring": 0.01,
        },
        seed=314,
    )


def main() -> int:
    total_requests = int(sys.argv[1]) if len(sys.argv) > 1 else 8000

    detectors = default_online_detectors()
    names = [detector.name for detector in detectors]
    adjudicator = WindowedAdjudicator(names, k=2, window_seconds=600.0)
    engine = StreamEngine(detectors, adjudicator=adjudicator, track_latency=True)
    engine.reset()

    print(f"Streaming the botnet_burst scenario (~{total_requests:,} requests) "
          f"through {len(names)} online detectors, adjudicated {adjudicator.name} ...\n")

    for record in generator_feed(botnet_burst(total_requests)):
        (verdict,) = engine.process(record)
        if engine.stats.records % 2000 == 0:
            totals = ", ".join(
                f"{name}={count:,}" for name, count in engine.stats.online_alerts.items()
            )
            print(
                f"  {record.timestamp:%H:%M:%S}  after {engine.stats.records:,} requests: "
                f"{totals}; ensemble={engine.stats.ensemble_alerts:,} "
                f"(trailing 10min alert rate {adjudicator.window_alert_rate():.0%})"
            )

    result = engine.finish()

    print()
    print(
        render_table1(
            result.stats.records,
            result.alert_counts(),
            title="Streaming Table 1 - HTTP requests alerted by the online detectors",
        )
    )
    adjudication = result.adjudication
    print(
        f"\nadjudicated ({adjudication.scheme_name}): {adjudication.alert_count:,} of "
        f"{adjudication.total_requests:,} requests ({adjudication.alert_rate():.1%})"
    )
    latency = result.latency_percentiles()
    print(
        f"sessions closed: {result.stats.sessions_closed:,}; "
        f"throughput: {result.stats.records_per_second():,.0f} requests/sec; "
        f"decision latency p50={latency['p50'] * 1e6:.1f}us p99={latency['p99'] * 1e6:.1f}us"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
