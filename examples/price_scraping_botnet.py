"""Scenario study: a price-scraping botnet campaign against a travel site.

This is the workload the paper's introduction motivates: a botnet
harvesting fares from an e-commerce application, mixed in with legitimate
customers and search-engine crawlers.  The example builds the campaign
explicitly from the botnet API (rather than using a preset scenario),
writes the resulting Apache access log to disk, re-parses it and shows
how each individual detection technique -- not just the two composite
tools -- covers each scraper family.

Run with::

    python examples/price_scraping_botnet.py
"""

from __future__ import annotations

import random
import tempfile
from datetime import datetime, timezone
from pathlib import Path

from repro.core.evaluation import per_actor_class_detection
from repro.core.reporting import render_evaluation_rows
from repro.detectors.behavioral import BehavioralSessionDetector
from repro.detectors.commercial import CommercialBotDefenceDetector
from repro.detectors.fingerprint import UserAgentFingerprintDetector
from repro.detectors.inhouse import InHouseHeuristicDetector
from repro.detectors.pipeline import run_detectors
from repro.detectors.ratelimit import RateLimitDetector
from repro.detectors.reputation import IPReputationDetector
from repro.logs.parser import LogParser
from repro.logs.writer import LogWriter
from repro.traffic.actors import ActorPopulation, TimeWindow
from repro.traffic.botnet import BotnetCampaign
from repro.traffic.generator import TrafficGenerator
from repro.traffic.humans import HumanVisitor
from repro.traffic.goodbots import SearchEngineCrawler
from repro.traffic.ipspace import IPSpace
from repro.traffic.site import SiteModel
from repro.traffic.useragents import UserAgentCatalog


def build_population(rng: random.Random) -> ActorPopulation:
    """Three scraping campaigns plus organic traffic."""
    site = SiteModel()
    ips = IPSpace()
    agents = UserAgentCatalog()
    population = ActorPopulation()

    campaigns = [
        BotnetCampaign(name="fare-harvest", family="aggressive", total_requests=18_000, nodes=8),
        BotnetCampaign(name="quiet-mirror", family="stealth", total_requests=1_500, nodes=3),
        BotnetCampaign(name="api-mapper", family="probing", total_requests=600, nodes=2),
    ]
    for campaign in campaigns:
        population.extend(campaign.build_actors(site, ips, agents, rng))

    for index in range(120):
        population.add(
            HumanVisitor(
                f"human-{index}",
                site,
                client_ip=ips.residential.random_address(rng),
                user_agent=agents.random_browser(rng),
                request_budget=rng.randint(20, 60),
            )
        )
    population.add(
        SearchEngineCrawler(
            "googlebot",
            site,
            client_ip=ips.crawler.random_address(rng),
            user_agent=agents.random_crawler(rng),
            request_budget=400,
        )
    )
    return population


def main() -> int:
    rng = random.Random(99)
    window = TimeWindow(start=datetime(2018, 3, 11, tzinfo=timezone.utc), days=3)
    generator = TrafficGenerator(build_population(rng), window, seed=99)
    dataset = generator.run(dataset_name="price_scraping_botnet").dataset
    print(f"Simulated {len(dataset):,} requests over {window.days} days "
          f"({dataset.malicious_fraction():.1%} from the scraping campaigns).")

    # Materialise the traffic as a real Apache access log and parse it back,
    # exactly what an operations team would feed their detectors.
    log_path = Path(tempfile.gettempdir()) / "price_scraping_botnet_access.log"
    LogWriter().write_file(dataset.records, str(log_path))
    print(f"Wrote the access log to {log_path} "
          f"({log_path.stat().st_size / 1_048_576:.1f} MiB); re-parsing it ...")
    reparsed_count = len(LogParser().parse_file(str(log_path)))
    print(f"Re-parsed {reparsed_count:,} records.\n")

    detectors = [
        CommercialBotDefenceDetector(),
        InHouseHeuristicDetector(),
        BehavioralSessionDetector(),
        RateLimitDetector(threshold_rpm=60),
        IPReputationDetector(),
        UserAgentFingerprintDetector(),
    ]
    result = run_detectors(dataset, detectors)

    print("Alerted requests per detector:")
    for name, count in result.matrix.alert_counts().items():
        print(f"  {name:>16}: {count:>7,} ({count / len(dataset):.1%})")
    print()

    rows = []
    for name in result.matrix.detector_names:
        rates = per_actor_class_detection(dataset, result.matrix.alerted_by(name))
        rows.append({"detector": name, **{k: v for k, v in rates.items()}})
    print(render_evaluation_rows(rows, title="Detection rate per actor class and detector"))
    print()
    print("Reading the table: the aggressive fare-harvest campaign is caught by "
          "nearly everything, the stealth campaign only by behaviour-based "
          "detection, and the API-mapping campaign only by the error/probe "
          "heuristics -- which is exactly why the paper argues for diverse "
          "detectors.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
