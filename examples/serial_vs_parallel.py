"""Extension study: parallel vs serial deployment of the two tools.

The paper's Section V proposes comparing parallel deployments (both tools
monitor all the traffic) with serial ones (one tool filters the traffic
that the second tool then analyses).  This example quantifies that
comparison on labelled synthetic traffic: detection quality (sensitivity,
specificity, F1) against the workload each tool has to carry.

Run with::

    python examples/serial_vs_parallel.py
"""

from __future__ import annotations

from repro.core.configurations import compare_configurations
from repro.core.reporting import render_evaluation_rows
from repro.detectors.commercial import CommercialBotDefenceDetector
from repro.detectors.inhouse import InHouseHeuristicDetector
from repro.traffic.generator import generate_dataset
from repro.traffic.scenarios import amadeus_march_2018


def main() -> int:
    dataset = generate_dataset(amadeus_march_2018(scale=0.01, seed=2018))
    print(f"Scenario: {len(dataset):,} requests over 8 days, "
          f"{dataset.malicious_fraction():.1%} malicious (calibrated mix).\n")

    comparison = compare_configurations(
        dataset,
        CommercialBotDefenceDetector(),
        InHouseHeuristicDetector(),
    )

    rows = []
    for outcome in comparison.outcomes:
        confusion = outcome.confusion
        rows.append(
            {
                "configuration": outcome.name,
                "alerts": outcome.alert_count,
                "tool1_workload": outcome.workload[list(outcome.workload)[0]],
                "tool2_workload": outcome.workload[list(outcome.workload)[1]],
                "sensitivity": confusion.sensitivity(),
                "specificity": confusion.specificity(),
                "f1": confusion.f1_score(),
            }
        )
    print(render_evaluation_rows(rows, title="Deployment configurations compared"))
    print()

    parallel = comparison.by_name("parallel-1oo2")
    confirm = comparison.by_name("serial-confirm(commercial->inhouse)")
    escalate = comparison.by_name("serial-escalate(commercial->inhouse)")
    saved_confirm = 1 - confirm.total_workload / parallel.total_workload
    saved_escalate = 1 - escalate.total_workload / parallel.total_workload
    print("Summary:")
    print(f"  parallel 1-out-of-2: highest sensitivity ({parallel.confusion.sensitivity():.3f}), "
          "both tools process every request.")
    print("  serial confirm (commercial -> inhouse): specificity of 2-out-of-2 "
          f"({confirm.confusion.specificity():.3f}) while the second tool processes "
          f"{confirm.workload['inhouse']:,} requests ({saved_confirm:.0%} less total work).")
    print(f"  serial escalate (commercial -> inhouse): sensitivity {escalate.confusion.sensitivity():.3f} "
          f"at {saved_escalate:.0%} less total work -- the second tool only inspects what the first let through.")
    print()
    print("The best configuration therefore depends on whether the operator is "
          "limited by missed scrapers (deploy in parallel, alarm on either tool) "
          "or by analyst workload and false alarms (deploy serially).")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
