"""Record once, replay many: the :mod:`repro.trace` substrate end to end.

Walks through the whole persistence story:

1. generate a scenario and **record** it as a columnar trace file;
2. inspect the trace in O(1) via its footer (``trace_info``);
3. **replay** the trace through ``execute()`` and check the run is
   identical to analysing the live-generated traffic;
4. time the replay against regeneration;
5. let the **generation cache** do all of it transparently via
   ``TrafficSpec(cache=True)``;
6. **compose** scenarios: interleave a recorded attack burst onto the
   recorded background and stream the mix through the real-time engine.

Run with::

    python examples/trace_record_replay.py
"""

from __future__ import annotations

import os
import tempfile
import time

from repro import RunSpec, TrafficSpec, execute
from repro.runspec import build_dataset
from repro.trace import interleave_traces, trace_info, write_trace


def main() -> int:
    with tempfile.TemporaryDirectory() as workdir:
        background_trace = os.path.join(workdir, "background.trace")
        attack_trace = os.path.join(workdir, "attack.trace")
        mixed_trace = os.path.join(workdir, "mixed.trace")
        os.environ["REPRO_CACHE_DIR"] = os.path.join(workdir, "cache")

        # 1. Generate once, record as a trace ---------------------------
        background = TrafficSpec(
            scenario="balanced_small", seed=11, params={"total_requests": 6000}
        )
        print("Generating the background scenario and recording it ...")
        started = time.perf_counter()
        dataset = build_dataset(background)
        generate_seconds = time.perf_counter() - started
        info = write_trace(dataset, background_trace)
        print(f"  {info.records:,} requests -> {info.file_size:,} bytes "
              f"({info.file_size / max(info.records, 1):.1f} bytes/request)\n")

        # 2. O(1) inspection -------------------------------------------
        print("Footer summary (no block is read):")
        print("  " + trace_info(background_trace).render().replace("\n", "\n  ") + "\n")

        # 3. Replay through execute() ----------------------------------
        live = execute(RunSpec(mode="tables", traffic=background))
        replayed = execute(
            RunSpec(mode="tables", traffic=TrafficSpec(source="trace", path=background_trace))
        )
        assert replayed.alert_counts == live.alert_counts
        assert replayed.metrics == live.metrics
        print("Replaying the trace reproduces the live run exactly:")
        print(f"  alert counts: {replayed.alert_counts}\n")

        # 4. Replay vs regenerate --------------------------------------
        started = time.perf_counter()
        build_dataset(TrafficSpec(source="trace", path=background_trace))
        replay_seconds = time.perf_counter() - started
        print(f"Materialising the traffic: generate {generate_seconds:.2f}s vs "
              f"trace replay {replay_seconds:.2f}s "
              f"(x{generate_seconds / max(replay_seconds, 1e-9):.1f})\n")

        # 5. The transparent generation cache --------------------------
        cached = RunSpec(
            mode="tables",
            traffic=TrafficSpec(
                scenario="balanced_small", seed=12, params={"total_requests": 6000}, cache=True
            ),
        )
        started = time.perf_counter()
        execute(cached)  # cold: generates and records under .repro-cache/
        cold = time.perf_counter() - started
        started = time.perf_counter()
        execute(cached)  # warm: replays the recording
        warm = time.perf_counter() - started
        print(f"TrafficSpec(cache=True): cold run {cold:.2f}s, warm run {warm:.2f}s\n")

        # 6. Scenario composition: attack onto background --------------
        print("Recording an aggressive burst and mixing it onto the background ...")
        attack = build_dataset(
            TrafficSpec(
                scenario="stealth_heavy", seed=13, params={"total_requests": 2000}
            )
        )
        write_trace(attack, attack_trace)
        mixed_info = interleave_traces(
            background_trace,
            attack_trace,
            mixed_trace,
            shift_overlay_seconds=3600.0,
            sample_overlay=0.5,
            seed=1,
        )
        print(f"  mixed trace: {mixed_info.records:,} requests, "
              f"time-ordered={mixed_info.time_ordered}")

        streamed = execute(
            RunSpec(
                mode="stream",
                traffic=TrafficSpec(source="trace", path=mixed_trace),
            )
        )
        print("  streaming the mix through the real-time engine:")
        print(f"    {streamed.metric('records'):,} records, "
              f"{streamed.metric('adjudicated_alerts'):,} adjudicated alerts "
              f"({streamed.metric('adjudicated_rate'):.1%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
