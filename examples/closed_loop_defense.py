"""Closed-loop defense: blocking a botnet that fights back.

The streaming example answers "which requests do we block?"; this one
actually blocks them -- and lets the attacker notice.  Two simulations
run over the same benign background traffic (humans, a crawler, a
monitoring probe) and the same scraping budget:

1. a **scripted** aggressive campaign that never reacts: the enforcement
   gateway's escalation ladder (throttle -> challenge -> block) shuts it
   down within seconds of its first burst;
2. an **adaptive** campaign whose nodes observe the enforcement feedback
   and fight back: they back off when throttled, rotate to a fresh exit
   IP and user agent after a block, lie low long enough to start a clean
   session -- and give up once their identity pool is burned.

The Table-5-style report shows what the defense bought (requests and
bytes never served, time-to-block) and what it cost (challenged humans,
false blocks), and the final comparison quantifies the arms race.

Run with::

    python examples/closed_loop_defense.py [total_requests]

(default 8000 requests, a couple of seconds of runtime).
"""

from __future__ import annotations

import sys

from repro.mitigation import (
    build_report,
    render_comparison,
    render_mitigation_report,
    run_defense,
    standard_policy,
)


def main() -> int:
    total_requests = int(sys.argv[1]) if len(sys.argv) > 1 else 8_000
    policy = standard_policy()

    print(
        f"Closed-loop defense demo: ~{total_requests:,} requests against the "
        f"{policy.name!r} policy (2-out-of-4 adjudication)\n"
    )

    reports = {}
    for campaign in ("scripted", "adaptive"):
        result = run_defense(
            total_requests=total_requests,
            adaptive=campaign == "adaptive",
            policy=policy,
            seed=314,
        )
        report = build_report(result, policy_name=policy.name)
        reports[campaign] = report
        print(
            render_mitigation_report(
                report, title=f"Table 5 - Closed-loop outcomes ({campaign} campaign)"
            )
        )
        print()

    print(render_comparison(reports["scripted"], reports["adaptive"]))
    print()
    scripted, adaptive = reports["scripted"], reports["adaptive"]
    print(
        f"The scripted campaign landed {scripted.attacker_yield:.1%} of its budget; "
        f"the adaptive one landed {adaptive.attacker_yield:.1%} by burning "
        f"{adaptive.attacker_identity_rotations} identities "
        f"({adaptive.attacker_gave_up} node(s) eventually gave up)."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
