"""Isolation forest, implemented from scratch.

An isolation forest isolates points by recursive random axis-aligned
splits; anomalous points are isolated in fewer splits.  The score follows
the original formulation of Liu, Ting & Zhou (2008): for a point with
average path length ``E[h]`` over the trees and subsample size ``n``,

    score = 2 ** ( -E[h] / c(n) )

where ``c(n)`` is the expected path length of an unsuccessful BST search.
Scores lie in (0, 1) with values close to 1 indicating anomalies, which
also satisfies this package's "higher = more anomalous" convention.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.anomaly.base import AnomalyModel


@dataclass
class _Node:
    """One node of an isolation tree."""

    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    size: int = 0
    depth: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None


def _average_path_length(n: int) -> float:
    """Expected path length of an unsuccessful search in a BST of ``n`` nodes."""
    if n <= 1:
        return 0.0
    if n == 2:
        return 1.0
    harmonic = np.log(n - 1) + np.euler_gamma
    return 2.0 * harmonic - 2.0 * (n - 1) / n


def _build_tree(X: np.ndarray, depth: int, max_depth: int, rng: np.random.Generator) -> _Node:
    node = _Node(size=X.shape[0], depth=depth)
    if depth >= max_depth or X.shape[0] <= 1:
        return node
    # Pick a feature that still varies in this partition.
    spans = X.max(axis=0) - X.min(axis=0)
    candidates = np.flatnonzero(spans > 0)
    if candidates.size == 0:
        return node
    feature = int(rng.choice(candidates))
    low, high = X[:, feature].min(), X[:, feature].max()
    threshold = float(rng.uniform(low, high))
    mask = X[:, feature] < threshold
    if mask.all() or (~mask).all():
        return node
    node.feature = feature
    node.threshold = threshold
    node.left = _build_tree(X[mask], depth + 1, max_depth, rng)
    node.right = _build_tree(X[~mask], depth + 1, max_depth, rng)
    return node


def _path_length(node: _Node, row: np.ndarray) -> float:
    depth = 0.0
    current = node
    while not current.is_leaf:
        if row[current.feature] < current.threshold:
            assert current.left is not None
            current = current.left
        else:
            assert current.right is not None
            current = current.right
        depth += 1.0
    # Unresolved leaves (stopped by depth limit) are credited the expected
    # remaining path length for their size.
    return depth + _average_path_length(current.size)


class IsolationForestModel(AnomalyModel):
    """An ensemble of random isolation trees."""

    def __init__(self, *, n_trees: int = 100, subsample: int = 256, seed: int = 29):
        super().__init__()
        if n_trees < 1:
            raise ValueError("n_trees must be at least 1")
        if subsample < 2:
            raise ValueError("subsample must be at least 2")
        self.n_trees = n_trees
        self.subsample = subsample
        self.seed = seed
        self._trees: list[_Node] = []
        self._subsample_size = 0

    def fit(self, X: np.ndarray) -> "IsolationForestModel":
        X = self._validate_matrix(X)
        rng = np.random.default_rng(self.seed)
        self._subsample_size = min(self.subsample, X.shape[0])
        max_depth = int(np.ceil(np.log2(max(2, self._subsample_size))))
        self._trees = []
        for _ in range(self.n_trees):
            index = rng.choice(X.shape[0], size=self._subsample_size, replace=False)
            self._trees.append(_build_tree(X[index], 0, max_depth, rng))
        self._fitted = True
        return self

    def score(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        X = self._validate_matrix(X)
        expected = _average_path_length(self._subsample_size)
        if expected == 0:
            return np.zeros(X.shape[0])
        scores = np.empty(X.shape[0], dtype=float)
        for i, row in enumerate(X):
            mean_path = np.mean([_path_length(tree, row) for tree in self._trees])
            scores[i] = 2.0 ** (-mean_path / expected)
        return scores
