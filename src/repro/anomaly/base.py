"""Common interface of the anomaly-detection models."""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import DetectorNotFittedError


class AnomalyModel(abc.ABC):
    """Base class for unsupervised anomaly scorers.

    Subclasses implement :meth:`fit` and :meth:`score`.  Scores are
    non-negative and *higher means more anomalous*; absolute magnitudes
    are model-specific, so thresholds should always be derived from the
    score distribution (see :meth:`threshold_for_contamination`).
    """

    def __init__(self) -> None:
        self._fitted = False

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def fit(self, X: np.ndarray) -> "AnomalyModel":
        """Fit the model on the rows of ``X`` and return ``self``."""

    @abc.abstractmethod
    def score(self, X: np.ndarray) -> np.ndarray:
        """Anomaly score for each row of ``X`` (higher = more anomalous)."""

    # ------------------------------------------------------------------
    def fit_score(self, X: np.ndarray) -> np.ndarray:
        """Fit on ``X`` and return the scores of its own rows."""
        return self.fit(X).score(X)

    def threshold_for_contamination(self, scores: np.ndarray, contamination: float) -> float:
        """Score threshold above which the top ``contamination`` fraction lies.

        Parameters
        ----------
        scores:
            Scores of the fitting population.
        contamination:
            Expected fraction of anomalous rows, in ``(0, 1)``.
        """
        if not 0.0 < contamination < 1.0:
            raise ValueError("contamination must be in (0, 1)")
        if scores.size == 0:
            return float("inf")
        return float(np.quantile(scores, 1.0 - contamination))

    # ------------------------------------------------------------------
    def _require_fitted(self) -> None:
        if not self._fitted:
            raise DetectorNotFittedError(f"{self.__class__.__name__} must be fitted before scoring")

    @staticmethod
    def _validate_matrix(X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"expected a 2-D feature matrix, got shape {X.shape}")
        if X.shape[0] == 0:
            raise ValueError("cannot operate on an empty feature matrix")
        if not np.isfinite(X).all():
            raise ValueError("feature matrix contains NaN or infinite values")
        return X
