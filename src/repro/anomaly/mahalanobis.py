"""Mahalanobis-distance anomaly model.

The anomaly score of a row is its Mahalanobis distance from the mean of
the fitting population, i.e. the multivariate generalisation of a z-score
that accounts for feature correlations.  The covariance matrix is
regularised (shrunk towards its diagonal) so the model stays well-defined
when features are collinear or constant.
"""

from __future__ import annotations

import numpy as np

from repro.anomaly.base import AnomalyModel


class MahalanobisModel(AnomalyModel):
    """Mahalanobis distance from the fitted mean with a shrunk covariance."""

    def __init__(self, *, shrinkage: float = 0.1):
        super().__init__()
        if not 0.0 <= shrinkage <= 1.0:
            raise ValueError("shrinkage must be in [0, 1]")
        self.shrinkage = shrinkage
        self._mean: np.ndarray | None = None
        self._precision: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "MahalanobisModel":
        X = self._validate_matrix(X)
        self._mean = X.mean(axis=0)
        centred = X - self._mean
        covariance = centred.T @ centred / max(1, X.shape[0] - 1)
        diagonal = np.diag(np.diag(covariance))
        shrunk = (1.0 - self.shrinkage) * covariance + self.shrinkage * diagonal
        # A small ridge keeps the matrix invertible even when some feature
        # is constant in the fitting data.
        ridge = 1e-6 * np.trace(shrunk) / max(1, shrunk.shape[0])
        shrunk += np.eye(shrunk.shape[0]) * max(ridge, 1e-12)
        self._precision = np.linalg.pinv(shrunk)
        self._fitted = True
        return self

    def score(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        X = self._validate_matrix(X)
        assert self._mean is not None and self._precision is not None
        centred = X - self._mean
        squared = np.einsum("ij,jk,ik->i", centred, self._precision, centred)
        return np.sqrt(np.maximum(squared, 0.0))
