"""Robust z-score anomaly model.

Each feature is standardised with the median and the MAD (median absolute
deviation), which are robust to the very outliers we are trying to find;
the anomaly score of a row is the mean of its absolute robust z-scores
over all features.  Simple, fast and surprisingly competitive on
session-feature data.
"""

from __future__ import annotations

import numpy as np

from repro.anomaly.base import AnomalyModel

#: Consistency constant making the MAD comparable to a standard deviation
#: under normality.
MAD_SCALE = 1.4826


class RobustZScoreModel(AnomalyModel):
    """Median/MAD standardisation with mean |z| as the anomaly score."""

    def __init__(self, *, clip: float = 10.0):
        super().__init__()
        if clip <= 0:
            raise ValueError("clip must be positive")
        self.clip = clip
        self._median: np.ndarray | None = None
        self._mad: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "RobustZScoreModel":
        X = self._validate_matrix(X)
        self._median = np.median(X, axis=0)
        mad = np.median(np.abs(X - self._median), axis=0) * MAD_SCALE
        # Features with zero spread carry no information; give them a unit
        # scale so they contribute zero to every score instead of dividing
        # by zero.
        mad[mad == 0] = 1.0
        self._mad = mad
        self._fitted = True
        return self

    def score(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        X = self._validate_matrix(X)
        assert self._median is not None and self._mad is not None
        z = np.abs(X - self._median) / self._mad
        z = np.clip(z, 0.0, self.clip)
        return z.mean(axis=1)
