"""Unsupervised anomaly-detection algorithms (from scratch, numpy only).

These are the statistical substrate behind the anomaly-based session
detector used in the multi-detector extension experiments.  All models
share the same small interface (:class:`~repro.anomaly.base.AnomalyModel`):
``fit(X)`` on a matrix of feature vectors, then ``score(X)`` returns a
non-negative anomaly score per row (higher means more anomalous), and
``threshold_for_contamination`` converts an expected contamination rate
into a score threshold.
"""

from repro.anomaly.base import AnomalyModel
from repro.anomaly.isolation_forest import IsolationForestModel
from repro.anomaly.knn import KNNDistanceModel
from repro.anomaly.mahalanobis import MahalanobisModel
from repro.anomaly.zscore import RobustZScoreModel

__all__ = [
    "AnomalyModel",
    "IsolationForestModel",
    "KNNDistanceModel",
    "MahalanobisModel",
    "RobustZScoreModel",
]
