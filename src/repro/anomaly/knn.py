"""k-nearest-neighbour distance anomaly model.

The anomaly score of a row is its (standardised-space) distance to its
k-th nearest neighbour among the fitting population: points in dense
regions get small scores, isolated points get large ones.  To keep the
model usable on large session populations the fitting set is subsampled
to ``max_reference`` rows.
"""

from __future__ import annotations

import numpy as np

from repro.anomaly.base import AnomalyModel


class KNNDistanceModel(AnomalyModel):
    """Distance to the k-th nearest neighbour as the anomaly score."""

    def __init__(self, *, k: int = 10, max_reference: int = 2000, seed: int = 13):
        super().__init__()
        if k < 1:
            raise ValueError("k must be at least 1")
        if max_reference < 2:
            raise ValueError("max_reference must be at least 2")
        self.k = k
        self.max_reference = max_reference
        self.seed = seed
        self._reference: np.ndarray | None = None
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "KNNDistanceModel":
        X = self._validate_matrix(X)
        self._mean = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0] = 1.0
        self._std = std
        standardised = (X - self._mean) / self._std
        if standardised.shape[0] > self.max_reference:
            rng = np.random.default_rng(self.seed)
            index = rng.choice(standardised.shape[0], size=self.max_reference, replace=False)
            standardised = standardised[index]
        self._reference = standardised
        self._fitted = True
        return self

    def score(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        X = self._validate_matrix(X)
        assert self._reference is not None and self._mean is not None and self._std is not None
        standardised = (X - self._mean) / self._std
        reference = self._reference
        effective_k = min(self.k, reference.shape[0] - 1) if reference.shape[0] > 1 else 1
        scores = np.empty(standardised.shape[0], dtype=float)
        # Chunked pairwise distances keep memory bounded for large inputs.
        chunk = 512
        for start in range(0, standardised.shape[0], chunk):
            block = standardised[start : start + chunk]
            distances = np.sqrt(((block[:, None, :] - reference[None, :, :]) ** 2).sum(axis=2))
            # A row that is itself part of the reference has a zero distance
            # to itself; using the k-th smallest (0-indexed k) skips it.
            partition = np.partition(distances, effective_k, axis=1)
            scores[start : start + block.shape[0]] = partition[:, effective_k]
        return scores
