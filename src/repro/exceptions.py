"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised intentionally by the library derive from
:class:`ReproError`, so callers can catch a single base class at
application boundaries while still being able to distinguish the
individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class LogParseError(ReproError):
    """Raised when an access-log line cannot be parsed.

    Attributes
    ----------
    line:
        The offending raw log line (possibly truncated for display).
    line_number:
        1-based line number within the source file, if known.
    """

    def __init__(self, message: str, line: str = "", line_number: int | None = None) -> None:
        super().__init__(message)
        self.line = line
        self.line_number = line_number

    def __str__(self) -> str:  # pragma: no cover - display helper
        base = super().__str__()
        if self.line_number is not None:
            base = f"line {self.line_number}: {base}"
        if self.line:
            preview = self.line if len(self.line) <= 120 else self.line[:117] + "..."
            base = f"{base} [{preview!r}]"
        return base


class DatasetError(ReproError):
    """Raised for inconsistent or invalid data-set operations."""


class LabelError(DatasetError):
    """Raised when ground-truth labels are missing or inconsistent."""


class DetectorError(ReproError):
    """Raised when a detector is misconfigured or misused."""


class DetectorNotFittedError(DetectorError):
    """Raised when a detector that requires fitting is used before ``fit``."""


class AdjudicationError(ReproError):
    """Raised for invalid adjudication-scheme configurations."""


class ConfigurationError(ReproError):
    """Raised for invalid deployment-configuration setups."""


class ScenarioError(ReproError):
    """Raised when a traffic scenario is invalid or unknown."""


class AnalysisError(ReproError):
    """Raised when a diversity analysis cannot be computed."""


class TraceError(ReproError):
    """Raised for invalid, corrupt or unreadable trace files.

    Covers malformed trace headers/footers, version mismatches,
    truncated blocks and misuse of the trace store API (e.g. writing to
    a closed :class:`~repro.trace.store.TraceWriter`).
    """


class ColumnsError(ReproError):
    """Raised for invalid columnar-frame operations.

    Covers inconsistent column lengths in a
    :class:`~repro.columns.frame.RecordFrame` and misuse of the
    session-span / feature-matrix APIs built on top of it.
    """


class SpecError(ReproError):
    """Raised for invalid, unknown or non-round-trippable run specifications.

    Covers malformed :class:`~repro.runspec.spec.RunSpec` trees (bad
    mode, unknown keys in serialized specs, out-of-range values) and
    spec/workload mismatches caught at execution time.
    """


class StoreError(ReproError):
    """Raised for invalid run-store operations.

    Covers unreadable or non-runstore SQLite files, databases written by
    a newer schema than this library understands, unknown run ids and
    misuse of the :class:`~repro.runstore.store.RunStore` API (e.g.
    recording into a closed store).
    """


class LintError(ReproError):
    """Raised for invalid static-analysis operations.

    Covers malformed :mod:`repro.lint` configurations and baseline
    files, unknown rule ids or severities, and findings that do not
    round-trip.  Rule *findings* are data, not exceptions -- this type
    is about misuse of the lint machinery itself.
    """


class ProfError(ReproError):
    """Raised for invalid profiling operations.

    Covers malformed :mod:`repro.prof` options (non-positive sampling
    rates), profiles that do not round-trip (bad collapsed-stack or
    profile-snapshot payloads) and misuse of the profiler lifecycle
    (starting a running profiler, stopping a stopped one).
    """


class ObsError(ReproError):
    """Raised for invalid observability operations.

    Covers metric kind/name collisions in a
    :class:`~repro.obs.metrics.MetricsRegistry`, negative counter
    increments, malformed metric snapshots and histogram bound
    mismatches during snapshot merging.
    """
