"""Generic name -> factory registries.

Every pluggable component family in the library -- batch detectors,
online detectors, traffic scenarios, enforcement policies, adjudication
schemes -- is constructed from a :class:`RunSpec <repro.runspec.spec.RunSpec>`
by *name*.  This module provides the one registry implementation they all
share: case-sensitive name -> factory mapping, explicit overwrite
semantics, and lookup errors that carry a did-you-mean suggestion plus
the full list of valid names (always as a :mod:`repro.exceptions` type,
never a bare ``KeyError``).

Third-party code extends a family by registering its own factory::

    from repro.detectors.registry import register_detector

    register_detector("my-detector", MyDetector)

after which ``DetectorSpec(name="my-detector")`` resolves to it.
"""

from __future__ import annotations

import difflib
from typing import Any, Callable, Generic, Iterable, TypeVar

from repro.exceptions import ReproError

T = TypeVar("T")


def suggest(name: str, candidates: Iterable[str]) -> str | None:
    """The closest registered name to ``name``, when one is plausibly meant."""
    matches = difflib.get_close_matches(name, list(candidates), n=1, cutoff=0.6)
    return matches[0] if matches else None


def unknown_name_message(kind: str, name: str, candidates: Iterable[str]) -> str:
    """A lookup-miss message with a did-you-mean hint and the valid names."""
    candidates = sorted(candidates)
    message = f"unknown {kind} {name!r}"
    close = suggest(name, candidates)
    if close is not None:
        message += f" (did you mean {close!r}?)"
    return f"{message}; available: {candidates}"


class Registry(Generic[T]):
    """A name -> factory registry for one component family.

    Parameters
    ----------
    kind:
        Human-readable component kind (``"detector"``, ``"scenario"``,
        ...) used in error messages.
    error_type:
        The :class:`~repro.exceptions.ReproError` subclass raised on
        invalid registrations and failed lookups.
    """

    def __init__(self, kind: str, error_type: type[ReproError] = ReproError) -> None:
        self.kind = kind
        self.error_type = error_type
        self._factories: dict[str, Callable[..., T]] = {}

    # ------------------------------------------------------------------
    def register(self, name: str, factory: Callable[..., T], *, overwrite: bool = False) -> None:
        """Register ``factory`` under ``name``."""
        if not name:
            raise self.error_type(f"{self.kind} registry names must be non-empty")
        if name in self._factories and not overwrite:
            raise self.error_type(f"{self.kind} {name!r} is already registered")
        self._factories[name] = factory

    def names(self) -> list[str]:
        """All registered names, sorted."""
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def __len__(self) -> int:
        return len(self._factories)

    # ------------------------------------------------------------------
    def get(self, name: str) -> Callable[..., T]:
        """The factory registered under ``name``.

        Raises the registry's error type -- with a did-you-mean
        suggestion and the list of valid names -- when unknown.
        """
        try:
            return self._factories[name]
        except KeyError as exc:
            raise self.error_type(unknown_name_message(self.kind, name, self._factories)) from exc

    def create(self, name: str, **kwargs: Any) -> T:
        """Instantiate the component registered under ``name``."""
        return self.get(name)(**kwargs)
