"""CART-style decision tree classifier (from scratch).

A small, readable implementation of a binary classification tree with
Gini-impurity splits, used by the crawler-classification detector
(following the data-mining approach of Stevanovic et al. 2012).  It
supports a maximum depth, a minimum leaf size and probability estimates
from leaf class frequencies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DetectorNotFittedError


@dataclass
class _TreeNode:
    """A node of the fitted tree (leaf when ``feature`` is ``-1``)."""

    feature: int = -1
    threshold: float = 0.0
    left: "_TreeNode | None" = None
    right: "_TreeNode | None" = None
    probability: float = 0.0  # P(class == 1) at this node
    samples: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.feature == -1


def _gini(y: np.ndarray) -> float:
    """Gini impurity of a binary label vector."""
    if y.size == 0:
        return 0.0
    p = y.mean()
    return float(2.0 * p * (1.0 - p))


def _best_split(X: np.ndarray, y: np.ndarray, min_leaf: int) -> tuple[int, float, float] | None:
    """Find the (feature, threshold, impurity-decrease) of the best split."""
    parent_impurity = _gini(y)
    best: tuple[int, float, float] | None = None
    n = y.size
    for feature in range(X.shape[1]):
        values = X[:, feature]
        order = np.argsort(values, kind="stable")
        sorted_values = values[order]
        sorted_labels = y[order]
        # Candidate thresholds are midpoints between distinct consecutive values.
        positives_left = np.cumsum(sorted_labels)
        for split_at in range(min_leaf, n - min_leaf + 1):
            if split_at >= n:
                break
            if sorted_values[split_at - 1] == sorted_values[split_at]:
                continue
            left_n = split_at
            right_n = n - split_at
            left_pos = positives_left[split_at - 1]
            right_pos = positives_left[-1] - left_pos
            p_left = left_pos / left_n
            p_right = right_pos / right_n
            impurity = (left_n / n) * 2 * p_left * (1 - p_left) + (right_n / n) * 2 * p_right * (1 - p_right)
            decrease = parent_impurity - impurity
            threshold = (sorted_values[split_at - 1] + sorted_values[split_at]) / 2.0
            if best is None or decrease > best[2]:
                best = (feature, float(threshold), float(decrease))
    if best is None or best[2] <= 1e-12:
        return None
    return best


class DecisionTreeClassifier:
    """Binary CART classifier with Gini splits."""

    def __init__(self, *, max_depth: int = 6, min_leaf: int = 5):
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        if min_leaf < 1:
            raise ValueError("min_leaf must be at least 1")
        self.max_depth = max_depth
        self.min_leaf = min_leaf
        self._root: _TreeNode | None = None

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=int)
        if set(np.unique(y)) - {0, 1}:
            raise ValueError("DecisionTreeClassifier expects binary 0/1 labels")
        self._root = self._grow(X, y, depth=0)
        return self

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> _TreeNode:
        node = _TreeNode(probability=float(y.mean()) if y.size else 0.0, samples=int(y.size))
        if depth >= self.max_depth or y.size < 2 * self.min_leaf or _gini(y) == 0.0:
            return node
        split = _best_split(X, y, self.min_leaf)
        if split is None:
            return node
        feature, threshold, _ = split
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[mask], y[mask], depth + 1)
        node.right = self._grow(X[~mask], y[~mask], depth + 1)
        return node

    # ------------------------------------------------------------------
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """P(class == 1) for each row."""
        if self._root is None:
            raise DetectorNotFittedError("DecisionTreeClassifier is not fitted")
        X = np.asarray(X, dtype=float)
        probabilities = np.empty(X.shape[0], dtype=float)
        for index, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
                assert node is not None
            probabilities[index] = node.probability
        return probabilities

    def predict(self, X: np.ndarray, *, threshold: float = 0.5) -> np.ndarray:
        """Predicted class labels (0/1)."""
        return (self.predict_proba(X) >= threshold).astype(int)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy on ``(X, y)``."""
        return float(np.mean(self.predict(X) == np.asarray(y, dtype=int)))

    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        def _depth(node: _TreeNode | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(_depth(node.left), _depth(node.right))

        if self._root is None:
            raise DetectorNotFittedError("DecisionTreeClassifier is not fitted")
        return _depth(self._root)

    def node_count(self) -> int:
        """Total number of nodes in the fitted tree."""
        def _count(node: _TreeNode | None) -> int:
            if node is None:
                return 0
            return 1 + _count(node.left) + _count(node.right)

        if self._root is None:
            raise DetectorNotFittedError("DecisionTreeClassifier is not fitted")
        return _count(self._root)
