"""Naive Bayes classifiers (from scratch).

Two variants are provided:

* :class:`GaussianNaiveBayes` -- continuous features modelled as
  per-class Gaussians (used on the raw session feature vectors).
* :class:`BernoulliNaiveBayes` -- binary features (used on thresholded
  session indicators, the closest analogue to the probabilistic-reasoning
  robot detector of Stassopoulou & Dikaiakos).

Both expose the usual ``fit`` / ``predict_proba`` / ``predict`` trio and
operate on numpy arrays only.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DetectorNotFittedError


class _BaseNaiveBayes:
    """Shared plumbing: class priors, fitted-state checks, argmax predict."""

    def __init__(self) -> None:
        self.classes_: np.ndarray | None = None
        self.class_log_prior_: np.ndarray | None = None

    def _fit_priors(self, y: np.ndarray) -> np.ndarray:
        classes, counts = np.unique(y, return_counts=True)
        if classes.size < 2:
            raise ValueError("naive Bayes needs at least two classes in the training labels")
        self.classes_ = classes
        self.class_log_prior_ = np.log(counts / counts.sum())
        return classes

    def _require_fitted(self) -> None:
        if self.classes_ is None:
            raise DetectorNotFittedError(f"{self.__class__.__name__} is not fitted")

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class membership probabilities, rows summing to one."""
        self._require_fitted()
        joint = self._joint_log_likelihood(np.asarray(X, dtype=float))
        joint -= joint.max(axis=1, keepdims=True)
        probabilities = np.exp(joint)
        return probabilities / probabilities.sum(axis=1, keepdims=True)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Most probable class for each row."""
        self._require_fitted()
        assert self.classes_ is not None
        joint = self._joint_log_likelihood(np.asarray(X, dtype=float))
        return self.classes_[np.argmax(joint, axis=1)]

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy on ``(X, y)``."""
        return float(np.mean(self.predict(X) == np.asarray(y)))


class GaussianNaiveBayes(_BaseNaiveBayes):
    """Per-class Gaussian likelihoods with a variance floor."""

    def __init__(self, *, var_smoothing: float = 1e-9):
        super().__init__()
        self.var_smoothing = var_smoothing
        self.theta_: np.ndarray | None = None
        self.var_: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianNaiveBayes":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        classes = self._fit_priors(y)
        n_features = X.shape[1]
        self.theta_ = np.zeros((classes.size, n_features))
        self.var_ = np.zeros((classes.size, n_features))
        global_var = X.var(axis=0).max() if X.size else 1.0
        floor = self.var_smoothing * max(global_var, 1e-12)
        for index, cls in enumerate(classes):
            rows = X[y == cls]
            self.theta_[index] = rows.mean(axis=0)
            self.var_[index] = rows.var(axis=0) + floor
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        assert self.theta_ is not None and self.var_ is not None and self.class_log_prior_ is not None
        joint = np.zeros((X.shape[0], self.theta_.shape[0]))
        for index in range(self.theta_.shape[0]):
            mean = self.theta_[index]
            var = self.var_[index]
            log_likelihood = -0.5 * (np.log(2.0 * np.pi * var) + (X - mean) ** 2 / var)
            joint[:, index] = self.class_log_prior_[index] + log_likelihood.sum(axis=1)
        return joint


class BernoulliNaiveBayes(_BaseNaiveBayes):
    """Binary-feature naive Bayes with Laplace smoothing."""

    def __init__(self, *, alpha: float = 1.0):
        super().__init__()
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.alpha = alpha
        self.feature_log_prob_: np.ndarray | None = None
        self.feature_log_neg_prob_: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "BernoulliNaiveBayes":
        X = np.asarray(X, dtype=float)
        if ((X != 0) & (X != 1)).any():
            raise ValueError("BernoulliNaiveBayes expects binary (0/1) features")
        y = np.asarray(y)
        classes = self._fit_priors(y)
        n_features = X.shape[1]
        probabilities = np.zeros((classes.size, n_features))
        for index, cls in enumerate(classes):
            rows = X[y == cls]
            probabilities[index] = (rows.sum(axis=0) + self.alpha) / (rows.shape[0] + 2 * self.alpha)
        self.feature_log_prob_ = np.log(probabilities)
        self.feature_log_neg_prob_ = np.log(1.0 - probabilities)
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        assert (
            self.feature_log_prob_ is not None
            and self.feature_log_neg_prob_ is not None
            and self.class_log_prior_ is not None
        )
        positive = X @ self.feature_log_prob_.T
        negative = (1.0 - X) @ self.feature_log_neg_prob_.T
        return self.class_log_prior_ + positive + negative
