"""Small supervised-learning substrate (from scratch, numpy only).

The web-robot-detection literature the paper cites uses probabilistic
reasoning (Stassopoulou & Dikaiakos 2009) and decision-tree style data
mining (Stevanovic et al. 2012).  This package implements those two model
families from scratch so the corresponding detectors have no dependency
beyond numpy:

* :class:`~repro.ml.naive_bayes.GaussianNaiveBayes` and
  :class:`~repro.ml.naive_bayes.BernoulliNaiveBayes`
* :class:`~repro.ml.decision_tree.DecisionTreeClassifier`
"""

from repro.ml.decision_tree import DecisionTreeClassifier
from repro.ml.naive_bayes import BernoulliNaiveBayes, GaussianNaiveBayes

__all__ = [
    "BernoulliNaiveBayes",
    "DecisionTreeClassifier",
    "GaussianNaiveBayes",
]
