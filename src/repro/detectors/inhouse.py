"""The in-house-tool stand-in ("Arcane-like" rule detector).

In-house scraping detectors grow out of incident response: every time the
operations team identifies a scraping campaign they add the heuristic
that would have caught it.  The result is a transparent rule set biased
towards the campaigns the team has actually seen -- fast crawlers,
scripted clients, API probing -- and blind to behaviours it has not.

The default configuration combines five rules from
:mod:`repro.detectors.heuristic`:

* a session rate rule (30 requests/minute),
* a scripted-user-agent rule,
* an error/probe rule (400/404 rate, 204 rate, HEAD rate),
* a robots.txt-without-assets rule,
* a path-repetition (endpoint hammering) rule,

with verified search-engine crawlers whitelisted.
"""

from __future__ import annotations

from typing import Sequence

from repro.detectors.heuristic import (
    ErrorProbeRule,
    HeuristicRuleDetector,
    PathRepetitionRule,
    RateRule,
    RobotsNoAssetRule,
    Rule,
    ScriptedAgentRule,
)
from repro.logs.sessionization import Sessionizer


def default_rules(
    *,
    rate_threshold_rpm: float = 30.0,
    error_rate_threshold: float = 0.04,
    no_content_threshold: float = 0.06,
    head_threshold: float = 0.08,
) -> list[Rule]:
    """The default in-house rule set."""
    return [
        RateRule(threshold_rpm=rate_threshold_rpm, min_requests=10),
        ScriptedAgentRule(),
        ErrorProbeRule(
            error_rate_threshold=error_rate_threshold,
            no_content_threshold=no_content_threshold,
            head_threshold=head_threshold,
        ),
        RobotsNoAssetRule(),
        PathRepetitionRule(),
    ]


class InHouseHeuristicDetector(HeuristicRuleDetector):
    """The default in-house rule engine (the paper's "Arcane" stand-in)."""

    def __init__(
        self,
        rules: Sequence[Rule] | None = None,
        *,
        name: str = "inhouse",
        rate_threshold_rpm: float = 30.0,
        sessionizer: Sessionizer | None = None,
    ) -> None:
        super().__init__(
            list(rules) if rules is not None else default_rules(rate_threshold_rpm=rate_threshold_rpm),
            name=name,
            whitelist_verified_crawlers=True,
            sessionizer=sessionizer,
        )
