"""Detector base classes.

Every detector consumes a :class:`~repro.logs.dataset.Dataset` (records
only -- never the ground truth) and produces an
:class:`~repro.core.alerts.AlertSet`.  Two base classes are provided:

* :class:`Detector` -- the minimal interface (``analyze``).
* :class:`SessionDetector` -- for detectors that reason about visitor
  sessions; it handles sessionization and lets subclasses implement a
  single ``judge_session`` method.  Sessionization is the dominant cost
  when running many detectors over the same data, so pre-computed
  sessions can be passed in and shared.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Sequence

from repro.core.alerts import AlertSet
from repro.logs.dataset import Dataset
from repro.logs.sessionization import Session, Sessionizer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.columns import FeatureMatrix, FrameSessions, RecordFrame
    from repro.columns.alertframe import DetectorAlerts


class Detector(abc.ABC):
    """Abstract base class for all detectors."""

    #: Unique, human-readable detector name (used as the alert-set name).
    name: str = "detector"

    #: True when this detector's verdicts depend only on data that
    #: hash-sharding by client IP keeps together (the visitor's own rows,
    #: its sessions, its user-agent/IP strings) -- the precondition for
    #: the multi-process frame pipeline.  Detectors with cross-visitor
    #: state (learned models, global thresholds) must leave this False.
    frame_shardable: bool = False

    @abc.abstractmethod
    def analyze(self, dataset: Dataset, *, sessions: Sequence[Session] | None = None) -> AlertSet:
        """Analyse the data set and return this detector's alerts.

        Parameters
        ----------
        dataset:
            The access-log data set to analyse.
        sessions:
            Optional pre-computed sessions (from
            :class:`~repro.logs.sessionization.Sessionizer`) so several
            detectors can share the sessionization work.  Detectors that
            do not need sessions ignore the argument.
        """

    def analyze_columns(
        self,
        frame: "RecordFrame",
        sessions: "FrameSessions",
        features: "FeatureMatrix",
    ) -> AlertSet | None:
        """Analyse a columnar frame directly (the vectorized batch path).

        Returns the detector's alert set, or ``None`` when this detector
        has no columnar implementation -- the pipeline then falls back to
        :meth:`analyze` over materialised
        :class:`~repro.logs.sessionization.Session` objects.  A columnar
        implementation must produce exactly the alerts :meth:`analyze`
        would (ids, scores and reasons); the equivalence suite pins this
        for every built-in detector.
        """
        return None

    def alert_columns(
        self,
        frame: "RecordFrame",
        sessions: "FrameSessions",
        features: "FeatureMatrix",
    ) -> "DetectorAlerts | None":
        """Analyse a frame into columnar alert arrays (the frame-native path).

        Returns a :class:`~repro.columns.alertframe.DetectorAlerts` --
        per-row flag/score/reason-code arrays -- or ``None`` when this
        detector has no array implementation; the frame pipeline then
        falls back to :meth:`analyze_columns` (bridging its
        :class:`AlertSet` into arrays) and finally to :meth:`analyze`
        over materialised records.  An implementation must carry exactly
        the ids, scores and reasons the dict path would.
        """
        return None

    def describe(self) -> str:
        """A one-line description (defaults to the class docstring's first line)."""
        doc = (self.__class__.__doc__ or "").strip()
        return doc.splitlines()[0] if doc else self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{self.__class__.__name__}(name={self.name!r})"


class SessionDetector(Detector):
    """Base class for detectors that reason about whole sessions.

    Subclasses implement :meth:`judge_session`, returning either ``None``
    (no alert) or a ``(score, reasons)`` tuple; every request of a flagged
    session is then alerted, which matches how both commercial products
    and in-house tools attribute session verdicts back to requests.
    """

    #: Session detectors deliberately run the record path under the
    #: columnar engine: sessionization is inherently row-ordered.
    columnar_fallback = True

    def __init__(self, sessionizer: Sessionizer | None = None):
        self.sessionizer = sessionizer or Sessionizer()

    @abc.abstractmethod
    def judge_session(self, session: Session) -> tuple[float, Sequence[str]] | None:
        """Return ``(score, reasons)`` when the session is malicious, else ``None``."""

    def analyze(self, dataset: Dataset, *, sessions: Sequence[Session] | None = None) -> AlertSet:
        alert_set = AlertSet(self.name)
        if sessions is None:
            sessions = self.sessionizer.sessionize(dataset.records)
        for session in sessions:
            verdict = self.judge_session(session)
            if verdict is None:
                continue
            score, reasons = verdict
            for request_id in session.request_ids():
                alert_set.add(request_id, score=score, reasons=reasons)
        return alert_set
