"""Pseudo-labelling of sessions for the self-trained detectors.

The naive-Bayes and decision-tree detectors are supervised models, but at
deployment time no labelled traffic exists (the paper's own data set was
unlabelled).  The standard operational answer is *self-training*: derive
high-confidence pseudo-labels from unambiguous indicators (an obviously
scripted client is a bot; a modest-rate visitor loading assets with
referrers is a person), train on those, and generalise to the ambiguous
middle ground.  This module centralises that pseudo-labelling logic so
both detectors share it and tests can exercise it directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.detectors.features import SessionFeatures

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.columns import FeatureMatrix


@dataclass(frozen=True)
class PseudoLabelConfig:
    """Thresholds defining the high-confidence regions."""

    #: A session faster than this is confidently automated.
    bot_rate_rpm: float = 80.0
    bot_min_requests: int = 20
    #: A session with at least this much asset/referrer behaviour and a
    #: modest size is confidently human.
    human_asset_fraction: float = 0.25
    human_referrer_fraction: float = 0.5
    human_max_requests: int = 60
    human_max_rate_rpm: float = 25.0


def pseudo_label(features: SessionFeatures, config: PseudoLabelConfig | None = None) -> int | None:
    """Return 1 (bot), 0 (human) or ``None`` (ambiguous) for a session."""
    config = config or PseudoLabelConfig()
    if features.scripted_agent or features.headless_agent:
        return 1
    if (
        features.requests_per_minute > config.bot_rate_rpm
        and features.request_count >= config.bot_min_requests
    ):
        return 1
    if (
        features.asset_fraction >= config.human_asset_fraction
        and features.referrer_fraction >= config.human_referrer_fraction
        and features.request_count <= config.human_max_requests
        and features.requests_per_minute <= config.human_max_rate_rpm
    ):
        return 0
    return None


def pseudo_label_sessions(
    feature_list: list[SessionFeatures],
    config: PseudoLabelConfig | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Pseudo-label a list of session features.

    Returns ``(indices, labels)`` where ``indices`` are positions into
    ``feature_list`` that received a confident label and ``labels`` are the
    corresponding 0/1 values.
    """
    indices: list[int] = []
    labels: list[int] = []
    for position, features in enumerate(feature_list):
        label = pseudo_label(features, config)
        if label is not None:
            indices.append(position)
            labels.append(label)
    return np.array(indices, dtype=int), np.array(labels, dtype=int)


def pseudo_label_matrix(
    features: "FeatureMatrix", config: PseudoLabelConfig | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Pseudo-label every session of a :class:`~repro.columns.FeatureMatrix`.

    The batched counterpart of :func:`pseudo_label_sessions`: same
    ``(indices, labels)`` contract, same decision logic, evaluated as
    vector comparisons over the matrix columns.
    """
    config = config or PseudoLabelConfig()
    rate = features.column("requests_per_minute")
    counts = features.counts
    bot = (
        (features.column("scripted_agent") != 0.0)
        | (features.column("headless_agent") != 0.0)
        | ((rate > config.bot_rate_rpm) & (counts >= config.bot_min_requests))
    )
    human = (
        ~bot
        & (features.column("asset_fraction") >= config.human_asset_fraction)
        & (features.column("referrer_fraction") >= config.human_referrer_fraction)
        & (counts <= config.human_max_requests)
        & (rate <= config.human_max_rate_rpm)
    )
    indices = np.flatnonzero(bot | human)
    return indices.astype(int), bot[indices].astype(int)
