"""Naive-Bayes robot detector.

Follows the probabilistic-reasoning approach to web robot detection
(Stassopoulou & Dikaiakos 2009): binarise a handful of session indicators
(high rate, no assets, no referrers, wide coverage, error probing,
night-time activity, non-browser agent), learn per-class likelihoods and
classify sessions by posterior probability.  Training labels come from
the shared self-training pseudo-labeller
(:mod:`repro.detectors.pseudolabels`); when the pseudo-labels do not
contain both classes the detector degrades gracefully to alerting only on
the confidently automated sessions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.alerts import AlertSet
from repro.detectors.base import Detector
from repro.detectors.features import SessionFeatures, extract_features
from repro.detectors.pseudolabels import (
    PseudoLabelConfig,
    pseudo_label_matrix,
    pseudo_label_sessions,
)
from repro.logs.dataset import Dataset
from repro.logs.sessionization import Session, Sessionizer
from repro.ml.naive_bayes import BernoulliNaiveBayes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.columns import FeatureMatrix, FrameSessions, RecordFrame

#: Names of the binary indicators, in vector order.
INDICATOR_NAMES: tuple[str, ...] = (
    "high_rate",
    "no_assets",
    "no_referrers",
    "wide_coverage",
    "error_probing",
    "night_activity",
    "non_browser_agent",
    "large_session",
)


def binarize_features(features: SessionFeatures) -> np.ndarray:
    """Convert session features into the binary indicator vector."""
    return np.array(
        [
            float(features.requests_per_minute > 30.0),
            float(features.asset_fraction < 0.05),
            float(features.referrer_fraction < 0.2),
            float(features.unique_path_ratio > 0.85 and features.request_count >= 15),
            float(features.error_rate > 0.04 or features.no_content_fraction > 0.06 or features.head_fraction > 0.08),
            float(features.night_fraction > 0.4),
            float(features.scripted_agent or features.headless_agent),
            float(features.request_count >= 30),
        ],
        dtype=float,
    )


def binarize_matrix(features: "FeatureMatrix") -> np.ndarray:
    """All sessions' binary indicator vectors at once.

    The batched counterpart of :func:`binarize_features`: same columns
    in :data:`INDICATOR_NAMES` order, bit-identical values.
    """
    counts = features.counts
    return np.column_stack(
        [
            features.column("requests_per_minute") > 30.0,
            features.column("asset_fraction") < 0.05,
            features.column("referrer_fraction") < 0.2,
            (features.column("unique_path_ratio") > 0.85) & (counts >= 15),
            (features.column("error_rate") > 0.04)
            | (features.column("no_content_fraction") > 0.06)
            | (features.column("head_fraction") > 0.08),
            features.column("night_fraction") > 0.4,
            (features.column("scripted_agent") != 0.0)
            | (features.column("headless_agent") != 0.0),
            counts >= 30,
        ]
    ).astype(float)


class NaiveBayesRobotDetector(Detector):
    """Self-trained Bernoulli naive-Bayes session classifier."""

    #: The frame pipeline bridges the dict-path alert set into arrays;
    #: model scoring has no array-native formulation worth maintaining.
    frame_fallback = True

    def __init__(
        self,
        *,
        name: str = "naive-bayes",
        alert_probability: float = 0.7,
        pseudo_label_config: PseudoLabelConfig | None = None,
        sessionizer: Sessionizer | None = None,
    ) -> None:
        if not 0.0 < alert_probability < 1.0:
            raise ValueError("alert_probability must be in (0, 1)")
        self.name = name
        self.alert_probability = alert_probability
        self.pseudo_label_config = pseudo_label_config
        self.sessionizer = sessionizer or Sessionizer()
        self.model: BernoulliNaiveBayes | None = None

    # ------------------------------------------------------------------
    def analyze(self, dataset: Dataset, *, sessions: Sequence[Session] | None = None) -> AlertSet:
        alert_set = AlertSet(self.name)
        if sessions is None:
            sessions = self.sessionizer.sessionize(dataset.records)
        if not sessions:
            return alert_set

        feature_list = [extract_features(session) for session in sessions]
        indicator_matrix = np.vstack([binarize_features(features) for features in feature_list])
        indices, labels = pseudo_label_sessions(list(feature_list), self.pseudo_label_config)

        if indices.size and np.unique(labels).size == 2:
            self.model = BernoulliNaiveBayes()
            self.model.fit(indicator_matrix[indices], labels)
            probabilities = self.model.predict_proba(indicator_matrix)
            bot_column = int(np.where(self.model.classes_ == 1)[0][0])
            bot_probability = probabilities[:, bot_column]
        else:
            # Degenerate pseudo-label population: fall back to flagging only
            # the sessions the pseudo-labeller itself is confident about.
            self.model = None
            bot_probability = np.zeros(len(sessions))
            bot_probability[indices[labels == 1]] = 1.0 if indices.size else 0.0

        for session, probability in zip(sessions, bot_probability):
            if probability < self.alert_probability:
                continue
            for request_id in session.request_ids():
                alert_set.add(
                    request_id,
                    score=float(probability),
                    reasons=(f"naive Bayes bot posterior {probability:.2f}",),
                )
        return alert_set

    # ------------------------------------------------------------------
    def analyze_columns(
        self, frame: "RecordFrame", sessions: "FrameSessions", features: "FeatureMatrix"
    ) -> AlertSet:
        alert_set = AlertSet(self.name)
        if len(features) == 0:
            return alert_set

        indicator_matrix = binarize_matrix(features)
        indices, labels = pseudo_label_matrix(features, self.pseudo_label_config)

        if indices.size and np.unique(labels).size == 2:
            self.model = BernoulliNaiveBayes()
            self.model.fit(indicator_matrix[indices], labels)
            probabilities = self.model.predict_proba(indicator_matrix)
            bot_column = int(np.where(self.model.classes_ == 1)[0][0])
            bot_probability = probabilities[:, bot_column]
        else:
            self.model = None
            bot_probability = np.zeros(len(features))
            bot_probability[indices[labels == 1]] = 1.0 if indices.size else 0.0

        request_ids = frame.request_ids
        order, starts = sessions.order, sessions.starts
        for index in np.flatnonzero(bot_probability >= self.alert_probability).tolist():
            probability = float(bot_probability[index])
            alert_set.add_many(
                (request_ids[row] for row in order[starts[index] : starts[index + 1]]),
                score=probability,
                reasons=(f"naive Bayes bot posterior {probability:.2f}",),
            )
        return alert_set
