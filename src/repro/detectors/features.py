"""Session feature extraction (record-object path).

Behavioural, probabilistic and anomaly-based detectors all work on the
same numeric description of a session.  The feature set follows the web
robot detection literature (Stevanovic et al. 2012; Stassopoulou &
Dikaiakos 2009): request volume and rate, timing regularity, asset and
referrer behaviour, URL-space coverage, error/probe behaviour and
user-agent class indicators.

The schema (:data:`FEATURE_NAMES`, :class:`SessionFeatures`) and the
numeric kernels live in :mod:`repro.columns.features`; this module is
the per-:class:`~repro.logs.sessionization.Session` convenience layer on
top of them.  Because :func:`extract_features` runs the *same* kernels
as the batched :class:`~repro.columns.features.FeatureMatrix`, the two
paths produce bit-identical values -- the property and equivalence
suites pin this.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

# Re-exported for backward compatibility: the schema's single source of
# truth is repro.columns.features.
from repro.columns.features import (  # noqa: F401
    FEATURE_NAMES,
    FeatureMatrix,
    SessionArrays,
    SessionFeatures,
)
from repro.logs.sessionization import Session


def extract_features(session: Session) -> SessionFeatures:
    """Compute the :class:`SessionFeatures` of one session."""
    arrays = SessionArrays.from_session_records(
        session.records, user_agent=session.user_agent, session_id=session.session_id
    )
    return FeatureMatrix.from_arrays(arrays).row(0)


def feature_matrix(sessions: Sequence[Session]) -> np.ndarray:
    """Stack the feature vectors of several sessions into a matrix.

    The result has shape ``(len(sessions), len(FEATURE_NAMES))`` and is the
    input format for the anomaly-detection algorithms and the from-scratch
    classifiers.
    """
    if not sessions:
        return np.empty((0, len(FEATURE_NAMES)), dtype=float)
    return np.vstack([extract_features(session).vector() for session in sessions])
