"""Session feature extraction.

Behavioural, probabilistic and anomaly-based detectors all work on the
same numeric description of a session.  The feature set follows the web
robot detection literature (Stevanovic et al. 2012; Stassopoulou &
Dikaiakos 2009): request volume and rate, timing regularity, asset and
referrer behaviour, URL-space coverage, error/probe behaviour and
user-agent class indicators.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.logs.sessionization import Session
from repro.traffic.useragents import is_headless_agent, is_known_crawler_agent, is_scripted_agent

#: Order of the numeric feature vector produced by :meth:`SessionFeatures.vector`.
FEATURE_NAMES: tuple[str, ...] = (
    "request_count",
    "requests_per_minute",
    "mean_interarrival",
    "interarrival_cv",
    "error_rate",
    "no_content_fraction",
    "not_modified_fraction",
    "asset_fraction",
    "referrer_fraction",
    "unique_path_ratio",
    "head_fraction",
    "robots_hits",
    "night_fraction",
    "scripted_agent",
    "headless_agent",
    "crawler_claim",
)


@dataclass(frozen=True)
class SessionFeatures:
    """Numeric description of one session."""

    session_id: str
    request_count: int
    requests_per_minute: float
    mean_interarrival: float
    interarrival_cv: float
    error_rate: float
    no_content_fraction: float
    not_modified_fraction: float
    asset_fraction: float
    referrer_fraction: float
    unique_path_ratio: float
    head_fraction: float
    robots_hits: int
    night_fraction: float
    scripted_agent: bool
    headless_agent: bool
    crawler_claim: bool

    def vector(self) -> np.ndarray:
        """The features as a float vector in :data:`FEATURE_NAMES` order."""
        return np.array(
            [
                float(self.request_count),
                self.requests_per_minute,
                self.mean_interarrival,
                self.interarrival_cv,
                self.error_rate,
                self.no_content_fraction,
                self.not_modified_fraction,
                self.asset_fraction,
                self.referrer_fraction,
                self.unique_path_ratio,
                self.head_fraction,
                float(self.robots_hits),
                self.night_fraction,
                float(self.scripted_agent),
                float(self.headless_agent),
                float(self.crawler_claim),
            ],
            dtype=float,
        )

    def as_dict(self) -> dict[str, float]:
        """The features keyed by name."""
        return dict(zip(FEATURE_NAMES, self.vector().tolist()))


def _interarrival_cv(session: Session) -> float:
    """Coefficient of variation of the inter-arrival times.

    Low values mean machine-regular pacing; humans produce highly variable
    think times.  Sessions with fewer than three requests return a neutral
    value of 1.0 (no evidence either way).
    """
    gaps = session.interarrival_seconds()
    if len(gaps) < 2:
        return 1.0
    mean = sum(gaps) / len(gaps)
    if mean <= 0:
        return 0.0
    variance = sum((gap - mean) ** 2 for gap in gaps) / len(gaps)
    return math.sqrt(variance) / mean


def _night_fraction(session: Session) -> float:
    """Fraction of requests between 00:00 and 05:59 local (server) time."""
    if not session.records:
        return 0.0
    night = sum(1 for record in session.records if record.timestamp.hour < 6)
    return night / len(session.records)


def extract_features(session: Session) -> SessionFeatures:
    """Compute the :class:`SessionFeatures` of one session."""
    count = session.request_count
    unique_ratio = session.unique_paths() / count if count else 0.0
    return SessionFeatures(
        session_id=session.session_id,
        request_count=count,
        requests_per_minute=session.requests_per_minute(),
        mean_interarrival=session.mean_interarrival_seconds(),
        interarrival_cv=_interarrival_cv(session),
        error_rate=session.error_rate(),
        no_content_fraction=session.status_fraction(204),
        not_modified_fraction=session.status_fraction(304),
        asset_fraction=session.asset_fraction(),
        referrer_fraction=session.referrer_fraction(),
        unique_path_ratio=unique_ratio,
        head_fraction=session.head_fraction(),
        robots_hits=session.robots_txt_hits(),
        night_fraction=_night_fraction(session),
        scripted_agent=is_scripted_agent(session.user_agent),
        headless_agent=is_headless_agent(session.user_agent),
        crawler_claim=is_known_crawler_agent(session.user_agent),
    )


def feature_matrix(sessions: Sequence[Session]) -> np.ndarray:
    """Stack the feature vectors of several sessions into a matrix.

    The result has shape ``(len(sessions), len(FEATURE_NAMES))`` and is the
    input format for the anomaly-detection algorithms and the from-scratch
    classifiers.
    """
    if not sessions:
        return np.empty((0, len(FEATURE_NAMES)), dtype=float)
    return np.vstack([extract_features(session).vector() for session in sessions])
