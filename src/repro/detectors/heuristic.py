"""Rule-based heuristic detection.

In-house scraping detectors are typically transparent rule engines: a set
of operational heuristics, each encoding one observation the security team
made about scraper behaviour ("nobody legitimate makes 50 search requests
a minute", "browsers load stylesheets", "humans don't generate 10% 400s").
This module provides the rule engine plus the individual rules; the
Arcane-like composite in :mod:`repro.detectors.inhouse` is a particular
configuration of it.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.alerts import AlertSet
from repro.detectors.base import SessionDetector
from repro.logs.sessionization import Session, Sessionizer
from repro.traffic.ipspace import IPPool, IPSpace
from repro.traffic.useragents import is_known_crawler_agent, is_scripted_agent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.columns import FeatureMatrix, FrameSessions, RecordFrame
    from repro.columns.alertframe import DetectorAlerts


class Rule(abc.ABC):
    """One heuristic rule evaluated against a session."""

    #: Short rule name (shows up as an alert reason prefix).
    name: str = "rule"

    @abc.abstractmethod
    def matches(self, session: Session) -> str | None:
        """Return a human-readable reason when the rule fires, else ``None``."""

    def matches_frame(
        self, frame: "RecordFrame", sessions: "FrameSessions", features: "FeatureMatrix"
    ) -> list[str | None] | None:
        """Evaluate the rule for every session of a frame at once.

        Returns one entry per session (the reason string, or ``None``
        when the rule does not fire), or ``None`` when the rule has no
        vectorized implementation -- the detector then falls back to the
        record path for the whole rule set.  Implementations must return
        exactly what :meth:`matches` would per session.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{self.__class__.__name__}()"


class RateRule(Rule):
    """Sessions faster than a human could sustain.

    The rule fires on either the session's average rate or its busiest
    one-minute window (:meth:`~repro.logs.sessionization.Session.peak_requests_per_minute`),
    so bursty scrapers cannot hide behind long idle gaps.
    """

    name = "session-rate"

    def __init__(self, threshold_rpm: float = 30.0, min_requests: int = 10):
        if threshold_rpm <= 0:
            raise ValueError("threshold_rpm must be positive")
        self.threshold_rpm = threshold_rpm
        self.min_requests = min_requests

    def matches(self, session: Session) -> str | None:
        if session.request_count < self.min_requests:
            return None
        rate = session.requests_per_minute()
        if rate > self.threshold_rpm:
            return f"{self.name}: {rate:.0f} req/min > {self.threshold_rpm:.0f}"
        peak = session.peak_requests_per_minute()
        if peak > self.threshold_rpm:
            return f"{self.name}: peak {peak:.0f} req/min > {self.threshold_rpm:.0f}"
        return None

    def matches_frame(
        self, frame: "RecordFrame", sessions: "FrameSessions", features: "FeatureMatrix"
    ) -> list[str | None]:
        counts = features.counts
        rates = features.column("requests_per_minute")
        eligible = counts >= self.min_requests
        average_fired = eligible & (rates > self.threshold_rpm)
        peaks = features.peak_rpm()
        peak_fired = eligible & ~average_fired & (peaks > self.threshold_rpm)
        out: list[str | None] = [None] * len(features)
        for index in np.flatnonzero(average_fired).tolist():
            out[index] = (
                f"{self.name}: {float(rates[index]):.0f} req/min > {self.threshold_rpm:.0f}"
            )
        for index in np.flatnonzero(peak_fired).tolist():
            out[index] = (
                f"{self.name}: peak {float(peaks[index]):.0f} req/min > {self.threshold_rpm:.0f}"
            )
        return out


class ScriptedAgentRule(Rule):
    """Obvious scripted-client user agents (requests/curl/Scrapy/...)."""

    name = "scripted-agent"

    def matches(self, session: Session) -> str | None:
        if is_scripted_agent(session.user_agent):
            return f"{self.name}: {session.user_agent.split('/')[0]}"
        if not session.user_agent.strip():
            return f"{self.name}: empty user agent"
        return None

    def matches_frame(
        self, frame: "RecordFrame", sessions: "FrameSessions", features: "FeatureMatrix"
    ) -> list[str | None]:
        # The verdict depends only on the user-agent string: evaluate it
        # once per distinct agent and gather per session.
        per_agent: list[str | None] = []
        for agent in frame.tables["user_agent"]:
            if is_scripted_agent(agent):
                per_agent.append(f"{self.name}: {agent.split('/')[0]}")
            elif not agent.strip():
                per_agent.append(f"{self.name}: empty user agent")
            else:
                per_agent.append(None)
        return [per_agent[code] for code in sessions.agent_codes.tolist()]


class ErrorProbeRule(Rule):
    """Sessions that probe the application's error space.

    Scrapers that map an API or fuzz query parameters leave a trail of
    400/404 responses, empty ``204`` responses and HEAD probes at rates no
    organic visitor produces.  The application's own tracking beacons also
    answer ``204``, so paths matching ``tracking_path_markers`` are
    excluded from the 204 computation -- an in-house tool knows its own
    telemetry endpoints.
    """

    name = "error-probe"

    def __init__(
        self,
        *,
        min_requests: int = 8,
        error_rate_threshold: float = 0.04,
        no_content_threshold: float = 0.06,
        head_threshold: float = 0.08,
        tracking_path_markers: Sequence[str] = ("/track", "/beacon", "/pixel"),
    ) -> None:
        self.min_requests = min_requests
        self.error_rate_threshold = error_rate_threshold
        self.no_content_threshold = no_content_threshold
        self.head_threshold = head_threshold
        self.tracking_path_markers = tuple(tracking_path_markers)

    def _is_tracking_path(self, path: str) -> bool:
        lowered = path.lower()
        return any(marker in lowered for marker in self.tracking_path_markers)

    def _no_content_fraction(self, session: Session) -> float:
        """Fraction of 204 responses, ignoring the site's own tracking endpoints."""
        relevant = [r for r in session.records if not self._is_tracking_path(r.url_path)]
        if not relevant:
            return 0.0
        return sum(1 for r in relevant if r.status == 204) / len(relevant)

    def matches(self, session: Session) -> str | None:
        if session.request_count < self.min_requests:
            return None
        error_rate = session.error_rate()
        if error_rate >= self.error_rate_threshold:
            return f"{self.name}: error rate {error_rate:.1%}"
        no_content = self._no_content_fraction(session)
        if no_content >= self.no_content_threshold:
            return f"{self.name}: 204 fraction {no_content:.1%}"
        head_fraction = session.head_fraction()
        if head_fraction >= self.head_threshold:
            return f"{self.name}: HEAD fraction {head_fraction:.1%}"
        return None

    def matches_frame(
        self, frame: "RecordFrame", sessions: "FrameSessions", features: "FeatureMatrix"
    ) -> list[str | None]:
        n = len(features)
        counts = features.counts
        eligible = counts >= self.min_requests
        error_rate = features.column("error_rate")
        head_fraction = features.column("head_fraction")

        # 204 fraction over non-tracking paths: tracking status is a
        # property of the (distinct) URL path, counted per session.
        url_paths = frame.url_paths()
        tracking_table = np.fromiter(
            (self._is_tracking_path(path) for path in url_paths), bool, len(url_paths)
        )
        relevant = ~tracking_table[frame.codes["path"]]
        session_of = sessions.record_session_index()
        relevant_counts = np.bincount(session_of[relevant].astype(np.intp), minlength=n)
        no_content_counts = np.bincount(
            session_of[relevant & (frame.statuses == 204)].astype(np.intp), minlength=n
        )
        no_content = np.where(
            relevant_counts > 0, no_content_counts / np.maximum(relevant_counts, 1), 0.0
        )

        error_fired = eligible & (error_rate >= self.error_rate_threshold)
        no_content_fired = eligible & ~error_fired & (no_content >= self.no_content_threshold)
        head_fired = (
            eligible & ~error_fired & ~no_content_fired & (head_fraction >= self.head_threshold)
        )
        out: list[str | None] = [None] * n
        for index in np.flatnonzero(error_fired).tolist():
            out[index] = f"{self.name}: error rate {float(error_rate[index]):.1%}"
        for index in np.flatnonzero(no_content_fired).tolist():
            out[index] = f"{self.name}: 204 fraction {float(no_content[index]):.1%}"
        for index in np.flatnonzero(head_fired).tolist():
            out[index] = f"{self.name}: HEAD fraction {float(head_fraction[index]):.1%}"
        return out


class RobotsNoAssetRule(Rule):
    """Crawler-shaped sessions that are not verified crawlers.

    Fetching ``robots.txt`` while never loading a stylesheet or image is
    crawler behaviour; when the visitor is not one of the verified search
    engines it is almost certainly a scraper seeding its crawl.
    """

    name = "robots-no-assets"

    def __init__(self, *, min_requests: int = 10, asset_threshold: float = 0.02):
        self.min_requests = min_requests
        self.asset_threshold = asset_threshold

    def matches(self, session: Session) -> str | None:
        if session.request_count < self.min_requests:
            return None
        if session.robots_txt_hits() == 0:
            return None
        if session.asset_fraction() <= self.asset_threshold:
            return f"{self.name}: robots.txt fetched, {session.asset_fraction():.1%} assets"
        return None

    def matches_frame(
        self, frame: "RecordFrame", sessions: "FrameSessions", features: "FeatureMatrix"
    ) -> list[str | None]:
        asset_fraction = features.column("asset_fraction")
        fired = (
            (features.counts >= self.min_requests)
            & (features.column("robots_hits") > 0)
            & (asset_fraction <= self.asset_threshold)
        )
        out: list[str | None] = [None] * len(features)
        for index in np.flatnonzero(fired).tolist():
            out[index] = (
                f"{self.name}: robots.txt fetched, {float(asset_fraction[index]):.1%} assets"
            )
        return out


class PathRepetitionRule(Rule):
    """The same resource hammered repeatedly within one session."""

    name = "path-repetition"

    def __init__(self, *, min_requests: int = 20, repetition_threshold: float = 8.0):
        self.min_requests = min_requests
        self.repetition_threshold = repetition_threshold

    def matches(self, session: Session) -> str | None:
        if session.request_count < self.min_requests:
            return None
        repetition = session.path_repetition()
        if repetition >= self.repetition_threshold:
            return f"{self.name}: {repetition:.1f} requests per distinct path"
        return None

    def matches_frame(
        self, frame: "RecordFrame", sessions: "FrameSessions", features: "FeatureMatrix"
    ) -> list[str | None]:
        unique = features.unique_paths
        repetition = np.where(
            unique > 0, features.counts / np.maximum(unique, 1), 0.0
        )
        fired = (features.counts >= self.min_requests) & (
            repetition >= self.repetition_threshold
        )
        out: list[str | None] = [None] * len(features)
        for index in np.flatnonzero(fired).tolist():
            out[index] = f"{self.name}: {float(repetition[index]):.1f} requests per distinct path"
        return out


class HeuristicRuleDetector(SessionDetector):
    """A rule engine: a session is alerted when any rule fires.

    Verified crawlers (well-known crawler user agent from the operator's
    published IP range) are whitelisted before the rules run, as every
    operations team does to avoid alert noise from Googlebot.
    """

    #: Rules judge one session at a time (the Rule contract), so
    #: hash-sharding by IP -- which keeps sessions whole -- is safe.
    frame_shardable = True

    def __init__(
        self,
        rules: Sequence[Rule],
        *,
        name: str = "heuristic-rules",
        whitelist_verified_crawlers: bool = True,
        crawler_pool: IPPool | None = None,
        sessionizer: Sessionizer | None = None,
    ) -> None:
        super().__init__(sessionizer)
        if not rules:
            raise ValueError("a rule detector needs at least one rule")
        self.name = name
        self.rules = list(rules)
        self.whitelist_verified_crawlers = whitelist_verified_crawlers
        self.crawler_pool = crawler_pool or IPSpace().crawler

    def is_whitelisted(self, session: Session) -> bool:
        """True for sessions from verified, well-known crawlers."""
        if not self.whitelist_verified_crawlers:
            return False
        return is_known_crawler_agent(session.user_agent) and self.crawler_pool.contains(session.client_ip)

    def judge_session(self, session: Session) -> tuple[float, Sequence[str]] | None:
        if self.is_whitelisted(session):
            return None
        reasons = []
        for rule in self.rules:
            reason = rule.matches(session)
            if reason is not None:
                reasons.append(reason)
        if not reasons:
            return None
        # More independent rules firing means higher confidence.
        score = min(1.0, 0.6 + 0.2 * (len(reasons) - 1))
        return score, tuple(reasons)

    # ------------------------------------------------------------------
    def whitelisted_sessions(
        self, frame: "RecordFrame", sessions: "FrameSessions"
    ) -> np.ndarray:
        """Per-session flags: verified, well-known crawler sessions."""
        n = len(sessions)
        flags = np.zeros(n, dtype=bool)
        if not self.whitelist_verified_crawlers:
            return flags
        agents = frame.tables["user_agent"]
        ips = frame.tables["client_ip"]
        crawler_table = np.fromiter(
            (is_known_crawler_agent(agent) for agent in agents), bool, len(agents)
        )
        pool_cache: dict[int, bool] = {}
        for index in np.flatnonzero(crawler_table[sessions.agent_codes]).tolist():
            ip_code = int(sessions.ip_codes[index])
            verified = pool_cache.get(ip_code)
            if verified is None:
                verified = self.crawler_pool.contains(ips[ip_code])
                pool_cache[ip_code] = verified
            flags[index] = verified
        return flags

    def analyze_columns(
        self, frame: "RecordFrame", sessions: "FrameSessions", features: "FeatureMatrix"
    ) -> AlertSet | None:
        per_rule: list[list[str | None]] = []
        for rule in self.rules:
            reasons = rule.matches_frame(frame, sessions, features)
            if reasons is None:
                # A custom rule without a vectorized implementation sends
                # the whole detector down the record path.
                return None
            per_rule.append(reasons)
        whitelisted = self.whitelisted_sessions(frame, sessions)
        request_ids = frame.request_ids
        order, starts = sessions.order, sessions.starts
        scored: dict[str, tuple[float, tuple[str, ...]]] = {}
        for index in range(len(sessions)):
            if whitelisted[index]:
                continue
            reasons = [rule[index] for rule in per_rule if rule[index] is not None]
            if not reasons:
                continue
            verdict = (min(1.0, 0.6 + 0.2 * (len(reasons) - 1)), tuple(reasons))
            for row in order[starts[index] : starts[index + 1]].tolist():
                scored[request_ids[row]] = verdict
        return AlertSet.from_scored(self.name, scored)

    def alert_columns(
        self, frame: "RecordFrame", sessions: "FrameSessions", features: "FeatureMatrix"
    ) -> "DetectorAlerts | None":
        """Frame-native alert arrays: per-session rule verdicts, scattered.

        Same per-session rule evaluation as :meth:`analyze_columns`
        (including the whole-detector record fallback when a rule lacks a
        vectorized implementation); the per-request expansion is a
        vectorized session -> row scatter.
        """
        from repro.columns.alertframe import DetectorAlerts, ReasonEncoder

        per_rule: list[list[str | None]] = []
        for rule in self.rules:
            reasons = rule.matches_frame(frame, sessions, features)
            if reasons is None:
                return None
            per_rule.append(reasons)
        whitelisted = self.whitelisted_sessions(frame, sessions)
        n_sessions = len(sessions)
        session_flags = np.zeros(n_sessions, dtype=bool)
        session_scores = np.zeros(n_sessions, dtype=np.float64)
        session_codes = np.full(n_sessions, -1, dtype=np.int64)
        encoder = ReasonEncoder()
        for index in range(n_sessions):
            if whitelisted[index]:
                continue
            reasons = [rule[index] for rule in per_rule if rule[index] is not None]
            if not reasons:
                continue
            session_flags[index] = True
            session_scores[index] = min(1.0, 0.6 + 0.2 * (len(reasons) - 1))
            session_codes[index] = encoder.code(tuple(reasons))
        return DetectorAlerts.from_sessions(
            self.name,
            frame,
            sessions,
            session_flags,
            session_scores,
            session_codes,
            encoder.table,
        )
