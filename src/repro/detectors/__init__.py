"""Web-scraping detectors.

The paper studies two proprietary tools -- a commercial bot-detection
product and an in-house rule engine -- observing the same access logs.
Neither tool is available, so this package implements a family of
detectors covering the detection techniques those tools publicly document,
plus the two composite detectors used as their stand-ins:

* :class:`~repro.detectors.commercial.CommercialBotDefenceDetector`
  ("Distil-like"): browser-fingerprint validation, IP reputation, rate
  limiting and a behavioural session model.
* :class:`~repro.detectors.inhouse.InHouseHeuristicDetector`
  ("Arcane-like"): a transparent rule engine of the kind operations teams
  build in-house.

The individual techniques are also exposed as stand-alone detectors
(rate-limit, IP-reputation, user-agent fingerprint, heuristic rules,
behavioural scoring, naive-Bayes robot classifier, decision-tree crawler
classifier and several unsupervised anomaly detectors) so the extension
experiments can study ensembles with more than two members.
"""

from repro.detectors.base import Detector, SessionDetector
from repro.detectors.behavioral import BehavioralSessionDetector, BehaviouralScoreConfig
from repro.detectors.commercial import CommercialBotDefenceDetector
from repro.detectors.crawler_ml import CrawlerDecisionTreeDetector
from repro.detectors.features import FEATURE_NAMES, SessionFeatures, extract_features, feature_matrix
from repro.detectors.fingerprint import UserAgentFingerprintDetector
from repro.detectors.heuristic import (
    ErrorProbeRule,
    HeuristicRuleDetector,
    PathRepetitionRule,
    RateRule,
    RobotsNoAssetRule,
    Rule,
    ScriptedAgentRule,
)
from repro.detectors.inhouse import InHouseHeuristicDetector
from repro.detectors.naive_bayes import NaiveBayesRobotDetector
from repro.detectors.pipeline import DetectionPipeline, run_detectors
from repro.detectors.ratelimit import RateLimitDetector
from repro.detectors.registry import available_detectors, create_detector, register_detector
from repro.detectors.reputation import IPReputationDetector
from repro.detectors.anomaly_detector import AnomalySessionDetector

__all__ = [
    "AnomalySessionDetector",
    "BehaviouralScoreConfig",
    "BehavioralSessionDetector",
    "CommercialBotDefenceDetector",
    "CrawlerDecisionTreeDetector",
    "DetectionPipeline",
    "Detector",
    "ErrorProbeRule",
    "FEATURE_NAMES",
    "HeuristicRuleDetector",
    "IPReputationDetector",
    "InHouseHeuristicDetector",
    "NaiveBayesRobotDetector",
    "PathRepetitionRule",
    "RateLimitDetector",
    "RateRule",
    "RobotsNoAssetRule",
    "Rule",
    "ScriptedAgentRule",
    "SessionDetector",
    "SessionFeatures",
    "UserAgentFingerprintDetector",
    "available_detectors",
    "create_detector",
    "extract_features",
    "feature_matrix",
    "register_detector",
    "run_detectors",
]
