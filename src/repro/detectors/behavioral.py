"""Behavioural session scoring.

Commercial bot-defence products complement signature checks with a model
of *how* the visitor behaves: real browsers load assets and send
referrers, real people pause irregularly between pages and do not sweep
the whole catalogue.  The :class:`BehavioralSessionDetector` scores each
session against those behavioural expectations and alerts when the
accumulated evidence crosses a threshold.

The scoring is an interpretable, weighted-evidence model rather than a
black-box classifier -- partly because that is auditable, and partly
because the genuinely statistical detectors (naive Bayes, decision tree,
anomaly detection) are available separately for the multi-detector
extension experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.alerts import AlertSet
from repro.detectors.base import SessionDetector
from repro.detectors.features import SessionFeatures, extract_features
from repro.detectors.fingerprint import UserAgentFingerprintDetector
from repro.logs.sessionization import Session, Sessionizer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.columns import FeatureMatrix, FrameSessions, RecordFrame
    from repro.columns.alertframe import DetectorAlerts


@dataclass(frozen=True)
class BehaviouralScoreConfig:
    """Weights and thresholds of the behavioural evidence model."""

    #: Sessions that never load static assets.
    no_assets_weight: float = 2.0
    no_assets_threshold: float = 0.05
    #: Sessions that never send a Referer header.
    no_referrer_weight: float = 1.5
    no_referrer_threshold: float = 0.2
    #: Machine-regular inter-arrival times.
    machine_timing_weight: float = 2.5
    machine_timing_cv: float = 0.25
    machine_timing_min_requests: int = 10
    #: Unusually large sessions.
    high_volume_weight: float = 1.0
    high_volume_requests: int = 30
    #: Exhaustive coverage of distinct resources.
    coverage_weight: float = 0.5
    coverage_ratio: float = 0.9
    coverage_min_requests: int = 20
    #: Sustained activity in the dead of night.
    night_weight: float = 0.5
    night_fraction: float = 0.4
    #: Non-browser client fingerprints (scripted / headless).
    fingerprint_weight: float = 4.0
    #: Total evidence needed to alert.
    alert_threshold: float = 4.0


class BehavioralSessionDetector(SessionDetector):
    """Weighted-evidence behavioural model over session features."""

    #: Evidence is per-session + per-(agent, IP) pair; both survive
    #: hash-sharding by client IP.
    frame_shardable = True

    def __init__(
        self,
        config: BehaviouralScoreConfig | None = None,
        *,
        name: str = "behavioral",
        fingerprint: UserAgentFingerprintDetector | None = None,
        sessionizer: Sessionizer | None = None,
    ) -> None:
        super().__init__(sessionizer)
        self.name = name
        self.config = config or BehaviouralScoreConfig()
        self.fingerprint = fingerprint or UserAgentFingerprintDetector()

    # ------------------------------------------------------------------
    def score_session(self, session: Session) -> tuple[float, list[str]]:
        """Return the accumulated evidence score and the contributing signals."""
        config = self.config
        features = extract_features(session)
        score = 0.0
        signals: list[str] = []

        if features.asset_fraction < config.no_assets_threshold:
            score += config.no_assets_weight
            signals.append("no static assets loaded")
        if features.referrer_fraction < config.no_referrer_threshold:
            score += config.no_referrer_weight
            signals.append("no referrer headers")
        if (
            features.request_count >= config.machine_timing_min_requests
            and features.interarrival_cv < config.machine_timing_cv
        ):
            score += config.machine_timing_weight
            signals.append(f"machine-regular timing (cv={features.interarrival_cv:.2f})")
        if features.request_count >= config.high_volume_requests:
            score += config.high_volume_weight
            signals.append(f"high volume ({features.request_count} requests)")
        if (
            features.request_count >= config.coverage_min_requests
            and features.unique_path_ratio > config.coverage_ratio
        ):
            score += config.coverage_weight
            signals.append("exhaustive URL coverage")
        if features.night_fraction > config.night_fraction:
            score += config.night_weight
            signals.append("night-time activity")
        if self._suspicious_fingerprint(session, features):
            score += config.fingerprint_weight
            signals.append("non-browser client fingerprint")
        return score, signals

    def _suspicious_fingerprint(self, session: Session, features: SessionFeatures) -> bool:
        verdict = self.fingerprint.judge_request(session.user_agent, session.client_ip)
        return verdict is not None

    # ------------------------------------------------------------------
    def judge_session(self, session: Session) -> tuple[float, Sequence[str]] | None:
        score, signals = self.score_session(session)
        if score < self.config.alert_threshold:
            return None
        normalised = min(1.0, score / (2 * self.config.alert_threshold))
        return normalised, tuple(signals)

    # ------------------------------------------------------------------
    def scored_columns(
        self,
        frame: "RecordFrame",
        sessions: "FrameSessions",
        features: "FeatureMatrix",
        fingerprint_verdicts: "dict | None" = None,
    ) -> dict[str, tuple[float, tuple[str, ...]]]:
        """Per-record ``{request_id: (score, reasons)}`` over a frame.

        ``fingerprint_verdicts`` shares an already-computed
        :meth:`~repro.detectors.fingerprint.UserAgentFingerprintDetector.pair_verdicts`
        result (the commercial composite judges each pair once for all
        its layers).
        """
        config = self.config
        counts = features.counts
        cv = features.column("interarrival_cv")

        verdicts = (
            fingerprint_verdicts
            if fingerprint_verdicts is not None
            else self.fingerprint.pair_verdicts(frame)
        )
        fingerprinted = np.fromiter(
            (
                (int(agent), int(ip)) in verdicts
                for agent, ip in zip(sessions.agent_codes, sessions.ip_codes)
            ),
            bool,
            len(features),
        )
        # The same evidence signals as score_session, evaluated for every
        # session at once; the weight additions run in the same order, so
        # the accumulated scores are bit-identical (adding 0.0 is exact).
        signals = (
            (
                features.column("asset_fraction") < config.no_assets_threshold,
                config.no_assets_weight,
            ),
            (
                features.column("referrer_fraction") < config.no_referrer_threshold,
                config.no_referrer_weight,
            ),
            (
                (counts >= config.machine_timing_min_requests)
                & (cv < config.machine_timing_cv),
                config.machine_timing_weight,
            ),
            (counts >= config.high_volume_requests, config.high_volume_weight),
            (
                (counts >= config.coverage_min_requests)
                & (features.column("unique_path_ratio") > config.coverage_ratio),
                config.coverage_weight,
            ),
            (features.column("night_fraction") > config.night_fraction, config.night_weight),
            (fingerprinted, config.fingerprint_weight),
        )
        scores = np.zeros(len(features))
        for fired, weight in signals:
            scores = scores + np.where(fired, weight, 0.0)

        alerted = scores >= config.alert_threshold
        normalised = np.minimum(1.0, scores / (2 * config.alert_threshold))
        request_ids = frame.request_ids
        order, starts = sessions.order, sessions.starts
        scored: dict[str, tuple[float, tuple[str, ...]]] = {}
        for index in np.flatnonzero(alerted).tolist():
            reasons: list[str] = []
            if signals[0][0][index]:
                reasons.append("no static assets loaded")
            if signals[1][0][index]:
                reasons.append("no referrer headers")
            if signals[2][0][index]:
                reasons.append(f"machine-regular timing (cv={float(cv[index]):.2f})")
            if signals[3][0][index]:
                reasons.append(f"high volume ({int(counts[index])} requests)")
            if signals[4][0][index]:
                reasons.append("exhaustive URL coverage")
            if signals[5][0][index]:
                reasons.append("night-time activity")
            if signals[6][0][index]:
                reasons.append("non-browser client fingerprint")
            verdict = (float(normalised[index]), tuple(reasons))
            for row in order[starts[index] : starts[index + 1]].tolist():
                scored[request_ids[row]] = verdict
        return scored

    def analyze_columns(
        self, frame: "RecordFrame", sessions: "FrameSessions", features: "FeatureMatrix"
    ) -> AlertSet:
        return AlertSet.from_scored(self.name, self.scored_columns(frame, sessions, features))

    # ------------------------------------------------------------------
    def verdict_alerts(
        self,
        frame: "RecordFrame",
        sessions: "FrameSessions",
        features: "FeatureMatrix",
        fingerprint_verdicts: "dict | None" = None,
    ) -> "DetectorAlerts":
        """Frame-native alert arrays: per-session evidence scattered to rows.

        The evidence accumulation is identical to :meth:`scored_columns`
        (same signal order, bit-identical scores); only the per-row
        expansion differs -- a vectorized session -> row scatter instead
        of a Python loop over every alerted request.
        """
        from repro.columns.alertframe import DetectorAlerts, ReasonEncoder

        config = self.config
        counts = features.counts
        cv = features.column("interarrival_cv")

        verdicts = (
            fingerprint_verdicts
            if fingerprint_verdicts is not None
            else self.fingerprint.pair_verdicts(frame)
        )
        fingerprinted = np.fromiter(
            (
                (int(agent), int(ip)) in verdicts
                for agent, ip in zip(sessions.agent_codes, sessions.ip_codes)
            ),
            bool,
            len(features),
        )
        signals = (
            (
                features.column("asset_fraction") < config.no_assets_threshold,
                config.no_assets_weight,
            ),
            (
                features.column("referrer_fraction") < config.no_referrer_threshold,
                config.no_referrer_weight,
            ),
            (
                (counts >= config.machine_timing_min_requests)
                & (cv < config.machine_timing_cv),
                config.machine_timing_weight,
            ),
            (counts >= config.high_volume_requests, config.high_volume_weight),
            (
                (counts >= config.coverage_min_requests)
                & (features.column("unique_path_ratio") > config.coverage_ratio),
                config.coverage_weight,
            ),
            (features.column("night_fraction") > config.night_fraction, config.night_weight),
            (fingerprinted, config.fingerprint_weight),
        )
        scores = np.zeros(len(features))
        for fired, weight in signals:
            scores = scores + np.where(fired, weight, 0.0)

        alerted = scores >= config.alert_threshold
        normalised = np.minimum(1.0, scores / (2 * config.alert_threshold))
        session_codes = np.full(len(features), -1, dtype=np.int64)
        encoder = ReasonEncoder()
        for index in np.flatnonzero(alerted).tolist():
            reasons: list[str] = []
            if signals[0][0][index]:
                reasons.append("no static assets loaded")
            if signals[1][0][index]:
                reasons.append("no referrer headers")
            if signals[2][0][index]:
                reasons.append(f"machine-regular timing (cv={float(cv[index]):.2f})")
            if signals[3][0][index]:
                reasons.append(f"high volume ({int(counts[index])} requests)")
            if signals[4][0][index]:
                reasons.append("exhaustive URL coverage")
            if signals[5][0][index]:
                reasons.append("night-time activity")
            if signals[6][0][index]:
                reasons.append("non-browser client fingerprint")
            session_codes[index] = encoder.code(tuple(reasons))
        return DetectorAlerts.from_sessions(
            self.name,
            frame,
            sessions,
            alerted,
            np.where(alerted, normalised, 0.0),
            session_codes,
            encoder.table,
        )

    def alert_columns(
        self, frame: "RecordFrame", sessions: "FrameSessions", features: "FeatureMatrix"
    ) -> "DetectorAlerts":
        return self.verdict_alerts(frame, sessions, features)
