"""Behavioural session scoring.

Commercial bot-defence products complement signature checks with a model
of *how* the visitor behaves: real browsers load assets and send
referrers, real people pause irregularly between pages and do not sweep
the whole catalogue.  The :class:`BehavioralSessionDetector` scores each
session against those behavioural expectations and alerts when the
accumulated evidence crosses a threshold.

The scoring is an interpretable, weighted-evidence model rather than a
black-box classifier -- partly because that is auditable, and partly
because the genuinely statistical detectors (naive Bayes, decision tree,
anomaly detection) are available separately for the multi-detector
extension experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.detectors.base import SessionDetector
from repro.detectors.features import SessionFeatures, extract_features
from repro.detectors.fingerprint import UserAgentFingerprintDetector
from repro.logs.sessionization import Session, Sessionizer


@dataclass(frozen=True)
class BehaviouralScoreConfig:
    """Weights and thresholds of the behavioural evidence model."""

    #: Sessions that never load static assets.
    no_assets_weight: float = 2.0
    no_assets_threshold: float = 0.05
    #: Sessions that never send a Referer header.
    no_referrer_weight: float = 1.5
    no_referrer_threshold: float = 0.2
    #: Machine-regular inter-arrival times.
    machine_timing_weight: float = 2.5
    machine_timing_cv: float = 0.25
    machine_timing_min_requests: int = 10
    #: Unusually large sessions.
    high_volume_weight: float = 1.0
    high_volume_requests: int = 30
    #: Exhaustive coverage of distinct resources.
    coverage_weight: float = 0.5
    coverage_ratio: float = 0.9
    coverage_min_requests: int = 20
    #: Sustained activity in the dead of night.
    night_weight: float = 0.5
    night_fraction: float = 0.4
    #: Non-browser client fingerprints (scripted / headless).
    fingerprint_weight: float = 4.0
    #: Total evidence needed to alert.
    alert_threshold: float = 4.0


class BehavioralSessionDetector(SessionDetector):
    """Weighted-evidence behavioural model over session features."""

    def __init__(
        self,
        config: BehaviouralScoreConfig | None = None,
        *,
        name: str = "behavioral",
        fingerprint: UserAgentFingerprintDetector | None = None,
        sessionizer: Sessionizer | None = None,
    ) -> None:
        super().__init__(sessionizer)
        self.name = name
        self.config = config or BehaviouralScoreConfig()
        self.fingerprint = fingerprint or UserAgentFingerprintDetector()

    # ------------------------------------------------------------------
    def score_session(self, session: Session) -> tuple[float, list[str]]:
        """Return the accumulated evidence score and the contributing signals."""
        config = self.config
        features = extract_features(session)
        score = 0.0
        signals: list[str] = []

        if features.asset_fraction < config.no_assets_threshold:
            score += config.no_assets_weight
            signals.append("no static assets loaded")
        if features.referrer_fraction < config.no_referrer_threshold:
            score += config.no_referrer_weight
            signals.append("no referrer headers")
        if (
            features.request_count >= config.machine_timing_min_requests
            and features.interarrival_cv < config.machine_timing_cv
        ):
            score += config.machine_timing_weight
            signals.append(f"machine-regular timing (cv={features.interarrival_cv:.2f})")
        if features.request_count >= config.high_volume_requests:
            score += config.high_volume_weight
            signals.append(f"high volume ({features.request_count} requests)")
        if (
            features.request_count >= config.coverage_min_requests
            and features.unique_path_ratio > config.coverage_ratio
        ):
            score += config.coverage_weight
            signals.append("exhaustive URL coverage")
        if features.night_fraction > config.night_fraction:
            score += config.night_weight
            signals.append("night-time activity")
        if self._suspicious_fingerprint(session, features):
            score += config.fingerprint_weight
            signals.append("non-browser client fingerprint")
        return score, signals

    def _suspicious_fingerprint(self, session: Session, features: SessionFeatures) -> bool:
        verdict = self.fingerprint.judge_request(session.user_agent, session.client_ip)
        return verdict is not None

    # ------------------------------------------------------------------
    def judge_session(self, session: Session) -> tuple[float, Sequence[str]] | None:
        score, signals = self.score_session(session)
        if score < self.config.alert_threshold:
            return None
        normalised = min(1.0, score / (2 * self.config.alert_threshold))
        return normalised, tuple(signals)
