"""Online (streaming) detection.

The batch detectors analyse a finished log file, which matches the
paper's retrospective study.  In production the same techniques run
*online*: requests arrive one by one and a verdict is needed immediately
so the request can be blocked or challenged.  This module provides a
streaming counterpart built from sliding-window state per visitor:

* :class:`StreamingRateLimiter` -- a per-visitor sliding-window rate
  limiter that flags a request as soon as its visitor exceeds the allowed
  request budget per window.
* :class:`StreamingDetector` -- wraps any streaming rule into the common
  batch :class:`~repro.detectors.base.Detector` interface (replaying the
  data set in time order), so online and offline detectors can be
  compared inside the same diversity analysis.

The streaming rate limiter is intentionally simple -- it is the ablation
baseline the richer detectors are compared against, and it demonstrates
how to add further online rules.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Sequence

from repro.core.alerts import AlertSet
from repro.detectors.base import Detector
from repro.logs.dataset import Dataset
from repro.logs.record import LogRecord
from repro.logs.sessionization import Session
from repro.traffic.useragents import is_scripted_agent


@dataclass
class StreamingVerdict:
    """The online decision for one request."""

    request_id: str
    alerted: bool
    reason: str = ""
    score: float = 0.0


@dataclass
class _VisitorWindow:
    """Sliding-window state for one visitor key."""

    timestamps: Deque = field(default_factory=deque)
    alerted_until: float = 0.0


class StreamingRateLimiter:
    """Per-visitor sliding-window rate limiting with a penalty period.

    A request is flagged when its visitor has issued more than
    ``max_requests`` requests within the last ``window_seconds``.  Once a
    visitor trips the limit it stays flagged for ``penalty_seconds`` (the
    way production rate limiters and bot-mitigation challenges behave),
    which also makes the streaming verdicts comparable with the
    session-level batch detectors.
    """

    def __init__(
        self,
        *,
        max_requests: int = 30,
        window_seconds: float = 60.0,
        penalty_seconds: float = 300.0,
        flag_scripted_agents: bool = True,
    ) -> None:
        if max_requests < 1:
            raise ValueError("max_requests must be at least 1")
        if window_seconds <= 0 or penalty_seconds < 0:
            raise ValueError("window_seconds must be positive and penalty_seconds non-negative")
        self.max_requests = max_requests
        self.window_seconds = window_seconds
        self.penalty_seconds = penalty_seconds
        self.flag_scripted_agents = flag_scripted_agents
        self._state: dict[tuple[str, str], _VisitorWindow] = {}

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop all visitor state (start of a new deployment)."""
        self._state.clear()

    def observe(self, record: LogRecord) -> StreamingVerdict:
        """Process one request and return the online verdict."""
        if self.flag_scripted_agents and is_scripted_agent(record.user_agent):
            return StreamingVerdict(
                request_id=record.request_id,
                alerted=True,
                reason="scripted client user agent",
                score=1.0,
            )

        key = record.actor_key()
        window = self._state.setdefault(key, _VisitorWindow())
        now = record.timestamp.timestamp()

        if now < window.alerted_until:
            return StreamingVerdict(
                request_id=record.request_id,
                alerted=True,
                reason="visitor in rate-limit penalty period",
                score=0.8,
            )

        window.timestamps.append(now)
        cutoff = now - self.window_seconds
        while window.timestamps and window.timestamps[0] < cutoff:
            window.timestamps.popleft()

        if len(window.timestamps) > self.max_requests:
            window.alerted_until = now + self.penalty_seconds
            rate = len(window.timestamps)
            return StreamingVerdict(
                request_id=record.request_id,
                alerted=True,
                reason=f"{rate} requests in {self.window_seconds:.0f}s exceeds {self.max_requests}",
                score=min(1.0, 0.5 + 0.5 * (rate - self.max_requests) / self.max_requests),
            )
        return StreamingVerdict(request_id=record.request_id, alerted=False)

    def observe_stream(self, records) -> list[StreamingVerdict]:
        """Process an iterable of records (assumed time-ordered)."""
        return [self.observe(record) for record in records]


class StreamingDetector(Detector):
    """Adapter exposing a streaming rule through the batch detector interface.

    The data set is replayed in timestamp order (as the requests would have
    arrived) and the streaming verdicts are collected into an alert set, so
    online detection can participate in the same diversity/adjudication
    analyses as the offline tools.
    """

    def __init__(self, limiter: StreamingRateLimiter | None = None, *, name: str = "streaming-rate"):
        self.name = name
        self.limiter = limiter or StreamingRateLimiter()

    def analyze(self, dataset: Dataset, *, sessions: Sequence[Session] | None = None) -> AlertSet:
        self.limiter.reset()
        alert_set = AlertSet(self.name)
        ordered = sorted(dataset.records, key=lambda record: record.timestamp)
        for record in ordered:
            verdict = self.limiter.observe(record)
            if verdict.alerted:
                alert_set.add(record.request_id, score=verdict.score, reasons=(verdict.reason,))
        return alert_set
