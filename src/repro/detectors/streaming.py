"""Online (streaming) detection -- batch-facing adapters.

The real streaming machinery lives in :mod:`repro.stream`: an
event-driven engine with incremental sessionization, online detector
ports, windowed adjudication and sharded execution.  This module keeps
the original batch-facing surface as thin adapters over that engine:

* :class:`StreamingRateLimiter` -- the per-visitor sliding-window rate
  limiter, now an alias-with-defaults of
  :class:`~repro.stream.detectors.OnlineRequestRateLimiter` (same
  ``observe`` / ``observe_stream`` / ``reset`` API as before).
* :class:`StreamingDetector` -- wraps any online detector into the batch
  :class:`~repro.detectors.base.Detector` interface by replaying the
  data set through a :class:`~repro.stream.engine.StreamEngine`, so
  online detection can participate in the same diversity/adjudication
  analyses as the offline tools.
* :data:`StreamingVerdict` -- re-export of
  :class:`~repro.stream.events.OnlineVerdict` (unchanged field layout).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.alerts import AlertSet
from repro.detectors.base import Detector
from repro.logs.dataset import Dataset
from repro.logs.record import LogRecord
from repro.logs.sessionization import Session
from repro.stream.detectors import OnlineDetector, OnlineRequestRateLimiter
from repro.stream.engine import StreamEngine
from repro.stream.events import OnlineVerdict

#: Backwards-compatible name for the per-request online verdict.
StreamingVerdict = OnlineVerdict


class StreamingRateLimiter(OnlineRequestRateLimiter):
    """Per-visitor sliding-window rate limiting with a penalty period.

    A request is flagged when its visitor has issued more than
    ``max_requests`` requests within the last ``window_seconds``.  Once a
    visitor trips the limit it stays flagged for ``penalty_seconds`` (the
    way production rate limiters and bot-mitigation challenges behave),
    which also makes the streaming verdicts comparable with the
    session-level batch detectors.

    Pass ``record_alerts=False`` for indefinitely running deployments
    that only act on the per-request verdicts: it keeps memory bounded
    by the per-visitor window state instead of accumulating an alert
    per flagged request.
    """

    def __init__(
        self,
        *,
        max_requests: int = 30,
        window_seconds: float = 60.0,
        penalty_seconds: float = 300.0,
        flag_scripted_agents: bool = True,
        record_alerts: bool = True,
    ) -> None:
        super().__init__(
            max_requests=max_requests,
            window_seconds=window_seconds,
            penalty_seconds=penalty_seconds,
            flag_scripted_agents=flag_scripted_agents,
            record_alerts=record_alerts,
        )

    def observe_stream(self, records: Iterable[LogRecord]) -> list[StreamingVerdict]:
        """Process an iterable of records (assumed time-ordered)."""
        return [self.observe(record) for record in records]


class StreamingDetector(Detector):
    """Adapter exposing an online detector through the batch interface.

    The data set is replayed in timestamp order (as the requests would
    have arrived) through a single-detector
    :class:`~repro.stream.engine.StreamEngine` and the engine's final
    alert set is returned, so online detection can participate in the
    same diversity/adjudication analyses as the offline tools.
    """

    #: The replay is a stateful, time-ordered stream; there is no
    #: columnar formulation, so the record path is the specification.
    columnar_fallback = True

    def __init__(
        self,
        limiter: OnlineDetector | None = None,
        *,
        name: str = "streaming-rate",
    ):
        self.name = name
        self.limiter = limiter or StreamingRateLimiter()

    def analyze(self, dataset: Dataset, *, sessions: Sequence[Session] | None = None) -> AlertSet:
        from repro.stream.sources import dataset_replay

        engine = StreamEngine([self.limiter])
        # Batch analysis needs the accumulated alert set even when the
        # limiter was configured alert-free for live deployments.
        forced_recording = getattr(self.limiter, "record_alerts", True) is False
        if forced_recording:
            self.limiter.record_alerts = True
        try:
            result = engine.run(dataset_replay(dataset))
        finally:
            if forced_recording:
                self.limiter.record_alerts = False
        streamed = result.alert_sets[0]
        if streamed.detector_name == self.name:
            return streamed
        renamed = AlertSet(self.name)
        for alert in streamed.alerts():
            renamed.add(alert.request_id, score=alert.score, reasons=alert.reasons)
        return renamed
