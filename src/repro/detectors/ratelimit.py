"""Rate-limit detector.

The simplest and oldest scraping defence: flag visitors whose request rate
exceeds what a human could plausibly sustain.  Both tools studied in the
paper include a rate component; here it is also available as a
stand-alone detector for the multi-detector extension experiments.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.alerts import AlertSet
from repro.detectors.base import SessionDetector
from repro.logs.sessionization import Session, Sessionizer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.columns import FeatureMatrix, FrameSessions, RecordFrame
    from repro.columns.alertframe import DetectorAlerts


class RateLimitDetector(SessionDetector):
    """Flag sessions whose sustained or peak request rate exceeds a threshold.

    Both the session's average rate and its busiest one-minute window are
    checked, so bursty scrapers that idle between bursts are still caught.
    """

    #: Verdicts are per-session pure; sharding by IP keeps sessions whole.
    frame_shardable = True

    def __init__(
        self,
        *,
        name: str = "rate-limit",
        threshold_rpm: float = 60.0,
        min_requests: int = 10,
        use_peak_rate: bool = True,
        sessionizer: Sessionizer | None = None,
    ) -> None:
        super().__init__(sessionizer)
        if threshold_rpm <= 0:
            raise ValueError("threshold_rpm must be positive")
        if min_requests < 1:
            raise ValueError("min_requests must be at least 1")
        self.name = name
        self.threshold_rpm = threshold_rpm
        self.min_requests = min_requests
        self.use_peak_rate = use_peak_rate

    def judge_session(self, session: Session) -> tuple[float, Sequence[str]] | None:
        if session.request_count < self.min_requests:
            return None
        rate = session.requests_per_minute()
        if self.use_peak_rate:
            rate = max(rate, session.peak_requests_per_minute())
        if rate <= self.threshold_rpm:
            return None
        # Score grows with how far above the threshold the session is.
        score = min(1.0, 0.5 + 0.5 * (rate - self.threshold_rpm) / self.threshold_rpm)
        return score, (f"rate {rate:.0f} req/min exceeds {self.threshold_rpm:.0f}",)

    # ------------------------------------------------------------------
    def scored_columns(
        self, frame: "RecordFrame", sessions: "FrameSessions", features: "FeatureMatrix"
    ) -> dict[str, tuple[float, tuple[str, ...]]]:
        """Per-record ``{request_id: (score, reasons)}`` over a frame."""
        rates = features.column("requests_per_minute")
        if self.use_peak_rate:
            rates = np.maximum(rates, features.peak_rpm())
        eligible = (features.counts >= self.min_requests) & (rates > self.threshold_rpm)
        scores = np.minimum(
            1.0, 0.5 + 0.5 * (rates - self.threshold_rpm) / self.threshold_rpm
        )
        request_ids = frame.request_ids
        order, starts = sessions.order, sessions.starts
        scored: dict[str, tuple[float, tuple[str, ...]]] = {}
        for index in np.flatnonzero(eligible).tolist():
            rate = float(rates[index])
            verdict = (
                float(scores[index]),
                (f"rate {rate:.0f} req/min exceeds {self.threshold_rpm:.0f}",),
            )
            for row in order[starts[index] : starts[index + 1]].tolist():
                scored[request_ids[row]] = verdict
        return scored

    def analyze_columns(
        self, frame: "RecordFrame", sessions: "FrameSessions", features: "FeatureMatrix"
    ) -> AlertSet:
        return AlertSet.from_scored(self.name, self.scored_columns(frame, sessions, features))

    def alert_columns(
        self, frame: "RecordFrame", sessions: "FrameSessions", features: "FeatureMatrix"
    ) -> "DetectorAlerts":
        """Frame-native alert arrays: per-session verdicts scattered to rows."""
        from repro.columns.alertframe import DetectorAlerts, ReasonEncoder

        rates = features.column("requests_per_minute")
        if self.use_peak_rate:
            rates = np.maximum(rates, features.peak_rpm())
        eligible = (features.counts >= self.min_requests) & (rates > self.threshold_rpm)
        scores = np.minimum(
            1.0, 0.5 + 0.5 * (rates - self.threshold_rpm) / self.threshold_rpm
        )
        session_codes = np.full(len(features), -1, dtype=np.int64)
        encoder = ReasonEncoder()
        for index in np.flatnonzero(eligible).tolist():
            rate = float(rates[index])
            session_codes[index] = encoder.code(
                (f"rate {rate:.0f} req/min exceeds {self.threshold_rpm:.0f}",)
            )
        return DetectorAlerts.from_sessions(
            self.name,
            frame,
            sessions,
            eligible,
            np.where(eligible, scores, 0.0),
            session_codes,
            encoder.table,
        )
