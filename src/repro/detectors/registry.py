"""Detector registry.

A small name -> factory registry so the CLI, the examples and the
benchmarks can construct detectors from strings (``"commercial"``,
``"inhouse"``, ``"rate-limit"``, ...) without importing every detector
module themselves.  Third-party code can register additional detectors
with :func:`register_detector`.
"""

from __future__ import annotations

from typing import Callable

from repro.detectors.anomaly_detector import AnomalySessionDetector
from repro.detectors.base import Detector
from repro.detectors.behavioral import BehavioralSessionDetector
from repro.detectors.commercial import CommercialBotDefenceDetector
from repro.detectors.crawler_ml import CrawlerDecisionTreeDetector
from repro.detectors.fingerprint import UserAgentFingerprintDetector
from repro.detectors.inhouse import InHouseHeuristicDetector
from repro.detectors.naive_bayes import NaiveBayesRobotDetector
from repro.detectors.ratelimit import RateLimitDetector
from repro.detectors.reputation import IPReputationDetector
from repro.exceptions import DetectorError
from repro.registry import Registry

DetectorFactory = Callable[..., Detector]

_REGISTRY: Registry[Detector] = Registry("detector", DetectorError)


def register_detector(name: str, factory: DetectorFactory, *, overwrite: bool = False) -> None:
    """Register a detector factory under ``name``."""
    _REGISTRY.register(name, factory, overwrite=overwrite)


def available_detectors() -> list[str]:
    """Names of all registered detectors."""
    return _REGISTRY.names()


def create_detector(name: str, **kwargs) -> Detector:
    """Instantiate a registered detector by name.

    Raises :class:`~repro.exceptions.DetectorError` -- with a
    did-you-mean suggestion -- when the name is unknown.
    """
    return _REGISTRY.create(name, **kwargs)


# ----------------------------------------------------------------------
# Built-in registrations
# ----------------------------------------------------------------------
register_detector("commercial", CommercialBotDefenceDetector)
register_detector("inhouse", InHouseHeuristicDetector)
register_detector("rate-limit", RateLimitDetector)
register_detector("ip-reputation", IPReputationDetector)
register_detector("ua-fingerprint", UserAgentFingerprintDetector)
register_detector("behavioral", BehavioralSessionDetector)
register_detector("naive-bayes", NaiveBayesRobotDetector)
register_detector("decision-tree", CrawlerDecisionTreeDetector)
register_detector("anomaly", AnomalySessionDetector)
