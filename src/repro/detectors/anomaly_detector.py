"""Anomaly-based session detector.

Wraps any of the unsupervised models from :mod:`repro.anomaly` (isolation
forest, k-NN distance, Mahalanobis, robust z-score) into the common
detector interface: fit on the session feature matrix of the analysed
data set, score every session and alert on the most anomalous fraction
(the *contamination* parameter).
"""

from __future__ import annotations

from typing import Sequence

from repro.anomaly.base import AnomalyModel
from repro.anomaly.isolation_forest import IsolationForestModel
from repro.core.alerts import AlertSet
from repro.detectors.base import Detector
from repro.detectors.features import feature_matrix
from repro.logs.dataset import Dataset
from repro.logs.sessionization import Session, Sessionizer


class AnomalySessionDetector(Detector):
    """Alert on the most anomalous sessions according to an unsupervised model."""

    def __init__(
        self,
        model: AnomalyModel | None = None,
        *,
        name: str = "anomaly",
        contamination: float = 0.3,
        sessionizer: Sessionizer | None = None,
    ) -> None:
        if not 0.0 < contamination < 1.0:
            raise ValueError("contamination must be in (0, 1)")
        self.name = name
        self.model = model or IsolationForestModel()
        self.contamination = contamination
        self.sessionizer = sessionizer or Sessionizer()

    def analyze(self, dataset: Dataset, *, sessions: Sequence[Session] | None = None) -> AlertSet:
        alert_set = AlertSet(self.name)
        if sessions is None:
            sessions = self.sessionizer.sessionize(dataset.records)
        if len(sessions) < 2:
            return alert_set

        matrix = feature_matrix(list(sessions))
        scores = self.model.fit_score(matrix)
        threshold = self.model.threshold_for_contamination(scores, self.contamination)
        max_score = float(scores.max()) or 1.0
        for session, score in zip(sessions, scores):
            if score < threshold:
                continue
            for request_id in session.request_ids():
                alert_set.add(
                    request_id,
                    score=min(1.0, float(score) / max_score),
                    reasons=(f"anomalous session ({self.model.__class__.__name__} score {score:.3f})",),
                )
        return alert_set
