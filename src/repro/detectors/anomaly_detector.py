"""Anomaly-based session detector.

Wraps any of the unsupervised models from :mod:`repro.anomaly` (isolation
forest, k-NN distance, Mahalanobis, robust z-score) into the common
detector interface: fit on the session feature matrix of the analysed
data set, score every session and alert on the most anomalous fraction
(the *contamination* parameter).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.anomaly.base import AnomalyModel
from repro.anomaly.isolation_forest import IsolationForestModel
from repro.core.alerts import AlertSet
from repro.detectors.base import Detector
from repro.detectors.features import feature_matrix
from repro.logs.dataset import Dataset
from repro.logs.sessionization import Session, Sessionizer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.columns import FeatureMatrix, FrameSessions, RecordFrame


def alert_anomalous_groups(
    alert_set: AlertSet,
    model: AnomalyModel,
    matrix: np.ndarray,
    request_id_groups: Sequence[Sequence[str]],
    contamination: float,
) -> None:
    """Fit ``model`` on ``matrix`` and alert the top-``contamination`` rows.

    One row of ``matrix`` describes one session; ``request_id_groups``
    holds the session's request ids in the same row order.  This is the
    single definition of the fit/threshold/normalise/alert step, shared
    by the batch detector below and the streaming port
    (:class:`repro.stream.detectors.OnlineAnomalyDetector`) so their
    alert sets can never drift apart.
    """
    scores = model.fit_score(matrix)
    threshold = model.threshold_for_contamination(scores, contamination)
    max_score = float(scores.max()) or 1.0
    for request_ids, score in zip(request_id_groups, scores):
        if score < threshold:
            continue
        for request_id in request_ids:
            alert_set.add(
                request_id,
                score=min(1.0, float(score) / max_score),
                reasons=(f"anomalous session ({model.__class__.__name__} score {score:.3f})",),
            )


class AnomalySessionDetector(Detector):
    """Alert on the most anomalous sessions according to an unsupervised model."""

    #: The frame pipeline bridges the dict-path alert set into arrays;
    #: model scoring has no array-native formulation worth maintaining.
    frame_fallback = True

    def __init__(
        self,
        model: AnomalyModel | None = None,
        *,
        name: str = "anomaly",
        contamination: float = 0.3,
        sessionizer: Sessionizer | None = None,
    ) -> None:
        if not 0.0 < contamination < 1.0:
            raise ValueError("contamination must be in (0, 1)")
        self.name = name
        self.model = model or IsolationForestModel()
        self.contamination = contamination
        self.sessionizer = sessionizer or Sessionizer()

    def analyze(self, dataset: Dataset, *, sessions: Sequence[Session] | None = None) -> AlertSet:
        alert_set = AlertSet(self.name)
        if sessions is None:
            sessions = self.sessionizer.sessionize(dataset.records)
        if len(sessions) < 2:
            return alert_set

        matrix = feature_matrix(list(sessions))
        alert_anomalous_groups(
            alert_set,
            self.model,
            matrix,
            [session.request_ids() for session in sessions],
            self.contamination,
        )
        return alert_set

    def analyze_columns(
        self, frame: "RecordFrame", sessions: "FrameSessions", features: "FeatureMatrix"
    ) -> AlertSet:
        alert_set = AlertSet(self.name)
        if len(features) < 2:
            return alert_set
        # Copy so a model that standardises in place can never corrupt
        # the shared matrix for later detectors.
        alert_anomalous_groups(
            alert_set,
            self.model,
            features.values.copy(),
            sessions.request_id_groups(),
            self.contamination,
        )
        return alert_set
