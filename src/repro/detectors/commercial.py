"""The commercial-product stand-in ("Distil-like" composite detector).

Commercial bot-mitigation products combine several layers that all feed
one verdict per visitor:

1. **client fingerprint validation** -- scripted clients, headless
   browsers and fake search-engine crawlers are flagged outright;
2. **IP reputation** -- requests from ranges known to host scraping
   infrastructure are flagged;
3. **global rate limiting** -- visitors exceeding an aggressive request
   rate are flagged regardless of anything else;
4. **behavioural analysis** -- sessions whose browsing behaviour is
   inconsistent with a human driving a real browser are flagged.

Verified search-engine crawlers are whitelisted, as every commercial
product does.  The composite's alert set is the union of the layers'
alerts, with the triggering layer(s) recorded as alert reasons.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.alerts import AlertSet
from repro.detectors.base import Detector
from repro.detectors.behavioral import BehavioralSessionDetector, BehaviouralScoreConfig
from repro.detectors.fingerprint import UserAgentFingerprintDetector
from repro.detectors.ratelimit import RateLimitDetector
from repro.detectors.reputation import IPReputationDetector
from repro.logs.dataset import Dataset
from repro.logs.sessionization import Session, Sessionizer


class CommercialBotDefenceDetector(Detector):
    """Multi-layer commercial-style bot defence (the paper's "Distil" stand-in)."""

    def __init__(
        self,
        *,
        name: str = "commercial",
        reputation_blocklist: Iterable[str] | None = None,
        rate_threshold_rpm: float = 90.0,
        behavioural_config: BehaviouralScoreConfig | None = None,
        sessionizer: Sessionizer | None = None,
    ) -> None:
        self.name = name
        self.sessionizer = sessionizer or Sessionizer()
        self.fingerprint = UserAgentFingerprintDetector(name=f"{name}/fingerprint")
        self.reputation = IPReputationDetector(reputation_blocklist, name=f"{name}/reputation")
        self.ratelimit = RateLimitDetector(
            name=f"{name}/rate",
            threshold_rpm=rate_threshold_rpm,
            sessionizer=self.sessionizer,
        )
        self.behavioral = BehavioralSessionDetector(
            behavioural_config,
            name=f"{name}/behavioral",
            fingerprint=self.fingerprint,
            sessionizer=self.sessionizer,
        )

    # ------------------------------------------------------------------
    def analyze(self, dataset: Dataset, *, sessions: Sequence[Session] | None = None) -> AlertSet:
        if sessions is None:
            sessions = self.sessionizer.sessionize(dataset.records)

        layer_alerts = [
            ("fingerprint", self.fingerprint.analyze(dataset, sessions=sessions)),
            ("reputation", self.reputation.analyze(dataset, sessions=sessions)),
            ("rate", self.ratelimit.analyze(dataset, sessions=sessions)),
            ("behavioral", self.behavioral.analyze(dataset, sessions=sessions)),
        ]

        whitelisted = self._whitelisted_request_ids(sessions)

        combined = AlertSet(self.name)
        for layer_name, alerts in layer_alerts:
            for alert in alerts.alerts():
                if alert.request_id in whitelisted:
                    continue
                combined.add(
                    alert.request_id,
                    score=alert.score,
                    reasons=tuple(f"{layer_name}: {reason}" for reason in alert.reasons) or (layer_name,),
                )
        return combined

    # ------------------------------------------------------------------
    def _whitelisted_request_ids(self, sessions: Sequence[Session]) -> set[str]:
        """Requests from verified search-engine crawlers are never alerted."""
        whitelisted: set[str] = set()
        for session in sessions:
            if self.fingerprint.is_verified_crawler(session.user_agent, session.client_ip):
                whitelisted.update(session.request_ids())
        return whitelisted
