"""The commercial-product stand-in ("Distil-like" composite detector).

Commercial bot-mitigation products combine several layers that all feed
one verdict per visitor:

1. **client fingerprint validation** -- scripted clients, headless
   browsers and fake search-engine crawlers are flagged outright;
2. **IP reputation** -- requests from ranges known to host scraping
   infrastructure are flagged;
3. **global rate limiting** -- visitors exceeding an aggressive request
   rate are flagged regardless of anything else;
4. **behavioural analysis** -- sessions whose browsing behaviour is
   inconsistent with a human driving a real browser are flagged.

Verified search-engine crawlers are whitelisted, as every commercial
product does.  The composite's alert set is the union of the layers'
alerts, with the triggering layer(s) recorded as alert reasons.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.core.alerts import AlertSet
from repro.detectors.base import Detector
from repro.detectors.behavioral import BehavioralSessionDetector, BehaviouralScoreConfig
from repro.detectors.fingerprint import UserAgentFingerprintDetector
from repro.detectors.ratelimit import RateLimitDetector
from repro.detectors.reputation import IPReputationDetector
from repro.logs.dataset import Dataset
from repro.logs.sessionization import Session, Sessionizer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.columns import FeatureMatrix, FrameSessions, RecordFrame
    from repro.columns.alertframe import DetectorAlerts


class CommercialBotDefenceDetector(Detector):
    """Multi-layer commercial-style bot defence (the paper's "Distil" stand-in)."""

    def __init__(
        self,
        *,
        name: str = "commercial",
        reputation_blocklist: Iterable[str] | None = None,
        rate_threshold_rpm: float = 90.0,
        behavioural_config: BehaviouralScoreConfig | None = None,
        sessionizer: Sessionizer | None = None,
    ) -> None:
        self.name = name
        self.sessionizer = sessionizer or Sessionizer()
        self.fingerprint = UserAgentFingerprintDetector(name=f"{name}/fingerprint")
        self.reputation = IPReputationDetector(reputation_blocklist, name=f"{name}/reputation")
        self.ratelimit = RateLimitDetector(
            name=f"{name}/rate",
            threshold_rpm=rate_threshold_rpm,
            sessionizer=self.sessionizer,
        )
        self.behavioral = BehavioralSessionDetector(
            behavioural_config,
            name=f"{name}/behavioral",
            fingerprint=self.fingerprint,
            sessionizer=self.sessionizer,
        )
        # The composite shards iff every layer does (the reputation layer
        # opts out when it uses a global per-prefix count threshold).
        self.frame_shardable = (
            self.fingerprint.frame_shardable
            and self.reputation.frame_shardable
            and self.ratelimit.frame_shardable
            and self.behavioral.frame_shardable
        )

    # ------------------------------------------------------------------
    def _combine(
        self, layer_alerts: Sequence[tuple[str, AlertSet]], whitelisted: set[str]
    ) -> AlertSet:
        """Union the layers' alerts (layer names become reason prefixes).

        Scores merge by maximum and reasons concatenate in layer order
        with order-preserving dedup -- exactly the
        :meth:`~repro.core.alerts.AlertSet.add` merge semantics, computed
        in plain dictionaries and materialised once at the end.
        """
        layer_scored = [
            (
                layer_name,
                {alert.request_id: (alert.score, alert.reasons) for alert in alerts.alerts()},
            )
            for layer_name, alerts in layer_alerts
        ]
        return self._merge_scored(layer_scored, whitelisted)

    def _merge_scored(
        self,
        layer_scored: Sequence[tuple[str, dict[str, tuple[float, tuple[str, ...]]]]],
        whitelisted: set[str],
    ) -> AlertSet:
        merged: dict[str, list] = {}
        for layer_name, scored in layer_scored:
            for request_id, (score, raw_reasons) in scored.items():
                if request_id in whitelisted:
                    continue
                reasons = tuple(
                    f"{layer_name}: {reason}" for reason in raw_reasons
                ) or (layer_name,)
                entry = merged.get(request_id)
                if entry is None:
                    merged[request_id] = [score, reasons]
                else:
                    if score > entry[0]:
                        entry[0] = score
                    entry[1] = entry[1] + reasons
        return AlertSet.from_scored(
            self.name,
            {
                request_id: (score, tuple(dict.fromkeys(reasons)))
                for request_id, (score, reasons) in merged.items()
            },
        )

    def analyze(self, dataset: Dataset, *, sessions: Sequence[Session] | None = None) -> AlertSet:
        if sessions is None:
            sessions = self.sessionizer.sessionize(dataset.records)

        layer_alerts = [
            ("fingerprint", self.fingerprint.analyze(dataset, sessions=sessions)),
            ("reputation", self.reputation.analyze(dataset, sessions=sessions)),
            ("rate", self.ratelimit.analyze(dataset, sessions=sessions)),
            ("behavioral", self.behavioral.analyze(dataset, sessions=sessions)),
        ]
        return self._combine(layer_alerts, self._whitelisted_request_ids(sessions))

    def analyze_columns(
        self, frame: "RecordFrame", sessions: "FrameSessions", features: "FeatureMatrix"
    ) -> AlertSet:
        # The layers hand over plain scored dictionaries: the composite
        # merges those directly and materialises alert objects exactly
        # once, for the combined set.  The fingerprint pair verdicts are
        # judged once and shared between the two layers that need them.
        verdicts = self.fingerprint.pair_verdicts(frame)
        layer_scored = [
            ("fingerprint", self.fingerprint.scored_columns(frame, verdicts)),
            ("reputation", self.reputation.scored_columns(frame)),
            ("rate", self.ratelimit.scored_columns(frame, sessions, features)),
            (
                "behavioral",
                self.behavioral.scored_columns(
                    frame, sessions, features, fingerprint_verdicts=verdicts
                ),
            ),
        ]
        # Verified-crawler whitelist, per (agent, IP) pair instead of per
        # session: a pair's verdict covers all its sessions at once.
        whitelisted: set[str] = set()
        agents = frame.tables["user_agent"]
        ips = frame.tables["client_ip"]
        pair_cache: dict[tuple[int, int], bool] = {}
        request_ids = frame.request_ids
        order, starts = sessions.order, sessions.starts
        for index in range(len(sessions)):
            pair = (int(sessions.agent_codes[index]), int(sessions.ip_codes[index]))
            verified = pair_cache.get(pair)
            if verified is None:
                verified = self.fingerprint.is_verified_crawler(agents[pair[0]], ips[pair[1]])
                pair_cache[pair] = verified
            if verified:
                whitelisted.update(
                    request_ids[row] for row in order[starts[index] : starts[index + 1]]
                )
        return self._merge_scored(layer_scored, whitelisted)

    def alert_columns(
        self, frame: "RecordFrame", sessions: "FrameSessions", features: "FeatureMatrix"
    ) -> "DetectorAlerts":
        """Frame-native composite: merge the layers' alert arrays directly.

        Scores merge by elementwise maximum over the alerting layers
        (identical to the dict path's first-sets / strictly-greater-
        replaces walk); reasons merge per *distinct layer reason-code
        combination* -- a handful of combos stand in for every alerted
        row, so the layer-prefixing and order-preserving dedup run once
        per combo instead of once per alert.
        """
        from repro.columns.alertframe import (
            DetectorAlerts,
            ReasonEncoder,
            whitelist_row_mask,
        )

        verdicts = self.fingerprint.pair_verdicts(frame)
        layers: list[tuple[str, DetectorAlerts]] = [
            ("fingerprint", self.fingerprint.verdict_alerts(frame, verdicts)),
            ("reputation", self.reputation.alert_columns(frame, sessions, features)),
            ("rate", self.ratelimit.alert_columns(frame, sessions, features)),
            (
                "behavioral",
                self.behavioral.verdict_alerts(
                    frame, sessions, features, fingerprint_verdicts=verdicts
                ),
            ),
        ]
        not_whitelisted = ~whitelist_row_mask(
            frame, sessions, self.fingerprint.is_verified_crawler
        )
        n = len(frame)
        masked_flags = [alerts.flags & not_whitelisted for _, alerts in layers]
        flags = np.logical_or.reduce(masked_flags)
        best = np.maximum.reduce(
            [
                np.where(mask, alerts.scores, -np.inf)
                for mask, (_, alerts) in zip(masked_flags, layers)
            ]
        )
        scores = np.where(flags, best, 0.0)

        reason_codes = np.full(n, -1, dtype=np.int64)
        encoder = ReasonEncoder()
        flagged_rows = np.flatnonzero(flags)
        if len(flagged_rows):
            code_matrix = np.stack(
                [
                    np.where(mask, alerts.reason_codes, np.int64(-1))
                    for mask, (_, alerts) in zip(masked_flags, layers)
                ],
                axis=1,
            )
            combos, inverse = np.unique(
                code_matrix[flagged_rows], axis=0, return_inverse=True
            )
            prefixed = [
                [
                    tuple(f"{layer_name}: {reason}" for reason in reasons)
                    or (layer_name,)
                    for reasons in alerts.reason_table
                ]
                for layer_name, alerts in layers
            ]
            combo_codes = np.empty(len(combos), dtype=np.int64)
            for combo_index, combo in enumerate(combos.tolist()):
                parts: list[str] = []
                for layer_index, code in enumerate(combo):
                    if code >= 0:
                        parts.extend(prefixed[layer_index][code])
                combo_codes[combo_index] = encoder.code(tuple(dict.fromkeys(parts)))
            reason_codes[flagged_rows] = combo_codes[
                np.asarray(inverse, dtype=np.int64).reshape(-1)
            ]
        return DetectorAlerts(self.name, flags, scores, reason_codes, encoder.table)

    # ------------------------------------------------------------------
    def _whitelisted_request_ids(self, sessions: Sequence[Session]) -> set[str]:
        """Requests from verified search-engine crawlers are never alerted."""
        whitelisted: set[str] = set()
        for session in sessions:
            if self.fingerprint.is_verified_crawler(session.user_agent, session.client_ip):
                whitelisted.update(session.request_ids())
        return whitelisted
