"""User-agent / client fingerprint detector.

Commercial bot defences validate the client's claimed identity: obvious
scripted clients (python-requests, curl, Scrapy, ...) are flagged
outright, headless browsers are flagged, and user agents that *claim* to
be a well-known crawler are checked against the crawler operators'
published IP ranges (fake Googlebots are a scraping staple).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.alerts import AlertSet
from repro.detectors.base import Detector
from repro.logs.dataset import Dataset
from repro.logs.sessionization import Session
from repro.traffic.ipspace import IPPool, IPSpace
from repro.traffic.useragents import is_headless_agent, is_known_crawler_agent, is_scripted_agent


class UserAgentFingerprintDetector(Detector):
    """Flag requests whose client fingerprint is inconsistent or non-browser."""

    def __init__(
        self,
        *,
        name: str = "ua-fingerprint",
        crawler_pool: IPPool | None = None,
        flag_scripted: bool = True,
        flag_headless: bool = True,
        flag_missing_agent: bool = True,
        flag_fake_crawlers: bool = True,
    ) -> None:
        self.name = name
        self.crawler_pool = crawler_pool or IPSpace().crawler
        self.flag_scripted = flag_scripted
        self.flag_headless = flag_headless
        self.flag_missing_agent = flag_missing_agent
        self.flag_fake_crawlers = flag_fake_crawlers

    # ------------------------------------------------------------------
    def judge_request(self, user_agent: str, client_ip: str) -> tuple[float, str] | None:
        """Return ``(score, reason)`` when the fingerprint is suspicious."""
        if self.flag_missing_agent and not user_agent.strip():
            return 0.9, "missing user agent"
        if self.flag_scripted and is_scripted_agent(user_agent):
            return 1.0, "scripted client user agent"
        if self.flag_headless and is_headless_agent(user_agent):
            return 0.9, "headless browser user agent"
        if self.flag_fake_crawlers and is_known_crawler_agent(user_agent):
            if not self.crawler_pool.contains(client_ip):
                return 0.95, "claims to be a known crawler from an unverified IP"
        return None

    def is_verified_crawler(self, user_agent: str, client_ip: str) -> bool:
        """True for crawler user agents whose source IP checks out."""
        return is_known_crawler_agent(user_agent) and self.crawler_pool.contains(client_ip)

    def analyze(self, dataset: Dataset, *, sessions: Sequence[Session] | None = None) -> AlertSet:
        alert_set = AlertSet(self.name)
        # Fingerprints depend only on (user agent, client IP), so cache
        # verdicts per pair instead of re-evaluating per request.
        cache: dict[tuple[str, str], tuple[float, str] | None] = {}
        for record in dataset:
            key = (record.user_agent, record.client_ip)
            if key not in cache:
                cache[key] = self.judge_request(record.user_agent, record.client_ip)
            verdict = cache[key]
            if verdict is None:
                continue
            score, reason = verdict
            alert_set.add(record.request_id, score=score, reasons=(reason,))
        return alert_set
