"""User-agent / client fingerprint detector.

Commercial bot defences validate the client's claimed identity: obvious
scripted clients (python-requests, curl, Scrapy, ...) are flagged
outright, headless browsers are flagged, and user agents that *claim* to
be a well-known crawler are checked against the crawler operators'
published IP ranges (fake Googlebots are a scraping staple).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.alerts import AlertSet
from repro.detectors.base import Detector
from repro.logs.dataset import Dataset
from repro.logs.sessionization import Session
from repro.traffic.ipspace import IPPool, IPSpace
from repro.traffic.useragents import is_headless_agent, is_known_crawler_agent, is_scripted_agent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.columns import FeatureMatrix, FrameSessions, RecordFrame
    from repro.columns.alertframe import DetectorAlerts


class UserAgentFingerprintDetector(Detector):
    """Flag requests whose client fingerprint is inconsistent or non-browser."""

    #: Verdicts depend only on the row's own (user agent, client IP)
    #: strings, so hash-sharding by IP cannot change them.
    frame_shardable = True

    def __init__(
        self,
        *,
        name: str = "ua-fingerprint",
        crawler_pool: IPPool | None = None,
        flag_scripted: bool = True,
        flag_headless: bool = True,
        flag_missing_agent: bool = True,
        flag_fake_crawlers: bool = True,
    ) -> None:
        self.name = name
        self.crawler_pool = crawler_pool or IPSpace().crawler
        self.flag_scripted = flag_scripted
        self.flag_headless = flag_headless
        self.flag_missing_agent = flag_missing_agent
        self.flag_fake_crawlers = flag_fake_crawlers

    # ------------------------------------------------------------------
    def judge_request(self, user_agent: str, client_ip: str) -> tuple[float, str] | None:
        """Return ``(score, reason)`` when the fingerprint is suspicious."""
        if self.flag_missing_agent and not user_agent.strip():
            return 0.9, "missing user agent"
        if self.flag_scripted and is_scripted_agent(user_agent):
            return 1.0, "scripted client user agent"
        if self.flag_headless and is_headless_agent(user_agent):
            return 0.9, "headless browser user agent"
        if self.flag_fake_crawlers and is_known_crawler_agent(user_agent):
            if not self.crawler_pool.contains(client_ip):
                return 0.95, "claims to be a known crawler from an unverified IP"
        return None

    def is_verified_crawler(self, user_agent: str, client_ip: str) -> bool:
        """True for crawler user agents whose source IP checks out."""
        return is_known_crawler_agent(user_agent) and self.crawler_pool.contains(client_ip)

    def analyze(self, dataset: Dataset, *, sessions: Sequence[Session] | None = None) -> AlertSet:
        alert_set = AlertSet(self.name)
        # Fingerprints depend only on (user agent, client IP), so cache
        # verdicts per pair instead of re-evaluating per request.
        cache: dict[tuple[str, str], tuple[float, str] | None] = {}
        for record in dataset:
            key = (record.user_agent, record.client_ip)
            if key not in cache:
                cache[key] = self.judge_request(record.user_agent, record.client_ip)
            verdict = cache[key]
            if verdict is None:
                continue
            score, reason = verdict
            alert_set.add(record.request_id, score=score, reasons=(reason,))
        return alert_set

    # ------------------------------------------------------------------
    def pair_verdicts(
        self, frame: "RecordFrame"
    ) -> dict[tuple[int, int], tuple[float, str]]:
        """Suspicious verdicts per distinct (agent code, IP code) pair."""
        agent_codes = frame.codes["user_agent"]
        ip_codes = frame.codes["client_ip"]
        agents = frame.tables["user_agent"]
        ips = frame.tables["client_ip"]
        pair_key = agent_codes * np.int64(len(ips) + 1) + ip_codes
        verdicts: dict[tuple[int, int], tuple[float, str]] = {}
        for key in np.unique(pair_key):
            agent_code = int(key) // (len(ips) + 1)
            ip_code = int(key) % (len(ips) + 1)
            verdict = self.judge_request(agents[agent_code], ips[ip_code])
            if verdict is not None:
                verdicts[(agent_code, ip_code)] = verdict
        return verdicts

    def scored_columns(
        self,
        frame: "RecordFrame",
        verdicts: dict[tuple[int, int], tuple[float, str]] | None = None,
    ) -> dict[str, tuple[float, tuple[str, ...]]]:
        """Per-record ``{request_id: (score, reasons)}`` over a frame.

        The columnar scoring core shared by :meth:`analyze_columns` and
        the commercial composite (which merges layer dictionaries
        directly instead of paying for intermediate alert objects).
        ``verdicts`` lets a caller that already ran :meth:`pair_verdicts`
        share the result instead of judging every pair again.
        """
        if verdicts is None:
            verdicts = self.pair_verdicts(frame)
        if not verdicts:
            return {}
        agent_codes = frame.codes["user_agent"]
        ip_codes = frame.codes["client_ip"]
        request_ids = frame.request_ids
        # One boolean gather marks the suspicious records; alerts are
        # then assembled in frame (= data set) order like the record path.
        suspicious_agents = np.zeros(len(frame.tables["user_agent"]) + 1, dtype=bool)
        for agent_code, _ in verdicts:
            suspicious_agents[agent_code] = True
        candidates = np.flatnonzero(suspicious_agents[agent_codes])
        scored: dict[str, tuple[float, tuple[str, ...]]] = {}
        get_verdict = verdicts.get
        agent_list = agent_codes.tolist()
        ip_list = ip_codes.tolist()
        for row in candidates.tolist():
            verdict = get_verdict((agent_list[row], ip_list[row]))
            if verdict is None:
                continue
            score, reason = verdict
            scored[request_ids[row]] = (score, (reason,))
        return scored

    def analyze_columns(
        self, frame: "RecordFrame", sessions: "FrameSessions", features: "FeatureMatrix"
    ) -> AlertSet:
        return AlertSet.from_scored(self.name, self.scored_columns(frame))

    # ------------------------------------------------------------------
    def verdict_alerts(
        self,
        frame: "RecordFrame",
        verdicts: dict[tuple[int, int], tuple[float, str]] | None = None,
    ) -> "DetectorAlerts":
        """Frame-native alert arrays: one judgement per distinct pair.

        Per-pair flag/score/reason-code arrays are filled from
        :meth:`pair_verdicts` and gathered through the pair key's inverse
        index -- no per-record Python at all.
        """
        from repro.columns.alertframe import DetectorAlerts, ReasonEncoder

        if verdicts is None:
            verdicts = self.pair_verdicts(frame)
        alerts = DetectorAlerts.empty(self.name, len(frame))
        if not verdicts:
            return alerts
        ips = frame.tables["client_ip"]
        span = len(ips) + 1
        pair_key = frame.codes["user_agent"] * np.int64(span) + frame.codes["client_ip"]
        unique_keys, inverse = np.unique(pair_key, return_inverse=True)
        n_pairs = len(unique_keys)
        pair_flags = np.zeros(n_pairs, dtype=bool)
        pair_scores = np.zeros(n_pairs, dtype=np.float64)
        pair_codes = np.full(n_pairs, -1, dtype=np.int64)
        encoder = ReasonEncoder()
        for index, key in enumerate(unique_keys.tolist()):
            verdict = verdicts.get((key // span, key % span))
            if verdict is None:
                continue
            score, reason = verdict
            pair_flags[index] = True
            pair_scores[index] = score
            pair_codes[index] = encoder.code((reason,))
        return DetectorAlerts(
            self.name,
            pair_flags[inverse],
            pair_scores[inverse],
            pair_codes[inverse],
            encoder.table,
        )

    def alert_columns(
        self, frame: "RecordFrame", sessions: "FrameSessions", features: "FeatureMatrix"
    ) -> "DetectorAlerts":
        return self.verdict_alerts(frame)
