"""IP-reputation detector.

Commercial bot-mitigation products consume threat-intelligence feeds that
flag hosting/datacenter ranges and known proxy exits.  The detector here
consumes a blocklist of /24 prefixes; by default the blocklist is the
simulated reputation feed from :class:`repro.traffic.ipspace.IPSpace`
(which flags a large share of the datacenter space and nothing else),
built with a fixed seed so results are reproducible.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from repro.core.alerts import AlertSet
from repro.detectors.base import Detector
from repro.logs.dataset import Dataset
from repro.logs.sessionization import Session
from repro.traffic.ipspace import IPSpace, prefix24


class IPReputationDetector(Detector):
    """Flag every request from a /24 prefix present on a reputation blocklist."""

    def __init__(
        self,
        blocklist: Iterable[str] | None = None,
        *,
        name: str = "ip-reputation",
        feed_seed: int = 99,
        min_requests_from_prefix: int = 1,
    ) -> None:
        self.name = name
        if blocklist is None:
            blocklist = IPSpace().reputation_blocklist(random.Random(feed_seed))
        self.blocklist = set(blocklist)
        if min_requests_from_prefix < 1:
            raise ValueError("min_requests_from_prefix must be at least 1")
        self.min_requests_from_prefix = min_requests_from_prefix

    def is_blocklisted(self, client_ip: str) -> bool:
        """True when the address's /24 prefix is on the blocklist."""
        return prefix24(client_ip) in self.blocklist

    def analyze(self, dataset: Dataset, *, sessions: Sequence[Session] | None = None) -> AlertSet:
        alert_set = AlertSet(self.name)
        if self.min_requests_from_prefix > 1:
            counts: dict[str, int] = {}
            for record in dataset:
                counts[prefix24(record.client_ip)] = counts.get(prefix24(record.client_ip), 0) + 1
        else:
            counts = {}
        for record in dataset:
            prefix = prefix24(record.client_ip)
            if prefix not in self.blocklist:
                continue
            if self.min_requests_from_prefix > 1 and counts.get(prefix, 0) < self.min_requests_from_prefix:
                continue
            alert_set.add(record.request_id, score=0.8, reasons=(f"IP prefix {prefix}.0/24 on reputation blocklist",))
        return alert_set
