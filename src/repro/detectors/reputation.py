"""IP-reputation detector.

Commercial bot-mitigation products consume threat-intelligence feeds that
flag hosting/datacenter ranges and known proxy exits.  The detector here
consumes a blocklist of /24 prefixes; by default the blocklist is the
simulated reputation feed from :class:`repro.traffic.ipspace.IPSpace`
(which flags a large share of the datacenter space and nothing else),
built with a fixed seed so results are reproducible.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.core.alerts import AlertSet
from repro.detectors.base import Detector
from repro.logs.dataset import Dataset
from repro.logs.sessionization import Session
from repro.traffic.ipspace import IPSpace, prefix24

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.columns import FeatureMatrix, FrameSessions, RecordFrame
    from repro.columns.alertframe import DetectorAlerts


class IPReputationDetector(Detector):
    """Flag every request from a /24 prefix present on a reputation blocklist."""

    def __init__(
        self,
        blocklist: Iterable[str] | None = None,
        *,
        name: str = "ip-reputation",
        feed_seed: int = 99,
        min_requests_from_prefix: int = 1,
    ) -> None:
        self.name = name
        if blocklist is None:
            blocklist = IPSpace().reputation_blocklist(random.Random(feed_seed))
        self.blocklist = set(blocklist)
        if min_requests_from_prefix < 1:
            raise ValueError("min_requests_from_prefix must be at least 1")
        self.min_requests_from_prefix = min_requests_from_prefix
        # With a prefix-count threshold the verdict depends on the
        # *global* count over a /24, and hash-sharding by full IP can
        # split a /24 across shards -- so only the default (threshold 1,
        # verdict per-IP pure) is safe to shard.
        self.frame_shardable = min_requests_from_prefix == 1

    def is_blocklisted(self, client_ip: str) -> bool:
        """True when the address's /24 prefix is on the blocklist."""
        return prefix24(client_ip) in self.blocklist

    def analyze(self, dataset: Dataset, *, sessions: Sequence[Session] | None = None) -> AlertSet:
        alert_set = AlertSet(self.name)
        if self.min_requests_from_prefix > 1:
            counts: dict[str, int] = {}
            for record in dataset:
                counts[prefix24(record.client_ip)] = counts.get(prefix24(record.client_ip), 0) + 1
        else:
            counts = {}
        for record in dataset:
            prefix = prefix24(record.client_ip)
            if prefix not in self.blocklist:
                continue
            if self.min_requests_from_prefix > 1 and counts.get(prefix, 0) < self.min_requests_from_prefix:
                continue
            alert_set.add(record.request_id, score=0.8, reasons=(f"IP prefix {prefix}.0/24 on reputation blocklist",))
        return alert_set

    def scored_columns(self, frame: "RecordFrame") -> dict[str, tuple[float, tuple[str, ...]]]:
        """Per-record ``{request_id: (score, reasons)}`` over a frame."""
        ips = frame.tables["client_ip"]
        prefixes = [prefix24(ip) for ip in ips]
        blocklisted = np.fromiter(
            (prefix in self.blocklist for prefix in prefixes), bool, len(ips)
        )
        ip_codes = frame.codes["client_ip"]
        flagged = blocklisted[ip_codes] if len(ips) else np.zeros(len(frame), dtype=bool)
        if self.min_requests_from_prefix > 1 and len(ips):
            # Request counts per distinct /24 prefix (the prefix table is
            # a second dictionary over the IP table).
            from repro.columns.frame import encode_column

            prefix_codes, prefix_table = encode_column(prefixes)
            per_prefix = np.bincount(
                prefix_codes[ip_codes].astype(np.intp), minlength=len(prefix_table)
            )
            flagged &= per_prefix[prefix_codes[ip_codes]] >= self.min_requests_from_prefix
        request_ids = frame.request_ids
        # One reason string per blocklisted prefix, shared by its records.
        reason_for = {
            prefix: (f"IP prefix {prefix}.0/24 on reputation blocklist",)
            for prefix, hit in zip(prefixes, blocklisted.tolist())
            if hit
        }
        ip_list = ip_codes.tolist()
        return {
            request_ids[row]: (0.8, reason_for[prefixes[ip_list[row]]])
            for row in np.flatnonzero(flagged).tolist()
        }

    def analyze_columns(
        self, frame: "RecordFrame", sessions: "FrameSessions", features: "FeatureMatrix"
    ) -> AlertSet:
        return AlertSet.from_scored(self.name, self.scored_columns(frame))

    # ------------------------------------------------------------------
    def alert_columns(
        self, frame: "RecordFrame", sessions: "FrameSessions", features: "FeatureMatrix"
    ) -> "DetectorAlerts":
        """Frame-native alert arrays: one blocklist probe per distinct IP."""
        from repro.columns.alertframe import DetectorAlerts, ReasonEncoder

        ips = frame.tables["client_ip"]
        alerts = DetectorAlerts.empty(self.name, len(frame))
        if not ips:
            return alerts
        prefixes = [prefix24(ip) for ip in ips]
        ip_flags = np.fromiter(
            (prefix in self.blocklist for prefix in prefixes), bool, len(ips)
        )
        ip_codes = frame.codes["client_ip"]
        if self.min_requests_from_prefix > 1:
            from repro.columns.frame import encode_column

            prefix_codes, prefix_table = encode_column(prefixes)
            per_prefix = np.bincount(
                prefix_codes[ip_codes].astype(np.intp), minlength=len(prefix_table)
            )
            ip_flags &= per_prefix[prefix_codes] >= self.min_requests_from_prefix
        encoder = ReasonEncoder()
        ip_reason_codes = np.fromiter(
            (
                encoder.code((f"IP prefix {prefix}.0/24 on reputation blocklist",))
                if hit
                else -1
                for prefix, hit in zip(prefixes, ip_flags.tolist())
            ),
            np.int64,
            len(ips),
        )
        flags = ip_flags[ip_codes]
        return DetectorAlerts(
            self.name,
            flags,
            np.where(flags, 0.8, 0.0),
            ip_reason_codes[ip_codes],
            encoder.table,
        )
