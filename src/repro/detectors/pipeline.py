"""Running several detectors over one data set.

The paper's setting is exactly this: multiple tools observing the same
traffic.  :class:`DetectionPipeline` sessionizes the data once, runs each
detector with the shared sessions and returns the per-detector alert sets
together with the assembled :class:`~repro.core.alerts.AlertMatrix`.

Two engines are available.  The default ``"columnar"`` engine converts
the data set into a :class:`~repro.columns.RecordFrame`, sessionizes it
with the vectorized group-by-visitor path and hands every detector the
shared frame / session-span / feature-matrix triple via
:meth:`~repro.detectors.base.Detector.analyze_columns`; detectors
without a columnar implementation transparently fall back to the record
path over sessions materialised once from the same spans.  The
``"records"`` engine is the legacy object pipeline.  Both produce
identical results -- the equivalence suite pins alert sets, scores and
reasons against each other -- the columnar engine is simply several
times faster.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.alerts import AlertMatrix, AlertSet
from repro.detectors.base import Detector
from repro.exceptions import DetectorError
from repro.logs.dataset import Dataset
from repro.logs.sessionization import Sessionizer

#: The batch execution engines of the pipeline.
ENGINES = ("columnar", "records")


@dataclass
class PipelineResult:
    """Everything produced by one pipeline run."""

    dataset: Dataset
    alert_sets: list[AlertSet]
    matrix: AlertMatrix
    timings: dict[str, float] = field(default_factory=dict)

    def alert_set(self, detector_name: str) -> AlertSet:
        """The alert set of one detector."""
        for alert_set in self.alert_sets:
            if alert_set.detector_name == detector_name:
                return alert_set
        raise DetectorError(f"no alert set for detector {detector_name!r}")


class DetectionPipeline:
    """Run a list of detectors over a data set with shared sessionization."""

    def __init__(self, detectors: Sequence[Detector], *, sessionizer: Sessionizer | None = None):
        if not detectors:
            raise DetectorError("a detection pipeline needs at least one detector")
        names = [detector.name for detector in detectors]
        if len(set(names)) != len(names):
            raise DetectorError(f"detector names must be unique, got {names}")
        self.detectors = list(detectors)
        self.sessionizer = sessionizer or Sessionizer()

    def run(self, dataset: Dataset, *, engine: str = "columnar") -> PipelineResult:
        """Run every detector and assemble the alert matrix.

        ``timings`` holds one entry per detector plus the shared
        ``"sessionization"`` step every detector's cost sits on top of
        (for the columnar engine this covers frame building and the
        vectorized group-by; the batched feature extraction is reported
        separately as ``"features"``).
        """
        if engine not in ENGINES:
            raise DetectorError(f"unknown pipeline engine {engine!r}; expected one of {ENGINES}")
        # A Sessionizer subclass may override sessionize() itself; the
        # vectorized group-by only reproduces the base behaviour, so
        # custom sessionizers keep the record engine.
        if engine == "columnar" and type(self.sessionizer) is Sessionizer:
            return self._run_columnar(dataset)
        return self._run_records(dataset)

    # ------------------------------------------------------------------
    def _run_records(self, dataset: Dataset) -> PipelineResult:
        timings: dict[str, float] = {}
        started = time.perf_counter()
        sessions = self.sessionizer.sessionize(dataset.records)
        timings["sessionization"] = time.perf_counter() - started
        alert_sets: list[AlertSet] = []
        for detector in self.detectors:
            started = time.perf_counter()
            alert_sets.append(detector.analyze(dataset, sessions=sessions))
            timings[detector.name] = time.perf_counter() - started
        matrix = AlertMatrix.from_alert_sets(dataset, alert_sets)
        return PipelineResult(dataset=dataset, alert_sets=alert_sets, matrix=matrix, timings=timings)

    def _run_columnar(self, dataset: Dataset) -> PipelineResult:
        from repro.columns import FeatureMatrix, RecordFrame, sessionize_frame

        timings: dict[str, float] = {}
        started = time.perf_counter()
        frame = RecordFrame.from_dataset(dataset)
        sessions = sessionize_frame(frame, timeout=self.sessionizer.timeout)
        timings["sessionization"] = time.perf_counter() - started

        started = time.perf_counter()
        features = FeatureMatrix.from_frame(frame, sessions)
        timings["features"] = time.perf_counter() - started

        legacy_sessions = None
        alert_sets: list[AlertSet] = []
        for detector in self.detectors:
            started = time.perf_counter()
            alerts = detector.analyze_columns(frame, sessions, features)
            if alerts is None:
                # Compatibility fallback: materialise Session objects once
                # (from the already-computed spans) for detectors that
                # only implement the record path.
                if legacy_sessions is None:
                    legacy_sessions = sessions.to_sessions(dataset.records)
                alerts = detector.analyze(dataset, sessions=legacy_sessions)
            alert_sets.append(alerts)
            timings[detector.name] = time.perf_counter() - started
        matrix = AlertMatrix.from_alert_sets(dataset, alert_sets)
        return PipelineResult(dataset=dataset, alert_sets=alert_sets, matrix=matrix, timings=timings)


def run_detectors(
    dataset: Dataset, detectors: Sequence[Detector], *, engine: str = "columnar"
) -> PipelineResult:
    """Convenience wrapper: ``DetectionPipeline(detectors).run(dataset)``."""
    return DetectionPipeline(detectors).run(dataset, engine=engine)
