"""Running several detectors over one data set.

The paper's setting is exactly this: multiple tools observing the same
traffic.  :class:`DetectionPipeline` sessionizes the data once, runs each
detector with the shared sessions and returns the per-detector alert sets
together with the assembled :class:`~repro.core.alerts.AlertMatrix`.

Two engines are available.  The default ``"columnar"`` engine converts
the data set into a :class:`~repro.columns.RecordFrame`, sessionizes it
with the vectorized group-by-visitor path and hands every detector the
shared frame / session-span / feature-matrix triple via
:meth:`~repro.detectors.base.Detector.analyze_columns`; detectors
without a columnar implementation transparently fall back to the record
path over sessions materialised once from the same spans.  The
``"records"`` engine is the legacy object pipeline.  Both produce
identical results -- the equivalence suite pins alert sets, scores and
reasons against each other -- the columnar engine is simply several
times faster.

Both engines report the same logical telemetry through an optional
:class:`~repro.obs.metrics.MetricsRegistry` (records ingested, sessions
opened/closed, per-detector alerts) so the metrics-equivalence suite can
hold them to identical counts, plus per-detector duration histograms and
spans for the shared stages.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.alerts import AlertMatrix, AlertSet
from repro.detectors.base import Detector
from repro.exceptions import DetectorError
from repro.logs.dataset import Dataset
from repro.logs.sessionization import Sessionizer
from repro.obs import names as metric_names
from repro.obs.metrics import MetricsRegistry, resolve_registry
from repro.obs.spans import trace_span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.columns import FrameSessions, RecordFrame
    from repro.columns.alertframe import AlertFrame, DetectorAlerts

#: The batch execution engines of the pipeline.
ENGINES = ("columnar", "records")


@dataclass
class PipelineResult:
    """Everything produced by one pipeline run."""

    dataset: Dataset
    alert_sets: list[AlertSet]
    matrix: AlertMatrix
    timings: dict[str, float] = field(default_factory=dict)

    def alert_set(self, detector_name: str) -> AlertSet:
        """The alert set of one detector."""
        for alert_set in self.alert_sets:
            if alert_set.detector_name == detector_name:
                return alert_set
        raise DetectorError(f"no alert set for detector {detector_name!r}")


@dataclass
class FramePipelineResult:
    """Everything produced by one frame-native pipeline run.

    No :class:`~repro.logs.dataset.Dataset` and no per-alert objects:
    the alerts live as columnar arrays in ``alert_frame`` and the matrix
    is stacked straight from them.  :meth:`alert_sets` bridges back to
    the dict path on demand (the equivalence oracle).
    """

    frame: "RecordFrame"
    alert_frame: "AlertFrame"
    matrix: AlertMatrix
    timings: dict[str, float] = field(default_factory=dict)

    def alert_sets(self) -> list[AlertSet]:
        """Dict-path views of the columnar alerts (built on demand)."""
        return self.alert_frame.to_alert_sets()


class DetectionPipeline:
    """Run a list of detectors over a data set with shared sessionization."""

    def __init__(
        self,
        detectors: Sequence[Detector],
        *,
        sessionizer: Sessionizer | None = None,
        registry: MetricsRegistry | None = None,
    ):
        if not detectors:
            raise DetectorError("a detection pipeline needs at least one detector")
        names = [detector.name for detector in detectors]
        if len(set(names)) != len(names):
            raise DetectorError(f"detector names must be unique, got {names}")
        self.detectors = list(detectors)
        self.sessionizer = sessionizer or Sessionizer()
        self.registry = resolve_registry(registry)

    def run(self, dataset: Dataset, *, engine: str = "columnar") -> PipelineResult:
        """Run every detector and assemble the alert matrix.

        ``timings`` holds one entry per detector plus the shared
        ``"sessionization"`` step every detector's cost sits on top of
        (for the columnar engine this covers frame building and the
        vectorized group-by; the batched feature extraction is reported
        separately as ``"features"``).
        """
        if engine not in ENGINES:
            raise DetectorError(f"unknown pipeline engine {engine!r}; expected one of {ENGINES}")
        # A Sessionizer subclass may override sessionize() itself; the
        # vectorized group-by only reproduces the base behaviour, so
        # custom sessionizers keep the record engine.
        if engine == "columnar" and type(self.sessionizer) is Sessionizer:
            return self._run_columnar(dataset)
        return self._run_records(dataset)

    # ------------------------------------------------------------------
    def _account_shared(self, record_count: int, session_count: int) -> None:
        """The logical events every engine must count identically."""
        registry = self.registry
        registry.counter(
            metric_names.RECORDS_INGESTED, "Records fed into a detection engine."
        ).inc(record_count)
        registry.counter(metric_names.SESSIONS_OPENED, "Visitor sessions opened.").inc(
            session_count
        )
        # Batch sessionization closes every session it opens.
        registry.counter(metric_names.SESSIONS_CLOSED, "Visitor sessions closed.").inc(
            session_count
        )

    def _account_detector(
        self, detector_name: str, path: str, alert_count: int, elapsed: float
    ) -> None:
        registry = self.registry
        registry.counter(
            metric_names.DETECTOR_RUNS, "Batch detector executions by code path."
        ).inc(detector=detector_name, path=path)
        registry.counter(
            metric_names.DETECTOR_ALERTS, "Requests alerted per detector."
        ).inc(alert_count, detector=detector_name)
        registry.histogram(
            metric_names.DETECTOR_SECONDS, "Batch per-detector analysis duration."
        ).observe(elapsed, detector=detector_name)

    def _account_matrix(self, alert_sets: Sequence[AlertSet]) -> None:
        alerted = set()
        for alert_set in alert_sets:
            alerted |= alert_set.request_ids()
        self._account_alerted(len(alerted))

    def _account_alerted(self, alerted_count: int) -> None:
        self.registry.counter(
            metric_names.ALERTED_REQUESTS,
            "Requests alerted by at least one detector (batch).",
        ).inc(alerted_count)

    # ------------------------------------------------------------------
    def _run_records(self, dataset: Dataset) -> PipelineResult:
        timings: dict[str, float] = {}
        with trace_span("sessionize", self.registry, engine="records") as span:
            started = time.perf_counter()
            sessions = self.sessionizer.sessionize(dataset.records)
            timings["sessionization"] = time.perf_counter() - started
            span.set_attribute(records=len(dataset.records), sessions=len(sessions))
        self._account_shared(len(dataset.records), len(sessions))
        alert_sets: list[AlertSet] = []
        with trace_span("detectors", self.registry, engine="records"):
            for detector in self.detectors:
                with trace_span("detector", self.registry, detector=detector.name):
                    started = time.perf_counter()
                    alerts = detector.analyze(dataset, sessions=sessions)
                    elapsed = time.perf_counter() - started
                alert_sets.append(alerts)
                timings[detector.name] = elapsed
                self._account_detector(detector.name, "records", len(alerts), elapsed)
        matrix = AlertMatrix.from_alert_sets(dataset, alert_sets)
        self._account_matrix(alert_sets)
        return PipelineResult(dataset=dataset, alert_sets=alert_sets, matrix=matrix, timings=timings)

    def _run_columnar(self, dataset: Dataset) -> PipelineResult:
        from repro.columns import FeatureMatrix, RecordFrame, sessionize_frame

        timings: dict[str, float] = {}
        with trace_span("sessionize", self.registry, engine="columnar") as span:
            started = time.perf_counter()
            frame = RecordFrame.from_dataset(dataset, registry=self.registry)
            sessions = sessionize_frame(
                frame, timeout=self.sessionizer.timeout, registry=self.registry
            )
            timings["sessionization"] = time.perf_counter() - started
            span.set_attribute(records=len(frame), sessions=len(sessions))
        self._account_shared(len(dataset.records), len(sessions))

        with trace_span("features", self.registry):
            started = time.perf_counter()
            features = FeatureMatrix.from_frame(frame, sessions, registry=self.registry)
            timings["features"] = time.perf_counter() - started

        legacy_sessions = None
        alert_sets: list[AlertSet] = []
        with trace_span("detectors", self.registry, engine="columnar"):
            for detector in self.detectors:
                with trace_span("detector", self.registry, detector=detector.name):
                    started = time.perf_counter()
                    alerts = detector.analyze_columns(frame, sessions, features)
                    path = "columnar"
                    if alerts is None:
                        # Compatibility fallback: materialise Session objects once
                        # (from the already-computed spans) for detectors that
                        # only implement the record path.
                        if legacy_sessions is None:
                            legacy_sessions = sessions.to_sessions(dataset.records)
                        alerts = detector.analyze(dataset, sessions=legacy_sessions)
                        path = "fallback"
                    elapsed = time.perf_counter() - started
                alert_sets.append(alerts)
                timings[detector.name] = elapsed
                self._account_detector(detector.name, path, len(alerts), elapsed)
        matrix = AlertMatrix.from_alert_sets(dataset, alert_sets)
        self._account_matrix(alert_sets)
        return PipelineResult(dataset=dataset, alert_sets=alert_sets, matrix=matrix, timings=timings)

    # ------------------------------------------------------------------
    # Frame-native execution (no Dataset, no per-alert objects)
    # ------------------------------------------------------------------
    def run_frame(self, frame: "RecordFrame", *, workers: int = 1) -> "FramePipelineResult":
        """Run every detector over a frame into columnar alert arrays.

        The frame may come straight from
        :meth:`~repro.trace.store.TraceReader.read_frame` -- no
        :class:`Dataset` is ever materialised unless a detector without
        any columnar implementation forces the record fallback.  With
        ``workers > 1`` (and every detector declaring
        ``frame_shardable``) the frame is hash-sharded by client IP
        across forked worker processes, mirroring the stream runner's
        visitor sharding, and the per-shard alert arrays are scattered
        back into frame-global arrays at join.
        """
        from repro.columns.alertframe import AlertFrame

        if type(self.sessionizer) is not Sessionizer:
            raise DetectorError(
                "the frame-native pipeline requires the base Sessionizer; "
                "custom sessionizers must use run(dataset, engine='records')"
            )
        if workers < 1:
            raise DetectorError("workers must be at least 1")
        shardable = all(detector.frame_shardable for detector in self.detectors)
        if workers > 1 and shardable and len(frame):
            detector_alerts, session_count, timings = self._run_frame_sharded(
                frame, workers
            )
        else:
            detector_alerts, session_count, timings = self._run_frame_single(frame)
        self._account_shared(len(frame), session_count)
        alert_frame = AlertFrame(frame, detector_alerts)
        matrix = AlertMatrix.from_alert_frame(alert_frame)
        union = (
            np.logical_or.reduce([alerts.flags for alerts in detector_alerts])
            if detector_alerts
            else np.zeros(len(frame), dtype=bool)
        )
        self._account_alerted(int(np.count_nonzero(union)))
        return FramePipelineResult(
            frame=frame, alert_frame=alert_frame, matrix=matrix, timings=timings
        )

    def _run_frame_single(
        self, frame: "RecordFrame"
    ) -> tuple[list["DetectorAlerts"], int, dict[str, float]]:
        from repro.columns import FeatureMatrix, sessionize_frame

        timings: dict[str, float] = {}
        with trace_span("sessionize", self.registry, engine="columnar") as span:
            started = time.perf_counter()
            sessions = sessionize_frame(
                frame, timeout=self.sessionizer.timeout, registry=self.registry
            )
            timings["sessionization"] = time.perf_counter() - started
            span.set_attribute(records=len(frame), sessions=len(sessions))
        with trace_span("features", self.registry):
            started = time.perf_counter()
            features = FeatureMatrix.from_frame(frame, sessions, registry=self.registry)
            timings["features"] = time.perf_counter() - started

        detector_alerts: list["DetectorAlerts"] = []
        materialised: dict[str, object] = {}
        with trace_span("detectors", self.registry, engine="columnar"):
            for detector in self.detectors:
                with trace_span("detector", self.registry, detector=detector.name):
                    started = time.perf_counter()
                    alerts, path = _frame_alerts_of(
                        detector, frame, sessions, features, materialised
                    )
                    elapsed = time.perf_counter() - started
                detector_alerts.append(alerts)
                timings[detector.name] = elapsed
                count = alerts.alert_count()
                self._account_detector(detector.name, path, count, elapsed)
                self.registry.counter(
                    metric_names.FRAME_ALERT_ROWS,
                    "Alerted rows in columnar alert frames.",
                ).inc(count, detector=detector.name)
        return detector_alerts, len(sessions), timings

    def _run_frame_sharded(
        self, frame: "RecordFrame", workers: int
    ) -> tuple[list["DetectorAlerts"], int, dict[str, float]]:
        from repro.columns.alertframe import DetectorAlerts, ReasonEncoder

        # Reuse the stream runner's visitor hash so batch shards and
        # stream shards agree on placement (the import is deferred to
        # keep the detector layer import-independent of the stream one).
        from repro.stream.runner import shard_of

        global _FRAME_SHARD_STATE
        timings: dict[str, float] = {}
        ips = frame.tables["client_ip"]
        per_ip_shard = np.fromiter(
            (shard_of(ip, workers) for ip in ips), np.int64, len(ips)
        )
        row_shard = per_ip_shard[frame.codes["client_ip"]]
        shard_rows = [np.flatnonzero(row_shard == index) for index in range(workers)]
        for index, rows in enumerate(shard_rows):
            self.registry.counter(
                metric_names.FRAME_SHARD_ROWS,
                "Rows assigned to each batch frame shard.",
            ).inc(len(rows), shard=str(index))

        with trace_span("shards", self.registry, workers=workers) as span:
            started = time.perf_counter()
            _FRAME_SHARD_STATE = (
                frame,
                shard_rows,
                self.detectors,
                self.sessionizer.timeout,
            )
            try:
                try:
                    import multiprocessing

                    context = multiprocessing.get_context("fork")
                    with context.Pool(processes=workers) as pool:
                        shard_results = pool.map(_run_frame_shard, range(workers))
                except (ValueError, ImportError, OSError):
                    # No fork on this platform: degrade to in-process
                    # shard execution (same arrays, same merge).
                    shard_results = [_run_frame_shard(index) for index in range(workers)]
            finally:
                _FRAME_SHARD_STATE = None
            timings["shards"] = time.perf_counter() - started
            span.set_attribute(records=len(frame))

        session_count = sum(count for count, _ in shard_results)
        # The children could not reach this registry: account the
        # columnar substrate events (sessions, feature rows) here so a
        # sharded run reports the same counts as a single-process one.
        self.registry.counter(
            metric_names.FRAME_SESSIONS,
            "Session spans produced by vectorized sessionization.",
        ).inc(session_count)
        self.registry.counter(
            metric_names.FEATURE_ROWS, "Feature-matrix rows (sessions) computed."
        ).inc(session_count)

        with trace_span("merge", self.registry) as span:
            started = time.perf_counter()
            merged: list[DetectorAlerts] = []
            for position, detector in enumerate(self.detectors):
                alerts = DetectorAlerts.empty(detector.name, len(frame))
                encoder = ReasonEncoder()
                elapsed = 0.0
                path = "columnar"
                for shard_index, (_, per_detector) in enumerate(shard_results):
                    flags, scores, codes, table, shard_path, shard_elapsed = per_detector[
                        position
                    ]
                    alerts.scatter(
                        shard_rows[shard_index],
                        DetectorAlerts(detector.name, flags, scores, codes, table),
                        encoder,
                    )
                    elapsed += shard_elapsed
                    if shard_path == "fallback":
                        path = "fallback"
                merged.append(alerts)
                timings[detector.name] = elapsed
                count = alerts.alert_count()
                self._account_detector(detector.name, path, count, elapsed)
                self.registry.counter(
                    metric_names.FRAME_ALERT_ROWS,
                    "Alerted rows in columnar alert frames.",
                ).inc(count, detector=detector.name)
            timings["merge"] = time.perf_counter() - started
            span.set_attribute(detectors=len(merged))
        return merged, session_count, timings


#: ``(frame, shard row arrays, detectors, session timeout)`` shared with
#: forked shard workers through copy-on-write memory -- set immediately
#: before the fork, cleared at join (the stream runner's pattern).
_FRAME_SHARD_STATE: tuple | None = None


def _run_frame_shard(index: int):
    """Run every detector over one shard (executes in a worker process)."""
    assert _FRAME_SHARD_STATE is not None
    frame, shard_rows, detectors, timeout = _FRAME_SHARD_STATE
    from repro.columns import FeatureMatrix, sessionize_frame
    from repro.columns.alertframe import DetectorAlerts

    rows = shard_rows[index]
    if not len(rows):
        empty = [
            (alerts.flags, alerts.scores, alerts.reason_codes, alerts.reason_table, "columnar", 0.0)
            for alerts in (DetectorAlerts.empty(d.name, 0) for d in detectors)
        ]
        return 0, empty
    sub = frame.take(rows)
    sessions = sessionize_frame(sub, timeout=timeout)
    features = FeatureMatrix.from_frame(sub, sessions)
    materialised: dict[str, object] = {}
    out = []
    for detector in detectors:
        started = time.perf_counter()
        alerts, path = _frame_alerts_of(detector, sub, sessions, features, materialised)
        elapsed = time.perf_counter() - started
        out.append(
            (alerts.flags, alerts.scores, alerts.reason_codes, alerts.reason_table, path, elapsed)
        )
    return len(sessions), out


def _frame_alerts_of(
    detector: Detector,
    frame: "RecordFrame",
    sessions: "FrameSessions",
    features,
    materialised: dict,
) -> tuple["DetectorAlerts", str]:
    """One detector's columnar alerts, via the three-step fallback chain.

    ``alert_columns`` (native arrays) -> ``analyze_columns`` (dict-path
    alert set, bridged into arrays) -> ``analyze`` over records
    materialised from the frame exactly once (shared via
    ``materialised`` across detectors).
    """
    from repro.columns.alertframe import DetectorAlerts

    alerts = detector.alert_columns(frame, sessions, features)
    if alerts is not None:
        return alerts, "columnar"
    alert_set = detector.analyze_columns(frame, sessions, features)
    if alert_set is not None:
        return DetectorAlerts.from_alert_set(frame, alert_set), "columnar"
    dataset = materialised.get("dataset")
    if dataset is None:
        dataset = frame.to_dataset()
        materialised["dataset"] = dataset
        materialised["sessions"] = sessions.to_sessions(dataset.records)
    alert_set = detector.analyze(dataset, sessions=materialised["sessions"])
    return DetectorAlerts.from_alert_set(frame, alert_set), "fallback"


def run_detectors(
    dataset: Dataset,
    detectors: Sequence[Detector],
    *,
    engine: str = "columnar",
    registry: MetricsRegistry | None = None,
) -> PipelineResult:
    """Convenience wrapper: ``DetectionPipeline(detectors).run(dataset)``."""
    return DetectionPipeline(detectors, registry=registry).run(dataset, engine=engine)
