"""Running several detectors over one data set.

The paper's setting is exactly this: multiple tools observing the same
traffic.  :class:`DetectionPipeline` sessionizes the data once, runs each
detector with the shared sessions and returns the per-detector alert sets
together with the assembled :class:`~repro.core.alerts.AlertMatrix`.

Two engines are available.  The default ``"columnar"`` engine converts
the data set into a :class:`~repro.columns.RecordFrame`, sessionizes it
with the vectorized group-by-visitor path and hands every detector the
shared frame / session-span / feature-matrix triple via
:meth:`~repro.detectors.base.Detector.analyze_columns`; detectors
without a columnar implementation transparently fall back to the record
path over sessions materialised once from the same spans.  The
``"records"`` engine is the legacy object pipeline.  Both produce
identical results -- the equivalence suite pins alert sets, scores and
reasons against each other -- the columnar engine is simply several
times faster.

Both engines report the same logical telemetry through an optional
:class:`~repro.obs.metrics.MetricsRegistry` (records ingested, sessions
opened/closed, per-detector alerts) so the metrics-equivalence suite can
hold them to identical counts, plus per-detector duration histograms and
spans for the shared stages.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.alerts import AlertMatrix, AlertSet
from repro.detectors.base import Detector
from repro.exceptions import DetectorError
from repro.logs.dataset import Dataset
from repro.logs.sessionization import Sessionizer
from repro.obs import names as metric_names
from repro.obs.metrics import MetricsRegistry, resolve_registry
from repro.obs.spans import trace_span

#: The batch execution engines of the pipeline.
ENGINES = ("columnar", "records")


@dataclass
class PipelineResult:
    """Everything produced by one pipeline run."""

    dataset: Dataset
    alert_sets: list[AlertSet]
    matrix: AlertMatrix
    timings: dict[str, float] = field(default_factory=dict)

    def alert_set(self, detector_name: str) -> AlertSet:
        """The alert set of one detector."""
        for alert_set in self.alert_sets:
            if alert_set.detector_name == detector_name:
                return alert_set
        raise DetectorError(f"no alert set for detector {detector_name!r}")


class DetectionPipeline:
    """Run a list of detectors over a data set with shared sessionization."""

    def __init__(
        self,
        detectors: Sequence[Detector],
        *,
        sessionizer: Sessionizer | None = None,
        registry: MetricsRegistry | None = None,
    ):
        if not detectors:
            raise DetectorError("a detection pipeline needs at least one detector")
        names = [detector.name for detector in detectors]
        if len(set(names)) != len(names):
            raise DetectorError(f"detector names must be unique, got {names}")
        self.detectors = list(detectors)
        self.sessionizer = sessionizer or Sessionizer()
        self.registry = resolve_registry(registry)

    def run(self, dataset: Dataset, *, engine: str = "columnar") -> PipelineResult:
        """Run every detector and assemble the alert matrix.

        ``timings`` holds one entry per detector plus the shared
        ``"sessionization"`` step every detector's cost sits on top of
        (for the columnar engine this covers frame building and the
        vectorized group-by; the batched feature extraction is reported
        separately as ``"features"``).
        """
        if engine not in ENGINES:
            raise DetectorError(f"unknown pipeline engine {engine!r}; expected one of {ENGINES}")
        # A Sessionizer subclass may override sessionize() itself; the
        # vectorized group-by only reproduces the base behaviour, so
        # custom sessionizers keep the record engine.
        if engine == "columnar" and type(self.sessionizer) is Sessionizer:
            return self._run_columnar(dataset)
        return self._run_records(dataset)

    # ------------------------------------------------------------------
    def _account_shared(self, dataset: Dataset, session_count: int) -> None:
        """The logical events both engines must count identically."""
        registry = self.registry
        registry.counter(
            metric_names.RECORDS_INGESTED, "Records fed into a detection engine."
        ).inc(len(dataset.records))
        registry.counter(metric_names.SESSIONS_OPENED, "Visitor sessions opened.").inc(
            session_count
        )
        # Batch sessionization closes every session it opens.
        registry.counter(metric_names.SESSIONS_CLOSED, "Visitor sessions closed.").inc(
            session_count
        )

    def _account_detector(
        self, detector_name: str, path: str, alerts: AlertSet, elapsed: float
    ) -> None:
        registry = self.registry
        registry.counter(
            metric_names.DETECTOR_RUNS, "Batch detector executions by code path."
        ).inc(detector=detector_name, path=path)
        registry.counter(
            metric_names.DETECTOR_ALERTS, "Requests alerted per detector."
        ).inc(len(alerts), detector=detector_name)
        registry.histogram(
            metric_names.DETECTOR_SECONDS, "Batch per-detector analysis duration."
        ).observe(elapsed, detector=detector_name)

    def _account_matrix(self, alert_sets: Sequence[AlertSet]) -> None:
        alerted = set()
        for alert_set in alert_sets:
            alerted |= alert_set.request_ids()
        self.registry.counter(
            metric_names.ALERTED_REQUESTS,
            "Requests alerted by at least one detector (batch).",
        ).inc(len(alerted))

    # ------------------------------------------------------------------
    def _run_records(self, dataset: Dataset) -> PipelineResult:
        timings: dict[str, float] = {}
        with trace_span("sessionize", self.registry, engine="records") as span:
            started = time.perf_counter()
            sessions = self.sessionizer.sessionize(dataset.records)
            timings["sessionization"] = time.perf_counter() - started
            span.set_attribute(records=len(dataset.records), sessions=len(sessions))
        self._account_shared(dataset, len(sessions))
        alert_sets: list[AlertSet] = []
        with trace_span("detectors", self.registry, engine="records"):
            for detector in self.detectors:
                with trace_span("detector", self.registry, detector=detector.name):
                    started = time.perf_counter()
                    alerts = detector.analyze(dataset, sessions=sessions)
                    elapsed = time.perf_counter() - started
                alert_sets.append(alerts)
                timings[detector.name] = elapsed
                self._account_detector(detector.name, "records", alerts, elapsed)
        matrix = AlertMatrix.from_alert_sets(dataset, alert_sets)
        self._account_matrix(alert_sets)
        return PipelineResult(dataset=dataset, alert_sets=alert_sets, matrix=matrix, timings=timings)

    def _run_columnar(self, dataset: Dataset) -> PipelineResult:
        from repro.columns import FeatureMatrix, RecordFrame, sessionize_frame

        timings: dict[str, float] = {}
        with trace_span("sessionize", self.registry, engine="columnar") as span:
            started = time.perf_counter()
            frame = RecordFrame.from_dataset(dataset, registry=self.registry)
            sessions = sessionize_frame(
                frame, timeout=self.sessionizer.timeout, registry=self.registry
            )
            timings["sessionization"] = time.perf_counter() - started
            span.set_attribute(records=len(frame), sessions=len(sessions))
        self._account_shared(dataset, len(sessions))

        with trace_span("features", self.registry):
            started = time.perf_counter()
            features = FeatureMatrix.from_frame(frame, sessions, registry=self.registry)
            timings["features"] = time.perf_counter() - started

        legacy_sessions = None
        alert_sets: list[AlertSet] = []
        with trace_span("detectors", self.registry, engine="columnar"):
            for detector in self.detectors:
                with trace_span("detector", self.registry, detector=detector.name):
                    started = time.perf_counter()
                    alerts = detector.analyze_columns(frame, sessions, features)
                    path = "columnar"
                    if alerts is None:
                        # Compatibility fallback: materialise Session objects once
                        # (from the already-computed spans) for detectors that
                        # only implement the record path.
                        if legacy_sessions is None:
                            legacy_sessions = sessions.to_sessions(dataset.records)
                        alerts = detector.analyze(dataset, sessions=legacy_sessions)
                        path = "fallback"
                    elapsed = time.perf_counter() - started
                alert_sets.append(alerts)
                timings[detector.name] = elapsed
                self._account_detector(detector.name, path, alerts, elapsed)
        matrix = AlertMatrix.from_alert_sets(dataset, alert_sets)
        self._account_matrix(alert_sets)
        return PipelineResult(dataset=dataset, alert_sets=alert_sets, matrix=matrix, timings=timings)


def run_detectors(
    dataset: Dataset,
    detectors: Sequence[Detector],
    *,
    engine: str = "columnar",
    registry: MetricsRegistry | None = None,
) -> PipelineResult:
    """Convenience wrapper: ``DetectionPipeline(detectors).run(dataset)``."""
    return DetectionPipeline(detectors, registry=registry).run(dataset, engine=engine)
