"""Running several detectors over one data set.

The paper's setting is exactly this: multiple tools observing the same
traffic.  :class:`DetectionPipeline` sessionizes the data once, runs each
detector with the shared sessions and returns the per-detector alert sets
together with the assembled :class:`~repro.core.alerts.AlertMatrix`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.alerts import AlertMatrix, AlertSet
from repro.detectors.base import Detector
from repro.exceptions import DetectorError
from repro.logs.dataset import Dataset
from repro.logs.sessionization import Sessionizer


@dataclass
class PipelineResult:
    """Everything produced by one pipeline run."""

    dataset: Dataset
    alert_sets: list[AlertSet]
    matrix: AlertMatrix
    timings: dict[str, float] = field(default_factory=dict)

    def alert_set(self, detector_name: str) -> AlertSet:
        """The alert set of one detector."""
        for alert_set in self.alert_sets:
            if alert_set.detector_name == detector_name:
                return alert_set
        raise DetectorError(f"no alert set for detector {detector_name!r}")


class DetectionPipeline:
    """Run a list of detectors over a data set with shared sessionization."""

    def __init__(self, detectors: Sequence[Detector], *, sessionizer: Sessionizer | None = None):
        if not detectors:
            raise DetectorError("a detection pipeline needs at least one detector")
        names = [detector.name for detector in detectors]
        if len(set(names)) != len(names):
            raise DetectorError(f"detector names must be unique, got {names}")
        self.detectors = list(detectors)
        self.sessionizer = sessionizer or Sessionizer()

    def run(self, dataset: Dataset) -> PipelineResult:
        """Run every detector and assemble the alert matrix.

        ``timings`` holds one entry per detector plus the shared
        ``"sessionization"`` step every detector's cost sits on top of.
        """
        timings: dict[str, float] = {}
        started = time.perf_counter()
        sessions = self.sessionizer.sessionize(dataset.records)
        timings["sessionization"] = time.perf_counter() - started
        alert_sets: list[AlertSet] = []
        for detector in self.detectors:
            started = time.perf_counter()
            alert_sets.append(detector.analyze(dataset, sessions=sessions))
            timings[detector.name] = time.perf_counter() - started
        matrix = AlertMatrix.from_alert_sets(dataset, alert_sets)
        return PipelineResult(dataset=dataset, alert_sets=alert_sets, matrix=matrix, timings=timings)


def run_detectors(dataset: Dataset, detectors: Sequence[Detector]) -> PipelineResult:
    """Convenience wrapper: ``DetectionPipeline(detectors).run(dataset)``."""
    return DetectionPipeline(detectors).run(dataset)
