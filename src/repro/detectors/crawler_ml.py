"""Decision-tree crawler classifier.

Follows the data-mining approach to crawler detection (Stevanovic et al.
2012): learn a decision tree over session features.  The detector can be
used in two modes:

* **self-trained** (default): pseudo-labels from unambiguous indicators
  train the tree, exactly as an operations team would bootstrap a model
  without labelled traffic;
* **supervised**: callers may pass explicit training data via
  :meth:`fit`, which the labelled extension experiments use to study an
  oracle-trained ensemble member.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.alerts import AlertSet
from repro.detectors.base import Detector
from repro.detectors.features import extract_features, feature_matrix
from repro.detectors.pseudolabels import (
    PseudoLabelConfig,
    pseudo_label_matrix,
    pseudo_label_sessions,
)
from repro.logs.dataset import Dataset
from repro.logs.sessionization import Session, Sessionizer
from repro.ml.decision_tree import DecisionTreeClassifier

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.columns import FeatureMatrix, FrameSessions, RecordFrame


class CrawlerDecisionTreeDetector(Detector):
    """Session classifier built on the from-scratch CART tree."""

    #: The frame pipeline bridges the dict-path alert set into arrays;
    #: model scoring has no array-native formulation worth maintaining.
    frame_fallback = True

    def __init__(
        self,
        *,
        name: str = "decision-tree",
        alert_probability: float = 0.6,
        max_depth: int = 6,
        min_leaf: int = 5,
        pseudo_label_config: PseudoLabelConfig | None = None,
        sessionizer: Sessionizer | None = None,
    ) -> None:
        if not 0.0 < alert_probability < 1.0:
            raise ValueError("alert_probability must be in (0, 1)")
        self.name = name
        self.alert_probability = alert_probability
        self.max_depth = max_depth
        self.min_leaf = min_leaf
        self.pseudo_label_config = pseudo_label_config
        self.sessionizer = sessionizer or Sessionizer()
        self.model: DecisionTreeClassifier | None = None
        self._externally_trained = False

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "CrawlerDecisionTreeDetector":
        """Train the tree on explicit ``(features, labels)`` data (supervised mode)."""
        self.model = DecisionTreeClassifier(max_depth=self.max_depth, min_leaf=self.min_leaf)
        self.model.fit(X, y)
        self._externally_trained = True
        return self

    # ------------------------------------------------------------------
    def analyze(self, dataset: Dataset, *, sessions: Sequence[Session] | None = None) -> AlertSet:
        alert_set = AlertSet(self.name)
        if sessions is None:
            sessions = self.sessionizer.sessionize(dataset.records)
        if not sessions:
            return alert_set

        matrix = feature_matrix(list(sessions))

        if not self._externally_trained:
            feature_list = [extract_features(session) for session in sessions]
            indices, labels = pseudo_label_sessions(feature_list, self.pseudo_label_config)
            if indices.size == 0 or np.unique(labels).size < 2:
                # Nothing confident to train on; stay silent rather than guess.
                return alert_set
            # Shrink the leaf-size floor on tiny pseudo-labelled populations so
            # the tree can still form one split per class.
            effective_min_leaf = max(1, min(self.min_leaf, int(indices.size) // 4))
            self.model = DecisionTreeClassifier(max_depth=self.max_depth, min_leaf=effective_min_leaf)
            self.model.fit(matrix[indices], labels)

        assert self.model is not None
        probabilities = self.model.predict_proba(matrix)
        for session, probability in zip(sessions, probabilities):
            if probability < self.alert_probability:
                continue
            for request_id in session.request_ids():
                alert_set.add(
                    request_id,
                    score=float(probability),
                    reasons=(f"decision tree bot probability {probability:.2f}",),
                )
        return alert_set

    # ------------------------------------------------------------------
    def analyze_columns(
        self, frame: "RecordFrame", sessions: "FrameSessions", features: "FeatureMatrix"
    ) -> AlertSet:
        alert_set = AlertSet(self.name)
        if len(features) == 0:
            return alert_set

        matrix = features.values

        if not self._externally_trained:
            indices, labels = pseudo_label_matrix(features, self.pseudo_label_config)
            if indices.size == 0 or np.unique(labels).size < 2:
                # Nothing confident to train on; stay silent rather than guess.
                return alert_set
            effective_min_leaf = max(1, min(self.min_leaf, int(indices.size) // 4))
            self.model = DecisionTreeClassifier(max_depth=self.max_depth, min_leaf=effective_min_leaf)
            self.model.fit(matrix[indices], labels)

        assert self.model is not None
        probabilities = self.model.predict_proba(matrix)
        request_ids = frame.request_ids
        order, starts = sessions.order, sessions.starts
        for index in np.flatnonzero(probabilities >= self.alert_probability).tolist():
            probability = float(probabilities[index])
            alert_set.add_many(
                (request_ids[row] for row in order[starts[index] : starts[index + 1]]),
                score=probability,
                reasons=(f"decision tree bot probability {probability:.2f}",),
            )
        return alert_set
