"""Pairwise diversity metrics.

The paper reports raw agreement counts; the diversity literature it cites
(Littlewood & Strigini 2004; Garcia et al. 2014; Bishop et al. 2011)
quantifies diversity with pairwise statistics over the same 2x2
contingency table.  This module implements the standard set:

* Cohen's kappa (chance-corrected agreement),
* Yule's Q statistic,
* the phi/correlation coefficient,
* the disagreement measure,
* the double-fault measure (requires ground truth), and
* the entropy of the joint alerting behaviour.

All pairwise metrics are computed from a
:class:`~repro.core.diversity.DiversityBreakdown`, so they apply equally
to labelled and unlabelled data (except the double-fault measure, which
needs labels).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.alerts import AlertMatrix
from repro.core.diversity import DiversityBreakdown, diversity_breakdown
from repro.exceptions import AnalysisError
from repro.logs.dataset import Dataset


# ----------------------------------------------------------------------
# Individual metrics
# ----------------------------------------------------------------------
def cohens_kappa(breakdown: DiversityBreakdown) -> float:
    """Chance-corrected agreement between the two detectors.

    1.0 means perfect agreement, 0.0 means agreement at chance level and
    negative values mean systematic disagreement.
    """
    n = breakdown.total
    if n == 0:
        return 1.0
    observed = breakdown.agreement / n
    p_first = breakdown.first_total / n
    p_second = breakdown.second_total / n
    expected = p_first * p_second + (1 - p_first) * (1 - p_second)
    if math.isclose(expected, 1.0):
        return 1.0
    return (observed - expected) / (1 - expected)


def yules_q(breakdown: DiversityBreakdown) -> float:
    """Yule's Q statistic over the 2x2 alerting table.

    +1 when the detectors always alert together, -1 when they never do,
    0 when their alerts are independent.  When any cell is zero the
    statistic degenerates; a continuity correction of 0.5 is applied in
    that case, which is the usual practice.
    """
    a = float(breakdown.both)
    b = float(breakdown.first_only)
    c = float(breakdown.second_only)
    d = float(breakdown.neither)
    if min(a, b, c, d) == 0:
        a, b, c, d = a + 0.5, b + 0.5, c + 0.5, d + 0.5
    return (a * d - b * c) / (a * d + b * c)


def correlation_coefficient(breakdown: DiversityBreakdown) -> float:
    """The phi (Pearson) correlation of the two binary alert vectors."""
    a, b, c, d = breakdown.both, breakdown.first_only, breakdown.second_only, breakdown.neither
    denominator = math.sqrt((a + b) * (c + d) * (a + c) * (b + d))
    if denominator == 0:
        return 0.0
    return (a * d - b * c) / denominator


def disagreement_measure(breakdown: DiversityBreakdown) -> float:
    """Fraction of requests on which exactly one detector alerts."""
    if breakdown.total == 0:
        return 0.0
    return breakdown.disagreement / breakdown.total


def entropy_measure(breakdown: DiversityBreakdown) -> float:
    """Shannon entropy (bits) of the joint alerting outcome distribution.

    Maximal (2 bits) when the four outcomes are equally likely, 0 when the
    detectors always produce the same single outcome.
    """
    n = breakdown.total
    if n == 0:
        return 0.0
    entropy = 0.0
    for count in (breakdown.both, breakdown.neither, breakdown.first_only, breakdown.second_only):
        if count == 0:
            continue
        p = count / n
        entropy -= p * math.log2(p)
    return entropy


def double_fault_measure(matrix: AlertMatrix, dataset: Dataset, first: str, second: str) -> float:
    """Fraction of *malicious* requests missed by both detectors.

    This is the classic double-fault diversity measure: low values mean
    the detectors rarely fail together, which is precisely when combining
    them pays off.  Requires ground-truth labels.
    """
    truth = dataset.require_labels()
    malicious = [rid for rid in matrix.request_ids if truth.is_malicious(rid)]
    if not malicious:
        raise AnalysisError("double-fault measure needs at least one malicious request")
    first_alerted = matrix.alerted_by(first)
    second_alerted = matrix.alerted_by(second)
    both_missed = sum(1 for rid in malicious if rid not in first_alerted and rid not in second_alerted)
    return both_missed / len(malicious)


# ----------------------------------------------------------------------
# Aggregate view
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PairwiseDiversity:
    """All pairwise metrics for one detector pair."""

    first_detector: str
    second_detector: str
    breakdown: DiversityBreakdown
    kappa: float
    q_statistic: float
    correlation: float
    disagreement: float
    entropy: float
    double_fault: float | None = None

    def as_dict(self) -> dict[str, float]:
        """The metric values keyed by name."""
        values = {
            "kappa": self.kappa,
            "q_statistic": self.q_statistic,
            "correlation": self.correlation,
            "disagreement": self.disagreement,
            "entropy": self.entropy,
        }
        if self.double_fault is not None:
            values["double_fault"] = self.double_fault
        return values


def pairwise_diversity(
    matrix: AlertMatrix,
    first: str,
    second: str,
    *,
    dataset: Dataset | None = None,
) -> PairwiseDiversity:
    """Compute every pairwise metric for two detectors.

    The double-fault measure is included when a labelled ``dataset`` is
    supplied.
    """
    breakdown = diversity_breakdown(matrix, first, second)
    double_fault = None
    if dataset is not None and dataset.is_labelled:
        double_fault = double_fault_measure(matrix, dataset, first, second)
    return PairwiseDiversity(
        first_detector=first,
        second_detector=second,
        breakdown=breakdown,
        kappa=cohens_kappa(breakdown),
        q_statistic=yules_q(breakdown),
        correlation=correlation_coefficient(breakdown),
        disagreement=disagreement_measure(breakdown),
        entropy=entropy_measure(breakdown),
        double_fault=double_fault,
    )


def all_pairwise_diversity(matrix: AlertMatrix, *, dataset: Dataset | None = None) -> list[PairwiseDiversity]:
    """Pairwise metrics for every detector pair in the matrix."""
    names = matrix.detector_names
    results = []
    for i, first in enumerate(names):
        for second in names[i + 1 :]:
            results.append(pairwise_diversity(matrix, first, second, dataset=dataset))
    return results


def mean_pairwise_disagreement(matrix: AlertMatrix) -> float:
    """Average disagreement over all detector pairs (an ensemble-level summary)."""
    pairs = all_pairwise_diversity(matrix)
    if not pairs:
        return 0.0
    return float(np.mean([pair.disagreement for pair in pairs]))
