"""Operating-point sweeps for threshold-based detectors.

The paper frames the value of diversity in terms of false-positive /
false-negative trade-offs.  Individual detectors have the same trade-off
internally: a rule threshold or behavioural score cut-off moves them along
a sensitivity/specificity curve.  This module sweeps such thresholds,
producing ROC-style operating-point curves that can be compared against
what adjudicating *diverse* detectors achieves -- the quantitative version
of "is combining two tools better than tuning one?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.confusion import ConfusionMatrix
from repro.detectors.base import Detector
from repro.exceptions import AnalysisError
from repro.logs.dataset import Dataset


@dataclass(frozen=True)
class OperatingPoint:
    """One point of a threshold sweep."""

    parameter: float
    confusion: ConfusionMatrix

    @property
    def sensitivity(self) -> float:
        """True-positive rate at this threshold."""
        return self.confusion.sensitivity()

    @property
    def specificity(self) -> float:
        """True-negative rate at this threshold."""
        return self.confusion.specificity()

    @property
    def false_positive_rate(self) -> float:
        """1 - specificity (the ROC x-axis)."""
        return self.confusion.false_positive_rate()


@dataclass(frozen=True)
class SweepResult:
    """All operating points of one sweep, in parameter order."""

    detector_name: str
    parameter_name: str
    points: tuple[OperatingPoint, ...]

    def best_by_f1(self) -> OperatingPoint:
        """The operating point with the highest F1 score."""
        if not self.points:
            raise AnalysisError("the sweep produced no operating points")
        return max(self.points, key=lambda point: point.confusion.f1_score())

    def roc_points(self) -> list[tuple[float, float]]:
        """(false-positive rate, sensitivity) pairs sorted by FPR."""
        pairs = [(point.false_positive_rate, point.sensitivity) for point in self.points]
        return sorted(pairs)

    def auc(self) -> float:
        """Area under the ROC curve (trapezoidal, anchored at (0,0) and (1,1))."""
        pairs = self.roc_points()
        xs = [0.0] + [x for x, _ in pairs] + [1.0]
        ys = [0.0] + [y for _, y in pairs] + [1.0]
        order = np.argsort(xs)
        xs_arr = np.array(xs)[order]
        ys_arr = np.array(ys)[order]
        return float(np.trapezoid(ys_arr, xs_arr))


def sweep_detector(
    dataset: Dataset,
    detector_factory: Callable[[float], Detector],
    parameters: Sequence[float],
    *,
    parameter_name: str = "threshold",
) -> SweepResult:
    """Evaluate a detector at several parameter values against the ground truth.

    Parameters
    ----------
    dataset:
        A labelled data set.
    detector_factory:
        Callable building a detector for a given parameter value, e.g.
        ``lambda t: RateLimitDetector(threshold_rpm=t)``.
    parameters:
        The parameter values to sweep.
    """
    if not parameters:
        raise AnalysisError("a sweep needs at least one parameter value")
    dataset.require_labels()
    points = []
    detector_name = ""
    for value in parameters:
        detector = detector_factory(value)
        detector_name = detector.name
        alerts = detector.analyze(dataset)
        confusion = ConfusionMatrix.from_alerts(dataset, alerts)
        points.append(OperatingPoint(parameter=float(value), confusion=confusion))
    return SweepResult(detector_name=detector_name, parameter_name=parameter_name, points=tuple(points))


def compare_sweep_to_ensemble(sweep: SweepResult, ensemble_confusion: ConfusionMatrix) -> dict[str, float]:
    """Compare the best single-detector operating point with an ensemble's.

    Returns the sensitivity/specificity of both, plus the deltas -- the
    quantitative answer to "does combining diverse tools beat tuning one
    tool's threshold?".
    """
    best = sweep.best_by_f1()
    return {
        "best_single_parameter": best.parameter,
        "best_single_sensitivity": best.sensitivity,
        "best_single_specificity": best.specificity,
        "ensemble_sensitivity": ensemble_confusion.sensitivity(),
        "ensemble_specificity": ensemble_confusion.specificity(),
        "sensitivity_gain": ensemble_confusion.sensitivity() - best.sensitivity,
        "specificity_gain": ensemble_confusion.specificity() - best.specificity,
    }
