"""Diversity analysis core -- the paper's primary contribution.

This package implements the analysis the paper performs on the alerts of
two (or more) scraping detectors observing the same HTTP traffic:

* :mod:`repro.core.alerts` -- alerts, per-detector alert sets and the
  request x detector alert matrix.
* :mod:`repro.core.diversity` -- the both/neither/only-one breakdown of
  Table 2, generalised to N detectors.
* :mod:`repro.core.breakdown` -- per-dimension (HTTP status, day, method)
  breakdowns of alerted requests (Tables 3 and 4).
* :mod:`repro.core.metrics` -- pairwise diversity measures (Cohen's kappa,
  Yule's Q, disagreement, double-fault, entropy).
* :mod:`repro.core.adjudication` -- 1-out-of-N / k-out-of-N / weighted
  adjudication schemes over detector ensembles.
* :mod:`repro.core.confusion` -- confusion matrices and derived rates.
* :mod:`repro.core.evaluation` -- labelled evaluation of detectors and
  adjudicated ensembles.
* :mod:`repro.core.configurations` -- parallel vs. serial deployment
  configurations with their detection/cost trade-offs.
* :mod:`repro.core.reporting` -- plain-text rendering of the paper's
  tables.
* :mod:`repro.core.experiment` -- the end-to-end experiment runner that
  regenerates every table of the paper in one call.
"""

from repro.core.adjudication import (
    AdjudicationResult,
    KOutOfNScheme,
    MajorityScheme,
    UnanimousScheme,
    WeightedVoteScheme,
    adjudicate,
)
from repro.core.alerts import Alert, AlertMatrix, AlertSet
from repro.core.breakdown import (
    BreakdownTable,
    exclusive_status_breakdown,
    status_breakdown,
    breakdown_by,
)
from repro.core.configurations import (
    ConfigurationComparison,
    ParallelConfiguration,
    SerialConfiguration,
    compare_configurations,
)
from repro.core.confusion import ConfusionMatrix
from repro.core.diversity import DiversityBreakdown, diversity_breakdown, multi_detector_breakdown
from repro.core.evaluation import DetectorEvaluation, evaluate_alert_set, evaluate_ensemble
from repro.core.experiment import ExperimentResult, PaperExperiment
from repro.core.metrics import (
    PairwiseDiversity,
    cohens_kappa,
    correlation_coefficient,
    disagreement_measure,
    double_fault_measure,
    entropy_measure,
    pairwise_diversity,
    yules_q,
)
from repro.core.reporting import render_table
from repro.core.selection import greedy_selection, marginal_coverage, redundancy_matrix
from repro.core.thresholds import OperatingPoint, SweepResult, sweep_detector
from repro.core.timeline import agreement_timeline, alert_timeline, detect_alert_bursts

__all__ = [
    "OperatingPoint",
    "SweepResult",
    "agreement_timeline",
    "alert_timeline",
    "detect_alert_bursts",
    "greedy_selection",
    "marginal_coverage",
    "redundancy_matrix",
    "sweep_detector",
    "AdjudicationResult",
    "Alert",
    "AlertMatrix",
    "AlertSet",
    "BreakdownTable",
    "ConfigurationComparison",
    "ConfusionMatrix",
    "DetectorEvaluation",
    "DiversityBreakdown",
    "ExperimentResult",
    "KOutOfNScheme",
    "MajorityScheme",
    "PairwiseDiversity",
    "PaperExperiment",
    "ParallelConfiguration",
    "SerialConfiguration",
    "UnanimousScheme",
    "WeightedVoteScheme",
    "adjudicate",
    "breakdown_by",
    "cohens_kappa",
    "compare_configurations",
    "correlation_coefficient",
    "disagreement_measure",
    "diversity_breakdown",
    "double_fault_measure",
    "entropy_measure",
    "evaluate_alert_set",
    "evaluate_ensemble",
    "exclusive_status_breakdown",
    "multi_detector_breakdown",
    "pairwise_diversity",
    "render_table",
    "status_breakdown",
    "yules_q",
]
