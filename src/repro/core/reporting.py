"""Plain-text rendering of the paper's tables.

The benchmarks and the CLI print the reproduced tables in the same layout
as the paper.  Rendering is deliberately plain text (no external
dependencies) and returns strings so tests can assert on the content.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.breakdown import BreakdownTable
from repro.core.diversity import DiversityBreakdown


def render_table(title: str, rows: Sequence[tuple[str, object]], *, value_header: str = "Count") -> str:
    """Render ``(label, value)`` rows as an aligned two-column table."""
    label_width = max([len(str(label)) for label, _ in rows] + [len(title), 20])
    value_width = max([len(f"{value:,}") if isinstance(value, int) else len(str(value)) for _, value in rows] + [len(value_header)])
    lines = [title, "-" * (label_width + value_width + 3)]
    lines.append(f"{'':<{label_width}} | {value_header:>{value_width}}")
    for label, value in rows:
        rendered = f"{value:,}" if isinstance(value, int) else str(value)
        lines.append(f"{str(label):<{label_width}} | {rendered:>{value_width}}")
    return "\n".join(lines)


def render_table1(total_requests: int, alert_counts: Mapping[str, int], *, title: str = "Table 1 - HTTP requests alerted by the tools") -> str:
    """Render the reproduction of the paper's Table 1."""
    rows: list[tuple[str, object]] = [("Total HTTP requests", total_requests)]
    for detector, count in alert_counts.items():
        rows.append((f"HTTP requests alerted as malicious by {detector}", count))
    return render_table(title, rows)


def render_table2(breakdown: DiversityBreakdown, *, title: str = "Table 2 - Diversity in the alerting behaviour") -> str:
    """Render the reproduction of the paper's Table 2."""
    rows: list[tuple[str, object]] = [
        (f"Both {breakdown.first_detector} and {breakdown.second_detector}", breakdown.both),
        ("Neither", breakdown.neither),
        (f"{breakdown.second_detector} only", breakdown.second_only),
        (f"{breakdown.first_detector} only", breakdown.first_only),
    ]
    return render_table(title, rows)


def render_status_breakdown(table: BreakdownTable, *, title: str | None = None) -> str:
    """Render a Table 3/4-style status breakdown for one detector."""
    heading = title or f"Alerted requests by HTTP status - {table.detector}"
    rows = [(str(key), count) for key, count in table.sorted_rows()]
    return render_table(heading, rows)


def render_side_by_side(left: str, right: str, *, gap: int = 4) -> str:
    """Render two pre-rendered tables side by side (the paper's Table 3/4 layout)."""
    left_lines = left.splitlines()
    right_lines = right.splitlines()
    width = max(len(line) for line in left_lines) if left_lines else 0
    height = max(len(left_lines), len(right_lines))
    left_lines += [""] * (height - len(left_lines))
    right_lines += [""] * (height - len(right_lines))
    return "\n".join(
        f"{left:<{width}}{' ' * gap}{right}" for left, right in zip(left_lines, right_lines)
    )


def render_evaluation_rows(rows: Sequence[Mapping[str, object]], *, title: str = "Labelled evaluation") -> str:
    """Render a list of metric dictionaries (one row per detector/scheme)."""
    if not rows:
        return f"{title}\n(no rows)"
    columns = [key for key in rows[0].keys()]
    widths = {column: max(len(str(column)), *(len(_format_cell(row.get(column))) for row in rows)) for column in columns}
    lines = [title, "-" * (sum(widths.values()) + 3 * (len(columns) - 1))]
    lines.append(" | ".join(f"{column:<{widths[column]}}" for column in columns))
    for row in rows:
        lines.append(" | ".join(f"{_format_cell(row.get(column)):<{widths[column]}}" for column in columns))
    return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)
