"""Per-dimension breakdowns of alerted requests (Tables 3 and 4).

Table 3 of the paper breaks the alerted requests of each tool down by
HTTP status code; Table 4 repeats the breakdown for the requests alerted
by *only one* of the tools.  The same machinery generalises to any
dimension of the request (day, method, path prefix, ...), which the
drill-down analyses in the examples use.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from repro.core.alerts import AlertMatrix
from repro.logs.dataset import Dataset
from repro.logs.record import LogRecord
from repro.logs.statuses import describe_status

DimensionKey = Callable[[LogRecord], object]


@dataclass(frozen=True)
class BreakdownTable:
    """Counts of alerted requests along one dimension for one detector."""

    detector: str
    dimension: str
    counts: Mapping[object, int]

    def total(self) -> int:
        """Total number of alerted requests in the table."""
        return sum(self.counts.values())

    def sorted_rows(self) -> list[tuple[object, int]]:
        """Rows sorted by descending count (the paper's presentation order)."""
        return sorted(self.counts.items(), key=lambda item: (-item[1], str(item[0])))

    def top(self, n: int) -> list[tuple[object, int]]:
        """The ``n`` largest rows."""
        return self.sorted_rows()[:n]

    def fraction_of(self, key: object) -> float:
        """Fraction of alerted requests falling in ``key``."""
        total = self.total()
        if total == 0:
            return 0.0
        return self.counts.get(key, 0) / total

    def as_dict(self) -> dict[str, int]:
        """A JSON-friendly representation (keys stringified)."""
        return {str(key): count for key, count in self.sorted_rows()}


def breakdown_by(
    dataset: Dataset,
    request_ids: Iterable[str],
    key: DimensionKey,
    *,
    detector: str = "",
    dimension: str = "custom",
) -> BreakdownTable:
    """Count the requests in ``request_ids`` along an arbitrary dimension."""
    counter: Counter[object] = Counter()
    for request_id in request_ids:
        record = dataset.get(request_id)
        counter[key(record)] += 1
    return BreakdownTable(detector=detector, dimension=dimension, counts=dict(counter))


def status_breakdown(dataset: Dataset, matrix: AlertMatrix, detector: str, *, labelled: bool = True) -> BreakdownTable:
    """Table 3: alerted requests of one detector broken down by HTTP status.

    With ``labelled=True`` (default) the keys are the paper's
    ``"200 (OK)"``-style labels; otherwise they are the bare integers.
    """
    key: DimensionKey
    if labelled:
        key = lambda record: describe_status(record.status)  # noqa: E731 - tiny adapter
    else:
        key = lambda record: record.status  # noqa: E731
    return breakdown_by(
        dataset,
        matrix.alerted_by(detector),
        key,
        detector=detector,
        dimension="http_status",
    )


def exclusive_status_breakdown(
    dataset: Dataset,
    matrix: AlertMatrix,
    detector: str,
    *,
    labelled: bool = True,
) -> BreakdownTable:
    """Table 4: status breakdown restricted to requests alerted *only* by ``detector``."""
    key: DimensionKey
    if labelled:
        key = lambda record: describe_status(record.status)  # noqa: E731
    else:
        key = lambda record: record.status  # noqa: E731
    return breakdown_by(
        dataset,
        matrix.alerted_by_exactly(detector),
        key,
        detector=detector,
        dimension="http_status_exclusive",
    )


def day_breakdown(dataset: Dataset, matrix: AlertMatrix, detector: str) -> BreakdownTable:
    """Alerted requests of one detector broken down by calendar day."""
    return breakdown_by(
        dataset,
        matrix.alerted_by(detector),
        lambda record: record.day,
        detector=detector,
        dimension="day",
    )


def method_breakdown(dataset: Dataset, matrix: AlertMatrix, detector: str) -> BreakdownTable:
    """Alerted requests of one detector broken down by HTTP method."""
    return breakdown_by(
        dataset,
        matrix.alerted_by(detector),
        lambda record: record.method.value,
        detector=detector,
        dimension="method",
    )
