"""Confusion matrices and derived classification rates.

The paper notes that once the data set is labelled, each tool (and each
adjudicated combination of tools) can be described "in terms of the usual
measures for binary classifiers (e.g. Sensitivity and Specificity)".
:class:`ConfusionMatrix` holds the four counts and derives the usual
rates; it is the common currency of the labelled extension experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Container, Iterable

from repro.exceptions import AnalysisError
from repro.logs.dataset import Dataset


@dataclass(frozen=True)
class ConfusionMatrix:
    """Counts of true/false positives/negatives for one detector or ensemble."""

    true_positives: int
    false_positives: int
    true_negatives: int
    false_negatives: int

    def __post_init__(self) -> None:
        for field_name, value in (
            ("true_positives", self.true_positives),
            ("false_positives", self.false_positives),
            ("true_negatives", self.true_negatives),
            ("false_negatives", self.false_negatives),
        ):
            if value < 0:
                raise AnalysisError(f"{field_name} cannot be negative")

    # ------------------------------------------------------------------
    @property
    def total(self) -> int:
        """Total number of classified requests."""
        return self.true_positives + self.false_positives + self.true_negatives + self.false_negatives

    @property
    def actual_positives(self) -> int:
        """Number of requests that are actually malicious."""
        return self.true_positives + self.false_negatives

    @property
    def actual_negatives(self) -> int:
        """Number of requests that are actually benign."""
        return self.true_negatives + self.false_positives

    @property
    def predicted_positives(self) -> int:
        """Number of requests the detector alerted on."""
        return self.true_positives + self.false_positives

    # ------------------------------------------------------------------
    def sensitivity(self) -> float:
        """True-positive rate (recall): detected fraction of malicious requests."""
        if self.actual_positives == 0:
            return 1.0
        return self.true_positives / self.actual_positives

    def specificity(self) -> float:
        """True-negative rate: fraction of benign requests left alone."""
        if self.actual_negatives == 0:
            return 1.0
        return self.true_negatives / self.actual_negatives

    def precision(self) -> float:
        """Fraction of alerts that were actually malicious."""
        if self.predicted_positives == 0:
            return 1.0
        return self.true_positives / self.predicted_positives

    def false_positive_rate(self) -> float:
        """Fraction of benign requests incorrectly alerted."""
        return 1.0 - self.specificity()

    def false_negative_rate(self) -> float:
        """Fraction of malicious requests missed."""
        return 1.0 - self.sensitivity()

    def accuracy(self) -> float:
        """Fraction of all requests classified correctly."""
        if self.total == 0:
            return 1.0
        return (self.true_positives + self.true_negatives) / self.total

    def f1_score(self) -> float:
        """Harmonic mean of precision and sensitivity."""
        precision = self.precision()
        recall = self.sensitivity()
        if precision + recall == 0:
            return 0.0
        return 2 * precision * recall / (precision + recall)

    def balanced_accuracy(self) -> float:
        """Mean of sensitivity and specificity (robust to class imbalance)."""
        return (self.sensitivity() + self.specificity()) / 2.0

    def matthews_correlation(self) -> float:
        """Matthews correlation coefficient."""
        tp, fp, tn, fn = self.true_positives, self.false_positives, self.true_negatives, self.false_negatives
        denominator: float = ((tp + fp) * (tp + fn) * (tn + fp) * (tn + fn)) ** 0.5
        if denominator == 0:
            return 0.0
        return (tp * tn - fp * fn) / denominator

    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, float]:
        """Counts and derived rates keyed by name."""
        return {
            "tp": float(self.true_positives),
            "fp": float(self.false_positives),
            "tn": float(self.true_negatives),
            "fn": float(self.false_negatives),
            "sensitivity": self.sensitivity(),
            "specificity": self.specificity(),
            "precision": self.precision(),
            "f1": self.f1_score(),
            "accuracy": self.accuracy(),
            "balanced_accuracy": self.balanced_accuracy(),
        }

    # ------------------------------------------------------------------
    @classmethod
    def from_alerts(cls, dataset: Dataset, alerted: Container[str], request_ids: Iterable[str] | None = None) -> "ConfusionMatrix":
        """Build the matrix from a labelled data set and a set-like of alerted ids.

        ``alerted`` may be anything supporting ``in`` (an
        :class:`~repro.core.alerts.AlertSet`, an
        :class:`~repro.core.adjudication.AdjudicationResult`, a plain set).
        """
        truth = dataset.require_labels()
        tp = fp = tn = fn = 0
        ids = dataset.request_ids if request_ids is None else list(request_ids)
        for request_id in ids:
            malicious = truth.is_malicious(request_id)
            alerted_here = request_id in alerted
            if malicious and alerted_here:
                tp += 1
            elif malicious and not alerted_here:
                fn += 1
            elif not malicious and alerted_here:
                fp += 1
            else:
                tn += 1
        return cls(true_positives=tp, false_positives=fp, true_negatives=tn, false_negatives=fn)
