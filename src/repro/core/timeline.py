"""Temporal analysis of alerting behaviour.

The paper's data set spans 8 days; a natural drill-down (and one the
operations teams running such tools care about) is how the alert volume
and the tools' agreement evolve over time: does the diversity come from a
single campaign on one day, or is it a stable property of the tools?
This module provides:

* :func:`alert_timeline` -- per-bucket (hour/day) request and alert counts
  for every detector of an alert matrix,
* :func:`agreement_timeline` -- per-bucket both/neither/only-one counts
  for a detector pair (Table 2 as a time series),
* :func:`detect_alert_bursts` -- simple burst detection over a detector's
  alert volume, used to locate campaign spikes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.alerts import AlertMatrix
from repro.core.diversity import DiversityBreakdown
from repro.exceptions import AnalysisError
from repro.logs.dataset import Dataset
from repro.logs.record import LogRecord

#: Supported bucketing granularities.
GRANULARITIES = ("hour", "day")


def _bucket_of(record: LogRecord, granularity: str) -> str:
    if granularity == "day":
        return record.day
    if granularity == "hour":
        return record.timestamp.strftime("%Y-%m-%d %H:00")
    raise AnalysisError(f"unknown granularity {granularity!r}; expected one of {GRANULARITIES}")


@dataclass(frozen=True)
class TimelineBucket:
    """Request and per-detector alert counts for one time bucket."""

    bucket: str
    total_requests: int
    alert_counts: Mapping[str, int]

    def alert_rate(self, detector: str) -> float:
        """Fraction of the bucket's requests alerted by ``detector``."""
        if self.total_requests == 0:
            return 0.0
        return self.alert_counts.get(detector, 0) / self.total_requests


def alert_timeline(
    dataset: Dataset,
    matrix: AlertMatrix,
    *,
    granularity: str = "day",
) -> list[TimelineBucket]:
    """Per-bucket totals and per-detector alert counts, in time order."""
    if granularity not in GRANULARITIES:
        raise AnalysisError(f"unknown granularity {granularity!r}; expected one of {GRANULARITIES}")
    totals: dict[str, int] = {}
    per_detector: dict[str, dict[str, int]] = {name: {} for name in matrix.detector_names}
    alerted_sets = {name: matrix.alerted_by(name) for name in matrix.detector_names}

    for record in dataset:
        bucket = _bucket_of(record, granularity)
        totals[bucket] = totals.get(bucket, 0) + 1
        for name, alerted in alerted_sets.items():
            if record.request_id in alerted:
                per_detector[name][bucket] = per_detector[name].get(bucket, 0) + 1

    buckets = []
    for bucket in sorted(totals):
        buckets.append(
            TimelineBucket(
                bucket=bucket,
                total_requests=totals[bucket],
                alert_counts={name: per_detector[name].get(bucket, 0) for name in matrix.detector_names},
            )
        )
    return buckets


def agreement_timeline(
    dataset: Dataset,
    matrix: AlertMatrix,
    first: str,
    second: str,
    *,
    granularity: str = "day",
) -> dict[str, DiversityBreakdown]:
    """The Table 2 breakdown computed per time bucket, keyed by bucket."""
    if granularity not in GRANULARITIES:
        raise AnalysisError(f"unknown granularity {granularity!r}; expected one of {GRANULARITIES}")
    first_alerted = matrix.alerted_by(first)
    second_alerted = matrix.alerted_by(second)

    cells: dict[str, list[int]] = {}
    for record in dataset:
        bucket = _bucket_of(record, granularity)
        counts = cells.setdefault(bucket, [0, 0, 0, 0])  # both, neither, first-only, second-only
        in_first = record.request_id in first_alerted
        in_second = record.request_id in second_alerted
        if in_first and in_second:
            counts[0] += 1
        elif not in_first and not in_second:
            counts[1] += 1
        elif in_first:
            counts[2] += 1
        else:
            counts[3] += 1

    return {
        bucket: DiversityBreakdown(
            first_detector=first,
            second_detector=second,
            both=counts[0],
            neither=counts[1],
            first_only=counts[2],
            second_only=counts[3],
        )
        for bucket, counts in sorted(cells.items())
    }


@dataclass(frozen=True)
class AlertBurst:
    """A contiguous run of buckets with unusually high alert volume."""

    detector: str
    start_bucket: str
    end_bucket: str
    peak_alerts: int
    total_alerts: int

    @property
    def bucket_span(self) -> tuple[str, str]:
        """The (start, end) bucket labels of the burst."""
        return (self.start_bucket, self.end_bucket)


def detect_alert_bursts(
    buckets: Sequence[TimelineBucket],
    detector: str,
    *,
    threshold_factor: float = 2.0,
) -> list[AlertBurst]:
    """Find runs of buckets where a detector's alert volume spikes.

    A bucket belongs to a burst when its alert count exceeds
    ``threshold_factor`` times the median bucket alert count for that
    detector.  Consecutive burst buckets are merged into one
    :class:`AlertBurst`.
    """
    if threshold_factor <= 1.0:
        raise AnalysisError("threshold_factor must be greater than 1")
    counts = [bucket.alert_counts.get(detector, 0) for bucket in buckets]
    if not counts:
        return []
    ordered = sorted(counts)
    median = ordered[len(ordered) // 2]
    threshold = max(1.0, median * threshold_factor)

    bursts: list[AlertBurst] = []
    run: list[TimelineBucket] = []
    for bucket, count in zip(buckets, counts):
        if count > threshold:
            run.append(bucket)
            continue
        if run:
            bursts.append(_close_burst(run, detector))
            run = []
    if run:
        bursts.append(_close_burst(run, detector))
    return bursts


def _close_burst(run: Sequence[TimelineBucket], detector: str) -> AlertBurst:
    counts = [bucket.alert_counts.get(detector, 0) for bucket in run]
    return AlertBurst(
        detector=detector,
        start_bucket=run[0].bucket,
        end_bucket=run[-1].bucket,
        peak_alerts=max(counts),
        total_alerts=sum(counts),
    )
