"""Parallel vs. serial deployment configurations.

Section V of the paper proposes analysing "the trade-offs between false
positives and false negatives when deploying the tools in parallel (both
tools monitor all the traffic) versus serial configurations (one tool
monitors and filters the traffic that need to be also analyzed by the
second tool)".  This module models both:

* :class:`ParallelConfiguration` -- every detector analyses all traffic
  and an adjudication scheme combines their verdicts.  Detection is
  maximised (under 1-out-of-N) or false positives are minimised (under
  N-out-of-N), at the cost of every tool processing every request.
* :class:`SerialConfiguration` -- the first detector analyses everything
  and *filters* the traffic handed to the second detector, which is
  re-run on that reduced data set.  Two filtering modes exist:

  - ``"confirm"``: the second tool only sees traffic the first tool
    alerted on, and the final alarm requires its confirmation (a serial
    realisation of 2-out-of-2; drastically fewer requests reach tool 2
    when the first tool is precise).
  - ``"escalate"``: the second tool only sees traffic the first tool let
    through, and the final alarm is the union of both tools' alerts (a
    serial realisation of 1-out-of-2; tool 2's workload shrinks when the
    first tool already alerts on most scraping traffic).

Each configuration reports the final alerted set *and* the workload (how
many requests each tool had to analyse), so the cost/benefit trade-off
the paper describes can be quantified.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.adjudication import KOutOfNScheme
from repro.core.alerts import AlertMatrix, AlertSet
from repro.core.confusion import ConfusionMatrix
from repro.detectors.base import Detector
from repro.exceptions import ConfigurationError
from repro.logs.dataset import Dataset


@dataclass
class ConfigurationOutcome:
    """The result of running one deployment configuration."""

    name: str
    alerted_ids: frozenset[str]
    workload: dict[str, int]
    total_requests: int
    confusion: ConfusionMatrix | None = None
    details: dict[str, object] = field(default_factory=dict)

    @property
    def alert_count(self) -> int:
        """Number of requests the configuration alerts on."""
        return len(self.alerted_ids)

    @property
    def total_workload(self) -> int:
        """Total requests analysed across all tools (the cost proxy)."""
        return sum(self.workload.values())

    def workload_fraction(self) -> float:
        """Workload relative to the parallel deployment of the same tools."""
        if self.total_requests == 0:
            return 0.0
        return self.total_workload / (self.total_requests * max(1, len(self.workload)))

    def __contains__(self, request_id: str) -> bool:
        return request_id in self.alerted_ids


class ParallelConfiguration:
    """All detectors see all traffic; an adjudication scheme combines them."""

    def __init__(
        self, detectors: Sequence[Detector], *, k: int = 1, name: str | None = None
    ) -> None:
        if not detectors:
            raise ConfigurationError("a parallel configuration needs at least one detector")
        if not 1 <= k <= len(detectors):
            raise ConfigurationError(f"k must be between 1 and {len(detectors)}")
        self.detectors = list(detectors)
        self.k = k
        self.name = name or f"parallel-{k}oo{len(detectors)}"

    def run(self, dataset: Dataset) -> ConfigurationOutcome:
        """Run every detector on the full data set and adjudicate."""
        alert_sets = [detector.analyze(dataset) for detector in self.detectors]
        matrix = AlertMatrix.from_alert_sets(dataset, alert_sets)
        result = KOutOfNScheme(self.k).apply(matrix)
        workload = {detector.name: len(dataset) for detector in self.detectors}
        confusion = None
        if dataset.is_labelled:
            confusion = ConfusionMatrix.from_alerts(dataset, result.alerted_ids)
        return ConfigurationOutcome(
            name=self.name,
            alerted_ids=result.alerted_ids,
            workload=workload,
            total_requests=len(dataset),
            confusion=confusion,
            details={"per_detector_alerts": matrix.alert_counts()},
        )


class SerialConfiguration:
    """The first detector filters the traffic analysed by the second."""

    VALID_MODES = ("confirm", "escalate")

    def __init__(
        self, first: Detector, second: Detector, *, mode: str = "confirm", name: str | None = None
    ) -> None:
        if mode not in self.VALID_MODES:
            raise ConfigurationError(f"unknown serial mode {mode!r}; expected one of {self.VALID_MODES}")
        self.first = first
        self.second = second
        self.mode = mode
        self.name = name or f"serial-{mode}({first.name}->{second.name})"

    def run(self, dataset: Dataset) -> ConfigurationOutcome:
        """Run the first tool on everything, the second on the filtered subset."""
        first_alerts = self.first.analyze(dataset)
        first_ids = first_alerts.request_ids()

        if self.mode == "confirm":
            forwarded = dataset.filter(lambda record: record.request_id in first_ids, name="forwarded")
        else:
            forwarded = dataset.filter(lambda record: record.request_id not in first_ids, name="forwarded")

        if len(forwarded) > 0:
            second_alerts = self.second.analyze(forwarded)
        else:
            second_alerts = AlertSet(self.second.name)
        second_ids = second_alerts.request_ids()

        if self.mode == "confirm":
            final = frozenset(first_ids & second_ids)
        else:
            final = frozenset(first_ids | second_ids)

        workload = {self.first.name: len(dataset), self.second.name: len(forwarded)}
        confusion = None
        if dataset.is_labelled:
            confusion = ConfusionMatrix.from_alerts(dataset, final)
        return ConfigurationOutcome(
            name=self.name,
            alerted_ids=final,
            workload=workload,
            total_requests=len(dataset),
            confusion=confusion,
            details={
                "mode": self.mode,
                "first_alerts": len(first_ids),
                "forwarded_requests": len(forwarded),
                "second_alerts": len(second_ids),
            },
        )


@dataclass
class ConfigurationComparison:
    """Outcomes of several configurations over the same data set."""

    outcomes: list[ConfigurationOutcome]

    def by_name(self, name: str) -> ConfigurationOutcome:
        """Look an outcome up by configuration name."""
        for outcome in self.outcomes:
            if outcome.name == name:
                return outcome
        raise ConfigurationError(f"no configuration named {name!r}")

    def names(self) -> list[str]:
        """The configuration names in run order."""
        return [outcome.name for outcome in self.outcomes]

    def best_by(self, metric: str) -> ConfigurationOutcome:
        """The outcome maximising a confusion-matrix metric (e.g. ``"f1"``)."""
        labelled = [
            (outcome, confusion)
            for outcome in self.outcomes
            if (confusion := outcome.confusion) is not None
        ]
        if not labelled:
            raise ConfigurationError("no labelled outcomes to compare")
        best, _ = max(labelled, key=lambda pair: pair[1].as_dict()[metric])
        return best


def compare_configurations(
    dataset: Dataset,
    first: Detector,
    second: Detector,
    *,
    include_reversed: bool = True,
) -> ConfigurationComparison:
    """Run the standard set of two-tool configurations on one data set.

    The comparison covers the parallel 1-out-of-2 and 2-out-of-2
    deployments and the serial confirm/escalate deployments in both tool
    orders (unless ``include_reversed`` is false).
    """
    outcomes = [
        ParallelConfiguration([first, second], k=1).run(dataset),
        ParallelConfiguration([first, second], k=2).run(dataset),
        SerialConfiguration(first, second, mode="confirm").run(dataset),
        SerialConfiguration(first, second, mode="escalate").run(dataset),
    ]
    if include_reversed:
        outcomes.append(SerialConfiguration(second, first, mode="confirm").run(dataset))
        outcomes.append(SerialConfiguration(second, first, mode="escalate").run(dataset))
    return ConfigurationComparison(outcomes)
