"""Alerts, alert sets and the alert matrix.

The unit of analysis in the paper is the *HTTP request*: for every request
each tool either raised an alert or did not.  This module provides:

* :class:`Alert` -- one detector's verdict on one request (with a score
  and human-readable reasons),
* :class:`AlertSet` -- all alerts raised by one detector over a data set,
* :class:`AlertMatrix` -- the request x detector boolean matrix that every
  diversity analysis, adjudication scheme and deployment-configuration
  model is computed from.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from itertools import chain
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Sequence

import numpy as np
import numpy.typing as npt

from repro.exceptions import AnalysisError

if TYPE_CHECKING:  # pragma: no cover - typing-only (avoids an import cycle)
    from repro.columns.alertframe import AlertFrame
    from repro.logs.dataset import Dataset


@dataclass(frozen=True)
class Alert:
    """One detector's alert on one HTTP request."""

    request_id: str
    detector: str
    score: float = 1.0
    reasons: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.score < 0:
            raise ValueError("alert scores must be non-negative")


class AlertSet:
    """All alerts raised by a single detector over a data set.

    An alert set behaves like a set of request ids (membership, length,
    iteration) while retaining the richer per-alert information.
    """

    def __init__(self, detector_name: str, alerts: Iterable[Alert] = ()) -> None:
        if not detector_name:
            raise ValueError("an alert set needs a detector name")
        self.detector_name = detector_name
        self._alerts: dict[str, Alert] = {}
        for alert in alerts:
            self.add_alert(alert)

    # ------------------------------------------------------------------
    def add(self, request_id: str, score: float = 1.0, reasons: Sequence[str] = ()) -> None:
        """Record an alert for ``request_id`` (idempotent; scores/reasons merge)."""
        existing = self._alerts.get(request_id)
        if existing is None:
            self._alerts[request_id] = Alert(
                request_id=request_id,
                detector=self.detector_name,
                score=score,
                reasons=tuple(reasons),
            )
        else:
            merged_reasons = tuple(dict.fromkeys(existing.reasons + tuple(reasons)))
            self._alerts[request_id] = Alert(
                request_id=request_id,
                detector=self.detector_name,
                score=max(existing.score, score),
                reasons=merged_reasons,
            )

    def add_many(self, request_ids: Iterable[str], score: float = 1.0, reasons: Sequence[str] = ()) -> None:
        """Alert every id in ``request_ids`` with one score and reason tuple.

        Exactly equivalent to calling :meth:`add` per id (same merge
        semantics), but the reason tuple is normalised once -- this is
        the bulk entry point of the columnar detectors, which alert whole
        sessions at a time.
        """
        reason_tuple = tuple(reasons)
        alerts = self._alerts
        detector = self.detector_name
        for request_id in request_ids:
            existing = alerts.get(request_id)
            if existing is None:
                alerts[request_id] = Alert(
                    request_id=request_id, detector=detector, score=score, reasons=reason_tuple
                )
            else:
                alerts[request_id] = Alert(
                    request_id=request_id,
                    detector=detector,
                    score=max(existing.score, score),
                    reasons=tuple(dict.fromkeys(existing.reasons + reason_tuple)),
                )

    @classmethod
    def from_scored(
        cls, detector_name: str, scored: Mapping[str, tuple[float, Sequence[str]]]
    ) -> "AlertSet":
        """Bulk-build an alert set from ``{request_id: (score, reasons)}``.

        One :class:`Alert` is constructed per entry (no per-entry merge
        pass), so composite detectors can merge their layers in plain
        dictionaries and materialise the result in one step.
        """
        alert_set = cls(detector_name)
        alert_set._alerts = {
            request_id: Alert(
                request_id=request_id,
                detector=detector_name,
                score=score,
                reasons=tuple(reasons),
            )
            for request_id, (score, reasons) in scored.items()
        }
        return alert_set

    def add_alert(self, alert: Alert) -> None:
        """Add a pre-built :class:`Alert` (must match this detector's name)."""
        if alert.detector != self.detector_name:
            raise AnalysisError(
                f"alert from detector {alert.detector!r} cannot be added to "
                f"alert set of {self.detector_name!r}"
            )
        self.add(alert.request_id, alert.score, alert.reasons)

    # ------------------------------------------------------------------
    def __contains__(self, request_id: str) -> bool:
        return request_id in self._alerts

    def __len__(self) -> int:
        return len(self._alerts)

    def __iter__(self) -> Iterator[str]:
        return iter(self._alerts)

    def request_ids(self) -> set[str]:
        """The set of alerted request ids."""
        return set(self._alerts)

    def alerts(self) -> list[Alert]:
        """All alerts (unordered)."""
        return list(self._alerts.values())

    def get(self, request_id: str) -> Alert | None:
        """The alert for ``request_id``, or ``None``."""
        return self._alerts.get(request_id)

    def reason_counts(self) -> dict[str, int]:
        """How many alerts carry each reason (useful for drill-down).

        One C-level pass (``Counter`` over a chained iterator) instead of
        a per-alert/per-reason Python loop; insertion order (first
        appearance) is preserved like the naive loop's.
        """
        counts = Counter(
            chain.from_iterable(alert.reasons for alert in self._alerts.values())
        )
        return dict(counts)

    def restrict_to(self, request_ids: Iterable[str]) -> "AlertSet":
        """A copy containing only alerts for the given request ids.

        Alerts are frozen, so the restricted set shares them instead of
        re-running the add/merge path per alert.
        """
        allowed = (
            request_ids if isinstance(request_ids, (set, frozenset)) else set(request_ids)
        )
        restricted = AlertSet(self.detector_name)
        restricted._alerts = {
            rid: alert for rid, alert in self._alerts.items() if rid in allowed
        }
        return restricted

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"AlertSet(detector={self.detector_name!r}, alerts={len(self)})"


class AlertMatrix:
    """The request x detector boolean alert matrix.

    Rows follow the data set's request order; columns follow the order in
    which the alert sets were supplied.  The matrix is the single source
    of truth for every downstream analysis, so detector outputs are
    validated against the data set when it is built: alerts on unknown
    request ids raise :class:`~repro.exceptions.AnalysisError`.
    """

    def __init__(
        self,
        request_ids: Sequence[str],
        detector_names: Sequence[str],
        matrix: npt.NDArray[np.bool_],
    ) -> None:
        if matrix.shape != (len(request_ids), len(detector_names)):
            raise AnalysisError(
                f"matrix shape {matrix.shape} does not match "
                f"{len(request_ids)} requests x {len(detector_names)} detectors"
            )
        self._request_ids = list(request_ids)
        self._detector_names = list(detector_names)
        self._matrix = matrix.astype(bool, copy=False)
        self._row_index_cache: dict[str, int] | None = None
        self._column_index_cache: dict[str, int] | None = None

    @property
    def _row_index(self) -> dict[str, int]:
        # Built lazily: the frame-native path never looks rows up by id.
        if self._row_index_cache is None:
            self._row_index_cache = {rid: i for i, rid in enumerate(self._request_ids)}
        return self._row_index_cache

    @property
    def _column_index(self) -> dict[str, int]:
        if self._column_index_cache is None:
            self._column_index_cache = {
                name: j for j, name in enumerate(self._detector_names)
            }
        return self._column_index_cache

    # ------------------------------------------------------------------
    @classmethod
    def from_alert_frame(cls, alert_frame: "AlertFrame") -> "AlertMatrix":
        """Stack an :class:`~repro.columns.alertframe.AlertFrame`'s flags.

        Zero per-alert iteration: the per-detector boolean columns are
        column-stacked straight into the matrix (an ``n x 1`` copy per
        detector, nothing per alert), and row/column id indexes are built
        lazily only if a dict-path consumer asks for them.
        """
        frame = alert_frame.frame
        names = alert_frame.detector_names
        if alert_frame.detectors:
            matrix = np.column_stack([alerts.flags for alerts in alert_frame.detectors])
        else:
            matrix = np.zeros((len(frame), 0), dtype=bool)
        return cls(frame.request_ids, names, matrix)

    @classmethod
    def from_alert_sets(
        cls, dataset: "Dataset", alert_sets: Sequence[AlertSet], *, strict: bool = True
    ) -> "AlertMatrix":
        """Build the matrix from a data set and one alert set per detector.

        Parameters
        ----------
        dataset:
            The :class:`~repro.logs.dataset.Dataset` the detectors analysed.
        alert_sets:
            One :class:`AlertSet` per detector; detector names must be unique.
        strict:
            When true (default), alerts for request ids that are not in the
            data set raise an error; otherwise they are ignored.
        """
        names = [alert_set.detector_name for alert_set in alert_sets]
        if len(set(names)) != len(names):
            raise AnalysisError(f"duplicate detector names in alert sets: {names}")
        request_ids = dataset.request_ids
        matrix = np.zeros((len(request_ids), len(alert_sets)), dtype=bool)
        row_of = dataset.row_index()
        for column, alert_set in enumerate(alert_sets):
            for request_id in alert_set:
                if request_id not in row_of:
                    if strict:
                        raise AnalysisError(
                            f"detector {alert_set.detector_name!r} alerted on unknown "
                            f"request id {request_id!r}"
                        )
                    continue
                matrix[row_of[request_id], column] = True
        return cls(request_ids, names, matrix)

    # ------------------------------------------------------------------
    @property
    def request_ids(self) -> list[str]:
        """Request ids in row order."""
        return self._request_ids

    @property
    def detector_names(self) -> list[str]:
        """Detector names in column order."""
        return self._detector_names

    @property
    def values(self) -> npt.NDArray[np.bool_]:
        """The underlying boolean matrix (requests x detectors). Do not mutate."""
        return self._matrix

    @property
    def n_requests(self) -> int:
        """Number of requests (rows)."""
        return len(self._request_ids)

    @property
    def n_detectors(self) -> int:
        """Number of detectors (columns)."""
        return len(self._detector_names)

    # ------------------------------------------------------------------
    def column(self, detector_name: str) -> npt.NDArray[np.bool_]:
        """The boolean alert vector of one detector."""
        try:
            index = self._column_index[detector_name]
        except KeyError as exc:
            raise AnalysisError(
                f"unknown detector {detector_name!r}; have {self._detector_names}"
            ) from exc
        return self._matrix[:, index]

    def row(self, request_id: str) -> npt.NDArray[np.bool_]:
        """The boolean verdict vector for one request."""
        try:
            index = self._row_index[request_id]
        except KeyError as exc:
            raise AnalysisError(f"unknown request id {request_id!r}") from exc
        return self._matrix[index, :]

    def alert_counts(self) -> dict[str, int]:
        """Number of alerted requests per detector (the paper's Table 1)."""
        totals = self._matrix.sum(axis=0)
        return {name: int(totals[j]) for j, name in enumerate(self._detector_names)}

    def votes_per_request(self) -> npt.NDArray[np.int64]:
        """Number of detectors alerting on each request (row sums)."""
        votes: npt.NDArray[np.int64] = self._matrix.sum(axis=1, dtype=np.int64)
        return votes

    def alerted_by(self, detector_name: str) -> set[str]:
        """The set of request ids alerted by one detector."""
        mask = self.column(detector_name)
        return {rid for rid, flag in zip(self._request_ids, mask) if flag}

    def alerted_by_exactly(self, detector_name: str) -> set[str]:
        """Request ids alerted by this detector and *no* other."""
        column_index = self._column_index.get(detector_name)
        if column_index is None:
            raise AnalysisError(f"unknown detector {detector_name!r}")
        votes = self.votes_per_request()
        mask = self._matrix[:, column_index] & (votes == 1)
        return {rid for rid, flag in zip(self._request_ids, mask) if flag}

    def alerted_by_all(self) -> set[str]:
        """Request ids alerted by every detector."""
        mask = self._matrix.all(axis=1)
        return {rid for rid, flag in zip(self._request_ids, mask) if flag}

    def alerted_by_none(self) -> set[str]:
        """Request ids alerted by no detector."""
        mask = ~self._matrix.any(axis=1)
        return {rid for rid, flag in zip(self._request_ids, mask) if flag}

    def select(self, detector_names: Sequence[str]) -> "AlertMatrix":
        """A sub-matrix containing only the given detectors (same row order)."""
        columns = []
        for name in detector_names:
            if name not in self._column_index:
                raise AnalysisError(f"unknown detector {name!r}")
            columns.append(self._column_index[name])
        return AlertMatrix(self._request_ids, list(detector_names), self._matrix[:, columns])

    def to_alert_sets(self) -> list[AlertSet]:
        """Reconstruct plain alert sets from the matrix (scores/reasons are lost)."""
        sets = []
        for name in self._detector_names:
            alert_set = AlertSet(name)
            for request_id in self.alerted_by(name):
                alert_set.add(request_id)
            sets.append(alert_set)
        return sets
