"""Labelled evaluation of detectors and ensembles.

This is the paper's stated next step: once ground truth exists, each
tool's alerts can be classified into true/false positives and the traffic
it left alone into true/false negatives, and the same can be done for
every adjudicated combination of tools.  The synthetic data set carries
ground truth, so these evaluations run as extension experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Container, Mapping, Sequence

from repro.core.adjudication import KOutOfNScheme, all_k_out_of_n
from repro.core.alerts import AlertMatrix
from repro.core.confusion import ConfusionMatrix
from repro.logs.dataset import Dataset


@dataclass(frozen=True)
class DetectorEvaluation:
    """Confusion matrix and derived rates for one detector or ensemble."""

    name: str
    confusion: ConfusionMatrix

    @property
    def sensitivity(self) -> float:
        """Detected fraction of malicious requests."""
        return self.confusion.sensitivity()

    @property
    def specificity(self) -> float:
        """Fraction of benign requests left alone."""
        return self.confusion.specificity()

    @property
    def precision(self) -> float:
        """Fraction of alerts that were truly malicious."""
        return self.confusion.precision()

    @property
    def f1(self) -> float:
        """F1 score."""
        return self.confusion.f1_score()

    def as_dict(self) -> dict[str, float]:
        """Name, counts and rates as a flat dictionary."""
        values = self.confusion.as_dict()
        values["name"] = self.name  # type: ignore[assignment]
        return values


def evaluate_alert_set(dataset: Dataset, alerted: Container[str], *, name: str = "detector") -> DetectorEvaluation:
    """Evaluate any set-like of alerted request ids against the ground truth."""
    confusion = ConfusionMatrix.from_alerts(dataset, alerted)
    return DetectorEvaluation(name=name, confusion=confusion)


def evaluate_matrix(dataset: Dataset, matrix: AlertMatrix) -> list[DetectorEvaluation]:
    """Evaluate every individual detector of an alert matrix."""
    return [
        evaluate_alert_set(dataset, matrix.alerted_by(name), name=name)
        for name in matrix.detector_names
    ]


def evaluate_ensemble(
    dataset: Dataset,
    matrix: AlertMatrix,
    *,
    ks: Sequence[int] | None = None,
) -> list[DetectorEvaluation]:
    """Evaluate k-out-of-N adjudications of the matrix (all k by default)."""
    if ks is None:
        results = all_k_out_of_n(matrix)
    else:
        results = [KOutOfNScheme(k).apply(matrix) for k in ks]
    return [
        evaluate_alert_set(dataset, result.alerted_ids, name=result.scheme_name)
        for result in results
    ]


def sensitivity_specificity_tradeoff(
    dataset: Dataset,
    matrix: AlertMatrix,
) -> list[Mapping[str, float | str]]:
    """The sensitivity/specificity operating points of every k-out-of-N scheme.

    Increasing ``k`` trades sensitivity for specificity (fewer false
    positives, more false negatives); this is the quantitative version of
    the trade-off discussion in the paper's Section V.
    """
    points: list[Mapping[str, float | str]] = []
    for evaluation in evaluate_ensemble(dataset, matrix):
        points.append(
            {
                "scheme": evaluation.name,
                "sensitivity": evaluation.sensitivity,
                "specificity": evaluation.specificity,
                "precision": evaluation.precision,
                "f1": evaluation.f1,
            }
        )
    return points


def per_actor_class_detection(dataset: Dataset, alerted: Container[str]) -> dict[str, float]:
    """Detection rate per ground-truth actor class.

    Answers the paper's "why is one tool more appropriate to detect
    certain behaviours" question: the rate at which a detector (or
    ensemble) alerts on requests of each actor family.
    """
    truth = dataset.require_labels()
    totals: dict[str, int] = {}
    caught: dict[str, int] = {}
    for record in dataset:
        actor_class = truth.actor_class_of(record.request_id) or "unknown"
        totals[actor_class] = totals.get(actor_class, 0) + 1
        if record.request_id in alerted:
            caught[actor_class] = caught.get(actor_class, 0) + 1
    return {
        actor_class: caught.get(actor_class, 0) / count
        for actor_class, count in sorted(totals.items())
    }
