"""Diversity breakdowns (the paper's Table 2).

For a pair of detectors the breakdown counts how many requests were
alerted by *both*, by *neither*, and by each detector *only* -- exactly
the four rows of the paper's Table 2.  The breakdown generalises to N
detectors as a distribution over alert-count (how many requests were
alerted by 0, 1, ..., N detectors) plus per-detector exclusive counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np
import numpy.typing as npt

from repro.core.alerts import AlertMatrix
from repro.exceptions import AnalysisError


@dataclass(frozen=True)
class DiversityBreakdown:
    """The pairwise both/neither/only-one breakdown."""

    first_detector: str
    second_detector: str
    both: int
    neither: int
    first_only: int
    second_only: int

    # ------------------------------------------------------------------
    @property
    def total(self) -> int:
        """Total number of requests in the analysed data set."""
        return self.both + self.neither + self.first_only + self.second_only

    @property
    def first_total(self) -> int:
        """Requests alerted by the first detector (Table 1 row for that tool)."""
        return self.both + self.first_only

    @property
    def second_total(self) -> int:
        """Requests alerted by the second detector."""
        return self.both + self.second_only

    @property
    def agreement(self) -> int:
        """Requests on which the detectors agree (both or neither)."""
        return self.both + self.neither

    @property
    def disagreement(self) -> int:
        """Requests on which the detectors disagree (alerted by exactly one)."""
        return self.first_only + self.second_only

    def agreement_rate(self) -> float:
        """Fraction of requests on which the detectors agree."""
        if self.total == 0:
            return 1.0
        return self.agreement / self.total

    def as_dict(self) -> dict[str, int]:
        """The four counts keyed the way the paper labels them."""
        return {
            "both": self.both,
            "neither": self.neither,
            f"{self.first_detector}_only": self.first_only,
            f"{self.second_detector}_only": self.second_only,
        }

    def contingency(self) -> npt.NDArray[np.float64]:
        """The 2x2 contingency table ``[[both, first_only], [second_only, neither]]``."""
        return np.array([[self.both, self.first_only], [self.second_only, self.neither]], dtype=float)


def diversity_breakdown(matrix: AlertMatrix, first: str, second: str) -> DiversityBreakdown:
    """Compute the pairwise breakdown for two detectors of an alert matrix."""
    if first == second:
        raise AnalysisError("the pairwise breakdown needs two distinct detectors")
    first_column = matrix.column(first)
    second_column = matrix.column(second)
    both = int(np.sum(first_column & second_column))
    neither = int(np.sum(~first_column & ~second_column))
    first_only = int(np.sum(first_column & ~second_column))
    second_only = int(np.sum(~first_column & second_column))
    return DiversityBreakdown(
        first_detector=first,
        second_detector=second,
        both=both,
        neither=neither,
        first_only=first_only,
        second_only=second_only,
    )


@dataclass(frozen=True)
class MultiDetectorBreakdown:
    """The N-detector generalisation of Table 2."""

    detector_names: tuple[str, ...]
    #: ``votes_histogram[k]`` is the number of requests alerted by exactly k detectors.
    votes_histogram: Mapping[int, int]
    #: Requests alerted by one detector only, per detector.
    exclusive_counts: Mapping[str, int]
    alerted_by_all: int
    alerted_by_none: int
    total: int

    def coverage_union(self) -> int:
        """Requests alerted by at least one detector."""
        return self.total - self.alerted_by_none


def multi_detector_breakdown(matrix: AlertMatrix) -> MultiDetectorBreakdown:
    """Compute the N-detector breakdown of an alert matrix."""
    votes = matrix.votes_per_request()
    histogram = {k: int(np.sum(votes == k)) for k in range(matrix.n_detectors + 1)}
    exclusive = {name: len(matrix.alerted_by_exactly(name)) for name in matrix.detector_names}
    return MultiDetectorBreakdown(
        detector_names=tuple(matrix.detector_names),
        votes_histogram=histogram,
        exclusive_counts=exclusive,
        alerted_by_all=len(matrix.alerted_by_all()),
        alerted_by_none=histogram.get(0, 0),
        total=matrix.n_requests,
    )
