"""Frame-native analysis kernels (Tables 1-4 without per-record Python).

Every analysis the paper experiment reports -- the per-status breakdowns
of Tables 3 and 4, the double-fault diversity measure, the labelled
confusion matrices and the per-actor detection rates -- exists here as a
vectorized kernel over a :class:`~repro.columns.RecordFrame` and the
boolean alert columns of an :class:`~repro.core.alerts.AlertMatrix`.

The kernels produce the *same* result objects (:class:`BreakdownTable`,
:class:`PairwiseDiversity`, :class:`DetectorEvaluation`) as the
record-path functions in :mod:`repro.core.breakdown`,
:mod:`repro.core.metrics` and :mod:`repro.core.evaluation`, equal value
for value -- the engine-equivalence suite pins them against each other.
The difference is purely mechanical: a status breakdown is one
``np.bincount`` over the frame's cached status dictionary instead of a
Python loop over alerted ids, and a confusion matrix is four boolean
reductions instead of a per-record branch.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np
import numpy.typing as npt

from repro.core.adjudication import AdjudicationError
from repro.core.alerts import AlertMatrix
from repro.core.breakdown import BreakdownTable
from repro.core.confusion import ConfusionMatrix
from repro.core.diversity import diversity_breakdown
from repro.core.evaluation import DetectorEvaluation
from repro.core.metrics import (
    PairwiseDiversity,
    cohens_kappa,
    correlation_coefficient,
    disagreement_measure,
    entropy_measure,
    yules_q,
)
from repro.exceptions import AnalysisError, LabelError
from repro.logs.statuses import describe_status

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.columns import RecordFrame


def _status_labels(frame: "RecordFrame", labelled: bool) -> list[object]:
    """The breakdown keys for the frame's distinct status values."""
    values, _codes = frame.status_dictionary()
    if labelled:
        return [describe_status(int(value)) for value in values]
    return [int(value) for value in values]


def status_breakdown_from_frame(
    frame: "RecordFrame",
    rows: npt.NDArray[np.bool_],
    detector: str,
    *,
    dimension: str = "http_status",
    labelled: bool = True,
) -> BreakdownTable:
    """Tables 3/4 kernel: a per-status count of the rows in a boolean mask.

    One ``np.bincount`` over the frame's cached status dictionary; only
    statuses that actually occur among the selected rows appear in the
    table, matching the record path's ``Counter`` behaviour.
    """
    _values, codes = frame.status_dictionary()
    labels = _status_labels(frame, labelled)
    counts = np.bincount(codes[rows], minlength=len(labels))
    table = {
        labels[index]: int(count) for index, count in enumerate(counts) if count
    }
    return BreakdownTable(detector=detector, dimension=dimension, counts=table)


def status_tables_from_frame(
    frame: "RecordFrame", matrix: AlertMatrix, names: Sequence[str]
) -> tuple[dict[str, BreakdownTable], dict[str, BreakdownTable]]:
    """Tables 3 and 4 for the named detectors in one pass.

    Returns ``(status_tables, exclusive_status_tables)``: the breakdown
    of every alerted row, and of the rows alerted by exactly that
    detector (the single-vote rows).
    """
    votes = matrix.votes_per_request()
    status_tables: dict[str, BreakdownTable] = {}
    exclusive_tables: dict[str, BreakdownTable] = {}
    for name in names:
        column = matrix.column(name)
        status_tables[name] = status_breakdown_from_frame(frame, column, name)
        exclusive_tables[name] = status_breakdown_from_frame(
            frame,
            column & (votes == 1),
            name,
            dimension="http_status_exclusive",
        )
    return status_tables, exclusive_tables


def double_fault_from_frame(
    frame: "RecordFrame", matrix: AlertMatrix, first: str, second: str
) -> float:
    """Fraction of malicious rows missed by both detectors (label column)."""
    if frame.labels is None:
        raise LabelError("data set has no ground truth labels")
    malicious = frame.labels != 0
    malicious_total = int(np.count_nonzero(malicious))
    if not malicious_total:
        raise AnalysisError("double-fault measure needs at least one malicious request")
    both_missed = int(
        np.count_nonzero(malicious & ~matrix.column(first) & ~matrix.column(second))
    )
    return both_missed / malicious_total


def pairwise_diversity_from_frame(
    frame: "RecordFrame", matrix: AlertMatrix, first: str, second: str
) -> PairwiseDiversity:
    """Every pairwise metric, with the double fault from the label column."""
    breakdown = diversity_breakdown(matrix, first, second)
    double_fault = None
    if frame.is_labelled:
        double_fault = double_fault_from_frame(frame, matrix, first, second)
    return PairwiseDiversity(
        first_detector=first,
        second_detector=second,
        breakdown=breakdown,
        kappa=cohens_kappa(breakdown),
        q_statistic=yules_q(breakdown),
        correlation=correlation_coefficient(breakdown),
        disagreement=disagreement_measure(breakdown),
        entropy=entropy_measure(breakdown),
        double_fault=double_fault,
    )


def confusion_from_flags(
    labels: npt.NDArray[np.int64], flags: npt.NDArray[np.bool_]
) -> ConfusionMatrix:
    """A confusion matrix from the label column and one boolean alert column."""
    malicious = labels != 0
    return ConfusionMatrix(
        true_positives=int(np.count_nonzero(malicious & flags)),
        false_positives=int(np.count_nonzero(~malicious & flags)),
        true_negatives=int(np.count_nonzero(~malicious & ~flags)),
        false_negatives=int(np.count_nonzero(malicious & ~flags)),
    )


def evaluate_matrix_from_frame(
    frame: "RecordFrame", matrix: AlertMatrix
) -> list[DetectorEvaluation]:
    """Labelled evaluation of every detector column (no id lookups)."""
    if frame.labels is None:
        raise LabelError("data set has no ground truth labels")
    labels = frame.labels
    return [
        DetectorEvaluation(name=name, confusion=confusion_from_flags(labels, matrix.column(name)))
        for name in matrix.detector_names
    ]


def evaluate_ensemble_from_frame(
    frame: "RecordFrame", matrix: AlertMatrix, *, ks: Sequence[int] | None = None
) -> list[DetectorEvaluation]:
    """Labelled evaluation of the k-out-of-N adjudications (vote threshold)."""
    if frame.labels is None:
        raise LabelError("data set has no ground truth labels")
    labels = frame.labels
    n = matrix.n_detectors
    if ks is None:
        ks = range(1, n + 1)
    votes = matrix.votes_per_request()
    evaluations = []
    for k in ks:
        if k < 1:
            raise AdjudicationError("k must be at least 1")
        if k > n:
            raise AdjudicationError(f"k={k} exceeds the number of detectors ({n})")
        evaluations.append(
            DetectorEvaluation(
                name=f"{k}-out-of-{n}",
                confusion=confusion_from_flags(labels, votes >= k),
            )
        )
    return evaluations


def per_actor_rates_from_frame(
    frame: "RecordFrame", flags: npt.NDArray[np.bool_]
) -> dict[str, float]:
    """Detection rate per ground-truth actor class, from the actor dictionary.

    Two ``np.bincount`` calls over the actor-code column; empty actor
    classes collapse into ``"unknown"`` exactly as
    :func:`~repro.core.evaluation.per_actor_class_detection` does (the
    per-class dictionaries merge colliding table entries).
    """
    if frame.labels is None:
        raise LabelError("data set has no ground truth labels")
    if frame.actor_codes is None:
        codes = np.zeros(len(frame), dtype=np.int64)
        table = [""]
    else:
        codes = frame.actor_codes
        table = list(frame.actor_table)
    minlength = len(table)
    per_class_total = np.bincount(codes, minlength=minlength)
    per_class_caught = np.bincount(codes[flags], minlength=minlength)
    totals: dict[str, int] = {}
    caught: dict[str, int] = {}
    for index, actor in enumerate(table):
        if not per_class_total[index]:
            continue
        name = actor or "unknown"
        totals[name] = totals.get(name, 0) + int(per_class_total[index])
        caught[name] = caught.get(name, 0) + int(per_class_caught[index])
    return {
        actor: caught.get(actor, 0) / count for actor, count in sorted(totals.items())
    }
