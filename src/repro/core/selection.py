"""Ensemble selection: which detectors are worth deploying together?

The diversity-for-security literature the paper builds on (Littlewood &
Strigini 2004; Bishop et al. 2011) notes that the hard question is not
whether diversity *can* help but **which** diverse defences to pick.  This
module answers that question for a pool of detectors run over the same
traffic:

* :func:`marginal_coverage` -- how many alerted requests each detector
  contributes that no other detector in the pool catches (its unique
  value),
* :func:`greedy_selection` -- greedy forward selection of a detector
  subset that maximises a labelled objective (F1 by default) under an
  optional budget on the number of detectors,
* :func:`redundancy_matrix` -- pairwise overlap fractions, the quick
  visual answer to "are these two tools interchangeable?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.alerts import AlertMatrix
from repro.core.confusion import ConfusionMatrix
from repro.exceptions import AnalysisError
from repro.logs.dataset import Dataset


def marginal_coverage(matrix: AlertMatrix) -> dict[str, int]:
    """Requests only one detector alerts on, per detector (its unique value)."""
    return {name: len(matrix.alerted_by_exactly(name)) for name in matrix.detector_names}


def redundancy_matrix(matrix: AlertMatrix) -> dict[tuple[str, str], float]:
    """Pairwise overlap fraction: |A ∩ B| / |A ∪ B| for each detector pair."""
    alerted = {name: matrix.alerted_by(name) for name in matrix.detector_names}
    overlaps: dict[tuple[str, str], float] = {}
    names = matrix.detector_names
    for i, first in enumerate(names):
        for second in names[i + 1 :]:
            union = alerted[first] | alerted[second]
            if not union:
                overlaps[(first, second)] = 1.0
                continue
            overlaps[(first, second)] = len(alerted[first] & alerted[second]) / len(union)
    return overlaps


@dataclass(frozen=True)
class SelectionStep:
    """One step of the greedy selection."""

    added_detector: str
    selected: tuple[str, ...]
    objective: float
    confusion: ConfusionMatrix


@dataclass(frozen=True)
class SelectionResult:
    """The outcome of a greedy ensemble selection."""

    objective_name: str
    steps: tuple[SelectionStep, ...]

    @property
    def selected(self) -> tuple[str, ...]:
        """The final selected detector subset (in selection order)."""
        if not self.steps:
            return ()
        return self.steps[-1].selected

    @property
    def best_objective(self) -> float:
        """The objective value of the final subset."""
        if not self.steps:
            return 0.0
        return self.steps[-1].objective


_OBJECTIVES: dict[str, Callable[[ConfusionMatrix], float]] = {
    "f1": lambda cm: cm.f1_score(),
    "sensitivity": lambda cm: cm.sensitivity(),
    "balanced_accuracy": lambda cm: cm.balanced_accuracy(),
    "youden": lambda cm: cm.sensitivity() + cm.specificity() - 1.0,
}


def _evaluate_subset(dataset: Dataset, matrix: AlertMatrix, subset: tuple[str, ...]) -> ConfusionMatrix:
    """Confusion matrix of the 1-out-of-k union of a detector subset."""
    columns = [matrix.column(name) for name in subset]
    union = np.logical_or.reduce(columns) if columns else np.zeros(matrix.n_requests, dtype=bool)
    alerted = {rid for rid, flag in zip(matrix.request_ids, union) if flag}
    return ConfusionMatrix.from_alerts(dataset, alerted)


def greedy_selection(
    dataset: Dataset,
    matrix: AlertMatrix,
    *,
    objective: str = "f1",
    max_detectors: int | None = None,
    min_gain: float = 1e-6,
) -> SelectionResult:
    """Greedy forward selection of detectors maximising a labelled objective.

    At each step the detector whose addition improves the objective the
    most is added; selection stops when no candidate improves it by at
    least ``min_gain``, or when ``max_detectors`` are selected.  The
    combined ensemble is evaluated under 1-out-of-k adjudication (the
    union), which is the natural objective for coverage-oriented
    selection; callers wanting stricter schemes can evaluate the selected
    subset with :mod:`repro.core.adjudication` afterwards.
    """
    if objective not in _OBJECTIVES:
        raise AnalysisError(f"unknown objective {objective!r}; expected one of {sorted(_OBJECTIVES)}")
    dataset.require_labels()
    objective_fn = _OBJECTIVES[objective]
    budget = max_detectors if max_detectors is not None else matrix.n_detectors
    if budget < 1:
        raise AnalysisError("max_detectors must be at least 1")

    remaining = list(matrix.detector_names)
    selected: tuple[str, ...] = ()
    steps: list[SelectionStep] = []
    current_value = float("-inf")

    while remaining and len(selected) < budget:
        best_candidate = None
        best_value = current_value
        best_confusion = None
        for candidate in remaining:
            subset = selected + (candidate,)
            confusion = _evaluate_subset(dataset, matrix, subset)
            value = objective_fn(confusion)
            if value > best_value + min_gain or (best_candidate is None and not steps and value > best_value):
                best_candidate = candidate
                best_value = value
                best_confusion = confusion
        if best_candidate is None or best_confusion is None:
            break
        selected = selected + (best_candidate,)
        remaining.remove(best_candidate)
        current_value = best_value
        steps.append(
            SelectionStep(
                added_detector=best_candidate,
                selected=selected,
                objective=best_value,
                confusion=best_confusion,
            )
        )
    return SelectionResult(objective_name=objective, steps=tuple(steps))
