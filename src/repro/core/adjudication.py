"""Adjudication schemes over detector ensembles.

Section V of the paper proposes evaluating the diverse tools "under
different adjudication schemes (e.g. 1-out-of-2, raise an alarm as long
as either tool does so; 2-out-of-2, only raise an alarm if both tools do
so etc.)".  This module implements those schemes for any number of
detectors:

* :class:`KOutOfNScheme` -- alert when at least ``k`` of the ``n``
  detectors alert (``k=1`` is the paper's 1-out-of-2, ``k=n`` its
  2-out-of-2),
* :class:`MajorityScheme` and :class:`UnanimousScheme` -- convenience
  subclasses,
* :class:`WeightedVoteScheme` -- detectors carry weights and an alert is
  raised when the weighted vote crosses a threshold.

Every scheme turns an :class:`~repro.core.alerts.AlertMatrix` into an
:class:`AdjudicationResult`, which behaves like a synthetic detector's
alert set and can therefore be evaluated with the same machinery as the
individual tools.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

import numpy as np
import numpy.typing as npt

from repro.core.alerts import AlertMatrix, AlertSet
from repro.exceptions import AdjudicationError
from repro.registry import Registry


@dataclass(frozen=True)
class AdjudicationResult:
    """The outcome of applying one adjudication scheme to an alert matrix."""

    scheme_name: str
    detector_names: tuple[str, ...]
    alerted_ids: frozenset[str]
    total_requests: int

    @property
    def alert_count(self) -> int:
        """Number of requests the adjudicated ensemble alerts on."""
        return len(self.alerted_ids)

    def alert_rate(self) -> float:
        """Fraction of requests the adjudicated ensemble alerts on."""
        if self.total_requests == 0:
            return 0.0
        return self.alert_count / self.total_requests

    def __contains__(self, request_id: str) -> bool:
        return request_id in self.alerted_ids

    def to_alert_set(self) -> AlertSet:
        """The adjudicated verdicts as a plain alert set (detector name = scheme name)."""
        alert_set = AlertSet(self.scheme_name)
        for request_id in self.alerted_ids:
            alert_set.add(request_id, reasons=(f"adjudicated by {self.scheme_name}",))
        return alert_set


class AdjudicationScheme:
    """Base class for adjudication schemes."""

    name: str = "adjudication"

    def decide(self, matrix: AlertMatrix) -> npt.NDArray[np.bool_]:
        """Boolean ensemble verdict per request (row order of the matrix)."""
        raise NotImplementedError

    def apply(self, matrix: AlertMatrix) -> AdjudicationResult:
        """Apply the scheme and package the result."""
        verdicts = self.decide(matrix)
        if verdicts.shape != (matrix.n_requests,):
            raise AdjudicationError(
                f"scheme {self.name!r} produced {verdicts.shape} verdicts for "
                f"{matrix.n_requests} requests"
            )
        alerted = frozenset(
            request_id for request_id, verdict in zip(matrix.request_ids, verdicts) if verdict
        )
        return AdjudicationResult(
            scheme_name=self.name,
            detector_names=tuple(matrix.detector_names),
            alerted_ids=alerted,
            total_requests=matrix.n_requests,
        )


class KOutOfNScheme(AdjudicationScheme):
    """Alert when at least ``k`` detectors alert."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise AdjudicationError("k must be at least 1")
        self.k = k
        self.name = f"{k}-out-of-n"

    def decide(self, matrix: AlertMatrix) -> npt.NDArray[np.bool_]:
        if self.k > matrix.n_detectors:
            raise AdjudicationError(
                f"k={self.k} exceeds the number of detectors ({matrix.n_detectors})"
            )
        self.name = f"{self.k}-out-of-{matrix.n_detectors}"
        return matrix.votes_per_request() >= self.k


class UnanimousScheme(KOutOfNScheme):
    """Alert only when every detector alerts (the paper's 2-out-of-2)."""

    def __init__(self) -> None:
        super().__init__(1)
        self.name = "unanimous"

    def decide(self, matrix: AlertMatrix) -> npt.NDArray[np.bool_]:
        self.k = matrix.n_detectors
        verdicts = super().decide(matrix)
        self.name = "unanimous"
        return verdicts


class MajorityScheme(KOutOfNScheme):
    """Alert when a strict majority of detectors alert."""

    def __init__(self) -> None:
        super().__init__(1)
        self.name = "majority"

    def decide(self, matrix: AlertMatrix) -> npt.NDArray[np.bool_]:
        self.k = matrix.n_detectors // 2 + 1
        verdicts = super().decide(matrix)
        self.name = "majority"
        return verdicts


class WeightedVoteScheme(AdjudicationScheme):
    """Alert when the weighted vote of the detectors crosses a threshold.

    Weights are given per detector name; missing names default to weight
    1.0.  The threshold is expressed as a fraction of the total weight, so
    ``threshold=0.5`` is a weighted majority.
    """

    def __init__(
        self, weights: Mapping[str, float], *, threshold: float = 0.5, name: str = "weighted-vote"
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise AdjudicationError("threshold must be in (0, 1]")
        if any(weight < 0 for weight in weights.values()):
            raise AdjudicationError("detector weights must be non-negative")
        self.weights = dict(weights)
        self.threshold = threshold
        self.name = name

    def decide(self, matrix: AlertMatrix) -> npt.NDArray[np.bool_]:
        weight_vector = np.array(
            [self.weights.get(name, 1.0) for name in matrix.detector_names], dtype=float
        )
        total_weight = weight_vector.sum()
        if total_weight <= 0:
            raise AdjudicationError("the total detector weight must be positive")
        weighted_votes = matrix.values.astype(float) @ weight_vector
        verdicts: npt.NDArray[np.bool_] = weighted_votes >= self.threshold * total_weight
        return verdicts


def adjudicate(matrix: AlertMatrix, scheme: AdjudicationScheme | int) -> AdjudicationResult:
    """Apply an adjudication scheme (or a plain ``k`` for k-out-of-N).

    >>> one_oo_two = adjudicate(matrix, 1)      # the paper's 1-out-of-2
    >>> two_oo_two = adjudicate(matrix, 2)      # the paper's 2-out-of-2
    """
    if isinstance(scheme, int):
        scheme = KOutOfNScheme(scheme)
    return scheme.apply(matrix)


def all_k_out_of_n(matrix: AlertMatrix) -> list[AdjudicationResult]:
    """Every k-out-of-N adjudication from ``k=1`` to ``k=N``."""
    return [adjudicate(matrix, k) for k in range(1, matrix.n_detectors + 1)]


def scheme_comparison(matrix: AlertMatrix, schemes: Sequence[AdjudicationScheme]) -> dict[str, AdjudicationResult]:
    """Apply several schemes and return their results keyed by scheme name."""
    results: dict[str, AdjudicationResult] = {}
    for scheme in schemes:
        result = scheme.apply(matrix)
        results[result.scheme_name] = result
    return results


# ----------------------------------------------------------------------
# Adjudication-scheme registry
# ----------------------------------------------------------------------
_SCHEME_REGISTRY: Registry[AdjudicationScheme] = Registry(
    "adjudication scheme", AdjudicationError
)


def register_adjudication_scheme(
    name: str, factory: Callable[..., AdjudicationScheme], *, overwrite: bool = False
) -> None:
    """Register an adjudication-scheme factory under ``name``."""
    _SCHEME_REGISTRY.register(name, factory, overwrite=overwrite)


def available_adjudication_schemes() -> list[str]:
    """Names of all registered adjudication schemes."""
    return _SCHEME_REGISTRY.names()


def create_adjudication_scheme(name: str, **kwargs: Any) -> AdjudicationScheme:
    """Instantiate a registered adjudication scheme by name.

    Raises :class:`~repro.exceptions.AdjudicationError` -- with a
    did-you-mean suggestion -- when the name is unknown.
    """
    return _SCHEME_REGISTRY.create(name, **kwargs)


register_adjudication_scheme("k-out-of-n", KOutOfNScheme)
register_adjudication_scheme("unanimous", UnanimousScheme)
register_adjudication_scheme("majority", MajorityScheme)
register_adjudication_scheme("weighted-vote", WeightedVoteScheme)
