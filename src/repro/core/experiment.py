"""The end-to-end paper experiment.

:class:`PaperExperiment` ties the whole pipeline together: generate (or
accept) a data set, run the two stand-in tools, and produce every table
of the paper plus the Section-V extension analyses.  The benchmarks, the
CLI and the examples all go through this class so there is exactly one
definition of "the experiment".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.core.alerts import AlertMatrix
from repro.core.breakdown import BreakdownTable, exclusive_status_breakdown, status_breakdown
from repro.core.diversity import DiversityBreakdown, diversity_breakdown
from repro.core.evaluation import DetectorEvaluation, evaluate_ensemble, evaluate_matrix
from repro.core.framestats import (
    evaluate_ensemble_from_frame,
    evaluate_matrix_from_frame,
    pairwise_diversity_from_frame,
    status_tables_from_frame,
)
from repro.core.metrics import PairwiseDiversity, pairwise_diversity
from repro.core.reporting import (
    render_side_by_side,
    render_status_breakdown,
    render_table1,
    render_table2,
)
from repro.detectors.base import Detector
from repro.detectors.commercial import CommercialBotDefenceDetector
from repro.detectors.inhouse import InHouseHeuristicDetector
from repro.detectors.pipeline import DetectionPipeline
from repro.logs.dataset import Dataset
from repro.traffic.generator import generate_dataset
from repro.traffic.scenarios import Scenario, amadeus_march_2018

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.columns import RecordFrame
    from repro.obs.metrics import MetricsRegistry


@dataclass
class ExperimentResult:
    """Everything the paper experiment produces for one data set.

    Exactly one of ``dataset`` and ``frame`` may be the sole data view:
    frame-native runs (:meth:`PaperExperiment.run_on_frame`) leave
    ``dataset`` as ``None`` and carry the columnar ``frame`` instead, so
    a trace-sourced experiment never materialises record objects.
    """

    dataset: Dataset | None
    matrix: AlertMatrix
    #: Table 1 -- total requests and per-tool alert counts.
    total_requests: int
    alert_counts: Mapping[str, int]
    #: Table 2 -- pairwise diversity breakdown of the two tools.
    breakdown: DiversityBreakdown
    #: Table 3 -- per-tool status breakdowns of all alerted requests.
    status_tables: Mapping[str, BreakdownTable]
    #: Table 4 -- per-tool status breakdowns of exclusively alerted requests.
    exclusive_status_tables: Mapping[str, BreakdownTable]
    #: Extension: pairwise diversity metrics (kappa, Q, disagreement, ...).
    diversity_metrics: PairwiseDiversity
    #: Extension: labelled evaluation of each tool (when labels exist).
    tool_evaluations: Sequence[DetectorEvaluation] = field(default_factory=list)
    #: Extension: labelled evaluation of the k-out-of-2 adjudications.
    adjudication_evaluations: Sequence[DetectorEvaluation] = field(default_factory=list)
    timings: Mapping[str, float] = field(default_factory=dict)
    #: The columnar data view of a frame-native run (``dataset`` is None).
    frame: "RecordFrame | None" = None

    # ------------------------------------------------------------------
    def render_table1(self) -> str:
        """The Table 1 reproduction as text."""
        return render_table1(self.total_requests, dict(self.alert_counts))

    def render_table2(self) -> str:
        """The Table 2 reproduction as text."""
        return render_table2(self.breakdown)

    def render_table3(self) -> str:
        """The Table 3 reproduction as text (tools side by side)."""
        names = list(self.status_tables)
        rendered = [render_status_breakdown(self.status_tables[name]) for name in names]
        if len(rendered) == 2:
            return render_side_by_side(rendered[0], rendered[1])
        return "\n\n".join(rendered)

    def render_table4(self) -> str:
        """The Table 4 reproduction as text (tools side by side)."""
        names = list(self.exclusive_status_tables)
        rendered = [
            render_status_breakdown(
                self.exclusive_status_tables[name],
                title=f"Alerted by {name} only, by HTTP status",
            )
            for name in names
        ]
        if len(rendered) == 2:
            return render_side_by_side(rendered[0], rendered[1])
        return "\n\n".join(rendered)

    def render_all(self) -> str:
        """All four tables as one report."""
        return "\n\n".join(
            [self.render_table1(), self.render_table2(), self.render_table3(), self.render_table4()]
        )


class PaperExperiment:
    """Run the paper's analysis (and its Section-V extensions) end to end."""

    def __init__(
        self,
        first_detector: Detector | None = None,
        second_detector: Detector | None = None,
    ) -> None:
        # The commercial stand-in plays Distil's role, the rule engine Arcane's.
        self.first_detector = first_detector or CommercialBotDefenceDetector()
        self.second_detector = second_detector or InHouseHeuristicDetector()

    # ------------------------------------------------------------------
    def run_on(
        self,
        dataset: Dataset,
        *,
        engine: str = "columnar",
        registry: "MetricsRegistry | None" = None,
    ) -> ExperimentResult:
        """Run both tools on an existing data set and compute every table.

        ``engine`` selects the batch pipeline implementation:
        ``"columnar"`` (default) runs the detectors over the vectorized
        :mod:`repro.columns` substrate, ``"records"`` over the legacy
        record-object path.  The two produce identical results.
        ``registry`` (a :class:`~repro.obs.metrics.MetricsRegistry`)
        collects the pipeline's counters and stage timings when given.
        """
        pipeline = DetectionPipeline(
            [self.first_detector, self.second_detector], registry=registry
        )
        pipeline_result = pipeline.run(dataset, engine=engine)
        matrix = pipeline_result.matrix
        first = self.first_detector.name
        second = self.second_detector.name

        breakdown = diversity_breakdown(matrix, first, second)
        status_tables = {name: status_breakdown(dataset, matrix, name) for name in (first, second)}
        exclusive_tables = {
            name: exclusive_status_breakdown(dataset, matrix, name) for name in (first, second)
        }
        metrics = pairwise_diversity(matrix, first, second, dataset=dataset)

        tool_evaluations: list[DetectorEvaluation] = []
        adjudication_evaluations: list[DetectorEvaluation] = []
        if dataset.is_labelled:
            tool_evaluations = evaluate_matrix(dataset, matrix)
            adjudication_evaluations = evaluate_ensemble(dataset, matrix)

        return ExperimentResult(
            dataset=dataset,
            matrix=matrix,
            total_requests=len(dataset),
            alert_counts=matrix.alert_counts(),
            breakdown=breakdown,
            status_tables=status_tables,
            exclusive_status_tables=exclusive_tables,
            diversity_metrics=metrics,
            tool_evaluations=tool_evaluations,
            adjudication_evaluations=adjudication_evaluations,
            timings=pipeline_result.timings,
        )

    def run_on_frame(
        self,
        frame: "RecordFrame",
        *,
        workers: int = 1,
        registry: "MetricsRegistry | None" = None,
        dataset: Dataset | None = None,
    ) -> ExperimentResult:
        """Run both tools frame-natively and compute every table from columns.

        The whole analysis -- detection, Tables 1-4, diversity metrics
        and the labelled evaluations -- runs on numpy arrays over the
        frame; no :class:`Dataset` and no per-alert objects are built, so
        a frame streamed from a trace file stays the only copy of the
        data.  With ``workers > 1`` the detectors run sharded across
        processes (see :meth:`~repro.detectors.pipeline.DetectionPipeline.run_frame`).
        ``dataset`` optionally attaches an already-materialised data set
        to the result for downstream record-path consumers; it is not
        used by the analysis itself.
        """
        from repro.obs.metrics import resolve_registry
        from repro.obs.spans import trace_span

        registry = resolve_registry(registry)
        pipeline = DetectionPipeline(
            [self.first_detector, self.second_detector], registry=registry
        )
        pipeline_result = pipeline.run_frame(frame, workers=workers)
        matrix = pipeline_result.matrix
        first = self.first_detector.name
        second = self.second_detector.name

        with trace_span("analysis", registry, engine="columnar"):
            breakdown = diversity_breakdown(matrix, first, second)
            status_tables, exclusive_tables = status_tables_from_frame(
                frame, matrix, (first, second)
            )
            metrics = pairwise_diversity_from_frame(frame, matrix, first, second)

            tool_evaluations: list[DetectorEvaluation] = []
            adjudication_evaluations: list[DetectorEvaluation] = []
            if frame.is_labelled:
                tool_evaluations = evaluate_matrix_from_frame(frame, matrix)
                adjudication_evaluations = evaluate_ensemble_from_frame(frame, matrix)

        return ExperimentResult(
            dataset=dataset,
            matrix=matrix,
            total_requests=len(frame),
            alert_counts=matrix.alert_counts(),
            breakdown=breakdown,
            status_tables=status_tables,
            exclusive_status_tables=exclusive_tables,
            diversity_metrics=metrics,
            tool_evaluations=tool_evaluations,
            adjudication_evaluations=adjudication_evaluations,
            timings=pipeline_result.timings,
            frame=frame,
        )

    def run_scenario(
        self, scenario: Scenario | None = None, *, engine: str = "columnar"
    ) -> ExperimentResult:
        """Generate the scenario's data set (default: the March-2018 scenario) and run."""
        scenario = scenario or amadeus_march_2018()
        dataset = generate_dataset(scenario)
        return self.run_on(dataset, engine=engine)
