"""Anonymisation of access-log data sets.

The paper's data set could not be shared because access logs identify
users (client IPs, occasionally query parameters).  Research groups that
*do* share such data pseudonymise it first; this module implements the
standard techniques so synthetic studies built with this library can be
exported in a shareable form while preserving exactly the properties the
detectors rely on:

* **prefix-preserving IP pseudonymisation** -- each /24 prefix and each
  host suffix is mapped through a keyed permutation, so "same subnet" and
  "same host" relations survive but real addresses do not,
* **query-string scrubbing** -- parameter values are replaced by
  placeholders (parameter *names* and counts are kept, which is what the
  detectors use),
* **user-agent preservation** -- user agents are detection-relevant and
  not personal, so they pass through unchanged.
"""

from __future__ import annotations

import hashlib
import hmac
from urllib.parse import parse_qsl, urlencode, urlsplit, urlunsplit

from dataclasses import replace

from repro.logs.dataset import Dataset
from repro.logs.record import LogRecord


class LogAnonymizer:
    """Keyed, deterministic anonymiser for log records and data sets."""

    def __init__(self, secret: str = "repro-secret", *, scrub_queries: bool = True):
        if not secret:
            raise ValueError("the anonymisation secret must be non-empty")
        self.secret = secret.encode("utf-8")
        self.scrub_queries = scrub_queries

    # ------------------------------------------------------------------
    # IP pseudonymisation
    # ------------------------------------------------------------------
    def _keyed_octet(self, label: str, value: str) -> int:
        digest = hmac.new(self.secret, f"{label}:{value}".encode("utf-8"), hashlib.sha256).digest()
        return digest[0]

    def anonymize_ip(self, client_ip: str) -> str:
        """Pseudonymise an IPv4 address, preserving subnet relationships.

        The first two octets are mapped as a pair (so distinct /16s stay
        distinct), the third octet is mapped within its /16 and the host
        octet within its /24 -- two hosts in the same real subnet remain in
        the same pseudonymous subnet.
        """
        parts = client_ip.split(".")
        if len(parts) != 4:
            # Not an IPv4 address (e.g. already anonymised or IPv6): hash wholesale.
            digest = hmac.new(self.secret, client_ip.encode("utf-8"), hashlib.sha256).hexdigest()
            return f"anon-{digest[:12]}"
        upper = ".".join(parts[:2])
        mapped_upper_a = self._keyed_octet("upper-a", upper)
        mapped_upper_b = self._keyed_octet("upper-b", upper)
        mapped_third = self._keyed_octet("third", ".".join(parts[:3]))
        mapped_host = self._keyed_octet("host", client_ip)
        return f"10.{mapped_upper_a ^ mapped_upper_b}.{mapped_third}.{max(1, mapped_host)}"

    # ------------------------------------------------------------------
    # Query scrubbing
    # ------------------------------------------------------------------
    def scrub_path(self, path: str) -> str:
        """Replace query-string values with placeholders, keeping the keys."""
        split = urlsplit(path)
        if not split.query:
            return path
        scrubbed = [(key, "x") for key, _ in parse_qsl(split.query, keep_blank_values=True)]
        return urlunsplit((split.scheme, split.netloc, split.path, urlencode(scrubbed), split.fragment))

    # ------------------------------------------------------------------
    def anonymize_record(self, record: LogRecord) -> LogRecord:
        """Return an anonymised copy of one record."""
        path = self.scrub_path(record.path) if self.scrub_queries else record.path
        referrer = record.referrer
        if referrer and self.scrub_queries:
            referrer = self.scrub_path(referrer)
        return replace(
            record,
            client_ip=self.anonymize_ip(record.client_ip),
            path=path,
            referrer=referrer,
        )

    def anonymize_dataset(self, dataset: Dataset) -> Dataset:
        """Anonymise every record; ground truth and metadata are preserved."""
        records = [self.anonymize_record(record) for record in dataset.records]
        return Dataset(records, ground_truth=dataset.ground_truth, metadata=dataset.metadata)
