"""Composable record predicates.

The diversity analysis slices the data set along several dimensions (by
status for Tables 3-4, by day, by tool-exclusive alerts, ...).  These
small predicate factories keep that slicing readable:

>>> ok_only = dataset.filter(by_status(200))
>>> errors = dataset.filter(by_status_class(4))
>>> chrome = dataset.filter(by_user_agent_substring("Chrome"))
"""

from __future__ import annotations

from typing import Callable

from repro.logs.record import LogRecord

RecordPredicate = Callable[[LogRecord], bool]


def by_status(status: int) -> RecordPredicate:
    """Match records with exactly the given status code."""

    def predicate(record: LogRecord) -> bool:
        return record.status == status

    return predicate


def by_status_class(status_class: int) -> RecordPredicate:
    """Match records in the given status class (2 for 2xx, 4 for 4xx, ...)."""

    def predicate(record: LogRecord) -> bool:
        return record.status_class == status_class

    return predicate


def by_ip(client_ip: str) -> RecordPredicate:
    """Match records from the given client IP."""

    def predicate(record: LogRecord) -> bool:
        return record.client_ip == client_ip

    return predicate


def by_method(method: str) -> RecordPredicate:
    """Match records with the given HTTP method (case-insensitive)."""
    method_upper = method.upper()

    def predicate(record: LogRecord) -> bool:
        return record.method.value == method_upper

    return predicate


def by_path_prefix(prefix: str) -> RecordPredicate:
    """Match records whose URL path starts with ``prefix``."""

    def predicate(record: LogRecord) -> bool:
        return record.url_path.startswith(prefix)

    return predicate


def by_user_agent_substring(fragment: str) -> RecordPredicate:
    """Match records whose user agent contains ``fragment`` (case-insensitive)."""
    fragment_lower = fragment.lower()

    def predicate(record: LogRecord) -> bool:
        return fragment_lower in record.user_agent.lower()

    return predicate


def by_day(iso_date: str) -> RecordPredicate:
    """Match records from the given ISO calendar day (``YYYY-MM-DD``)."""

    def predicate(record: LogRecord) -> bool:
        return record.day == iso_date

    return predicate


def and_filter(*predicates: RecordPredicate) -> RecordPredicate:
    """Match records satisfying *all* of the given predicates."""

    def predicate(record: LogRecord) -> bool:
        return all(p(record) for p in predicates)

    return predicate


def or_filter(*predicates: RecordPredicate) -> RecordPredicate:
    """Match records satisfying *any* of the given predicates."""

    def predicate(record: LogRecord) -> bool:
        return any(p(record) for p in predicates)

    return predicate


def not_filter(inner: RecordPredicate) -> RecordPredicate:
    """Match records that do *not* satisfy ``inner``."""

    def predicate(record: LogRecord) -> bool:
        return not inner(record)

    return predicate
