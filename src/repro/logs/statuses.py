"""HTTP status code registry.

Tables 3 and 4 of the paper break alerted requests down by HTTP status and
report the human-readable reason phrase alongside the numeric code (e.g.
``200 (OK)``, ``302 (Found)``).  This module centralises that mapping so
the breakdown and reporting code renders statuses the same way the paper
does.
"""

from __future__ import annotations

from typing import Mapping

#: Reason phrases for the status codes that occur in the paper and in the
#: synthetic e-commerce workload.  Unknown codes fall back to the generic
#: class description in :func:`describe_status`.
STATUS_REGISTRY: Mapping[int, str] = {
    200: "OK",
    201: "Created",
    204: "No content",
    206: "Partial content",
    301: "Moved permanently",
    302: "Found",
    303: "See other",
    304: "Not modified",
    307: "Temporary redirect",
    400: "Bad request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not found",
    405: "Method not allowed",
    408: "Request timeout",
    410: "Gone",
    429: "Too many requests",
    499: "Client closed request",
    500: "Internal Server Error",
    502: "Bad gateway",
    503: "Service unavailable",
    504: "Gateway timeout",
}

_CLASS_NAMES = {
    1: "Informational",
    2: "Success",
    3: "Redirection",
    4: "Client error",
    5: "Server error",
}


def status_class(status: int) -> int:
    """Return the status class digit (2 for 2xx, 3 for 3xx, ...)."""
    if status < 100 or status > 599:
        raise ValueError(f"invalid HTTP status code: {status}")
    return status // 100


def describe_status(status: int) -> str:
    """Return ``"<code> (<reason>)"``, matching the paper's table labels.

    >>> describe_status(200)
    '200 (OK)'
    >>> describe_status(302)
    '302 (Found)'
    """
    reason = STATUS_REGISTRY.get(status)
    if reason is None:
        reason = _CLASS_NAMES.get(status_class(status), "Unknown")
    return f"{status} ({reason})"
